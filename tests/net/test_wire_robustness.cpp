// Wire-protocol robustness: malformed and adversarial request bytes must
// produce clean exceptions (or valid responses), never crashes, hangs, or
// runaway allocations. Run against all three scheme servers.
#include <gtest/gtest.h>

#include "baseline/hom_msse_server.hpp"
#include "baseline/msse_server.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace mie {
namespace {

Bytes random_bytes(SplitMix64& rng, std::size_t max_length) {
    Bytes out(rng.next_below(max_length + 1));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
}

template <typename Server>
void fuzz_server(Server& server, std::uint64_t seed) {
    SplitMix64 rng(seed);
    for (int i = 0; i < 400; ++i) {
        const Bytes request = random_bytes(rng, 200);
        try {
            const Bytes response = server.handle(request);
            (void)response;  // a valid response is fine too
        } catch (const std::exception&) {
            // Clean rejection is the expected outcome.
        }
    }
}

TEST(WireRobustness, MieServerSurvivesGarbage) {
    MieServer server;
    fuzz_server(server, 1);
}

TEST(WireRobustness, MsseServerSurvivesGarbage) {
    baseline::MsseServer server;
    fuzz_server(server, 2);
}

TEST(WireRobustness, HomMsseServerSurvivesGarbage) {
    baseline::HomMsseServer server;
    fuzz_server(server, 3);
}

TEST(WireRobustness, MieServerSurvivesMutatedValidRequests) {
    // Mutations of real requests exercise deeper parse paths than pure
    // noise: capture genuine wire bytes, flip bits, replay.
    class Recorder final : public net::RequestHandler {
    public:
        explicit Recorder(net::RequestHandler& inner) : inner_(inner) {}
        Bytes handle(BytesView request) override {
            recorded.emplace_back(request.begin(), request.end());
            return inner_.handle(request);
        }
        std::vector<Bytes> recorded;

    private:
        net::RequestHandler& inner_;
    };

    MieServer server;
    Recorder recorder(server);
    {
        net::MeteredTransport transport(recorder,
                                        net::LinkProfile::loopback());
        MieClient client(transport, "repo",
                         RepositoryKey::generate(to_bytes("fz"), 64, 64,
                                                 0.7978845608),
                         to_bytes("u"));
        client.create_repository();
        sim::FlickrLikeGenerator gen(
            sim::FlickrLikeParams{.image_size = 48, .seed = 1});
        client.update(gen.make(0));
        client.train();
        client.search(gen.make(0), 2);
    }

    SplitMix64 rng(9);
    for (const Bytes& original : recorder.recorded) {
        for (int mutation = 0; mutation < 60; ++mutation) {
            Bytes mutated = original;
            const int flips = 1 + static_cast<int>(rng.next_below(4));
            for (int f = 0; f < flips; ++f) {
                if (mutated.empty()) break;
                mutated[rng.next_below(mutated.size())] ^=
                    static_cast<std::uint8_t>(1 + rng.next_below(255));
            }
            // Truncations too.
            if (rng.next_double() < 0.3 && !mutated.empty()) {
                mutated.resize(rng.next_below(mutated.size()));
            }
            try {
                server.handle(mutated);
            } catch (const std::exception&) {
            }
        }
    }
    // The server is still functional afterwards.
    EXPECT_NO_THROW(server.stats("repo"));
}

}  // namespace
}  // namespace mie
