// Wire-protocol robustness: malformed and adversarial request bytes must
// produce clean exceptions (or valid responses), never crashes, hangs, or
// runaway allocations. Run against all three scheme servers.
#include <gtest/gtest.h>

#include "baseline/hom_msse_server.hpp"
#include "baseline/msse_server.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "net/frame.hpp"
#include "net/message.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace mie {
namespace {

Bytes random_bytes(SplitMix64& rng, std::size_t max_length) {
    Bytes out(rng.next_below(max_length + 1));
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
}

template <typename Server>
void fuzz_server(Server& server, std::uint64_t seed) {
    SplitMix64 rng(seed);
    for (int i = 0; i < 400; ++i) {
        const Bytes request = random_bytes(rng, 200);
        try {
            const Bytes response = server.handle(request);
            (void)response;  // a valid response is fine too
        } catch (const std::exception&) {
            // Clean rejection is the expected outcome.
        }
    }
}

TEST(WireRobustness, MieServerSurvivesGarbage) {
    MieServer server;
    fuzz_server(server, 1);
}

TEST(WireRobustness, MsseServerSurvivesGarbage) {
    baseline::MsseServer server;
    fuzz_server(server, 2);
}

TEST(WireRobustness, HomMsseServerSurvivesGarbage) {
    baseline::HomMsseServer server;
    fuzz_server(server, 3);
}

TEST(WireRobustness, MieServerSurvivesMutatedValidRequests) {
    // Mutations of real requests exercise deeper parse paths than pure
    // noise: capture genuine wire bytes, flip bits, replay.
    class Recorder final : public net::RequestHandler {
    public:
        explicit Recorder(net::RequestHandler& inner) : inner_(inner) {}
        Bytes handle(BytesView request) override {
            recorded.emplace_back(request.begin(), request.end());
            return inner_.handle(request);
        }
        std::vector<Bytes> recorded;

    private:
        net::RequestHandler& inner_;
    };

    MieServer server;
    Recorder recorder(server);
    {
        net::MeteredTransport transport(recorder,
                                        net::LinkProfile::loopback());
        MieClient client(transport, "repo",
                         RepositoryKey::generate(to_bytes("fz"), 64, 64,
                                                 0.7978845608),
                         to_bytes("u"));
        client.create_repository();
        sim::FlickrLikeGenerator gen(
            sim::FlickrLikeParams{.image_size = 48, .seed = 1});
        client.update(gen.make(0));
        client.train();
        client.search(gen.make(0), 2);
    }

    SplitMix64 rng(9);
    for (const Bytes& original : recorder.recorded) {
        for (int mutation = 0; mutation < 60; ++mutation) {
            Bytes mutated = original;
            const int flips = 1 + static_cast<int>(rng.next_below(4));
            for (int f = 0; f < flips; ++f) {
                if (mutated.empty()) break;
                mutated[rng.next_below(mutated.size())] ^=
                    static_cast<std::uint8_t>(1 + rng.next_below(255));
            }
            // Truncations too.
            if (rng.next_double() < 0.3 && !mutated.empty()) {
                mutated.resize(rng.next_below(mutated.size()));
            }
            try {
                server.handle(mutated);
            } catch (const std::exception&) {
            }
        }
    }
    // The server is still functional afterwards.
    EXPECT_NO_THROW(server.stats("repo"));
}

// ---------------------------------------------------------------------------
// Frame-codec fuzzing: the checksummed framing of net/frame.hpp must
// never crash, over-read, or accept a frame whose length or checksum
// lies, no matter how the byte stream is mangled.
// ---------------------------------------------------------------------------

/// Feeds `stream` to a FrameDecoder in random-sized chunks, collecting
/// every accepted payload. Each chunk is a fresh exact-size heap buffer
/// so ASan flags any read past the fed bytes. Returns the accepted
/// payloads; decoding stops at the first corrupt-frame rejection.
std::vector<Bytes> decode_stream(BytesView stream, SplitMix64& rng) {
    net::FrameDecoder decoder;
    std::vector<Bytes> accepted;
    std::size_t offset = 0;
    bool dead = false;
    while (offset < stream.size() && !dead) {
        const std::size_t chunk =
            1 + rng.next_below(std::min<std::size_t>(
                    64, stream.size() - offset));
        const Bytes copy(stream.begin() + static_cast<std::ptrdiff_t>(offset),
                         stream.begin() +
                             static_cast<std::ptrdiff_t>(offset + chunk));
        decoder.feed(copy);
        offset += chunk;
        try {
            while (auto payload = decoder.next()) {
                accepted.push_back(std::move(*payload));
            }
        } catch (const net::TransportError& error) {
            EXPECT_EQ(error.kind(), net::TransportErrorKind::kCorruptFrame);
            dead = true;
        }
    }
    return accepted;
}

TEST(FrameFuzz, CleanStreamsRoundTripThroughArbitraryChunking) {
    SplitMix64 rng(0xF00D);
    for (int iteration = 0; iteration < 200; ++iteration) {
        std::vector<Bytes> payloads;
        Bytes stream;
        const std::size_t n = 1 + rng.next_below(4);
        for (std::size_t i = 0; i < n; ++i) {
            Bytes payload(rng.next_below(300));
            for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
            const Bytes frame = net::encode_frame(payload);
            stream.insert(stream.end(), frame.begin(), frame.end());
            payloads.push_back(std::move(payload));
        }
        const auto accepted = decode_stream(stream, rng);
        ASSERT_EQ(accepted.size(), payloads.size());
        for (std::size_t i = 0; i < payloads.size(); ++i) {
            EXPECT_EQ(accepted[i], payloads[i]);
        }
    }
}

TEST(FrameFuzz, MutatedStreamsNeverCrashOrAcceptLies) {
    // 10k mutated streams. The invariant for every accepted payload P:
    // the stream must actually contain encode_frame(P) at the position
    // the decoder consumed it from — i.e. acceptance implies the length
    // and CRC told the truth. Flipped-length and flipped-checksum frames
    // must be rejected, and rejection must be a typed TransportError,
    // never a crash, hang, or out-of-bounds read.
    SplitMix64 rng(0xFA22);
    std::size_t accepted_total = 0;
    std::size_t rejected_streams = 0;
    for (int iteration = 0; iteration < 10000; ++iteration) {
        // A small multi-frame stream of random payloads.
        Bytes stream;
        const std::size_t n = 1 + rng.next_below(3);
        for (std::size_t i = 0; i < n; ++i) {
            Bytes payload(rng.next_below(120));
            for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
            const Bytes frame = net::encode_frame(payload);
            stream.insert(stream.end(), frame.begin(), frame.end());
        }
        // Mutate: bit flips, truncation, or random insertions.
        const int flips = static_cast<int>(rng.next_below(6));
        for (int f = 0; f < flips && !stream.empty(); ++f) {
            stream[rng.next_below(stream.size())] ^=
                static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        if (rng.next_double() < 0.3 && !stream.empty()) {
            stream.resize(rng.next_below(stream.size()));
        }
        if (rng.next_double() < 0.2) {
            const std::size_t extra = 1 + rng.next_below(20);
            for (std::size_t i = 0; i < extra; ++i) {
                stream.insert(
                    stream.begin() + static_cast<std::ptrdiff_t>(
                                         rng.next_below(stream.size() + 1)),
                    static_cast<std::uint8_t>(rng()));
            }
        }

        // Exact-size heap copy: ASan turns any over-read into a failure.
        const Bytes exact(stream.begin(), stream.end());
        std::size_t consumed = 0;
        std::vector<Bytes> accepted;
        try {
            net::FrameDecoder decoder;
            decoder.feed(exact);
            while (auto payload = decoder.next()) {
                accepted.push_back(std::move(*payload));
            }
            consumed = exact.size() - decoder.buffered();
        } catch (const net::TransportError& error) {
            EXPECT_EQ(error.kind(),
                      net::TransportErrorKind::kCorruptFrame);
            ++rejected_streams;
            continue;
        }
        // Every accepted payload's re-encoding must appear verbatim in
        // the consumed prefix, in order: no lying length or CRC passed.
        std::size_t cursor = 0;
        for (const Bytes& payload : accepted) {
            const Bytes frame = net::encode_frame(payload);
            ASSERT_LE(cursor + frame.size(), consumed);
            EXPECT_TRUE(std::equal(frame.begin(), frame.end(),
                                   exact.begin() +
                                       static_cast<std::ptrdiff_t>(cursor)));
            cursor += frame.size();
            ++accepted_total;
        }
        EXPECT_EQ(cursor, consumed);
    }
    // The fuzzer exercised both paths (sanity check on the generator).
    EXPECT_GT(accepted_total, 100u);
    EXPECT_GT(rejected_streams, 100u);
}

TEST(FrameFuzz, HeaderLiesAreRejectedUpFront) {
    const Bytes payload = to_bytes("honest payload");
    // Length lie: header promises more than the cap.
    Bytes oversized = net::encode_frame(payload);
    oversized[4] = 0xff;
    oversized[5] = 0xff;
    oversized[6] = 0xff;
    oversized[7] = 0xff;
    net::FrameDecoder decoder;
    decoder.feed(oversized);
    EXPECT_THROW(decoder.next(), net::TransportError);

    // Checksum lie: valid magic and length, wrong CRC.
    Bytes bad_crc = net::encode_frame(payload);
    bad_crc[8] ^= 0x01;
    net::FrameDecoder decoder2;
    decoder2.feed(bad_crc);
    EXPECT_THROW(decoder2.next(), net::TransportError);

    // Magic lie: desynchronized stream rejected immediately.
    Bytes bad_magic = net::encode_frame(payload);
    bad_magic[0] ^= 0x01;
    net::FrameDecoder decoder3;
    decoder3.feed(bad_magic);
    EXPECT_THROW(decoder3.next(), net::TransportError);
}

TEST(MessageFuzz, ReaderNeverOverReadsRandomBytes) {
    // Random bytes through random read sequences: every outcome is a
    // value or std::out_of_range — never a crash or over-read (the
    // exact-size heap buffer makes ASan the judge).
    SplitMix64 rng(0xBEEF);
    for (int iteration = 0; iteration < 10000; ++iteration) {
        Bytes data(rng.next_below(64));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        const Bytes exact(data.begin(), data.end());
        net::MessageReader reader(exact);
        try {
            while (!reader.at_end()) {
                switch (rng.next_below(6)) {
                    case 0: reader.read_u8(); break;
                    case 1: reader.read_u32(); break;
                    case 2: reader.read_u64(); break;
                    case 3: reader.read_f64(); break;
                    case 4: reader.read_bytes(); break;
                    case 5: reader.read_string(); break;
                }
            }
        } catch (const std::out_of_range&) {
            // Clean truncation rejection.
        }
    }
}

}  // namespace
}  // namespace mie
