// Fault matrix: every FaultKind crossed with every mutating MIE opcode,
// driven through the full fault-tolerant stack
//
//   MieClient -> RetryingTransport -> FaultyTransport
//             -> MeteredTransport -> DedupHandler -> MieServer
//
// The invariant under test is exactly-once: whatever the fault and
// whichever operation it strikes, the client either succeeds after
// retries or surfaces a typed TransportError, and the server's final
// state is byte-identical to a fault-free run — a retried UPDATE never
// indexes an object twice, a replayed REMOVE never errors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <tuple>

#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/server.hpp"
#include "mie/wire.hpp"
#include "net/envelope.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie {
namespace {

using net::FaultKind;

/// The deterministic workload every scenario runs. Call order (one
/// Transport::call each): 0 CREATE, 1-3 UPDATE, 4 TRAIN, 5 REMOVE,
/// 6 SEARCH.
constexpr std::size_t kCreateCall = 0;
constexpr std::size_t kUpdateCall = 2;  // the middle UPDATE
constexpr std::size_t kTrainCall = 4;
constexpr std::size_t kRemoveCall = 5;

std::unique_ptr<MieClient> make_client(net::Transport& transport) {
    auto client = std::make_unique<MieClient>(
        transport, "fault-repo",
        RepositoryKey::generate(to_bytes("fault-entropy"), 64, 64,
                                0.7978845608),
        to_bytes("fault-user"));
    client->train_params.tree_branch = 4;
    client->train_params.tree_depth = 2;
    return client;
}

/// Runs the workload; returns the top search hit's object id.
std::uint64_t run_workload(MieClient& client) {
    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 48, .seed = 3});
    client.create_repository();
    for (int i = 0; i < 3; ++i) client.update(gen.make(i));
    client.train();
    client.remove(2);
    const auto results = client.search(gen.make(1), 1);
    return results.empty() ? ~0ull : results.front().object_id;
}

struct ReferenceRun {
    Bytes snapshot;
    std::uint64_t top_hit = 0;
};

/// Fault-free reference: the state every faulted run must converge to.
const ReferenceRun& reference_run() {
    static const ReferenceRun reference = [] {
        MieServer server;
        net::DedupHandler dedup(server);
        net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
        auto client = make_client(wire);
        ReferenceRun run;
        run.top_hit = run_workload(*client);
        run.snapshot = server.export_snapshot();
        return run;
    }();
    return reference;
}

bool is_send_kind(FaultKind kind) {
    return kind == FaultKind::kDropSend || kind == FaultKind::kResetSend;
}

/// One matrix cell: `kind` strikes workload call `call_index`.
void run_cell(FaultKind kind, std::size_t call_index) {
    SCOPED_TRACE(std::string(net::fault_kind_name(kind)) + " at call " +
                 std::to_string(call_index));
    MieServer server;
    net::DedupHandler dedup(server);
    net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
    net::FaultyTransport faulty(wire);
    // Send faults strike op 2k (before the server runs), recv faults op
    // 2k+1 (after the server applied) — the latter is the case only the
    // replay cache can make exactly-once.
    faulty.schedule_fault(2 * call_index + (is_send_kind(kind) ? 0 : 1),
                          kind);
    net::RetryingTransport retrying(
        faulty, net::RetryPolicy{.max_attempts = 4});
    retrying.set_sleeper([](double) {});
    auto client = make_client(retrying);

    const std::uint64_t top_hit = run_workload(*client);

    EXPECT_EQ(faulty.stats().faults_injected, 1u);
    EXPECT_GE(retrying.stats().retries, 1u);
    EXPECT_EQ(top_hit, reference_run().top_hit);
    // Exactly-once: final server state identical to the fault-free run.
    EXPECT_EQ(server.export_snapshot(), reference_run().snapshot);
    if (!is_send_kind(kind) && kind != FaultKind::kDelayRecv) {
        // The server applied the original; the retry was a replay the
        // dedup cache must have absorbed (not a second application).
        EXPECT_GE(dedup.replays_suppressed(), 1u);
    }
}

TEST(FaultMatrix, EveryKindAgainstEveryMutatingOp) {
    const FaultKind kinds[] = {
        FaultKind::kDropSend,     FaultKind::kResetSend,
        FaultKind::kDropRecv,     FaultKind::kResetRecv,
        FaultKind::kTruncateRecv, FaultKind::kCorruptRecv,
    };
    const std::size_t mutating_calls[] = {kCreateCall, kUpdateCall,
                                          kTrainCall, kRemoveCall};
    for (const FaultKind kind : kinds) {
        for (const std::size_t call : mutating_calls) {
            run_cell(kind, call);
        }
    }
}

TEST(FaultMatrix, DelayWithoutDeadlineOnlyAddsLatency) {
    // kDelayRecv with no deadline is not an error: the call succeeds,
    // modeled time grows, nothing retries.
    MieServer server;
    net::DedupHandler dedup(server);
    net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
    net::FaultyTransport faulty(
        wire, net::FaultPlan{.delay_seconds = 0.5});
    faulty.schedule_fault(2 * kUpdateCall + 1, FaultKind::kDelayRecv);
    net::RetryingTransport retrying(faulty, net::RetryPolicy{});
    retrying.set_sleeper([](double) {});
    auto client = make_client(retrying);

    const double before = retrying.network_seconds();
    run_workload(*client);
    EXPECT_EQ(retrying.stats().retries, 0u);
    EXPECT_GE(retrying.network_seconds() - before, 0.5);
    EXPECT_EQ(server.export_snapshot(), reference_run().snapshot);
}

TEST(FaultMatrix, DelayPastDeadlineTimesOutAndRetries) {
    MieServer server;
    net::DedupHandler dedup(server);
    net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
    net::FaultyTransport faulty(
        wire, net::FaultPlan{.delay_seconds = 0.5,
                             .deadline_seconds = 0.1});
    faulty.schedule_fault(2 * kUpdateCall + 1, FaultKind::kDelayRecv);
    net::RetryingTransport retrying(
        faulty, net::RetryPolicy{.max_attempts = 4});
    retrying.set_sleeper([](double) {});
    auto client = make_client(retrying);

    run_workload(*client);
    EXPECT_GE(retrying.stats().timeouts, 1u);
    EXPECT_GE(dedup.replays_suppressed(), 1u);
    EXPECT_EQ(server.export_snapshot(), reference_run().snapshot);
}

TEST(FaultMatrix, ExhaustedRetriesSurfaceTypedError) {
    // rate = 1.0: every I/O op faults, so even max_attempts retries
    // cannot get through — the caller must see a TransportError, not a
    // hang or a crash.
    MieServer server;
    net::DedupHandler dedup(server);
    net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
    net::FaultyTransport faulty(
        wire, net::FaultPlan{.rate = 1.0,
                             .seed = 9,
                             .kinds = {FaultKind::kDropSend}});
    net::RetryingTransport retrying(
        faulty, net::RetryPolicy{.max_attempts = 3});
    retrying.set_sleeper([](double) {});
    auto client = make_client(retrying);

    try {
        client->create_repository();
        FAIL() << "create_repository should not survive rate-1.0 faults";
    } catch (const net::TransportError& error) {
        EXPECT_EQ(error.kind(), net::TransportErrorKind::kTimeout);
    }
    EXPECT_EQ(retrying.stats().exhausted, 1u);
    EXPECT_EQ(retrying.stats().attempts, 3u);
    // The server never saw the request.
    EXPECT_THROW(server.stats("fault-repo"), std::exception);
}

TEST(FaultMatrix, ServerSideProtocolErrorsAreNeverRetried) {
    // A malformed request fails identically every attempt; retrying it
    // would only hide the bug. The retry layer must pass it through on
    // the first attempt.
    MieServer server;
    net::MeteredTransport wire(server, net::LinkProfile::loopback());
    net::RetryingTransport retrying(wire, net::RetryPolicy{});
    retrying.set_sleeper([](double) {});
    const Bytes garbage = to_bytes("\xff\xfe not a real opcode");
    EXPECT_THROW(retrying.call(garbage), std::exception);
    EXPECT_EQ(retrying.stats().attempts, 1u);
    EXPECT_EQ(retrying.stats().retries, 0u);
}

TEST(FaultMatrix, SeededSchedulesAreDeterministic) {
    // Same FaultPlan seed -> identical fault sequences and identical
    // retry/backoff bookkeeping across two full runs.
    auto run_once = [] {
        MieServer server;
        net::DedupHandler dedup(server);
        net::MeteredTransport wire(dedup, net::LinkProfile::loopback());
        net::FaultyTransport faulty(
            wire, net::FaultPlan{.rate = 0.15, .seed = 0xD1CE});
        net::RetryingTransport retrying(
            faulty, net::RetryPolicy{.max_attempts = 8,
                                     .jitter_seed = 0xD1CE});
        retrying.set_sleeper([](double) {});
        auto client = make_client(retrying);
        run_workload(*client);
        return std::tuple(faulty.stats().faults_injected,
                          retrying.stats().attempts,
                          retrying.stats().backoff_seconds,
                          server.export_snapshot());
    };
    const auto first = run_once();
    const auto second = run_once();
    EXPECT_EQ(std::get<0>(first), std::get<0>(second));
    EXPECT_EQ(std::get<1>(first), std::get<1>(second));
    EXPECT_EQ(std::get<2>(first), std::get<2>(second));
    EXPECT_EQ(std::get<3>(first), std::get<3>(second));
}

TEST(FaultMatrix, DedupSurvivesServerCrashAndRecovery) {
    // A recv-phase fault leaves the client about to retry an UPDATE the
    // server already applied AND logged. If the server then crashes and
    // recovers from its WAL, the retry still must not double-apply: the
    // replay cache is rebuilt from the logged envelopes.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("mie_fault_dedup_crash_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 48, .seed = 3});

    Bytes replay_request;  // the enveloped UPDATE the client would retry
    {
        DurableServer server(store::PosixVfs::instance(), dir);
        class Recorder final : public net::RequestHandler {
        public:
            explicit Recorder(net::RequestHandler& inner) : inner_(inner) {}
            Bytes handle(BytesView request) override {
                last.assign(request.begin(), request.end());
                return inner_.handle(request);
            }
            Bytes last;

        private:
            net::RequestHandler& inner_;
        } recorder(server);
        net::MeteredTransport wire(recorder, net::LinkProfile::loopback());
        auto client = make_client(wire);
        client->create_repository();
        client->update(gen.make(0));
        replay_request = recorder.last;
        server.sync();
    }  // crash: destructor without checkpoint_now()

    {
        DurableServer recovered(store::PosixVfs::instance(), dir);
        const auto before = recovered.server().stats("fault-repo");
        EXPECT_EQ(before.num_objects, 1u);

        // The client's retry arrives at the recovered server.
        const Bytes response = recovered.handle(replay_request);
        (void)response;
        EXPECT_EQ(recovered.durability().replays_suppressed, 1u);
        const auto after = recovered.server().stats("fault-repo");
        EXPECT_EQ(after.num_objects, 1u);  // not applied twice
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mie
