// TCP transport tests: framing, concurrency, and the full MIE stack over
// real loopback sockets.
#include <gtest/gtest.h>

#include <thread>

#include "mie/client.hpp"
#include "mie/server.hpp"
#include "net/tcp.hpp"
#include "sim/dataset.hpp"

namespace mie::net {
namespace {

/// Echo-with-prefix handler for framing tests.
class PrefixEcho final : public RequestHandler {
public:
    Bytes handle(BytesView request) override {
        Bytes response = to_bytes("ack:");
        response.insert(response.end(), request.begin(), request.end());
        return response;
    }
};

TEST(Tcp, RoundtripSmallAndLargeFrames) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port());

    EXPECT_EQ(to_string(client.call(to_bytes("hello"))), "ack:hello");
    EXPECT_EQ(to_string(client.call({})), "ack:");

    // A frame large enough to span many TCP segments.
    Bytes big(1 << 20, 0x7e);
    const Bytes response = client.call(big);
    ASSERT_EQ(response.size(), big.size() + 4);
    EXPECT_EQ(response[4], 0x7e);
    EXPECT_GT(client.network_seconds(), 0.0);
}

TEST(Tcp, SequentialRequestsOnOneConnection) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port());
    for (int i = 0; i < 50; ++i) {
        const std::string message = "msg" + std::to_string(i);
        EXPECT_EQ(to_string(client.call(to_bytes(message))),
                  "ack:" + message);
    }
}

TEST(Tcp, MultipleConcurrentClients) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            try {
                TcpTransport client("127.0.0.1", server.port());
                for (int i = 0; i < 20; ++i) {
                    const std::string message =
                        std::to_string(c) + ":" + std::to_string(i);
                    if (to_string(client.call(to_bytes(message))) !=
                        "ack:" + message) {
                        ++failures;
                    }
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Tcp, ConnectToClosedPortFails) {
    // Grab an ephemeral port, close the server, then try to connect.
    std::uint16_t dead_port;
    {
        PrefixEcho echo;
        TcpServer server(echo);
        dead_port = server.port();
    }
    EXPECT_THROW(TcpTransport("127.0.0.1", dead_port), std::runtime_error);
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    EXPECT_THROW(TcpTransport("not-an-ip", server.port()),
                 std::runtime_error);
}

TEST(Tcp, StopIsIdempotentAndRestartable) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    server.start();  // no-op
    {
        TcpTransport client("127.0.0.1", server.port());
        EXPECT_EQ(to_string(client.call(to_bytes("x"))), "ack:x");
    }
    server.stop();
    server.stop();  // no-op
}

TEST(Tcp, FullMieStackOverLoopback) {
    // The real thing: MIE client -> TCP -> MIE server, end to end.
    MieServer cloud;
    TcpServer server(cloud);
    server.start();

    TcpTransport transport("127.0.0.1", server.port());
    MieClient client(transport, "tcp-repo",
                     RepositoryKey::generate(to_bytes("tcp"), 64, 64,
                                             0.7978845608),
                     to_bytes("user"));
    client.train_params.tree_branch = 5;
    client.train_params.tree_depth = 2;

    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.num_classes = 3, .image_size = 48, .seed = 2});
    client.create_repository();
    for (const auto& object : gen.make_batch(0, 8)) {
        client.update(object);
    }
    client.train();

    const auto results = client.search(gen.make(4), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 4u);
    const auto decrypted = client.decrypt_result(results.front());
    EXPECT_EQ(decrypted.text, gen.make(4).text);
    EXPECT_GT(transport.network_seconds(), 0.0);

    // Second client over its own connection sees the same repository.
    TcpTransport transport2("127.0.0.1", server.port());
    MieClient client2(transport2, "tcp-repo",
                      RepositoryKey::generate(to_bytes("tcp"), 64, 64,
                                              0.7978845608),
                      to_bytes("user-2"));
    const auto results2 = client2.search(gen.make(4), 1);
    ASSERT_FALSE(results2.empty());
    EXPECT_EQ(results2.front().object_id, 4u);
}

}  // namespace
}  // namespace mie::net
