// TCP transport tests: framing, concurrency, the full MIE stack over
// real loopback sockets, and fault regression tests — a misbehaving peer
// must surface a typed TransportError, never a hang.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <functional>
#include <thread>

#include "mie/client.hpp"
#include "mie/server.hpp"
#include "net/frame.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "sim/dataset.hpp"

namespace mie::net {
namespace {

/// Echo-with-prefix handler for framing tests.
class PrefixEcho final : public RequestHandler {
public:
    Bytes handle(BytesView request) override {
        Bytes response = to_bytes("ack:");
        response.insert(response.end(), request.begin(), request.end());
        return response;
    }
};

TEST(Tcp, RoundtripSmallAndLargeFrames) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port());

    EXPECT_EQ(to_string(client.call(to_bytes("hello"))), "ack:hello");
    EXPECT_EQ(to_string(client.call({})), "ack:");

    // A frame large enough to span many TCP segments.
    Bytes big(1 << 20, 0x7e);
    const Bytes response = client.call(big);
    ASSERT_EQ(response.size(), big.size() + 4);
    EXPECT_EQ(response[4], 0x7e);
    EXPECT_GT(client.network_seconds(), 0.0);
}

TEST(Tcp, SequentialRequestsOnOneConnection) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port());
    for (int i = 0; i < 50; ++i) {
        const std::string message = "msg" + std::to_string(i);
        EXPECT_EQ(to_string(client.call(to_bytes(message))),
                  "ack:" + message);
    }
}

TEST(Tcp, MultipleConcurrentClients) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            try {
                TcpTransport client("127.0.0.1", server.port());
                for (int i = 0; i < 20; ++i) {
                    const std::string message =
                        std::to_string(c) + ":" + std::to_string(i);
                    if (to_string(client.call(to_bytes(message))) !=
                        "ack:" + message) {
                        ++failures;
                    }
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Tcp, TransientAcceptErrorsClassified) {
    // The accept loop must survive these (count + continue)...
    EXPECT_TRUE(is_transient_accept_error(ECONNABORTED));
    EXPECT_TRUE(is_transient_accept_error(EINTR));
    EXPECT_TRUE(is_transient_accept_error(EMFILE));
    EXPECT_TRUE(is_transient_accept_error(ENFILE));
    EXPECT_TRUE(is_transient_accept_error(ENOBUFS));
    EXPECT_TRUE(is_transient_accept_error(ENOMEM));
    EXPECT_TRUE(is_transient_accept_error(EPROTO));
    EXPECT_TRUE(is_transient_accept_error(EAGAIN));
    // ...and die on these (the listener itself is unusable).
    EXPECT_FALSE(is_transient_accept_error(EBADF));
    EXPECT_FALSE(is_transient_accept_error(EINVAL));
    EXPECT_FALSE(is_transient_accept_error(ENOTSOCK));

    // A healthy server reports zero transient accept errors.
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port());
    EXPECT_EQ(to_string(client.call(to_bytes("x"))), "ack:x");
    EXPECT_EQ(server.accept_transient_errors(), 0u);
}

TEST(Tcp, ConnectToClosedPortFails) {
    // Grab an ephemeral port, close the server, then try to connect.
    std::uint16_t dead_port;
    {
        PrefixEcho echo;
        TcpServer server(echo);
        dead_port = server.port();
    }
    EXPECT_THROW(TcpTransport("127.0.0.1", dead_port), std::runtime_error);
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    EXPECT_THROW(TcpTransport("not-an-ip", server.port()),
                 std::runtime_error);
}

TEST(Tcp, StopIsIdempotentAndRestartable) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    server.start();  // no-op
    {
        TcpTransport client("127.0.0.1", server.port());
        EXPECT_EQ(to_string(client.call(to_bytes("x"))), "ack:x");
    }
    server.stop();
    server.stop();  // no-op
}

TEST(Tcp, FullMieStackOverLoopback) {
    // The real thing: MIE client -> TCP -> MIE server, end to end.
    MieServer cloud;
    TcpServer server(cloud);
    server.start();

    TcpTransport transport("127.0.0.1", server.port());
    MieClient client(transport, "tcp-repo",
                     RepositoryKey::generate(to_bytes("tcp"), 64, 64,
                                             0.7978845608),
                     to_bytes("user"));
    client.train_params.tree_branch = 5;
    client.train_params.tree_depth = 2;

    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.num_classes = 3, .image_size = 48, .seed = 2});
    client.create_repository();
    for (const auto& object : gen.make_batch(0, 8)) {
        client.update(object);
    }
    client.train();

    const auto results = client.search(gen.make(4), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 4u);
    const auto decrypted = client.decrypt_result(results.front());
    EXPECT_EQ(decrypted.text, gen.make(4).text);
    EXPECT_GT(transport.network_seconds(), 0.0);

    // Second client over its own connection sees the same repository.
    TcpTransport transport2("127.0.0.1", server.port());
    MieClient client2(transport2, "tcp-repo",
                      RepositoryKey::generate(to_bytes("tcp"), 64, 64,
                                              0.7978845608),
                      to_bytes("user-2"));
    const auto results2 = client2.search(gen.make(4), 1);
    ASSERT_FALSE(results2.empty());
    EXPECT_EQ(results2.front().object_id, 4u);
}

// ---------------------------------------------------------------------------
// Fault regressions: each kind of peer misbehaviour surfaces a typed
// TransportError within its deadline. Before the poll-based client these
// were hangs (blocking recv with no timeout).
// ---------------------------------------------------------------------------

/// Minimal raw TCP listener whose per-connection behaviour is scripted by
/// the test — stand-in for a broken / malicious / dying server.
class RawListener {
public:
    explicit RawListener(std::function<void(int)> on_connection)
        : on_connection_(std::move(on_connection)) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&address),
                         sizeof(address)),
                  0);
        EXPECT_EQ(::listen(fd_, 16), 0);
        socklen_t length = sizeof(address);
        EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&address),
                                &length),
                  0);
        port_ = ntohs(address.sin_port);
        thread_ = std::thread([this] {
            while (true) {
                const int conn = ::accept(fd_, nullptr, nullptr);
                if (conn < 0) return;
                on_connection_(conn);
                ::close(conn);
            }
        });
    }

    ~RawListener() {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        if (thread_.joinable()) thread_.join();
    }

    std::uint16_t port() const { return port_; }

private:
    std::function<void(int)> on_connection_;
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

/// Drains the connection until the peer gives up (EOF).
void drain(int conn) {
    std::uint8_t buffer[512];
    while (::recv(conn, buffer, sizeof(buffer), 0) > 0) {
    }
}

TransportErrorKind call_and_kind(TcpTransport& client, BytesView request) {
    try {
        client.call(request);
    } catch (const TransportError& error) {
        return error.kind();
    }
    ADD_FAILURE() << "call unexpectedly succeeded";
    return TransportErrorKind::kConnectFailed;
}

TEST(TcpFault, SilentPeerTimesOutInsteadOfHanging) {
    // The original bug: a peer that accepts the request and then goes
    // silent left the client blocked in recv() forever.
    RawListener listener(drain);
    TcpTransport client("127.0.0.1", listener.port(),
                        TcpOptions{.io_timeout_seconds = 0.2});
    const Bytes request = to_bytes("anyone there?");
    EXPECT_EQ(call_and_kind(client, request), TransportErrorKind::kTimeout);
}

TEST(TcpFault, ConnectTimeoutOnSaturatedBacklog) {
    // listen(fd, 0) + unaccepted plug connections fill the accept queue;
    // further SYNs are silently dropped, so the dial must time out
    // instead of blocking in connect().
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&address),
                     sizeof(address)),
              0);
    ASSERT_EQ(::listen(listen_fd, 0), 0);
    socklen_t length = sizeof(address);
    ASSERT_EQ(::getsockname(listen_fd,
                            reinterpret_cast<sockaddr*>(&address), &length),
              0);
    const std::uint16_t port = ntohs(address.sin_port);

    std::vector<int> plugs;
    for (int i = 0; i < 8; ++i) {
        const int plug = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(plug, 0);
        // Non-blocking: we only need the SYN in flight, not completion.
        ::fcntl(plug, F_SETFL, O_NONBLOCK);
        ::connect(plug, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address));
        plugs.push_back(plug);
    }

    try {
        TcpTransport client("127.0.0.1", port,
                            TcpOptions{.connect_timeout_seconds = 0.25});
        ADD_FAILURE() << "connect to saturated backlog succeeded";
    } catch (const TransportError& error) {
        EXPECT_EQ(error.kind(), TransportErrorKind::kConnectTimeout);
    }
    for (int plug : plugs) ::close(plug);
    ::close(listen_fd);
}

TEST(TcpFault, PeerDyingBeforeResponseIsTypedReset) {
    // Server killed mid-request: the connection closes after the request
    // is read but before any response byte.
    RawListener listener([](int conn) {
        std::uint8_t buffer[512];
        (void)::recv(conn, buffer, sizeof(buffer), 0);
        // close(conn) happens in RawListener — response never sent.
    });
    TcpTransport client("127.0.0.1", listener.port(),
                        TcpOptions{.io_timeout_seconds = 1.0});
    EXPECT_EQ(call_and_kind(client, to_bytes("req")),
              TransportErrorKind::kConnectionReset);
}

TEST(TcpFault, PeerDyingMidResponseFrameIsTruncated) {
    // The peer sends a valid header promising 100 bytes, delivers 10,
    // then dies.
    RawListener listener([](int conn) {
        std::uint8_t buffer[512];
        (void)::recv(conn, buffer, sizeof(buffer), 0);
        const Bytes payload(100, 0xab);
        std::uint8_t header[kFrameHeaderSize];
        encode_frame_header(payload, header);
        (void)::send(conn, header, sizeof(header), MSG_NOSIGNAL);
        (void)::send(conn, payload.data(), 10, MSG_NOSIGNAL);
    });
    TcpTransport client("127.0.0.1", listener.port(),
                        TcpOptions{.io_timeout_seconds = 1.0});
    EXPECT_EQ(call_and_kind(client, to_bytes("req")),
              TransportErrorKind::kTruncatedFrame);
}

TEST(TcpFault, CorruptResponseChecksumIsTyped) {
    RawListener listener([](int conn) {
        std::uint8_t buffer[512];
        (void)::recv(conn, buffer, sizeof(buffer), 0);
        Bytes frame = encode_frame(to_bytes("tampered-response"));
        frame.back() ^= 0x01;  // corrupt the payload after checksumming
        (void)::send(conn, frame.data(), frame.size(), MSG_NOSIGNAL);
        drain(conn);
    });
    TcpTransport client("127.0.0.1", listener.port(),
                        TcpOptions{.io_timeout_seconds = 1.0});
    EXPECT_EQ(call_and_kind(client, to_bytes("req")),
              TransportErrorKind::kCorruptFrame);
}

TEST(TcpFault, BrokenConnectionRequiresReconnect) {
    PrefixEcho echo;
    TcpServer server(echo);
    server.start();
    TcpTransport client("127.0.0.1", server.port(),
                        TcpOptions{.io_timeout_seconds = 0.2});
    EXPECT_EQ(to_string(client.call(to_bytes("a"))), "ack:a");

    // Kill the server under the client.
    server.stop();
    EXPECT_THROW(client.call(to_bytes("b")), TransportError);
    // Without reconnect() every further call fails fast, no hang.
    EXPECT_EQ(call_and_kind(client, to_bytes("c")),
              TransportErrorKind::kConnectionReset);

    // A new server on the same port + reconnect() restores service.
    TcpServer revived(echo, server.port());
    revived.start();
    client.reconnect();
    EXPECT_EQ(to_string(client.call(to_bytes("d"))), "ack:d");
}

TEST(TcpFault, RetryingTransportRecoversAcrossServerRestart) {
    PrefixEcho echo;
    auto server = std::make_unique<TcpServer>(echo);
    server->start();
    const std::uint16_t port = server->port();

    TcpTransport socket_transport("127.0.0.1", port,
                                  TcpOptions{.io_timeout_seconds = 0.5});
    RetryingTransport client(socket_transport,
                             RetryPolicy{.max_attempts = 5,
                                         .base_backoff_seconds = 0.01});
    client.set_sleeper([](double) {});
    EXPECT_EQ(to_string(client.call(to_bytes("x"))), "ack:x");

    // Restart the server; the next call's first attempt fails, a retry
    // reconnects and succeeds — the caller sees no error at all.
    server = nullptr;
    server = std::make_unique<TcpServer>(echo, port);
    server->start();
    EXPECT_EQ(to_string(client.call(to_bytes("y"))), "ack:y");
    EXPECT_GE(client.stats().retries, 1u);
    EXPECT_GE(client.stats().reconnects, 1u);
}

}  // namespace
}  // namespace mie::net
