// Replay-cache eviction regression tests.
//
// The cache originally bounded memory with one global FIFO over
// (client, seq) pairs, which broke exactly-once under fleet-scale load:
// enough traffic from OTHER clients evicted a live client's only entry,
// and its retry re-applied the mutation. The cache now evicts per
// client (a bounded window of recent seqs) and across clients (whole
// idle clients, LRU) — these tests pin the boundary behaviour of both
// levels and prove exactly-once survives a flood from unrelated clients.
#include <gtest/gtest.h>

#include <string>

#include "net/envelope.hpp"
#include "net/transport.hpp"

namespace mie::net {
namespace {

TEST(ReplayCacheTest, PerClientWindowKeepsMostRecentSeqs) {
    ReplayCache cache(/*max_clients=*/4, /*window_per_client=*/3);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
        cache.insert(7, seq, to_bytes("r" + std::to_string(seq)));
    }
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.num_clients(), 1u);
    // The window is a suffix of the seq stream: newest three retained.
    EXPECT_EQ(cache.lookup(7, 1), nullptr);
    EXPECT_EQ(cache.lookup(7, 2), nullptr);
    for (std::uint64_t seq = 3; seq <= 5; ++seq) {
        const Bytes* hit = cache.lookup(7, seq);
        ASSERT_NE(hit, nullptr) << "seq " << seq;
        EXPECT_EQ(to_string(*hit), "r" + std::to_string(seq));
    }
}

TEST(ReplayCacheTest, DuplicateInsertKeepsOriginalResponse) {
    ReplayCache cache(4, 3);
    cache.insert(1, 1, to_bytes("original"));
    cache.insert(1, 1, to_bytes("imposter"));
    const Bytes* hit = cache.lookup(1, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(to_string(*hit), "original");
    EXPECT_EQ(cache.size(), 1u);
}

// THE regression: under the old global FIFO, other clients' volume
// evicted a live client's fresh entry. Per-client windows make one
// client's footprint independent of everyone else's traffic.
TEST(ReplayCacheTest, OtherClientsTrafficCannotEvictALiveClient) {
    ReplayCache cache(/*max_clients=*/8, /*window_per_client=*/4);
    cache.insert(99, 1, to_bytes("precious"));
    // Seven other clients insert far more entries than the old global
    // capacity equivalent (8 * 4 = 32) would have tolerated.
    for (std::uint64_t client = 1; client <= 7; ++client) {
        for (std::uint64_t seq = 1; seq <= 50; ++seq) {
            cache.insert(client, seq, to_bytes("x"));
        }
    }
    EXPECT_EQ(cache.num_clients(), 8u);
    const Bytes* hit = cache.lookup(99, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(to_string(*hit), "precious");
}

TEST(ReplayCacheTest, WholeClientLruEvictionBeyondMaxClients) {
    ReplayCache cache(/*max_clients=*/2, /*window_per_client=*/4);
    cache.insert(1, 1, to_bytes("a"));
    cache.insert(2, 1, to_bytes("b"));
    // Client 1 is refreshed by new activity; client 2 goes idle.
    cache.insert(1, 2, to_bytes("a2"));
    cache.insert(3, 1, to_bytes("c"));  // exceeds max_clients
    EXPECT_EQ(cache.num_clients(), 2u);
    EXPECT_EQ(cache.lookup(2, 1), nullptr);       // idle client evicted
    EXPECT_NE(cache.lookup(1, 2), nullptr);       // active client kept
    EXPECT_NE(cache.lookup(3, 1), nullptr);
}

/// Counts real applications so tests can distinguish "answered from
/// cache" from "re-applied".
class CountingHandler final : public RequestHandler {
public:
    Bytes handle(BytesView request) override {
        ++applies_;
        Bytes response = to_bytes("applied:" + to_string(request) + ":" +
                                  std::to_string(applies_));
        return response;
    }
    std::size_t applies() const { return applies_; }

private:
    std::size_t applies_ = 0;
};

TEST(DedupHandlerTest, ExactlyOnceAtWindowEvictionBoundary) {
    CountingHandler inner;
    DedupHandler dedup(inner, /*max_clients=*/4, /*window_per_client=*/2);

    const auto send = [&](std::uint64_t client, std::uint64_t seq) {
        return dedup.handle(
            envelope_wrap(client, seq, to_bytes("op" + std::to_string(seq))));
    };

    const Bytes r1 = send(1, 1);
    const Bytes r2 = send(1, 2);
    const Bytes r3 = send(1, 3);
    ASSERT_EQ(inner.applies(), 3u);

    // Retries inside the window: answered from cache, byte-identical,
    // nothing re-applied.
    EXPECT_EQ(send(1, 3), r3);
    EXPECT_EQ(send(1, 2), r2);
    EXPECT_EQ(inner.applies(), 3u);
    EXPECT_EQ(dedup.replays_suppressed(), 2u);

    // Seq 1 slid out of the 2-entry window: the retry re-applies (the
    // documented degradation outside the retained suffix).
    EXPECT_NE(send(1, 1), r1);
    EXPECT_EQ(inner.applies(), 4u);
}

TEST(DedupHandlerTest, FloodFromOtherClientsDoesNotBreakExactlyOnce) {
    CountingHandler inner;
    DedupHandler dedup(inner, /*max_clients=*/16, /*window_per_client=*/4);

    const Bytes original =
        dedup.handle(envelope_wrap(42, 7, to_bytes("the-mutation")));
    const std::size_t applies_after_original = inner.applies();

    // A flood from 15 other clients (window * clients worth of inserts,
    // many times over) — under the old global FIFO this evicted client
    // 42's entry and the retry below would re-apply.
    for (std::uint64_t client = 100; client < 115; ++client) {
        for (std::uint64_t seq = 1; seq <= 40; ++seq) {
            dedup.handle(envelope_wrap(client, seq, to_bytes("noise")));
        }
    }

    const Bytes retried =
        dedup.handle(envelope_wrap(42, 7, to_bytes("the-mutation")));
    EXPECT_EQ(retried, original);
    EXPECT_EQ(inner.applies(), applies_after_original + 15 * 40);
    EXPECT_GE(dedup.replays_suppressed(), 1u);
}

}  // namespace
}  // namespace mie::net
