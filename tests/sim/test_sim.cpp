// Simulation substrate tests: datasets, meters, energy model, transport.
#include <gtest/gtest.h>

#include "mie/server.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "sim/dataset.hpp"
#include "sim/device.hpp"
#include "sim/energy.hpp"
#include "sim/meter.hpp"

namespace mie::sim {
namespace {

TEST(FlickrLikeGenerator, Deterministic) {
    const FlickrLikeGenerator a(FlickrLikeParams{.seed = 3});
    const FlickrLikeGenerator b(FlickrLikeParams{.seed = 3});
    const auto oa = a.make(5);
    const auto ob = b.make(5);
    EXPECT_EQ(oa.text, ob.text);
    EXPECT_EQ(oa.label, ob.label);
    EXPECT_EQ(oa.image.pixels(), ob.image.pixels());
}

TEST(FlickrLikeGenerator, DifferentSeedsDiffer) {
    const FlickrLikeGenerator a(FlickrLikeParams{.seed = 3});
    const FlickrLikeGenerator b(FlickrLikeParams{.seed = 4});
    EXPECT_NE(a.make(5).image.pixels(), b.make(5).image.pixels());
}

TEST(FlickrLikeGenerator, ClassesCycleAndImagesSized) {
    const FlickrLikeGenerator gen(
        FlickrLikeParams{.num_classes = 4, .image_size = 48, .seed = 1});
    for (std::uint64_t id = 0; id < 8; ++id) {
        const auto object = gen.make(id);
        EXPECT_EQ(object.label, id % 4);
        EXPECT_EQ(object.image.width(), 48);
        EXPECT_EQ(object.image.height(), 48);
        EXPECT_FALSE(object.text.empty());
    }
}

TEST(FlickrLikeGenerator, SameClassImagesMoreSimilar) {
    const FlickrLikeGenerator gen(
        FlickrLikeParams{.num_classes = 4, .image_size = 48, .seed = 2});
    const auto a = gen.make(0);   // class 0
    const auto b = gen.make(4);   // class 0
    const auto c = gen.make(1);   // class 1
    auto pixel_distance = [](const features::Image& x,
                             const features::Image& y) {
        double sum = 0.0;
        for (int j = 0; j < x.height(); ++j) {
            for (int i = 0; i < x.width(); ++i) {
                const double d = x.at(i, j) - y.at(i, j);
                sum += d * d;
            }
        }
        return sum;
    };
    EXPECT_LT(pixel_distance(a.image, b.image),
              pixel_distance(a.image, c.image));
}

TEST(FlickrLikeGenerator, TagsCorrelateWithClass) {
    const FlickrLikeGenerator gen(FlickrLikeParams{
        .num_classes = 10, .vocab_size = 400, .class_vocab = 20, .seed = 9});
    // Two objects of the same class share more tags than cross-class pairs.
    auto tag_set = [&](std::uint64_t id) {
        std::set<std::string> tags;
        std::string text = gen.make(id).text;
        std::size_t pos = 0;
        while (pos < text.size()) {
            const auto space = text.find(' ', pos);
            tags.insert(text.substr(pos, space - pos));
            if (space == std::string::npos) break;
            pos = space + 1;
        }
        return tags;
    };
    auto overlap = [&](std::uint64_t x, std::uint64_t y) {
        const auto a = tag_set(x), b = tag_set(y);
        int shared = 0;
        for (const auto& t : a) shared += b.contains(t);
        return shared;
    };
    int same_class = 0, cross_class = 0;
    for (int i = 0; i < 10; ++i) {
        same_class += overlap(0 + 10 * i, 10 * i + 10);  // both class 0
        cross_class += overlap(0 + 10 * i, 10 * i + 5);  // class 0 vs 5
    }
    EXPECT_GT(same_class, cross_class);
}

TEST(HolidaysLikeGenerator, GroupStructure) {
    const HolidaysLikeGenerator gen(
        HolidaysLikeParams{.num_groups = 10, .group_size = 3, .seed = 4});
    const auto dataset = gen.generate();
    EXPECT_EQ(dataset.objects.size(), 30u);
    EXPECT_EQ(dataset.query_indices.size(), 10u);
    for (std::size_t g = 0; g < 10; ++g) {
        const auto& query = dataset.objects[dataset.query_indices[g]];
        EXPECT_EQ(query.label, g);
        // All members of the group share the label.
        for (std::size_t m = 0; m < 3; ++m) {
            EXPECT_EQ(dataset.objects[g * 3 + m].label, g);
        }
    }
}

TEST(CostMeter, TimesAndScales) {
    CostMeter meter(10.0);
    const int value = meter.timed(SubOp::kIndex, [] {
        volatile int x = 0;
        for (int i = 0; i < 100000; ++i) x += i;
        return 42;
    });
    EXPECT_EQ(value, 42);
    EXPECT_GT(meter.seconds(SubOp::kIndex), 0.0);

    CostMeter reference(1.0);
    reference.add_cpu_seconds(SubOp::kIndex, 1.0);
    meter.reset();
    meter.add_cpu_seconds(SubOp::kIndex, 1.0);
    EXPECT_DOUBLE_EQ(meter.seconds(SubOp::kIndex),
                     10.0 * reference.seconds(SubOp::kIndex));
}

TEST(CostMeter, ModeledSecondsAreNotScaled) {
    CostMeter meter(10.0);
    meter.add_modeled_seconds(SubOp::kNetwork, 2.0);
    EXPECT_DOUBLE_EQ(meter.seconds(SubOp::kNetwork), 2.0);
    EXPECT_DOUBLE_EQ(meter.total_seconds(), 2.0);
    EXPECT_DOUBLE_EQ(meter.cpu_seconds(), 0.0);
}

TEST(CostMeter, SubOpNames) {
    EXPECT_EQ(sub_op_name(SubOp::kEncrypt), "Encrypt");
    EXPECT_EQ(sub_op_name(SubOp::kNetwork), "Network");
    EXPECT_EQ(sub_op_name(SubOp::kIndex), "Index");
    EXPECT_EQ(sub_op_name(SubOp::kTrain), "Train");
}

TEST(Energy, IntegratesComponentCurrents) {
    const auto device = DeviceProfile::mobile();
    CostMeter meter(device.cpu_scale);
    meter.add_cpu_seconds(SubOp::kEncrypt, 36.0);      // scaled: 360 s
    meter.add_modeled_seconds(SubOp::kNetwork, 3600.0);  // 1 h radio
    const auto report = energy_of(meter, device);
    // CPU: 360 s * 1400 mA / 3600 = 140 mAh.
    EXPECT_NEAR(report.cpu_mah, 140.0, 1e-6);
    // WiFi: 3600 s * 350 mA / 3600 = 350 mAh.
    EXPECT_NEAR(report.network_mah, 350.0, 1e-6);
    EXPECT_GT(report.total_mah(), 490.0);
    EXPECT_FALSE(report.exceeds_battery(device));
}

TEST(Energy, DetectsBatteryExhaustion) {
    const auto device = DeviceProfile::mobile();
    CostMeter meter(device.cpu_scale);
    meter.add_cpu_seconds(SubOp::kTrain, 1000.0);  // 10000 s of mobile CPU
    const auto report = energy_of(meter, device);
    EXPECT_TRUE(report.exceeds_battery(device));
    // Desktop is mains powered: never exceeds.
    EXPECT_FALSE(report.exceeds_battery(DeviceProfile::desktop()));
}

TEST(DeviceProfile, MobileSlowerThanDesktop) {
    EXPECT_GT(DeviceProfile::mobile().cpu_scale,
              DeviceProfile::desktop().cpu_scale);
    EXPECT_LT(DeviceProfile::mobile().link.uplink_bytes_per_second,
              DeviceProfile::desktop().link.uplink_bytes_per_second);
    EXPECT_GT(DeviceProfile::mobile().battery_mah, 0.0);
}

TEST(MeteredTransport, ModelsRttAndBandwidth) {
    // Handler echoes a fixed 1000-byte response.
    class Echo final : public net::RequestHandler {
    public:
        Bytes handle(BytesView) override { return Bytes(1000, 7); }
    };
    Echo echo;
    net::LinkProfile link{.rtt_seconds = 0.05,
                          .uplink_bytes_per_second = 1000.0,
                          .downlink_bytes_per_second = 2000.0};
    net::MeteredTransport transport(echo, link);
    transport.call(Bytes(500, 1));
    // 0.05 + 500/1000 + 1000/2000 = 1.05 s.
    EXPECT_NEAR(transport.network_seconds(), 1.05, 1e-9);
    EXPECT_EQ(transport.bytes_up(), 500u);
    EXPECT_EQ(transport.bytes_down(), 1000u);
    EXPECT_EQ(transport.calls(), 1u);
    transport.reset_stats();
    EXPECT_DOUBLE_EQ(transport.network_seconds(), 0.0);
    EXPECT_EQ(transport.calls(), 0u);
}

TEST(MessageCodec, RoundtripAllTypes) {
    net::MessageWriter writer;
    writer.write_u8(7);
    writer.write_u32(123456);
    writer.write_u64(0xdeadbeefcafebabeULL);
    writer.write_f64(3.14159);
    writer.write_f32(2.5f);
    writer.write_bytes(Bytes{1, 2, 3});
    writer.write_string("hello");
    const Bytes wire = writer.take();

    net::MessageReader reader(wire);
    EXPECT_EQ(reader.read_u8(), 7);
    EXPECT_EQ(reader.read_u32(), 123456u);
    EXPECT_EQ(reader.read_u64(), 0xdeadbeefcafebabeULL);
    EXPECT_DOUBLE_EQ(reader.read_f64(), 3.14159);
    EXPECT_FLOAT_EQ(reader.read_f32(), 2.5f);
    EXPECT_EQ(reader.read_bytes(), (Bytes{1, 2, 3}));
    EXPECT_EQ(reader.read_string(), "hello");
    EXPECT_TRUE(reader.at_end());
}

TEST(MessageCodec, TruncationThrows) {
    net::MessageWriter writer;
    writer.write_u32(100);  // claims 100 bytes follow
    const Bytes wire = writer.take();
    net::MessageReader reader(wire);
    EXPECT_THROW(reader.read_bytes(), std::out_of_range);
    net::MessageReader reader2(Bytes{1});
    EXPECT_THROW(reader2.read_u32(), std::out_of_range);
}

}  // namespace
}  // namespace mie::sim
