// Fleet workload generator tests: Zipf distribution shape, script
// determinism (the soak harness's replay-exactly contract), live-set
// consistency (updates/removes always target objects that exist at that
// point of the schedule), session churn accounting, and device mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/fleet.hpp"
#include "util/rng.hpp"

namespace mie::sim {
namespace {

TEST(ZipfDistributionTest, MassSumsToOneAndDecreasesByRank) {
    const ZipfDistribution zipf(16, 1.1);
    double total = 0.0;
    for (std::size_t rank = 0; rank < zipf.num_ranks(); ++rank) {
        total += zipf.probability(rank);
        if (rank > 0) {
            EXPECT_LT(zipf.probability(rank), zipf.probability(rank - 1))
                << "rank " << rank;
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // s = 1.1 over 16 ranks: the hottest rank takes a dominant share.
    EXPECT_GT(zipf.probability(0), 0.25);
}

TEST(ZipfDistributionTest, SamplingIsDeterministicAndHotRankDominates) {
    const ZipfDistribution zipf(8, 1.1);
    SplitMix64 a(77);
    SplitMix64 b(77);
    std::vector<std::size_t> counts(8, 0);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t rank = zipf.sample(a);
        EXPECT_EQ(rank, zipf.sample(b));
        ASSERT_LT(rank, 8u);
        ++counts[rank];
    }
    EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), counts[0]);
    EXPECT_GT(counts[0], counts[7]);
}

TEST(ZipfDistributionTest, SingleRankAlwaysSamplesZero) {
    const ZipfDistribution zipf(1, 1.1);
    SplitMix64 rng(1);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

FleetParams small_params() {
    FleetParams params;
    params.seed = 42;
    params.num_users = 10'000;
    params.num_repositories = 4;
    params.active_sessions = 8;
    params.num_events = 200;
    params.setup_objects_per_repo = 3;
    return params;
}

bool events_equal(const FleetEvent& a, const FleetEvent& b) {
    return a.kind == b.kind && a.user_id == b.user_id && a.repo == b.repo &&
           a.object_id == b.object_id && a.mobile == b.mobile;
}

// The soak harness's whole reproducibility story rests on this: one seed,
// one script, bit-for-bit.
TEST(FleetScriptTest, SameSeedSameScript) {
    const FleetScript a = FleetScript::generate(small_params());
    const FleetScript b = FleetScript::generate(small_params());
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_TRUE(events_equal(a.events[i], b.events[i])) << "event " << i;
    }
    EXPECT_EQ(a.setup, b.setup);
    EXPECT_EQ(a.live, b.live);
    EXPECT_EQ(a.count_by_kind, b.count_by_kind);
    EXPECT_EQ(a.sessions_started, b.sessions_started);

    FleetParams other = small_params();
    other.seed = 43;
    const FleetScript c = FleetScript::generate(other);
    bool any_difference = false;
    for (std::size_t i = 0; i < std::min(a.events.size(), c.events.size());
         ++i) {
        if (!events_equal(a.events[i], c.events[i])) any_difference = true;
    }
    EXPECT_TRUE(any_difference);
}

// Replay the schedule against per-repo sets and confirm every update and
// remove targets a live object, ids never collide, and the script's
// declared end state matches the replayed one.
TEST(FleetScriptTest, EventsRespectLiveSetsAndEndStateMatches) {
    const FleetScript script = FleetScript::generate(small_params());
    ASSERT_EQ(script.events.size(), small_params().num_events);

    std::vector<std::set<std::uint64_t>> live(4);
    std::set<std::uint64_t> ever;
    for (std::uint32_t repo = 0; repo < 4; ++repo) {
        ASSERT_EQ(script.setup[repo].size(), 3u);
        for (const std::uint64_t id : script.setup[repo]) {
            EXPECT_TRUE(ever.insert(id).second) << "setup id reused";
            live[repo].insert(id);
        }
    }
    for (const FleetEvent& event : script.events) {
        ASSERT_LT(event.repo, 4u);
        ASSERT_LT(event.user_id, small_params().num_users);
        switch (event.kind) {
            case FleetOpKind::kAdd:
                EXPECT_TRUE(ever.insert(event.object_id).second)
                    << "added id reused";
                live[event.repo].insert(event.object_id);
                break;
            case FleetOpKind::kUpdate:
                EXPECT_EQ(live[event.repo].count(event.object_id), 1u);
                break;
            case FleetOpKind::kRemove:
                EXPECT_EQ(live[event.repo].erase(event.object_id), 1u);
                break;
            case FleetOpKind::kSearch:
                break;  // queries may probe ids that never existed
        }
    }
    for (std::uint32_t repo = 0; repo < 4; ++repo) {
        const std::set<std::uint64_t> declared(script.live[repo].begin(),
                                               script.live[repo].end());
        EXPECT_EQ(declared, live[repo]) << "repo " << repo;
    }

    std::size_t total = 0;
    for (const std::size_t count : script.count_by_kind) total += count;
    EXPECT_EQ(total, script.events.size());
    EXPECT_GT(script.count_by_kind[static_cast<std::size_t>(
                  FleetOpKind::kAdd)], 0u);
    EXPECT_GT(script.count_by_kind[static_cast<std::size_t>(
                  FleetOpKind::kSearch)], 0u);
}

TEST(FleetScriptTest, ChurnBoundsSessionCount) {
    FleetParams params = small_params();
    params.session_churn = 0.0;
    EXPECT_EQ(FleetScript::generate(params).sessions_started,
              params.active_sessions);
    params.session_churn = 1.0;
    EXPECT_EQ(FleetScript::generate(params).sessions_started,
              params.active_sessions + params.num_events);
}

TEST(FleetScriptTest, MobileFractionExtremesPinDeviceClass) {
    FleetParams params = small_params();
    params.mobile_fraction = 1.0;
    for (const FleetEvent& event : FleetScript::generate(params).events) {
        EXPECT_TRUE(event.mobile);
        EXPECT_EQ(fleet_device(event).name, DeviceProfile::mobile().name);
    }
    params.mobile_fraction = 0.0;
    for (const FleetEvent& event : FleetScript::generate(params).events) {
        EXPECT_FALSE(event.mobile);
        EXPECT_EQ(fleet_device(event).name, DeviceProfile::desktop().name);
    }
}

TEST(FleetScriptTest, RemovesCanBeDisabled) {
    FleetParams params = small_params();
    params.remove_weight = 0.0;
    params.update_weight = 0.0;
    const FleetScript script = FleetScript::generate(params);
    EXPECT_EQ(script.count_by_kind[static_cast<std::size_t>(
                  FleetOpKind::kRemove)], 0u);
    EXPECT_EQ(script.count_by_kind[static_cast<std::size_t>(
                  FleetOpKind::kUpdate)], 0u);
}

TEST(FleetObjectIdTest, RepoTagKeepsIdsGloballyUnique) {
    EXPECT_NE(fleet_object_id(0, 7), fleet_object_id(1, 7));
    EXPECT_EQ(fleet_object_id(2, 7) >> 48, 3u);  // repo + 1 in the tag
    EXPECT_EQ(fleet_object_id(2, 7) & 0xffffffffffffull, 7u);
}

}  // namespace
}  // namespace mie::sim
