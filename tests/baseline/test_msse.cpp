// End-to-end MSSE baseline tests (Fig. 7): untrained storage, client-side
// training, PRF-labelled index, counter locking, and ranked search.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/msse_client.hpp"
#include "baseline/msse_server.hpp"
#include "sim/dataset.hpp"

namespace mie::baseline {
namespace {

class MsseEndToEnd : public ::testing::Test {
protected:
    MsseEndToEnd()
        : transport_(server_, net::LinkProfile::loopback()),
          client_(std::make_unique<MsseClient>(transport_, "repo",
                                               to_bytes("msse-entropy"),
                                               to_bytes("user-1"))),
          generator_(sim::FlickrLikeParams{.num_classes = 5,
                                           .image_size = 64,
                                           .seed = 21}) {
        client_->train_params.tree_branch = 5;
        client_->train_params.tree_depth = 2;
        client_->train_params.max_training_samples = 2000;
    }

    void load_and_train(std::size_t count) {
        client_->create_repository();
        for (const auto& object : generator_.make_batch(0, count)) {
            client_->update(object);
        }
        client_->train();
    }

    MsseServer server_;
    net::MeteredTransport transport_;
    std::unique_ptr<MsseClient> client_;
    sim::FlickrLikeGenerator generator_;
};

TEST_F(MsseEndToEnd, UntrainedUpdatesStoreBlobs) {
    client_->create_repository();
    client_->update(generator_.make(0));
    client_->update(generator_.make(1));
    const auto stats = server_.stats("repo");
    EXPECT_EQ(stats.num_objects, 2u);
    EXPECT_EQ(stats.index_entries, 0u);  // no index before train
}

TEST_F(MsseEndToEnd, UntrainedSearchDownloadsAndRanksLocally) {
    client_->create_repository();
    for (const auto& object : generator_.make_batch(0, 5)) {
        client_->update(object);
    }
    const auto results = client_->search(generator_.make(2), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 2u);
}

TEST_F(MsseEndToEnd, TrainBuildsClientSideIndex) {
    load_and_train(8);
    const auto stats = server_.stats("repo");
    EXPECT_GT(stats.index_entries, 0u);
    // Training happened on the client: the Train bucket is non-zero,
    // unlike MIE's.
    EXPECT_GT(client_->meter().seconds(sim::SubOp::kTrain), 0.0);
    EXPECT_TRUE(client_->trained());
}

TEST_F(MsseEndToEnd, TrainedSearchFindsSelf) {
    load_and_train(10);
    for (std::uint64_t id : {0ULL, 3ULL, 7ULL}) {
        const auto results = client_->search(generator_.make(id), 3);
        ASSERT_FALSE(results.empty()) << id;
        EXPECT_EQ(results.front().object_id, id);
    }
}

TEST_F(MsseEndToEnd, TrainedUpdateIsSearchable) {
    load_and_train(6);
    client_->update(generator_.make(50));
    const auto results = client_->search(generator_.make(50), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 50u);
}

TEST_F(MsseEndToEnd, ResultsDecryptCorrectly) {
    load_and_train(4);
    const auto results = client_->search(generator_.make(1), 1);
    ASSERT_FALSE(results.empty());
    const auto decrypted = client_->decrypt_result(results.front());
    EXPECT_EQ(decrypted.id, 1u);
    EXPECT_EQ(decrypted.text, generator_.make(1).text);
}

TEST_F(MsseEndToEnd, RemoveDropsObjectAndPostings) {
    load_and_train(6);
    const auto before = server_.stats("repo");
    client_->remove(2);
    const auto after = server_.stats("repo");
    EXPECT_EQ(after.num_objects, before.num_objects - 1);
    EXPECT_LT(after.index_entries, before.index_entries);
    for (const auto& result : client_->search(generator_.make(2), 5)) {
        EXPECT_NE(result.object_id, 2u);
    }
}

TEST_F(MsseEndToEnd, CounterLockBlocksConcurrentWriter) {
    load_and_train(4);
    // First writer takes the counter lock mid-update; a second writer's
    // trained update must fail — the coordination penalty MIE avoids.
    net::MessageWriter lock_request;
    lock_request.write_u8(static_cast<std::uint8_t>(MsseOp::kGetCtrs));
    lock_request.write_string("repo");
    lock_request.write_u8(1);
    transport_.call(lock_request.take());
    EXPECT_TRUE(server_.stats("repo").counters_locked);

    net::MeteredTransport transport2(server_, net::LinkProfile::loopback());
    MsseClient writer2(transport2, "repo", to_bytes("msse-entropy"),
                       to_bytes("user-2"));
    // writer2 shares keys but is untrained locally; force the trained path
    // by training it (train is allowed: StoreIndex releases the lock, so
    // check the lock conflict via the raw RPC instead).
    net::MessageWriter second_lock;
    second_lock.write_u8(static_cast<std::uint8_t>(MsseOp::kGetCtrs));
    second_lock.write_string("repo");
    second_lock.write_u8(1);
    EXPECT_THROW(transport2.call(second_lock.take()), CounterLockedError);
}

TEST_F(MsseEndToEnd, UpdateReleasesCounterLock) {
    load_and_train(4);
    client_->update(generator_.make(99));  // locks and releases internally
    EXPECT_FALSE(server_.stats("repo").counters_locked);
}

TEST_F(MsseEndToEnd, MeterShowsClientSideCosts) {
    load_and_train(5);
    const auto& meter = client_->meter();
    EXPECT_GT(meter.seconds(sim::SubOp::kIndex), 0.0);
    EXPECT_GT(meter.seconds(sim::SubOp::kEncrypt), 0.0);
    EXPECT_GT(meter.seconds(sim::SubOp::kTrain), 0.0);
}

TEST_F(MsseEndToEnd, FrequencyCiphertextsDifferPerTermOccurrence) {
    // Index values are IND-CPA encrypted: the same frequency value under
    // different terms/counters yields different ciphertexts. We inspect
    // wire-visible entries via a crafted search: all label lookups succeed,
    // so the index holds distinct ciphertext bytes (smoke-checked through
    // stats and search behaviour).
    load_and_train(6);
    EXPECT_GT(server_.stats("repo").index_entries, 10u);
}

}  // namespace
}  // namespace mie::baseline
