// End-to-end Hom-MSSE baseline tests (Fig. 8): Paillier-encrypted
// frequencies/counters, lock-free homomorphic counter increments, and
// client-side score decryption + fusion.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/hom_msse_client.hpp"
#include "baseline/hom_msse_server.hpp"
#include "sim/dataset.hpp"

namespace mie::baseline {
namespace {

HomMsseParams fast_params() {
    HomMsseParams params;
    params.tree_branch = 5;
    params.tree_depth = 2;
    params.max_training_samples = 2000;
    params.paillier_bits = 256;  // fast for tests; semantics are size-free
    return params;
}

class HomMsseEndToEnd : public ::testing::Test {
protected:
    HomMsseEndToEnd()
        : transport_(server_, net::LinkProfile::loopback()),
          client_(std::make_unique<HomMsseClient>(
              transport_, "repo", to_bytes("hom-entropy"),
              to_bytes("user-1"), fast_params())),
          generator_(sim::FlickrLikeParams{.num_classes = 5,
                                           .image_size = 64,
                                           .seed = 31}) {}

    void load_and_train(std::size_t count) {
        client_->create_repository();
        for (const auto& object : generator_.make_batch(0, count)) {
            client_->update(object);
        }
        client_->train();
    }

    HomMsseServer server_;
    net::MeteredTransport transport_;
    std::unique_ptr<HomMsseClient> client_;
    sim::FlickrLikeGenerator generator_;
};

TEST_F(HomMsseEndToEnd, UntrainedStorageAndLinearSearch) {
    client_->create_repository();
    for (const auto& object : generator_.make_batch(0, 4)) {
        client_->update(object);
    }
    EXPECT_EQ(server_.stats("repo").num_objects, 4u);
    const auto results = client_->search(generator_.make(1), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 1u);
}

TEST_F(HomMsseEndToEnd, TrainUploadsEncryptedCountersAndIndex) {
    load_and_train(6);
    const auto stats = server_.stats("repo");
    EXPECT_GT(stats.index_entries, 0u);
    EXPECT_GT(stats.counter_entries, 0u);
    EXPECT_GT(client_->meter().seconds(sim::SubOp::kTrain), 0.0);
}

TEST_F(HomMsseEndToEnd, TrainedSearchFindsSelf) {
    load_and_train(8);
    for (std::uint64_t id : {0ULL, 4ULL}) {
        const auto results = client_->search(generator_.make(id), 3);
        ASSERT_FALSE(results.empty()) << id;
        EXPECT_EQ(results.front().object_id, id);
    }
}

TEST_F(HomMsseEndToEnd, TrainedUpdateIncrementsCountersHomomorphically) {
    load_and_train(4);
    const auto before = server_.stats("repo");
    client_->update(generator_.make(77));
    const auto after = server_.stats("repo");
    EXPECT_EQ(after.num_objects, before.num_objects + 1);
    EXPECT_GT(after.index_entries, before.index_entries);
    // New object searchable without retraining or counter locks.
    const auto results = client_->search(generator_.make(77), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 77u);
}

TEST_F(HomMsseEndToEnd, PaddingHidesRequestSizes) {
    load_and_train(4);
    // With padding 1.6x, counter requests carry more term ids than the
    // object has terms; padding ids must not pollute the server counters
    // in a way that breaks subsequent searches.
    client_->params.counter_padding = 2.0;
    client_->update(generator_.make(88));
    const auto results = client_->search(generator_.make(88), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 88u);
}

TEST_F(HomMsseEndToEnd, ResultsDecryptCorrectly) {
    load_and_train(4);
    const auto results = client_->search(generator_.make(2), 1);
    ASSERT_FALSE(results.empty());
    const auto decrypted = client_->decrypt_result(results.front());
    EXPECT_EQ(decrypted.id, 2u);
    EXPECT_EQ(decrypted.text, generator_.make(2).text);
}

TEST_F(HomMsseEndToEnd, RemoveDropsPostings) {
    load_and_train(5);
    const auto before = server_.stats("repo");
    client_->remove(1);
    const auto after = server_.stats("repo");
    EXPECT_EQ(after.num_objects, before.num_objects - 1);
    EXPECT_LT(after.index_entries, before.index_entries);
}

TEST_F(HomMsseEndToEnd, EncryptDominatesClientCost) {
    load_and_train(5);
    const auto& meter = client_->meter();
    // The defining Hom-MSSE property (Figs. 2-3): homomorphic encryption
    // dwarfs the other client-side sub-operations.
    EXPECT_GT(meter.seconds(sim::SubOp::kEncrypt),
              meter.seconds(sim::SubOp::kIndex));
}

}  // namespace
}  // namespace mie::baseline
