// Soak harness tests: a small chaos-enabled run keeps all four invariant
// oracles green, the same seed reproduces the same oracle outcomes and
// state digest, and a chaos-free run reports no failovers or recoveries.
//
// These are the tier-1 versions of the nightly soak: the event counts
// are small enough for CI, but the full machinery runs — reactor-hosted
// nodes over real TCP, fault-injected client links, a follower power
// loss, and a primary kill with failover and re-replication.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "soak/harness.hpp"

namespace mie::soak {
namespace {

namespace fs = std::filesystem;

class SoakTest : public ::testing::Test {
protected:
    SoakTest()
        : dir_(fs::temp_directory_path() /
               ("mie_soak_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~SoakTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    SoakOptions small_options(const std::string& run) const {
        SoakOptions options;
        options.root_dir = dir_ / run;
        options.seed = 7040;
        options.num_shards = 2;
        options.epochs = 2;
        options.fleet.num_events = 10;  // per epoch
        options.fleet.num_repositories = 4;
        options.fleet.active_sessions = 8;
        options.fleet.setup_objects_per_repo = 3;
        options.search_probes = 2;
        return options;
    }

    fs::path dir_;
};

TEST_F(SoakTest, ChaosEpochKeepsAllOraclesGreen) {
    const SoakReport report = run_soak(small_options("chaos"));

    EXPECT_TRUE(report.all_oracles_green());
    ASSERT_EQ(report.epochs.size(), 2u);
    for (const EpochReport& epoch : report.epochs) {
        EXPECT_TRUE(epoch.oracles.exactly_once);
        EXPECT_TRUE(epoch.oracles.scatter_gather);
        EXPECT_TRUE(epoch.oracles.offsets_monotone);
        EXPECT_TRUE(epoch.oracles.secrets_redacted);
        EXPECT_EQ(epoch.operations, 10u);
        EXPECT_EQ(epoch.acked, epoch.operations);
    }

    // Every workload op was acknowledged despite the chaos.
    EXPECT_EQ(report.operations, 20u);
    EXPECT_EQ(report.acked, 20u);

    // The chaos actually happened: one follower power loss (a recovery)
    // and one primary kill (a failover plus a replacement bootstrap).
    EXPECT_EQ(report.failovers, 1u);
    EXPECT_EQ(report.recoveries, 2u);

    EXPECT_GT(report.throughput_ops_per_sec, 0.0);
    EXPECT_GE(report.p95_ms, report.p50_ms);
    EXPECT_GE(report.p99_ms, report.p95_ms);
    EXPECT_NE(report.state_digest, 0u);
    EXPECT_GT(report.mobile_energy_mah, 0.0);
}

// The replay-exactly contract: two runs from the same seed must agree on
// every deterministic counter and on the final state digest. (Latency
// fields are wall clock and deliberately excluded.)
TEST_F(SoakTest, SameSeedReproducesOracleOutcomesAndStateDigest) {
    const SoakReport a = run_soak(small_options("run-a"));
    const SoakReport b = run_soak(small_options("run-b"));

    EXPECT_EQ(a.state_digest, b.state_digest);
    EXPECT_EQ(a.operations, b.operations);
    EXPECT_EQ(a.acked, b.acked);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.replays_suppressed, b.replays_suppressed);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].operations, b.epochs[i].operations);
        EXPECT_EQ(a.epochs[i].retries, b.epochs[i].retries);
        EXPECT_EQ(a.epochs[i].failovers, b.epochs[i].failovers);
        EXPECT_EQ(a.epochs[i].recoveries, b.epochs[i].recoveries);
        EXPECT_EQ(a.epochs[i].oracles.all_green(),
                  b.epochs[i].oracles.all_green());
    }
}

TEST_F(SoakTest, DifferentSeedChangesTheStateDigest) {
    SoakOptions other = small_options("other-seed");
    other.seed = 7041;
    const SoakReport a = run_soak(small_options("base-seed"));
    const SoakReport b = run_soak(other);
    EXPECT_TRUE(a.all_oracles_green());
    EXPECT_TRUE(b.all_oracles_green());
    EXPECT_NE(a.state_digest, b.state_digest);
}

// With chaos off the harness must not invent any: clean links, no
// failovers, no recoveries — and the oracles hold trivially.
TEST_F(SoakTest, QuietRunReportsNoChaos) {
    SoakOptions options = small_options("quiet");
    options.fault_rate = 0.0;
    options.kill_primary = false;
    options.power_loss_follower = false;
    options.epochs = 1;

    const SoakReport report = run_soak(options);
    EXPECT_TRUE(report.all_oracles_green());
    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.failovers, 0u);
    EXPECT_EQ(report.recoveries, 0u);
    EXPECT_EQ(report.replays_suppressed, 0u);
}

TEST_F(SoakTest, JsonReportCarriesSchemaVersionAndOracles) {
    SoakOptions options = small_options("json");
    options.epochs = 1;
    options.fleet.num_events = 6;
    const SoakReport report = run_soak(options);
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"soak\""), std::string::npos);
    EXPECT_NE(json.find("\"all_oracles_green\": true"), std::string::npos);
    EXPECT_NE(json.find("\"state_digest\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace mie::soak
