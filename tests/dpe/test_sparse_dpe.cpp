// Sparse-DPE tests: PRF determinism, equality-only distance (t = 0), and
// token unlinkability across keys.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dpe/sparse_dpe.hpp"

namespace mie::dpe {
namespace {

TEST(SparseDpe, DeterministicPerKey) {
    const auto key = SparseDpe::keygen(to_bytes("entropy"));
    const SparseDpe a(key), b(key);
    EXPECT_EQ(a.encode("cloud"), b.encode("cloud"));
    EXPECT_EQ(a.encode("cloud").size(), SparseDpe::kTokenSize);
}

TEST(SparseDpe, EqualKeywordsHaveZeroDistance) {
    const SparseDpe dpe(SparseDpe::keygen(to_bytes("k")));
    EXPECT_EQ(SparseDpe::distance(dpe.encode("privacy"),
                                  dpe.encode("privacy")),
              0.0);
}

TEST(SparseDpe, OneCharApartIsMaximallyDistant) {
    // t = 0: no similarity is preserved, even for near-identical keywords.
    const SparseDpe dpe(SparseDpe::keygen(to_bytes("k")));
    EXPECT_EQ(SparseDpe::distance(dpe.encode("privacy"),
                                  dpe.encode("privacz")),
              1.0);
    EXPECT_EQ(SparseDpe::distance(dpe.encode("a"), dpe.encode("b")), 1.0);
}

TEST(SparseDpe, TokensAreUnlinkableAcrossKeys) {
    const SparseDpe a(SparseDpe::keygen(to_bytes("key-a")));
    const SparseDpe b(SparseDpe::keygen(to_bytes("key-b")));
    EXPECT_NE(a.encode("word"), b.encode("word"));
}

TEST(SparseDpe, NoCollisionsOnVocabulary) {
    const SparseDpe dpe(SparseDpe::keygen(to_bytes("vocab")));
    std::set<Bytes> tokens;
    for (int i = 0; i < 5000; ++i) {
        tokens.insert(dpe.encode("word" + std::to_string(i)));
    }
    EXPECT_EQ(tokens.size(), 5000u);
}

TEST(SparseDpe, EmptyKeywordIsEncodable) {
    const SparseDpe dpe(SparseDpe::keygen(to_bytes("e")));
    EXPECT_EQ(dpe.encode("").size(), SparseDpe::kTokenSize);
    EXPECT_NE(dpe.encode(""), dpe.encode("x"));
}

TEST(SparseDpe, KeySerializationRoundtrip) {
    const auto key = SparseDpe::keygen(to_bytes("roundtrip"));
    const auto parsed = SparseDpeKey::deserialize(key.serialize());
    EXPECT_EQ(SparseDpe(parsed).encode("w"), SparseDpe(key).encode("w"));
}

TEST(SparseDpe, RejectsEmptyKey) {
    EXPECT_THROW(SparseDpe(SparseDpeKey{}), std::invalid_argument);
}

}  // namespace
}  // namespace mie::dpe
