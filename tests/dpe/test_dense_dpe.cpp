// Dense-DPE property tests: determinism, key expansion, and — the core
// contract of Definition 1 — preservation of Euclidean distances below the
// threshold t and saturation above it.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "crypto/drbg.hpp"
#include "dpe/dense_dpe.hpp"
#include "util/rng.hpp"

namespace mie::dpe {
namespace {

using features::FeatureVec;

// Slope-1 delta: normalized Hamming ~= Euclidean distance for d < t.
const double kUnitSlopeDelta = std::sqrt(2.0 / std::numbers::pi);

FeatureVec random_unit_vector(SplitMix64& rng, std::size_t dims) {
    FeatureVec v(dims);
    double norm_sq = 0.0;
    for (auto& x : v) {
        // Crude Gaussian via sum of uniforms is fine for test geometry.
        double g = 0.0;
        for (int i = 0; i < 12; ++i) g += rng.next_double();
        x = static_cast<float>(g - 6.0);
        norm_sq += static_cast<double>(x) * x;
    }
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& x : v) x = static_cast<float>(x * inv);
    return v;
}

/// Returns a vector at exact Euclidean distance `d` from `p`.
FeatureVec at_distance(SplitMix64& rng, const FeatureVec& p, double d) {
    const FeatureVec direction = random_unit_vector(rng, p.size());
    FeatureVec q = p;
    for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] += static_cast<float>(d * direction[i]);
    }
    return q;
}

TEST(DenseDpe, KeygenValidatesParameters) {
    const auto entropy = to_bytes("e");
    EXPECT_THROW(DenseDpe::keygen(entropy, 0, 64, 1.0), std::invalid_argument);
    EXPECT_THROW(DenseDpe::keygen(entropy, 64, 0, 1.0), std::invalid_argument);
    EXPECT_THROW(DenseDpe::keygen(entropy, 64, 64, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(DenseDpe::keygen(entropy, 64, 64, -1.0),
                 std::invalid_argument);
}

TEST(DenseDpe, EncodingIsDeterministicPerKey) {
    const auto key = DenseDpe::keygen(to_bytes("seed"), 16, 128, 1.0);
    const DenseDpe a(key), b(key);
    SplitMix64 rng(1);
    const FeatureVec p = random_unit_vector(rng, 16);
    EXPECT_EQ(a.encode(p), b.encode(p));
    EXPECT_EQ(a.encode(p).size(), 128u);
}

TEST(DenseDpe, DifferentSeedsGiveDifferentEncodings) {
    const auto k1 = DenseDpe::keygen(to_bytes("seed-1"), 16, 128, 1.0);
    const auto k2 = DenseDpe::keygen(to_bytes("seed-2"), 16, 128, 1.0);
    SplitMix64 rng(2);
    const FeatureVec p = random_unit_vector(rng, 16);
    const BitCode e1 = DenseDpe(k1).encode(p);
    const BitCode e2 = DenseDpe(k2).encode(p);
    // Unrelated keys: encodings look independent (Hamming ~ 0.5).
    EXPECT_GT(e1.normalized_hamming(e2), 0.3);
}

TEST(DenseDpe, IdenticalPlaintextsHaveZeroDistance) {
    const auto key = DenseDpe::keygen(to_bytes("zero"), 32, 256, 1.0);
    const DenseDpe dpe(key);
    SplitMix64 rng(3);
    const FeatureVec p = random_unit_vector(rng, 32);
    EXPECT_EQ(DenseDpe::distance(dpe.encode(p), dpe.encode(p)), 0.0);
}

TEST(DenseDpe, KeyIsCompactAndSerializable) {
    const auto key = DenseDpe::keygen(to_bytes("entropy"), 64, 64, 0.5);
    const Bytes wire = key.serialize();
    // O(1) in (N, M): the key is a seed plus parameters, not an M x N
    // matrix (which would be 64*64*4 = 16 KiB).
    EXPECT_LT(wire.size(), 100u);
    const auto parsed = DenseDpeKey::deserialize(wire);
    EXPECT_EQ(parsed.seed, key.seed);
    EXPECT_EQ(parsed.input_dims, key.input_dims);
    EXPECT_EQ(parsed.output_bits, key.output_bits);
    EXPECT_DOUBLE_EQ(parsed.delta, key.delta);
    // Same wire key -> same encoder.
    SplitMix64 rng(4);
    const FeatureVec p = random_unit_vector(rng, 64);
    EXPECT_EQ(DenseDpe(key).encode(p), DenseDpe(parsed).encode(p));
}

TEST(DenseDpe, ThresholdScalesWithDelta) {
    const auto k1 = DenseDpe::keygen(to_bytes("t"), 8, 8, 0.5);
    const auto k2 = DenseDpe::keygen(to_bytes("t"), 8, 8, 1.0);
    EXPECT_NEAR(DenseDpe::threshold(k2) / DenseDpe::threshold(k1), 2.0, 1e-9);
    // With the unit-slope delta the threshold is 0.5, as in the paper's
    // prototype (t = 0.5).
    const auto k3 = DenseDpe::keygen(to_bytes("t"), 8, 8, kUnitSlopeDelta);
    EXPECT_NEAR(DenseDpe::threshold(k3), 0.5, 1e-9);
}

// The core DPE property, checked over a sweep of plaintext distances: the
// encoded (normalized Hamming) distance tracks the plaintext (Euclidean)
// distance below the threshold and stays near the saturation value above.
class DenseDpeDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DenseDpeDistanceSweep, PreservesDistanceBelowThreshold) {
    const double dp = GetParam();
    constexpr std::size_t kDims = 64;
    constexpr std::size_t kBits = 4096;  // large M reduces estimator noise
    const auto key =
        DenseDpe::keygen(to_bytes("sweep"), kDims, kBits, kUnitSlopeDelta);
    const DenseDpe dpe(key);

    SplitMix64 rng(42 + static_cast<std::uint64_t>(dp * 1000));
    double total = 0.0;
    constexpr int kTrials = 8;
    for (int trial = 0; trial < kTrials; ++trial) {
        const FeatureVec p = random_unit_vector(rng, kDims);
        const FeatureVec q = at_distance(rng, p, dp);
        total += DenseDpe::distance(dpe.encode(p), dpe.encode(q));
    }
    const double de = total / kTrials;

    if (dp < 0.45) {
        // Below threshold: encoded distance approximates plaintext distance.
        EXPECT_NEAR(de, dp, 0.05) << "dp=" << dp;
    } else {
        // Above threshold: saturates around 1/2 (with the documented
        // overshoot hump just past the threshold, cf. Table II's 0.59).
        EXPECT_GT(de, 0.40) << "dp=" << dp;
        EXPECT_LT(de, 0.68) << "dp=" << dp;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DenseDpeDistanceSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.4,
                                           0.5, 0.7, 1.0, 1.5, 2.0));

TEST(DenseDpe, MonotoneBelowThreshold) {
    constexpr std::size_t kDims = 64;
    const auto key =
        DenseDpe::keygen(to_bytes("mono"), kDims, 4096, kUnitSlopeDelta);
    const DenseDpe dpe(key);
    SplitMix64 rng(7);
    const FeatureVec p = random_unit_vector(rng, kDims);
    double previous = -1.0;
    for (double dp : {0.0, 0.1, 0.2, 0.3, 0.4}) {
        double total = 0.0;
        for (int trial = 0; trial < 8; ++trial) {
            total += DenseDpe::distance(dpe.encode(p),
                                        dpe.encode(at_distance(rng, p, dp)));
        }
        const double de = total / 8;
        EXPECT_GT(de, previous) << "dp=" << dp;
        previous = de;
    }
}

TEST(DenseDpe, FarDistancesLeakNothingBeyondSaturation) {
    // Distances 1.5 and 3.0 (both far above t) must be statistically
    // indistinguishable in encoded space: the adversary cannot rank them.
    constexpr std::size_t kDims = 64;
    const auto key =
        DenseDpe::keygen(to_bytes("sat"), kDims, 4096, kUnitSlopeDelta);
    const DenseDpe dpe(key);
    SplitMix64 rng(8);
    double sum_near = 0.0, sum_far = 0.0;
    constexpr int kTrials = 16;
    for (int trial = 0; trial < kTrials; ++trial) {
        const FeatureVec p = random_unit_vector(rng, kDims);
        sum_near += DenseDpe::distance(dpe.encode(p),
                                       dpe.encode(at_distance(rng, p, 1.5)));
        sum_far += DenseDpe::distance(dpe.encode(p),
                                      dpe.encode(at_distance(rng, p, 3.0)));
    }
    EXPECT_NEAR(sum_near / kTrials, sum_far / kTrials, 0.05);
}

TEST(DenseDpe, EncodeRejectsWrongDimension) {
    const auto key = DenseDpe::keygen(to_bytes("dim"), 8, 64, 1.0);
    const DenseDpe dpe(key);
    EXPECT_THROW(dpe.encode(FeatureVec(7, 0.0f)), std::invalid_argument);
}

TEST(BitCode, SetGetAndHamming) {
    BitCode a(130), b(130);
    a.set(0, true);
    a.set(64, true);
    a.set(129, true);
    EXPECT_TRUE(a.get(0));
    EXPECT_FALSE(a.get(1));
    EXPECT_EQ(a.hamming_distance(b), 3u);
    b.set(0, true);
    EXPECT_EQ(a.hamming_distance(b), 2u);
    EXPECT_DOUBLE_EQ(a.normalized_hamming(b), 2.0 / 130.0);
    a.set(0, false);
    EXPECT_EQ(a.hamming_distance(b), 3u);
}

TEST(BitCode, SizeMismatchThrows) {
    BitCode a(10), b(11);
    EXPECT_THROW(a.hamming_distance(b), std::invalid_argument);
}

TEST(BitCode, SerializeRoundtrip) {
    BitCode a(77);
    a.set(0, true);
    a.set(76, true);
    a.set(33, true);
    const BitCode b = BitCode::deserialize(a.serialize());
    EXPECT_EQ(a, b);
    EXPECT_THROW(BitCode::deserialize(Bytes(4, 0)), std::out_of_range);
}

}  // namespace
}  // namespace mie::dpe
