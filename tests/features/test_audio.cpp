// Audio feature-extraction tests: spectral descriptors must be stable per
// signal, discriminate frequencies, and feed the dense pipeline (64-dim,
// unit norm).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "features/audio.hpp"
#include "util/rng.hpp"

namespace mie::features {
namespace {

std::vector<float> tone(double hz, std::size_t samples,
                        double sample_rate = 8000.0, double phase = 0.0) {
    std::vector<float> wave(samples);
    for (std::size_t n = 0; n < samples; ++n) {
        wave[n] = static_cast<float>(
            0.5 * std::sin(2.0 * std::numbers::pi * hz * n / sample_rate +
                           phase));
    }
    return wave;
}

TEST(AudioFeatures, DescriptorShape) {
    const auto wave = tone(440.0, 4096);
    const auto descriptors = extract_audio_descriptors(wave);
    ASSERT_FALSE(descriptors.empty());
    for (const auto& d : descriptors) {
        ASSERT_EQ(d.size(), audio_descriptor_dims(AudioFeatureParams{}));
        EXPECT_NEAR(norm(d), 1.0, 1e-4);
    }
    // frame/hop arithmetic: (4096 - 512) / 256 + 1 frames.
    EXPECT_EQ(descriptors.size(), (4096 - 512) / 256 + 1);
}

TEST(AudioFeatures, EmptyAndShortInputs) {
    EXPECT_TRUE(extract_audio_descriptors({}).empty());
    const auto short_wave = tone(440.0, 100);
    EXPECT_TRUE(extract_audio_descriptors(short_wave).empty());
}

TEST(AudioFeatures, SilenceYieldsNoDescriptors) {
    const std::vector<float> silence(4096, 0.0f);
    EXPECT_TRUE(extract_audio_descriptors(silence).empty());
}

TEST(AudioFeatures, Deterministic) {
    const auto wave = tone(300.0, 2048);
    EXPECT_EQ(extract_audio_descriptors(wave),
              extract_audio_descriptors(wave));
}

TEST(AudioFeatures, DiscriminatesFrequencies) {
    // Same tone (different phase) must be much closer in descriptor space
    // than a different tone.
    const auto a1 = extract_audio_descriptors(tone(220.0, 4096));
    const auto a2 = extract_audio_descriptors(tone(220.0, 4096, 8000.0, 1.0));
    const auto b = extract_audio_descriptors(tone(1760.0, 4096));
    ASSERT_FALSE(a1.empty());
    double same = 0.0, different = 0.0;
    const std::size_t count = std::min({a1.size(), a2.size(), b.size()});
    for (std::size_t i = 0; i < count; ++i) {
        same += euclidean_distance(a1[i], a2[i]);
        different += euclidean_distance(a1[i], b[i]);
    }
    EXPECT_LT(same, different * 0.5);
}

TEST(AudioFeatures, DeltasCaptureChange) {
    // A frequency sweep has larger delta components than a steady tone.
    constexpr std::size_t kSamples = 8192;
    std::vector<float> sweep(kSamples);
    for (std::size_t n = 0; n < kSamples; ++n) {
        const double t = static_cast<double>(n) / 8000.0;
        const double hz = 200.0 + 1500.0 * t;  // chirp
        sweep[n] = static_cast<float>(0.5 * std::sin(
            2.0 * std::numbers::pi * hz * t));
    }
    const AudioFeatureParams params;
    const auto steady = extract_audio_descriptors(tone(440.0, kSamples));
    const auto chirped = extract_audio_descriptors(sweep);
    auto delta_energy = [&](const std::vector<FeatureVec>& descriptors) {
        double total = 0.0;
        for (const auto& d : descriptors) {
            for (std::size_t b = params.bands; b < 2 * params.bands; ++b) {
                total += static_cast<double>(d[b]) * d[b];
            }
        }
        return total / static_cast<double>(descriptors.size());
    };
    EXPECT_GT(delta_energy(chirped), delta_energy(steady) * 2.0);
}

TEST(AudioFeatures, ParamValidation) {
    AudioFeatureParams params;
    params.bands = 0;
    EXPECT_TRUE(extract_audio_descriptors(tone(440.0, 4096), params).empty());
}

}  // namespace
}  // namespace mie::features
