// Feature-extraction tests: images, integral images, dense pyramid, U-SURF.
#include <gtest/gtest.h>

#include <cmath>

#include "features/feature.hpp"
#include "features/image.hpp"
#include "features/surf.hpp"
#include "util/rng.hpp"

namespace mie::features {
namespace {

Image noise_image(int w, int h, std::uint64_t seed) {
    SplitMix64 rng(seed);
    Image img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            img.at(x, y) = static_cast<float>(rng.next_double());
        }
    }
    return img;
}

TEST(Feature, DistancesAndNorm) {
    const FeatureVec a = {1.0f, 0.0f, 0.0f};
    const FeatureVec b = {0.0f, 1.0f, 0.0f};
    EXPECT_DOUBLE_EQ(squared_distance(a, b), 2.0);
    EXPECT_DOUBLE_EQ(euclidean_distance(a, b), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(norm(a), 1.0);
    EXPECT_THROW(squared_distance(a, FeatureVec{1.0f}),
                 std::invalid_argument);
}

TEST(Feature, NormalizeMakesUnitNorm) {
    FeatureVec v = {3.0f, 4.0f};
    normalize(v);
    EXPECT_NEAR(norm(v), 1.0, 1e-6);
    EXPECT_NEAR(v[0], 0.6, 1e-6);
    FeatureVec zero = {0.0f, 0.0f};
    normalize(zero);  // must not divide by zero
    EXPECT_DOUBLE_EQ(norm(zero), 0.0);
}

TEST(Image, ConstructionAndAccess) {
    Image img(4, 3);
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    img.at(2, 1) = 0.5f;
    EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
    EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
    EXPECT_THROW(Image(0, 5), std::invalid_argument);
    EXPECT_THROW(Image(5, -1), std::invalid_argument);
}

TEST(Image, ClampedAccess) {
    Image img(2, 2);
    img.at(0, 0) = 1.0f;
    img.at(1, 1) = 2.0f;
    EXPECT_FLOAT_EQ(img.at_clamped(-5, -5), 1.0f);
    EXPECT_FLOAT_EQ(img.at_clamped(10, 10), 2.0f);
}

TEST(IntegralImage, MatchesBruteForceBoxSums) {
    const Image img = noise_image(17, 13, 99);
    const IntegralImage ii(img);
    SplitMix64 rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        int x0 = static_cast<int>(rng.next_below(17));
        int x1 = static_cast<int>(rng.next_below(17));
        int y0 = static_cast<int>(rng.next_below(13));
        int y1 = static_cast<int>(rng.next_below(13));
        if (x0 > x1) std::swap(x0, x1);
        if (y0 > y1) std::swap(y0, y1);
        double expect = 0.0;
        for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) expect += img.at(x, y);
        }
        EXPECT_NEAR(ii.box_sum(x0, y0, x1, y1), expect, 1e-9);
    }
}

TEST(IntegralImage, ClampsOutOfRangeBoxes) {
    const Image img = noise_image(8, 8, 1);
    const IntegralImage ii(img);
    double total = 0.0;
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) total += img.at(x, y);
    }
    EXPECT_NEAR(ii.box_sum(-100, -100, 100, 100), total, 1e-9);
    EXPECT_DOUBLE_EQ(ii.box_sum(5, 5, 3, 3), 0.0);  // inverted rect
}

TEST(DensePyramid, CoversImageAtMultipleScales) {
    const auto kps = dense_pyramid_keypoints(128, 128, DensePyramidParams{});
    ASSERT_FALSE(kps.empty());
    // Multiple scales present.
    float min_scale = kps.front().scale, max_scale = kps.front().scale;
    for (const auto& kp : kps) {
        min_scale = std::min(min_scale, kp.scale);
        max_scale = std::max(max_scale, kp.scale);
        EXPECT_GE(kp.x, 0.0f);
        EXPECT_LT(kp.x, 128.0f);
        EXPECT_GE(kp.y, 0.0f);
        EXPECT_LT(kp.y, 128.0f);
    }
    EXPECT_GT(max_scale, min_scale);
}

TEST(DensePyramid, MoreLevelsMoreKeypoints) {
    DensePyramidParams one{.levels = 1};
    DensePyramidParams three{.levels = 3};
    EXPECT_GT(dense_pyramid_keypoints(128, 128, three).size(),
              dense_pyramid_keypoints(128, 128, one).size());
}

TEST(Surf, DescriptorIs64DimUnitNorm) {
    const Image img = noise_image(96, 96, 3);
    const SurfExtractor surf;
    const auto descriptors = surf.extract(img);
    ASSERT_FALSE(descriptors.empty());
    for (const auto& d : descriptors) {
        ASSERT_EQ(d.size(), SurfExtractor::kDescriptorSize);
        EXPECT_NEAR(norm(d), 1.0, 1e-4);
    }
}

TEST(Surf, FlatImageYieldsZeroDescriptor) {
    Image img(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) img.at(x, y) = 0.5f;
    }
    const SurfExtractor surf;
    const IntegralImage ii(img);
    const FeatureVec d = surf.describe(ii, Keypoint{32.0f, 32.0f, 1.2f});
    // No gradients anywhere: all Haar responses are 0; norm stays 0.
    EXPECT_DOUBLE_EQ(norm(d), 0.0);
}

TEST(Surf, DescriptorIsDeterministic) {
    const Image img = noise_image(64, 64, 4);
    const SurfExtractor surf;
    EXPECT_EQ(surf.extract(img), surf.extract(img));
}

TEST(Surf, SimilarPatchesCloserThanDifferentOnes) {
    // Core retrieval property: a lightly-perturbed image yields descriptors
    // closer to the original than an unrelated image does.
    const Image original = noise_image(64, 64, 10);
    Image perturbed = original;
    SplitMix64 rng(11);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            perturbed.at(x, y) +=
                static_cast<float>((rng.next_double() - 0.5) * 0.05);
        }
    }
    const Image unrelated = noise_image(64, 64, 12);

    const SurfExtractor surf;
    const auto d_orig = surf.extract(original);
    const auto d_pert = surf.extract(perturbed);
    const auto d_unrel = surf.extract(unrelated);
    ASSERT_EQ(d_orig.size(), d_pert.size());
    ASSERT_EQ(d_orig.size(), d_unrel.size());

    double dist_pert = 0.0, dist_unrel = 0.0;
    for (std::size_t i = 0; i < d_orig.size(); ++i) {
        dist_pert += euclidean_distance(d_orig[i], d_pert[i]);
        dist_unrel += euclidean_distance(d_orig[i], d_unrel[i]);
    }
    EXPECT_LT(dist_pert, dist_unrel * 0.8);
}

}  // namespace
}  // namespace mie::features
