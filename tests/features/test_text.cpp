// Text pipeline tests: tokenizer, stop words, Porter stemmer, histograms.
#include <gtest/gtest.h>

#include "features/text.hpp"

namespace mie::features {
namespace {

TEST(Tokenize, LowercasesAndSplits) {
    const auto tokens = tokenize("Hello, World! C++ rocks-42 ok");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0], "hello");
    EXPECT_EQ(tokens[1], "world");
    EXPECT_EQ(tokens[2], "rocks");
    EXPECT_EQ(tokens[3], "42");
    EXPECT_EQ(tokens[4], "ok");
}

TEST(Tokenize, KeepsAlphanumericTags) {
    const auto tokens = tokenize("tag123 dsc042");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0], "tag123");
    EXPECT_EQ(tokens[1], "dsc042");
}

TEST(Tokenize, DropsSingleCharactersAndEmpty) {
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("a b c 1 2 !").empty());
    EXPECT_EQ(tokenize("12 ab").size(), 2u);
    EXPECT_EQ(tokenize("ab").size(), 1u);
}

TEST(StopWords, CommonWordsAreStopWords) {
    for (const char* w : {"the", "and", "is", "of", "to", "a"}) {
        EXPECT_TRUE(is_stop_word(w)) << w;
    }
    for (const char* w : {"encryption", "cloud", "multimodal", "photo"}) {
        EXPECT_FALSE(is_stop_word(w)) << w;
    }
}

// Classic examples from Porter's paper and the reference implementation.
struct StemCase {
    const char* input;
    const char* expected;
};

class PorterStemCases : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemCases, MatchesReference) {
    EXPECT_EQ(porter_stem(GetParam().input), GetParam().expected)
        << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Reference, PorterStemCases,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStem, ShortWordsUnchanged) {
    EXPECT_EQ(porter_stem("a"), "a");
    EXPECT_EQ(porter_stem("is"), "is");
    EXPECT_EQ(porter_stem("be"), "be");
}

TEST(TermHistogram, CountsStemsWithoutStopWords) {
    const auto hist = extract_term_histogram(
        "The encrypted clouds are encrypting the cloud encryption");
    // "the", "are" are stop words; encrypted/encrypting/encryption all stem
    // differently or the same depending on Porter rules — verify counts are
    // consistent and stop words absent.
    EXPECT_EQ(hist.count("the"), 0u);
    EXPECT_EQ(hist.count("are"), 0u);
    EXPECT_EQ(hist.at("cloud"), 2u);  // clouds + cloud
    std::uint32_t total = 0;
    for (const auto& [term, freq] : hist) total += freq;
    EXPECT_EQ(total, 5u);  // 7 tokens - 2 stop words ("the" twice, "are"... )
}

TEST(TermHistogram, EmptyTextYieldsEmptyHistogram) {
    EXPECT_TRUE(extract_term_histogram("").empty());
    EXPECT_TRUE(extract_term_histogram("the a is of").empty());
}

}  // namespace
}  // namespace mie::features
