// Paillier cryptosystem tests: correctness, homomorphic properties, and
// probabilistic-encryption behaviour.
#include <gtest/gtest.h>

#include "crypto/paillier.hpp"

namespace mie::crypto {
namespace {

class PaillierTest : public ::testing::Test {
protected:
    // 256-bit keys keep the suite fast; homomorphic properties are
    // independent of key size.
    PaillierTest() : drbg_(to_bytes("paillier-test-seed")),
                     scheme_(Paillier::generate(drbg_, 256)) {}

    CtrDrbg drbg_;
    Paillier scheme_;
};

TEST_F(PaillierTest, EncryptDecryptRoundtrip) {
    for (std::uint64_t m : {0ULL, 1ULL, 2ULL, 255ULL, 65536ULL, 123456789ULL}) {
        const BigUint c = scheme_.encrypt(m, drbg_);
        EXPECT_EQ(scheme_.decrypt(c), BigUint(m)) << m;
    }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
    const BigUint c1 = scheme_.encrypt(42, drbg_);
    const BigUint c2 = scheme_.encrypt(42, drbg_);
    EXPECT_NE(c1, c2);
    EXPECT_EQ(scheme_.decrypt(c1), scheme_.decrypt(c2));
}

TEST_F(PaillierTest, HomomorphicAddition) {
    const BigUint ca = scheme_.encrypt(1000, drbg_);
    const BigUint cb = scheme_.encrypt(234, drbg_);
    EXPECT_EQ(scheme_.decrypt(scheme_.add(ca, cb)), BigUint(1234));
}

TEST_F(PaillierTest, HomomorphicAdditionChain) {
    // Sum 1..20 homomorphically, as Hom-MSSE does for counter updates.
    BigUint acc = scheme_.encrypt(0, drbg_);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        acc = scheme_.add(acc, scheme_.encrypt(i, drbg_));
    }
    EXPECT_EQ(scheme_.decrypt(acc), BigUint(210));
}

TEST_F(PaillierTest, ScalarMultiplication) {
    const BigUint c = scheme_.encrypt(17, drbg_);
    EXPECT_EQ(scheme_.decrypt(scheme_.scalar_mul(c, 100)), BigUint(1700));
    // TF-IDF shape: freq * (query_freq * idf_scaled)
    EXPECT_EQ(scheme_.decrypt(scheme_.scalar_mul(c, 0)), BigUint(0));
}

TEST_F(PaillierTest, AddOfZeroIsIdentityPlaintext) {
    const BigUint c = scheme_.encrypt(99, drbg_);
    const BigUint zero = scheme_.encrypt(0, drbg_);
    EXPECT_EQ(scheme_.decrypt(scheme_.add(c, zero)), BigUint(99));
}

TEST_F(PaillierTest, CiphertextSerializationRoundtrip) {
    const BigUint c = scheme_.encrypt(31337, drbg_);
    const Bytes wire = scheme_.serialize_ciphertext(c);
    EXPECT_EQ(wire.size(), scheme_.public_key().ciphertext_bytes());
    EXPECT_EQ(scheme_.parse_ciphertext(wire), c);
}

TEST_F(PaillierTest, RejectsOversizedPlaintext) {
    EXPECT_THROW(scheme_.encrypt(scheme_.public_key().n, drbg_),
                 std::invalid_argument);
}

TEST_F(PaillierTest, LargePlaintextNearModulus) {
    const BigUint m = scheme_.public_key().n - BigUint(1);
    EXPECT_EQ(scheme_.decrypt(scheme_.encrypt(m, drbg_)), m);
}

TEST(Paillier, KeyGenerationProducesDistinctKeys) {
    CtrDrbg drbg(to_bytes("kg"));
    const Paillier a = Paillier::generate(drbg, 128);
    const Paillier b = Paillier::generate(drbg, 128);
    EXPECT_NE(a.public_key().n, b.public_key().n);
    EXPECT_EQ(a.public_key().n.bit_length(), 128u);
}

TEST(Paillier, RejectsTinyModulus) {
    CtrDrbg drbg(to_bytes("tiny"));
    EXPECT_THROW(Paillier::generate(drbg, 32), std::invalid_argument);
}

}  // namespace
}  // namespace mie::crypto
