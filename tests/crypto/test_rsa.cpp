// RSA (OAEP encryption + signatures) tests.
#include <gtest/gtest.h>

#include "crypto/rsa.hpp"

namespace mie::crypto {
namespace {

class RsaTest : public ::testing::Test {
protected:
    // 1024-bit keys: fast enough for CI, structurally identical to 3072.
    RsaTest()
        : drbg_(to_bytes("rsa-test")),
          keys_(RsaKeyPair::generate(drbg_, 1024)) {}

    CtrDrbg drbg_;
    RsaKeyPair keys_;
};

TEST_F(RsaTest, KeyGeneration) {
    EXPECT_EQ(keys_.public_key().n.bit_length(), 1024u);
    EXPECT_EQ(keys_.public_key().e, BigUint(65537));
    EXPECT_EQ(keys_.public_key().modulus_bytes(), 128u);
    // ed = 1 mod phi implies m^(ed) = m: checked via roundtrips below.
}

TEST_F(RsaTest, OaepRoundtrip) {
    for (const char* message :
         {"", "x", "a 32-byte AES key goes here!!!!",
          "repository key material of moderate length padded out"}) {
        const Bytes plaintext = to_bytes(message);
        const Bytes ciphertext =
            rsa_oaep_encrypt(keys_.public_key(), plaintext, drbg_);
        EXPECT_EQ(ciphertext.size(), 128u);
        EXPECT_EQ(rsa_oaep_decrypt(keys_.private_key(), ciphertext),
                  plaintext)
            << message;
    }
}

TEST_F(RsaTest, OaepIsRandomized) {
    const Bytes message = to_bytes("same message");
    const Bytes c1 = rsa_oaep_encrypt(keys_.public_key(), message, drbg_);
    const Bytes c2 = rsa_oaep_encrypt(keys_.public_key(), message, drbg_);
    EXPECT_NE(c1, c2);
}

TEST_F(RsaTest, OaepRejectsOversizedMessage) {
    // 128 - 2*32 - 2 = 62 bytes max.
    EXPECT_NO_THROW(rsa_oaep_encrypt(keys_.public_key(), Bytes(62, 1), drbg_));
    EXPECT_THROW(rsa_oaep_encrypt(keys_.public_key(), Bytes(63, 1), drbg_),
                 std::invalid_argument);
}

TEST_F(RsaTest, OaepRejectsTamperedCiphertext) {
    Bytes ciphertext =
        rsa_oaep_encrypt(keys_.public_key(), to_bytes("secret"), drbg_);
    ciphertext[10] ^= 0x01;
    EXPECT_THROW(rsa_oaep_decrypt(keys_.private_key(), ciphertext),
                 std::invalid_argument);
    EXPECT_THROW(rsa_oaep_decrypt(keys_.private_key(), Bytes(5, 0)),
                 std::invalid_argument);
}

TEST_F(RsaTest, DecryptWithWrongKeyFails) {
    CtrDrbg other_drbg(to_bytes("other"));
    const auto other = RsaKeyPair::generate(other_drbg, 1024);
    const Bytes ciphertext =
        rsa_oaep_encrypt(keys_.public_key(), to_bytes("secret"), drbg_);
    EXPECT_THROW(rsa_oaep_decrypt(other.private_key(), ciphertext),
                 std::invalid_argument);
}

TEST_F(RsaTest, SignVerify) {
    const Bytes message = to_bytes("share repository key with bob");
    const Bytes signature = rsa_sign(keys_.private_key(), message);
    EXPECT_TRUE(rsa_verify(keys_.public_key(), message, signature));
    // Tampered message or signature fails.
    EXPECT_FALSE(rsa_verify(keys_.public_key(),
                            to_bytes("share repository key with eve"),
                            signature));
    Bytes tampered = signature;
    tampered[0] ^= 1;
    EXPECT_FALSE(rsa_verify(keys_.public_key(), message, tampered));
    EXPECT_FALSE(rsa_verify(keys_.public_key(), message, Bytes(3, 0)));
}

TEST_F(RsaTest, SignatureBoundToSigner) {
    CtrDrbg other_drbg(to_bytes("other-signer"));
    const auto other = RsaKeyPair::generate(other_drbg, 1024);
    const Bytes message = to_bytes("m");
    const Bytes signature = rsa_sign(other.private_key(), message);
    EXPECT_TRUE(rsa_verify(other.public_key(), message, signature));
    EXPECT_FALSE(rsa_verify(keys_.public_key(), message, signature));
}

TEST_F(RsaTest, PublicKeySerialization) {
    const Bytes wire = keys_.public_key().serialize();
    const auto parsed = RsaPublicKey::deserialize(wire);
    EXPECT_EQ(parsed.n, keys_.public_key().n);
    EXPECT_EQ(parsed.e, keys_.public_key().e);
    EXPECT_THROW(RsaPublicKey::deserialize(Bytes(3, 0)), std::out_of_range);
}

TEST(Mgf1, KnownLengthAndDeterminism) {
    const Bytes seed = to_bytes("seed");
    const Bytes mask = mgf1_sha256(seed, 100);
    EXPECT_EQ(mask.size(), 100u);
    EXPECT_EQ(mask, mgf1_sha256(seed, 100));
    // Prefix property: longer masks extend shorter ones.
    const Bytes longer = mgf1_sha256(seed, 150);
    EXPECT_TRUE(std::equal(mask.begin(), mask.end(), longer.begin()));
    EXPECT_NE(mgf1_sha256(to_bytes("other"), 100), mask);
}

TEST(Rsa, RejectsTinyModulus) {
    CtrDrbg drbg(to_bytes("tiny"));
    EXPECT_THROW(RsaKeyPair::generate(drbg, 256), std::invalid_argument);
}

}  // namespace
}  // namespace mie::crypto
