// AES / AES-CTR / DRBG / HKDF tests against FIPS 197, SP 800-38A and
// RFC 5869 vectors.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/drbg.hpp"
#include "crypto/kdf.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {
namespace {

TEST(Aes, Fips197Aes128) {
    const Aes aes(hex_decode("000102030405060708090a0b0c0d0e0f"));
    Bytes block = hex_decode("00112233445566778899aabbccddeeff");
    aes.encrypt_block(block.data());
    EXPECT_EQ(hex_encode(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
    const Aes aes(hex_decode(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
    Bytes block = hex_decode("00112233445566778899aabbccddeeff");
    aes.encrypt_block(block.data());
    EXPECT_EQ(hex_encode(block), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, Sp80038aEcbVector) {
    const Aes aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
    Bytes block = hex_decode("6bc1bee22e409f96e93d7e117393172a");
    aes.encrypt_block(block.data());
    EXPECT_EQ(hex_encode(block), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, RejectsBadKeySize) {
    EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
    EXPECT_THROW(Aes(Bytes(24, 0)), std::invalid_argument);
    EXPECT_THROW(Aes(Bytes(0, 0)), std::invalid_argument);
}

TEST(AesCtr, Sp80038aCtrVector) {
    // SP 800-38A F.5.1 CTR-AES128.Encrypt
    const AesCtr ctr(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
    const Bytes nonce = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    Bytes data = hex_decode(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710");
    ctr.transform(nonce, std::span(data));
    EXPECT_EQ(hex_encode(data),
              "874d6191b620e3261bef6864990db6ce"
              "9806f66b7970fdff8617187bb9fffdff"
              "5ae4df3edbd5d35e5b4f09020db03eab"
              "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(AesCtr, SealOpenRoundtrip) {
    const AesCtr ctr(Bytes(16, 0x42));
    const Bytes nonce(16, 0x07);
    const Bytes plaintext = to_bytes("multimodal data object payload");
    const Bytes sealed = ctr.seal(nonce, plaintext);
    EXPECT_EQ(sealed.size(), 16 + plaintext.size());
    EXPECT_EQ(ctr.open(sealed), plaintext);
    // Ciphertext body differs from plaintext.
    EXPECT_NE(Bytes(sealed.begin() + 16, sealed.end()), plaintext);
}

TEST(AesCtr, OpenRejectsTruncated) {
    const AesCtr ctr(Bytes(16, 1));
    EXPECT_THROW(ctr.open(Bytes(8, 0)), std::invalid_argument);
}

TEST(AesCtr, EmptyPlaintext) {
    const AesCtr ctr(Bytes(16, 9));
    const Bytes sealed = ctr.seal(Bytes(16, 3), {});
    EXPECT_EQ(sealed.size(), 16u);
    EXPECT_TRUE(ctr.open(sealed).empty());
}

TEST(CtrDrbg, Deterministic) {
    CtrDrbg a(to_bytes("seed"));
    CtrDrbg b(to_bytes("seed"));
    EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(CtrDrbg, DifferentSeedsDiffer) {
    CtrDrbg a(to_bytes("seed-1"));
    CtrDrbg b(to_bytes("seed-2"));
    EXPECT_NE(a.generate(64), b.generate(64));
}

TEST(CtrDrbg, StreamIsSplitInvariant) {
    CtrDrbg a(to_bytes("s"));
    CtrDrbg b(to_bytes("s"));
    Bytes whole = a.generate(100);
    Bytes parts = b.generate(33);
    const Bytes tail = b.generate(67);
    parts.insert(parts.end(), tail.begin(), tail.end());
    EXPECT_EQ(whole, parts);
}

TEST(CtrDrbg, DoublesInUnitInterval) {
    CtrDrbg d(to_bytes("doubles"));
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = d.next_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CtrDrbg, GaussianMoments) {
    CtrDrbg d(to_bytes("gauss"));
    double sum = 0, sum_sq = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double v = d.next_gaussian();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(CtrDrbg, NextBelowIsInRange) {
    CtrDrbg d(to_bytes("below"));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(d.next_below(17), 17u);
    }
}

TEST(Hkdf, Rfc5869Case1) {
    const Bytes ikm(22, 0x0b);
    const Bytes salt = hex_decode("000102030405060708090a0b0c");
    const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
    const Bytes prk = hkdf_extract(salt, ikm);
    EXPECT_EQ(hex_encode(prk),
              "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
    const Bytes okm = hkdf_expand(prk, info, 42);
    EXPECT_EQ(hex_encode(okm),
              "3cb25f25faacd57a90434f64d0362f2a"
              "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
              "34007208d5b887185865");
}

TEST(Hkdf, DeriveKeyLabelsAreIndependent) {
    const Bytes master = to_bytes("master-secret");
    const Bytes a = derive_key(master, "dense-dpe");
    const Bytes b = derive_key(master, "sparse-dpe");
    EXPECT_EQ(a.size(), 32u);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, derive_key(master, "dense-dpe"));
}

}  // namespace
}  // namespace mie::crypto
