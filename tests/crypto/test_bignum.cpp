// BigUint arithmetic and number-theory tests, including randomized
// property checks cross-validated with 64-bit native arithmetic.
#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace mie::crypto {
namespace {

TEST(BigUint, BasicConstruction) {
    EXPECT_TRUE(BigUint().is_zero());
    EXPECT_TRUE(BigUint(0).is_zero());
    EXPECT_EQ(BigUint(42).low_u64(), 42u);
    EXPECT_EQ(BigUint(UINT64_MAX).low_u64(), UINT64_MAX);
    EXPECT_EQ(BigUint(UINT64_MAX).bit_length(), 64u);
}

TEST(BigUint, HexRoundtrip) {
    const std::string hex = "deadbeefcafebabe0123456789abcdef";
    EXPECT_EQ(BigUint::from_hex(hex).to_hex(), hex);
    EXPECT_EQ(BigUint().to_hex(), "0");
    EXPECT_EQ(BigUint(255).to_hex(), "ff");
}

TEST(BigUint, BytesRoundtrip) {
    const Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05};
    EXPECT_EQ(BigUint::from_bytes_be(b).to_bytes_be(), b);
    // Leading zeros are dropped on output.
    const Bytes padded = {0x00, 0x00, 0x07};
    EXPECT_EQ(BigUint::from_bytes_be(padded).to_bytes_be(), Bytes{0x07});
    // Fixed-width output pads.
    EXPECT_EQ(BigUint(7).to_bytes_be(4), (Bytes{0, 0, 0, 7}));
    EXPECT_THROW(BigUint::from_hex("ffff").to_bytes_be(1), std::length_error);
}

TEST(BigUint, AddSubProperties) {
    SplitMix64 rng(1);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng() >> (rng() % 40);
        const std::uint64_t b = rng() >> (rng() % 40);
        const BigUint ba(a), bb(b);
        // 64-bit values: emulate 128-bit sum via BigUint and check low bits.
        const BigUint sum = ba + bb;
        const unsigned __int128 expect =
            static_cast<unsigned __int128>(a) + b;
        EXPECT_EQ(sum.low_u64(), static_cast<std::uint64_t>(expect));
        EXPECT_EQ((sum - bb), ba);
        EXPECT_EQ((sum - ba), bb);
    }
}

TEST(BigUint, SubUnderflowThrows) {
    EXPECT_THROW(BigUint(1) - BigUint(2), std::underflow_error);
}

TEST(BigUint, MulDivProperties) {
    SplitMix64 rng(2);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng();
        const std::uint64_t b = rng() | 1;  // nonzero divisor
        const BigUint ba(a), bb(b);
        const BigUint prod = ba * bb;
        const unsigned __int128 expect =
            static_cast<unsigned __int128>(a) * b;
        EXPECT_EQ(prod.low_u64(), static_cast<std::uint64_t>(expect));
        EXPECT_EQ((prod >> 64).low_u64(),
                  static_cast<std::uint64_t>(expect >> 64));
        const auto [q, r] = BigUint::divmod(ba, bb);
        EXPECT_EQ(q.low_u64(), a / b);
        EXPECT_EQ(r.low_u64(), a % b);
    }
}

TEST(BigUint, DivModInvariantLargeNumbers) {
    CtrDrbg drbg(to_bytes("divmod"));
    for (int i = 0; i < 200; ++i) {
        const BigUint a = BigUint::from_bytes_be(drbg.generate(40));
        BigUint b = BigUint::from_bytes_be(drbg.generate(17));
        if (b.is_zero()) b = BigUint(3);
        const auto [q, r] = BigUint::divmod(a, b);
        EXPECT_TRUE(r < b);
        EXPECT_EQ(q * b + r, a);
    }
}

TEST(BigUint, DivByZeroThrows) {
    EXPECT_THROW(BigUint(1) / BigUint(0), std::domain_error);
}

TEST(BigUint, Shifts) {
    const BigUint one(1);
    EXPECT_EQ((one << 100).bit_length(), 101u);
    EXPECT_EQ(((one << 100) >> 100), one);
    EXPECT_TRUE((one >> 1).is_zero());
    const BigUint x = BigUint::from_hex("123456789abcdef0");
    EXPECT_EQ(((x << 13) >> 13), x);
    EXPECT_EQ((x << 0), x);
    EXPECT_EQ((x >> 0), x);
}

TEST(BigUint, ModPowSmallCases) {
    // 2^10 mod 1000 = 24
    EXPECT_EQ(BigUint::mod_pow(2, 10, 1000).low_u64(), 24u);
    // Fermat: a^(p-1) = 1 mod p for prime p
    const BigUint p(1000003);
    for (std::uint64_t a : {2ULL, 3ULL, 12345ULL}) {
        EXPECT_EQ(BigUint::mod_pow(a, p - BigUint(1), p).low_u64(), 1u);
    }
    // Even modulus path
    EXPECT_EQ(BigUint::mod_pow(3, 5, 100).low_u64(), 43u);
}

TEST(BigUint, ModPowMatchesNaive) {
    SplitMix64 rng(3);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t base = rng() % 1000000;
        const std::uint64_t exp = rng() % 50;
        const std::uint64_t mod = (rng() % 999983) | 1;  // odd
        if (mod <= 1) continue;
        std::uint64_t expect = 1 % mod;
        for (std::uint64_t j = 0; j < exp; ++j) {
            expect = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(expect) * base) % mod);
        }
        EXPECT_EQ(BigUint::mod_pow(base, exp, mod).low_u64(), expect)
            << base << "^" << exp << " mod " << mod;
    }
}

TEST(BigUint, ModInverse) {
    EXPECT_EQ(BigUint::mod_inverse(3, 7).low_u64(), 5u);  // 3*5=15=1 mod 7
    CtrDrbg drbg(to_bytes("inv"));
    const BigUint m = BigUint::from_hex("fffffffffffffffffffffffffffffff1");
    for (int i = 0; i < 50; ++i) {
        const BigUint a = BigUint::random_below(drbg, m);
        if (BigUint::gcd(a, m) != BigUint(1)) continue;
        const BigUint inv = BigUint::mod_inverse(a, m);
        EXPECT_EQ(BigUint::mod_mul(a, inv, m), BigUint(1));
    }
    EXPECT_THROW(BigUint::mod_inverse(4, 8), std::domain_error);
}

TEST(BigUint, GcdLcm) {
    EXPECT_EQ(BigUint::gcd(48, 36).low_u64(), 12u);
    EXPECT_EQ(BigUint::lcm(4, 6).low_u64(), 12u);
    EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)).low_u64(), 5u);
    EXPECT_TRUE(BigUint::lcm(BigUint(0), BigUint(5)).is_zero());
}

TEST(BigUint, MillerRabinKnownValues) {
    CtrDrbg drbg(to_bytes("mr"));
    for (std::uint64_t p :
         {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 1000003ULL, 2147483647ULL}) {
        EXPECT_TRUE(BigUint::is_probable_prime(p, drbg)) << p;
    }
    for (std::uint64_t c : {1ULL, 4ULL, 100ULL, 65541ULL, 1000001ULL,
                            561ULL /* Carmichael */, 341ULL}) {
        EXPECT_FALSE(BigUint::is_probable_prime(c, drbg)) << c;
    }
}

TEST(BigUint, GeneratePrimeHasRequestedSize) {
    CtrDrbg drbg(to_bytes("prime-gen"));
    const BigUint p = BigUint::generate_prime(drbg, 128);
    EXPECT_EQ(p.bit_length(), 128u);
    EXPECT_TRUE(BigUint::is_probable_prime(p, drbg));
    EXPECT_FALSE(p.is_even());
}

TEST(BigUint, RandomBelowIsUniform) {
    CtrDrbg drbg(to_bytes("rb"));
    const BigUint bound(100);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 10000; ++i) {
        const BigUint v = BigUint::random_below(drbg, bound);
        ASSERT_TRUE(v < bound);
        counts[v.low_u64()]++;
    }
    for (int c : counts) EXPECT_GT(c, 40);  // expectation 100
}

TEST(Montgomery, MatchesPlainModMul) {
    CtrDrbg drbg(to_bytes("mont"));
    BigUint m = BigUint::from_bytes_be(drbg.generate(33));
    if (m.is_even()) m = m + BigUint(1);
    const Montgomery mont(m);
    for (int i = 0; i < 100; ++i) {
        const BigUint a = BigUint::random_below(drbg, m);
        const BigUint b = BigUint::random_below(drbg, m);
        EXPECT_EQ(mont.mul(a, b), (a * b) % m);
    }
}

TEST(Montgomery, PowMatchesRepeatedMul) {
    CtrDrbg drbg(to_bytes("mont-pow"));
    const BigUint m = BigUint::from_hex("f123456789abcdef0123456789abcde1");
    const Montgomery mont(m);
    const BigUint base = BigUint::random_below(drbg, m);
    BigUint expect(1);
    for (std::uint64_t e = 0; e < 20; ++e) {
        EXPECT_EQ(mont.pow(base, BigUint(e)), expect);
        expect = mont.mul(expect, base);
    }
}

TEST(Montgomery, PowAgainstFermat) {
    CtrDrbg drbg(to_bytes("mont-fermat"));
    const BigUint p = BigUint::generate_prime(drbg, 96);
    const Montgomery mont(p);
    for (int i = 0; i < 20; ++i) {
        BigUint a = BigUint::random_below(drbg, p);
        if (a.is_zero()) a = BigUint(2);
        EXPECT_EQ(mont.pow(a, p - BigUint(1)), BigUint(1));
    }
}

TEST(Montgomery, RejectsEvenModulus) {
    EXPECT_THROW(Montgomery(BigUint(10)), std::domain_error);
    EXPECT_THROW(Montgomery(BigUint(1)), std::domain_error);
}

}  // namespace
}  // namespace mie::crypto
