// util/bytes and util/table tests.
#include <gtest/gtest.h>

#include <sstream>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mie {
namespace {

TEST(Bytes, HexRoundtrip) {
    const Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(hex_encode(data), "0001abff");
    EXPECT_EQ(hex_decode("0001abff"), data);
    EXPECT_EQ(hex_decode("0001ABFF"), data);
    EXPECT_TRUE(hex_decode("").empty());
}

TEST(Bytes, HexDecodeRejectsMalformed) {
    EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
    EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(Bytes, LittleEndianRoundtrip) {
    Bytes out;
    append_le<std::uint32_t>(out, 0xdeadbeef);
    append_le<std::uint64_t>(out, 0x0123456789abcdefULL);
    EXPECT_EQ(read_le<std::uint32_t>(out, 0), 0xdeadbeefu);
    EXPECT_EQ(read_le<std::uint64_t>(out, 4), 0x0123456789abcdefULL);
    EXPECT_THROW(read_le<std::uint64_t>(out, 8), std::out_of_range);
}

TEST(Bytes, BigEndianRoundtrip) {
    std::uint8_t buf[8];
    store_be<std::uint64_t>(buf, 0x1122334455667788ULL);
    EXPECT_EQ(buf[0], 0x11);
    EXPECT_EQ(buf[7], 0x88);
    EXPECT_EQ(load_be<std::uint64_t>(buf), 0x1122334455667788ULL);
}

TEST(Bytes, CtEqual) {
    EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
    EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
    EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
    EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, CtEqualLengthMismatchIsBranchFree) {
    // Length differences fold into the accumulator instead of an early
    // return, so every (len_a, len_b) pair gives the right answer — in
    // particular when one side is empty or a strict prefix of the other.
    EXPECT_FALSE(ct_equal(to_bytes("a"), {}));
    EXPECT_FALSE(ct_equal({}, to_bytes("a")));
    EXPECT_FALSE(ct_equal(to_bytes("ab"), to_bytes("abc")));
    EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abcabc")));
    // Differing content AND differing length must also report unequal
    // (both mismatch sources OR into the same accumulator).
    EXPECT_FALSE(ct_equal(to_bytes("xyz"), to_bytes("ab")));
}

TEST(Bytes, CtEqualLongBuffersSingleBitDifference) {
    Bytes a(1024, 0x5a);
    Bytes b = a;
    EXPECT_TRUE(ct_equal(a, b));
    b[1023] ^= 0x01;  // flip one bit at the very end
    EXPECT_FALSE(ct_equal(a, b));
    b[1023] ^= 0x01;
    b[0] ^= 0x80;  // and one at the very start
    EXPECT_FALSE(ct_equal(a, b));
}

TEST(Bytes, XorInto) {
    Bytes a = {0xff, 0x00, 0x55};
    const Bytes b = {0x0f, 0xf0, 0x55};
    xor_into(std::span(a), b);
    EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
    Bytes c = {1};
    EXPECT_THROW(xor_into(std::span(c), b), std::invalid_argument);
}

TEST(Bytes, StringConversion) {
    EXPECT_EQ(to_string(to_bytes("hello")), "hello");
}

TEST(SplitMix64, DeterministicAndDistributed) {
    SplitMix64 a(7), b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
    SplitMix64 c(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) sum += c.next_double();
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(TextTable, RendersAligned) {
    TextTable t({"Scheme", "Time"});
    t.add_row({"MIE", "1.5"});
    t.add_row({"Hom-MSSE", "30.6"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Scheme"), std::string::npos);
    EXPECT_NE(out.find("Hom-MSSE"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, RejectsBadRows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(FmtDouble, Formats) {
    EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_double(0.0, 1), "0.0");
}

}  // namespace
}  // namespace mie
