// SecretBytes / Zeroizing: the zeroize-on-destruction contract.
//
// The central test uses a capturing allocator: deallocate() snapshots the
// region's contents *before* freeing, so the test observes exactly what a
// heap-scraping adversary would find after the secret's lifetime ends.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/secret.hpp"

namespace mie::crypto {
namespace {

// Snapshots of freed regions, shared across rebinds of the allocator.
std::vector<std::vector<std::uint8_t>>& freed_regions() {
    static std::vector<std::vector<std::uint8_t>> regions;
    return regions;
}

template <typename T>
struct CapturingAllocator {
    using value_type = T;

    CapturingAllocator() = default;
    template <typename U>
    CapturingAllocator(const CapturingAllocator<U>&) {}  // NOLINT

    T* allocate(std::size_t n) {
        return static_cast<T*>(std::malloc(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) {
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(p);
        freed_regions().emplace_back(bytes, bytes + n * sizeof(T));
        std::free(p);
    }
    bool operator==(const CapturingAllocator&) const { return true; }
    bool operator!=(const CapturingAllocator&) const { return false; }
};

using TracedSecret = BasicSecretBytes<CapturingAllocator<std::uint8_t>>;

bool all_zero(const std::vector<std::uint8_t>& region) {
    for (const std::uint8_t byte : region) {
        if (byte != 0) return false;
    }
    return true;
}

TEST(SecretBytes, DestructorScrubsBackingStorageBeforeFree) {
    freed_regions().clear();
    {
        TracedSecret::Vector buf = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
        TracedSecret secret(std::move(buf));
        ASSERT_EQ(secret.size(), 5u);
    }
    ASSERT_FALSE(freed_regions().empty());
    for (const auto& region : freed_regions()) {
        EXPECT_TRUE(all_zero(region))
            << "freed secret region still holds plaintext bytes";
    }
}

TEST(SecretBytes, MoveAssignWipesTheOverwrittenSecret) {
    freed_regions().clear();
    TracedSecret a(TracedSecret::Vector{1, 2, 3, 4});
    TracedSecret b(TracedSecret::Vector{9, 9, 9, 9});
    a = std::move(b);
    // a's original buffer was wiped-then-freed by the move assignment.
    ASSERT_FALSE(freed_regions().empty());
    for (const auto& region : freed_regions()) {
        EXPECT_TRUE(all_zero(region));
    }
    EXPECT_EQ(a.size(), 4u);
    EXPECT_TRUE(b.empty());
}

TEST(SecretBytes, MoveLeavesSourceEmpty) {
    SecretBytes src(Bytes{10, 20, 30});
    SecretBytes dst(std::move(src));
    EXPECT_TRUE(src.empty());   // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(dst.size(), 3u);
    EXPECT_EQ(dst.data()[1], 20);
}

TEST(SecretBytes, CloneIsDeepAndExplicit) {
    SecretBytes a(Bytes{5, 6, 7});
    SecretBytes b = a.clone();
    EXPECT_TRUE(a == b);
    EXPECT_NE(a.data(), b.data());
}

TEST(SecretBytes, EqualityIsValueBasedAndLengthAware) {
    SecretBytes a(Bytes{1, 2, 3});
    SecretBytes b(Bytes{1, 2, 3});
    SecretBytes c(Bytes{1, 2, 4});
    SecretBytes d(Bytes{1, 2});
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a != c);
    EXPECT_TRUE(a != d);
}

TEST(SecretBytes, StreamInsertionRedacts) {
    SecretBytes secret(Bytes{0x41, 0x41, 0x41});
    std::ostringstream os;
    os << secret;
    EXPECT_EQ(os.str(), "[redacted 3 bytes]");
    EXPECT_EQ(os.str().find('A'), std::string::npos);
}

TEST(SecretBytes, ViewExposesBytesWithoutCopy) {
    SecretBytes secret(Bytes{7, 8});
    BytesView view = secret;  // implicit, feeds HKDF/HMAC call sites
    ASSERT_EQ(view.size(), 2u);
    EXPECT_EQ(view.data(), secret.data());
}

TEST(Zeroizing, TriviallyCopyableStateIsWipedOnMove) {
    struct RoundKeys {
        std::uint32_t words[8];
    };
    Zeroizing<RoundKeys> keys(RoundKeys{{1, 2, 3, 4, 5, 6, 7, 8}});
    Zeroizing<RoundKeys> moved(std::move(keys));
    for (const std::uint32_t w : keys.get().words) {  // NOLINT
        EXPECT_EQ(w, 0u);
    }
    EXPECT_EQ(moved.get().words[7], 8u);
}

TEST(Zeroizing, BigUintZeroizesThroughItsMember) {
    SecretBigUint lambda(BigUint(0xDEADBEEFu));
    SecretBigUint moved(std::move(lambda));
    EXPECT_TRUE(lambda.get().is_zero());  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(moved.get().low_u64(), 0xDEADBEEFu);
}

TEST(Zeroizing, CopyPreservesHygieneType) {
    SecretBigUint d(BigUint(123u));
    SecretBigUint copy = d;
    EXPECT_EQ(copy.get().low_u64(), 123u);
    EXPECT_EQ(d.get().low_u64(), 123u);  // copy leaves the source intact
}

TEST(Zeroizing, StreamInsertionRedacts) {
    SecretBigUint secret(BigUint(99u));
    std::ostringstream os;
    os << secret;
    EXPECT_EQ(os.str(), "[redacted]");
}

TEST(SecureZero, ScrubsTheWholeRange) {
    std::uint8_t buf[64];
    for (std::size_t i = 0; i < sizeof(buf); ++i) {
        buf[i] = static_cast<std::uint8_t>(i + 1);
    }
    secure_zero(buf, sizeof(buf));
    for (const std::uint8_t byte : buf) EXPECT_EQ(byte, 0u);
}

}  // namespace
}  // namespace mie::crypto
