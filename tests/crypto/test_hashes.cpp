// SHA-1 / SHA-256 / HMAC tests against FIPS 180-4 and RFC 2202/4231 vectors.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace mie::crypto {
namespace {

template <typename Digest>
std::string hex(const Digest& d) {
    return hex_encode(BytesView(d.data(), d.size()));
}

TEST(Sha1, Fips180Vectors) {
    EXPECT_EQ(hex(Sha1::hash(to_bytes("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(hex(Sha1::hash(to_bytes(""))),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(hex(Sha1::hash(to_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
    Sha1 h;
    const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex(h.finalize()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
    const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        Sha1 h;
        h.update(BytesView(data.data(), split));
        h.update(BytesView(data.data() + split, data.size() - split));
        EXPECT_EQ(h.finalize(), Sha1::hash(data)) << "split=" << split;
    }
}

TEST(Sha256, Fips180Vectors) {
    EXPECT_EQ(hex(Sha256::hash(to_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(hex(Sha256::hash(to_bytes(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(hex(Sha256::hash(to_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const Bytes data = to_bytes("incremental hashing must be split-invariant");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        Sha256 h;
        h.update(BytesView(data.data(), split));
        h.update(BytesView(data.data() + split, data.size() - split));
        EXPECT_EQ(h.finalize(), Sha256::hash(data)) << "split=" << split;
    }
}

TEST(HmacSha1, Rfc2202Vectors) {
    // Case 1
    EXPECT_EQ(hex(Hmac<Sha1>::mac(Bytes(20, 0x0b), to_bytes("Hi There"))),
              "b617318655057264e28bc0b6fb378c8ef146be00");
    // Case 2
    EXPECT_EQ(hex(Hmac<Sha1>::mac(to_bytes("Jefe"),
                                  to_bytes("what do ya want for nothing?"))),
              "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    // Case 3
    EXPECT_EQ(hex(Hmac<Sha1>::mac(Bytes(20, 0xaa), Bytes(50, 0xdd))),
              "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    // Case 6: key longer than block size
    EXPECT_EQ(hex(Hmac<Sha1>::mac(
                  Bytes(80, 0xaa),
                  to_bytes("Test Using Larger Than Block-Size Key - "
                           "Hash Key First"))),
              "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256, Rfc4231Vectors) {
    // Case 1
    EXPECT_EQ(hex(Hmac<Sha256>::mac(Bytes(20, 0x0b), to_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    // Case 2
    EXPECT_EQ(hex(Hmac<Sha256>::mac(to_bytes("Jefe"),
                                    to_bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    // Case 3
    EXPECT_EQ(hex(Hmac<Sha256>::mac(Bytes(20, 0xaa), Bytes(50, 0xdd))),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, ResetAllowsReuse) {
    Hmac<Sha256> h(to_bytes("key"));
    h.update(to_bytes("message"));
    const auto first = h.finalize();
    h.reset();
    h.update(to_bytes("message"));
    EXPECT_EQ(h.finalize(), first);
}

TEST(HmacSha1, Rfc2202VectorsThroughMidstateReuse) {
    // The cached ipad/opad midstates must reproduce the RFC 2202 vectors
    // when one keyed instance is reset and reused across messages —
    // the index-token-derivation pattern.
    Hmac<Sha1> h(Bytes(20, 0x0b));
    for (int round = 0; round < 3; ++round) {
        h.reset();
        h.update(to_bytes("Hi There"));
        EXPECT_EQ(hex(h.finalize()),
                  "b617318655057264e28bc0b6fb378c8ef146be00");
    }
    // Reuse with a key longer than the block size (hashed at keying time).
    Hmac<Sha1> big(Bytes(80, 0xaa));
    for (int round = 0; round < 2; ++round) {
        big.reset();
        big.update(to_bytes("Test Using Larger Than Block-Size Key - "
                            "Hash Key First"));
        EXPECT_EQ(hex(big.finalize()),
                  "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }
}

TEST(HmacSha256, Rfc4231VectorsThroughMidstateReuse) {
    Hmac<Sha256> h(Bytes(20, 0x0b));
    for (int round = 0; round < 3; ++round) {
        h.reset();
        h.update(to_bytes("Hi There"));
        EXPECT_EQ(hex(h.finalize()),
                  "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e"
                  "9376c2e32cff7");
    }
}

TEST(Hmac, MidstateReuseAcrossDistinctMessages) {
    // reset()+update(m) on one instance must equal a fresh mac(key, m)
    // for a run of different messages (not just the same one).
    Hmac<Sha256> h(to_bytes("shared-key"));
    for (int i = 0; i < 16; ++i) {
        const Bytes message = to_bytes("keyword-" + std::to_string(i));
        h.reset();
        h.update(message);
        EXPECT_EQ(h.finalize(),
                  Hmac<Sha256>::mac(to_bytes("shared-key"), message))
            << "i=" << i;
    }
}

TEST(Hmac, DifferentKeysDiffer) {
    const auto a = Hmac<Sha256>::mac(to_bytes("key-a"), to_bytes("m"));
    const auto b = Hmac<Sha256>::mac(to_bytes("key-b"), to_bytes("m"));
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mie::crypto
