// AesCtr::Stream — the incremental multi-block CTR API. Chunked
// processing must reproduce the one-shot transform() byte stream for
// every chunking, including chunks that straddle block boundaries and
// counters that wrap a 32-bit word or the full 64-bit counter.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/ctr.hpp"
#include "util/rng.hpp"

namespace mie::crypto {
namespace {

Bytes random_bytes(SplitMix64& rng, std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
}

// Sets the trailing 64-bit big-endian counter of a 16-byte nonce.
Bytes nonce_with_counter(std::uint64_t start) {
    Bytes nonce(16, 0xA5);
    for (int i = 0; i < 8; ++i) {
        nonce[8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(start >> (8 * (7 - i)));
    }
    return nonce;
}

TEST(CtrStream, ChunkedMatchesOneShot) {
    SplitMix64 rng(77);
    const AesCtr cipher(Bytes(16, 0x42));
    const Bytes nonce = random_bytes(rng, 16);
    const Bytes plain = random_bytes(rng, 611);

    Bytes expected = plain;
    cipher.transform(nonce, std::span(expected));

    // Several chunkings, all crossing block boundaries at odd offsets.
    const std::vector<std::vector<std::size_t>> chunkings = {
        {611},
        {1, 610},
        {15, 1, 16, 17, 562},
        {7, 13, 31, 64, 128, 368},
        {16, 16, 16, 563},
    };
    for (const auto& chunking : chunkings) {
        Bytes got = plain;
        auto stream = cipher.stream(nonce);
        std::size_t offset = 0;
        for (const std::size_t len : chunking) {
            stream.process(std::span(got).subspan(offset, len));
            offset += len;
        }
        ASSERT_EQ(offset, got.size());
        EXPECT_EQ(expected, got);
    }
}

TEST(CtrStream, EveryChunkSizeMatches) {
    SplitMix64 rng(78);
    const AesCtr cipher(Bytes(32, 0x17));  // AES-256 path too
    const Bytes nonce = random_bytes(rng, 16);
    const Bytes plain = random_bytes(rng, 200);
    Bytes expected = plain;
    cipher.transform(nonce, std::span(expected));

    for (std::size_t chunk = 1; chunk <= 40; ++chunk) {
        Bytes got = plain;
        auto stream = cipher.stream(nonce);
        for (std::size_t offset = 0; offset < got.size(); offset += chunk) {
            const std::size_t len = std::min(chunk, got.size() - offset);
            stream.process(std::span(got).subspan(offset, len));
        }
        ASSERT_EQ(expected, got) << "chunk=" << chunk;
    }
}

TEST(CtrStream, EmptyChunksAreNoOps) {
    SplitMix64 rng(79);
    const AesCtr cipher(Bytes(16, 0x01));
    const Bytes nonce = random_bytes(rng, 16);
    const Bytes plain = random_bytes(rng, 45);
    Bytes expected = plain;
    cipher.transform(nonce, std::span(expected));

    Bytes got = plain;
    auto stream = cipher.stream(nonce);
    stream.process(std::span(got).subspan(0, 0));
    stream.process(std::span(got).subspan(0, 10));
    stream.process(std::span(got).subspan(10, 0));
    stream.process(std::span(got).subspan(10, 35));
    EXPECT_EQ(expected, got);
}

TEST(CtrStream, CounterWordWrap32Bit) {
    // Counter starts just below a 32-bit word boundary: incrementing past
    // 0x...FFFFFFFF must carry into the upper counter word, at every
    // chunking, exactly as the one-shot path does.
    SplitMix64 rng(80);
    const AesCtr cipher(Bytes(16, 0x5c));
    const Bytes nonce = nonce_with_counter(0xFFFFFFFFull - 2);
    const Bytes plain = random_bytes(rng, 16 * 8);  // crosses the wrap
    Bytes expected = plain;
    cipher.transform(nonce, std::span(expected));

    for (const std::size_t chunk : {5, 16, 33}) {
        Bytes got = plain;
        auto stream = cipher.stream(nonce);
        for (std::size_t offset = 0; offset < got.size(); offset += chunk) {
            const std::size_t len = std::min(chunk, got.size() - offset);
            stream.process(std::span(got).subspan(offset, len));
        }
        ASSERT_EQ(expected, got) << "chunk=" << chunk;
    }
}

TEST(CtrStream, CounterWrap64BitStaysInLowHalf) {
    // Full 64-bit counter wrap: 0xFFFF...FF -> 0, with NO carry into the
    // nonce half. The stream and one-shot paths must agree, and the
    // keystream after the wrap equals the keystream at counter 0 with the
    // same nonce half.
    SplitMix64 rng(81);
    const AesCtr cipher(Bytes(16, 0x3e));
    const Bytes nonce = nonce_with_counter(~0ull);
    Bytes expected(48, 0);  // 3 blocks: counters ~0, 0, 1
    cipher.transform(nonce, std::span(expected));

    Bytes chunked(48, 0);
    auto stream = cipher.stream(nonce);
    stream.process(std::span(chunked).subspan(0, 17));
    stream.process(std::span(chunked).subspan(17, 31));
    EXPECT_EQ(expected, chunked);

    // Blocks 1..2 must equal the keystream at counter 0 (nonce half
    // untouched by the wrap).
    Bytes from_zero(32, 0);
    cipher.transform(nonce_with_counter(0), std::span(from_zero));
    EXPECT_TRUE(std::equal(expected.begin() + 16, expected.end(),
                           from_zero.begin()));
}

}  // namespace
}  // namespace mie::crypto
