// Execution-runtime tests: coverage of every primitive plus the
// determinism contract (bitwise-identical results at any thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"

namespace mie::exec {
namespace {

/// Runs `fn` at each requested width, restoring the default cap after.
template <typename Fn>
void at_each_width(std::initializer_list<std::size_t> widths, const Fn& fn) {
    for (const std::size_t width : widths) {
        set_max_threads(width);
        fn(width);
    }
    set_max_threads(0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    at_each_width({1, 2, 8}, [](std::size_t) {
        std::vector<std::atomic<int>> hits(1000);
        parallel_for(0, hits.size(), 7,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    });
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
    int calls = 0;
    parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel_for(5, 6, 16, [&](std::size_t i) {
        EXPECT_EQ(i, 5u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
    set_max_threads(8);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [](std::size_t i) {
                         if (i == 37) throw std::runtime_error("chunk 37");
                     }),
        std::runtime_error);
    set_max_threads(0);
}

TEST(ParallelReduce, MatchesFixedChunkFoldAtEveryWidth) {
    // An FP-sensitive sum: magnitudes differ wildly, so any change in
    // association changes low-order bits.
    std::vector<double> values(10000);
    for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = std::pow(-1.0, static_cast<double>(i % 3)) /
                    (1.0 + static_cast<double>(i * i % 997));
    }
    constexpr std::size_t kGrain = 128;
    const auto sum_range = [&](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) partial += values[i];
        return partial;
    };
    // Reference: the fixed chunk fold computed serially.
    double reference = 0.0;
    for (std::size_t lo = 0; lo < values.size(); lo += kGrain) {
        reference += sum_range(lo, std::min(values.size(), lo + kGrain));
    }
    at_each_width({1, 2, 3, 8}, [&](std::size_t width) {
        const double sum = parallel_reduce(
            0, values.size(), kGrain, 0.0, sum_range,
            [](double a, double b) { return a + b; });
        // Bitwise equality, not EXPECT_DOUBLE_EQ: the contract is exact.
        EXPECT_EQ(sum, reference) << "width " << width;
    });
}

TEST(ParallelReduce, NonCommutativeCombineKeepsChunkOrder) {
    // Concatenation makes any chunk reordering visible.
    const std::size_t n = 257;
    const auto digits = [](std::size_t lo, std::size_t hi) {
        std::vector<std::size_t> out;
        for (std::size_t i = lo; i < hi; ++i) out.push_back(i);
        return out;
    };
    const auto concat = [](std::vector<std::size_t> a,
                           std::vector<std::size_t> b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
    };
    at_each_width({1, 8}, [&](std::size_t) {
        const auto result = parallel_reduce(
            0, n, 10, std::vector<std::size_t>{}, digits, concat);
        ASSERT_EQ(result.size(), n);
        for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(result[i], i);
    });
}

TEST(ParallelReduce, BoolPartialsUseIndependentSlots) {
    // Regression: with T = bool the partials buffer must not be a packed
    // std::vector<bool>, whose chunk slots share words (a data race and
    // potential lost updates under concurrent writes). Many tiny chunks
    // maximize slot adjacency; exactly one chunk reports true.
    const std::size_t n = 4096;
    at_each_width({1, 2, 8}, [&](std::size_t width) {
        for (const std::size_t hot : {std::size_t{0}, n / 2, n - 1}) {
            const bool found = parallel_reduce(
                0, n, 1, false,
                [&](std::size_t lo, std::size_t) { return lo == hot; },
                [](bool a, bool b) { return a || b; });
            EXPECT_TRUE(found) << "width " << width << " hot " << hot;
        }
    });
}

TEST(TaskGroup, RunsEveryTask) {
    std::vector<std::atomic<int>> ran(16);
    TaskGroup group;
    for (std::size_t t = 0; t < ran.size(); ++t) {
        group.run([&ran, t] { ran[t].fetch_add(1); });
    }
    group.wait();
    for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(TaskGroup, WaitRethrowsFirstFailureAfterAllTasksFinish) {
    std::atomic<int> completed{0};
    TaskGroup group;
    for (int t = 0; t < 8; ++t) {
        group.run([&completed, t] {
            if (t == 3) throw std::runtime_error("task 3");
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The failure did not abandon the other tasks (no leaked runnables —
    // the property the Fig. 4 bench relies on).
    EXPECT_EQ(completed.load(), 7);
}

TEST(TaskGroup, DestructorJoinsWithoutWait) {
    std::atomic<int> ran{0};
    {
        TaskGroup group;
        group.run([&ran] { ran.fetch_add(1); });
        group.run([&ran] {
            ran.fetch_add(1);
            throw std::runtime_error("dropped at destructor");
        });
        // no wait(): destructor must join and swallow the exception
    }
    EXPECT_EQ(ran.load(), 2);
}

TEST(TaskGroup, EmptyGroupWaits) {
    TaskGroup group;
    group.wait();  // must not hang
}

TEST(Nesting, RegionsInsideTasksComplete) {
    // TaskGroup tasks that each open parallel regions (the vocab-tree
    // build shape) — must complete without deadlock even when the pool is
    // saturated, because every region's opener participates.
    at_each_width({1, 2, 8}, [](std::size_t) {
        std::atomic<long> total{0};
        TaskGroup group;
        for (int t = 0; t < 6; ++t) {
            group.run([&total] {
                const long sum = parallel_reduce(
                    0, 500, 13, 0L,
                    [](std::size_t lo, std::size_t hi) {
                        long s = 0;
                        for (std::size_t i = lo; i < hi; ++i) {
                            s += static_cast<long>(i);
                        }
                        return s;
                    },
                    [](long a, long b) { return a + b; });
                total.fetch_add(sum);
            });
        }
        group.wait();
        EXPECT_EQ(total.load(), 6L * (499L * 500L / 2));
    });
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
    ThreadPool pool(0);
    int ran = 0;
    pool.submit([&ran] { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, GlobalPoolHasMinimumWidth) {
    EXPECT_GE(ThreadPool::global().num_workers() + 1,
              ThreadPool::kMinPoolWidth);
}

TEST(Config, MaxThreadsRoundTrips) {
    set_max_threads(3);
    EXPECT_EQ(max_threads(), 3u);
    set_max_threads(0);
    EXPECT_EQ(max_threads(), hardware_threads());
}

}  // namespace
}  // namespace mie::exec
