// Cluster subsystem tests: deterministic HKDF routing (golden vectors),
// deterministic scatter/gather merge (bitwise-equal to a single-node run
// over the union of repositories), WAL-shipping replication (record
// batches, snapshot bootstrap after checkpoint truncation, promote), and
// crash/re-pull dedup on the follower.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "cluster/router.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "mie/wire.hpp"
#include "net/envelope.hpp"
#include "net/message.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace mie::cluster {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(RouterTest, RejectsZeroShards) {
    EXPECT_THROW(Router(0), std::invalid_argument);
}

// Golden vectors pin the routing function forever: HKDF(ikm = repo_id,
// info = "mie/cluster/route/v1"), first 8 bytes little-endian. A change
// to any of these values silently migrates every repository in every
// deployed cluster — this test makes that loud instead.
TEST(RouterTest, GoldenRoutingVectors) {
    struct Vector {
        const char* repo_id;
        std::uint64_t digest;
        std::uint32_t shard_of_2;
        std::uint32_t shard_of_4;
    };
    const Vector vectors[] = {
        {"repo-a", 0xcf2a35eca4c71501ull, 1, 1},
        {"repo-b", 0x50c7a23765401240ull, 0, 0},
        {"repo-c", 0xddcd4d6879580c09ull, 1, 1},
        {"repo-d", 0x8ae27b84d52af0ecull, 0, 0},
        {"repo-e", 0x005806d439f0742cull, 0, 0},
        {"repo-f", 0x356245d0ae08371cull, 0, 0},
        {"", 0x47e2a1b6ffbd286aull, 0, 2},
        {"photos/2026", 0x741bb4909cd8d935ull, 1, 1},
        {"user-42/voice-memos", 0x9ad8c389778c6eceull, 0, 2},
    };
    const Router two(2);
    const Router four(4);
    for (const Vector& v : vectors) {
        SCOPED_TRACE(v.repo_id);
        EXPECT_EQ(Router::routing_digest(v.repo_id), v.digest);
        EXPECT_EQ(two.shard_of(v.repo_id), v.shard_of_2);
        EXPECT_EQ(four.shard_of(v.repo_id), v.shard_of_4);
    }
}

// Property extension of the golden vectors: for 10k seeded-random repo
// ids, (1) the digest alone determines placement at EVERY shard count
// 1..64 (shard_of == digest % n — resharding is a pure modulus change,
// no per-count salt that would silently remap ids), and (2) the whole
// digest population is pinned by one aggregate CRC-32C, a golden vector
// too large to list. If the routing KDF changes, this fails loudly for
// the entire id space, not just nine handpicked names.
TEST(RouterTest, DigestsStableAcrossShardCountsForRandomIdPopulation) {
    constexpr std::size_t kNumIds = 10'000;
    constexpr std::uint32_t kPinnedDigestCrc = 0xbdd45a28u;

    SplitMix64 rng(0x520f7e5u);
    std::vector<Router> routers;
    routers.reserve(64);
    for (std::uint32_t n = 1; n <= 64; ++n) routers.emplace_back(n);

    std::uint32_t crc = crc32c_init();
    for (std::size_t i = 0; i < kNumIds; ++i) {
        // Mixed-shape ids: plain counters, hex-ish, path-like.
        const std::uint64_t noise = rng();
        std::string id;
        switch (i % 3) {
            case 0: id = "repo-" + std::to_string(noise); break;
            case 1: id = "u" + std::to_string(noise % 100'000) + "/photos/" +
                         std::to_string(i); break;
            default: id = std::string("fleet:") + std::to_string(i) + ":" +
                          std::to_string(noise % 997); break;
        }
        const std::uint64_t digest = Router::routing_digest(id);
        for (std::uint32_t n = 1; n <= 64; ++n) {
            ASSERT_EQ(routers[n - 1].shard_of(id), digest % n)
                << id << " at " << n << " shards";
        }
        std::uint8_t le[8];
        for (int b = 0; b < 8; ++b) {
            le[b] = static_cast<std::uint8_t>(digest >> (8 * b));
        }
        crc = crc32c_update(crc, BytesView(le, 8));
    }
    EXPECT_EQ(crc32c_final(crc), kPinnedDigestCrc)
        << "routing digests drifted for the 10k-id population";
}

TEST(RouterTest, PlacementIsStableAndCoversEveryShard) {
    const Router router(4);
    std::set<std::uint32_t> hit;
    for (int i = 0; i < 100; ++i) {
        const std::string id = "repository-" + std::to_string(i);
        const std::uint32_t shard = router.shard_of(id);
        ASSERT_LT(shard, 4u);
        EXPECT_EQ(shard, router.shard_of(id));  // stable per id
        EXPECT_EQ(shard, Router::routing_digest(id) % 4);
        hit.insert(shard);
    }
    EXPECT_EQ(hit.size(), 4u);  // 100 ids must spread over all 4 shards
}

// ---------------------------------------------------------------------------
// merge_ranked
// ---------------------------------------------------------------------------

ClusterSearchResult make_result(std::string repo, std::uint64_t id,
                                double score) {
    ClusterSearchResult result;
    result.repo_id = std::move(repo);
    result.object_id = id;
    result.score = score;
    return result;
}

TEST(MergeRankedTest, OrdersByScoreThenRepoThenObjectId) {
    // Per-repo lists arrive server-ordered: score desc, object id asc.
    std::vector<std::vector<ClusterSearchResult>> lists;
    lists.push_back({make_result("beta", 1, 0.9), make_result("beta", 2, 0.5),
                     make_result("beta", 9, 0.5)});
    lists.push_back(
        {make_result("alpha", 7, 0.9), make_result("alpha", 3, 0.5)});

    const auto merged = merge_ranked(lists, 10);
    ASSERT_EQ(merged.size(), 5u);
    EXPECT_EQ(merged[0].repo_id, "alpha");  // 0.9 tie: repo id breaks it
    EXPECT_EQ(merged[0].object_id, 7u);
    EXPECT_EQ(merged[1].repo_id, "beta");
    EXPECT_EQ(merged[1].object_id, 1u);
    EXPECT_EQ(merged[2].repo_id, "alpha");  // 0.5 tie: alpha/3 first
    EXPECT_EQ(merged[2].object_id, 3u);
    EXPECT_EQ(merged[3].object_id, 2u);     // beta tie: object id asc
    EXPECT_EQ(merged[4].object_id, 9u);

    // Any permutation of the input lists merges identically.
    std::vector<std::vector<ClusterSearchResult>> swapped = {lists[1],
                                                             lists[0]};
    const auto remerged = merge_ranked(swapped, 10);
    ASSERT_EQ(remerged.size(), merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(remerged[i].repo_id, merged[i].repo_id);
        EXPECT_EQ(remerged[i].object_id, merged[i].object_id);
    }

    // top_k truncates after the deterministic order is fixed.
    EXPECT_EQ(merge_ranked(lists, 2).size(), 2u);
    EXPECT_EQ(merge_ranked(lists, 2)[1].object_id, 1u);
}

// ---------------------------------------------------------------------------
// Shared fixtures and helpers for node-level tests
// ---------------------------------------------------------------------------

/// Transport decorator recording every request (and the last response):
/// the recorded bytes drive the single-node reference replay and the
/// scatter/gather queries.
class CaptureTransport final : public net::Transport {
public:
    explicit CaptureTransport(net::Transport& inner) : inner_(inner) {}

    Bytes call(BytesView request) override {
        Bytes copy(request.begin(), request.end());
        Bytes response = inner_.call(copy);
        requests_.push_back(std::move(copy));
        last_response_ = response;
        return response;
    }

    const std::vector<Bytes>& requests() const { return requests_; }
    const Bytes& last_request() const { return requests_.back(); }
    const Bytes& last_response() const { return last_response_; }

private:
    net::Transport& inner_;
    std::vector<Bytes> requests_;
    Bytes last_response_;
};

class ClusterTest : public ::testing::Test {
protected:
    ClusterTest()
        : dir_(fs::temp_directory_path() /
               ("mie_cluster_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~ClusterTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path node_dir(const std::string& name) const { return dir_ / name; }

    static std::unique_ptr<MieClient> make_client(net::Transport& transport,
                                                  const std::string& repo) {
        auto client = std::make_unique<MieClient>(
            transport, repo,
            RepositoryKey::generate(to_bytes("cluster-" + repo), 64, 64,
                                    0.7978845608),
            to_bytes("user-" + repo));
        client->train_params.tree_branch = 4;
        client->train_params.tree_depth = 2;
        return client;
    }

    /// create + `objects` updates + train, with a per-repo generator.
    static void run_repo_workload(MieClient& client, std::uint64_t seed,
                                  int objects) {
        sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
            .num_classes = 2, .image_size = 48, .seed = seed});
        client.create_repository();
        for (int i = 0; i < objects; ++i) client.update(gen.make(i));
        client.train();
    }

    fs::path dir_;
};

Bytes snapshot_of(const Node& node) {
    return node.durable().server().export_snapshot();
}

// ---------------------------------------------------------------------------
// Scatter/gather vs single node
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, ScatterGatherSearchMatchesSingleNodeBitwise) {
    // Two shards; golden vectors place repo-a/repo-c on shard 1 and
    // repo-b/d/e/f on shard 0, so both shards serve real traffic.
    Node shard0(store::PosixVfs::instance(), node_dir("s0"));
    Node shard1(store::PosixVfs::instance(), node_dir("s1"));
    net::MeteredTransport wire0(shard0, net::LinkProfile::loopback());
    net::MeteredTransport wire1(shard1, net::LinkProfile::loopback());
    ClusterClient cluster({{&wire0, nullptr}, {&wire1, nullptr}});
    CaptureTransport capture(cluster);

    const std::vector<std::string> repos = {"repo-a", "repo-b", "repo-c",
                                            "repo-d", "repo-e", "repo-f"};
    std::vector<RepoSearch> queries;
    for (std::size_t i = 0; i < repos.size(); ++i) {
        auto client = make_client(capture, repos[i]);
        run_repo_workload(*client, /*seed=*/10 + i, /*objects=*/3);
        // Issue the per-repo ranked search once to capture its exact
        // request bytes; the scatter/gather below reuses them verbatim.
        sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
            .num_classes = 2, .image_size = 48, .seed = 10 + i});
        const auto results = client->search(gen.make(1), 3);
        ASSERT_FALSE(results.empty()) << repos[i];
        queries.push_back(RepoSearch{repos[i], capture.last_request()});
    }

    // Both shards hold repositories (golden placement: b on 0, a on 1).
    EXPECT_EQ(shard0.durable().server().stats("repo-b").num_objects, 3u);
    EXPECT_EQ(shard1.durable().server().stats("repo-a").num_objects, 3u);

    // Single-node reference: replay the exact same request bytes, in the
    // same order, against ONE node holding the union of repositories.
    Node reference(store::PosixVfs::instance(), node_dir("ref"));
    for (const Bytes& request : capture.requests()) {
        reference.handle(request);
    }

    const std::size_t top_k = 10;
    const auto cluster_results = cluster.search_union(queries, top_k);
    ASSERT_FALSE(cluster_results.empty());
    EXPECT_EQ(cluster.stats().scatter_queries, repos.size());

    std::vector<std::vector<ClusterSearchResult>> reference_lists;
    for (const RepoSearch& query : queries) {
        reference_lists.push_back(parse_search_response(
            query.repo_id, reference.handle(query.request)));
    }
    const auto reference_results =
        merge_ranked(std::move(reference_lists), top_k);

    // Bitwise equality: same ids, same blobs, same score BITS.
    ASSERT_EQ(cluster_results.size(), reference_results.size());
    std::set<std::string> repos_in_results;
    for (std::size_t i = 0; i < cluster_results.size(); ++i) {
        SCOPED_TRACE("result " + std::to_string(i));
        EXPECT_EQ(cluster_results[i].repo_id, reference_results[i].repo_id);
        EXPECT_EQ(cluster_results[i].object_id,
                  reference_results[i].object_id);
        EXPECT_EQ(std::memcmp(&cluster_results[i].score,
                              &reference_results[i].score, sizeof(double)),
                  0);
        EXPECT_EQ(cluster_results[i].encrypted_object,
                  reference_results[i].encrypted_object);
        repos_in_results.insert(cluster_results[i].repo_id);
    }
    EXPECT_GT(repos_in_results.size(), 1u);  // a real cross-repo merge
}

TEST_F(ClusterTest, ClusterClientRoutesByRepositoryId) {
    Node shard0(store::PosixVfs::instance(), node_dir("s0"));
    Node shard1(store::PosixVfs::instance(), node_dir("s1"));
    net::MeteredTransport wire0(shard0, net::LinkProfile::loopback());
    net::MeteredTransport wire1(shard1, net::LinkProfile::loopback());
    ClusterClient cluster({{&wire0, nullptr}, {&wire1, nullptr}});

    auto client_b = make_client(cluster, "repo-b");  // shard 0
    auto client_a = make_client(cluster, "repo-a");  // shard 1
    client_b->create_repository();
    client_a->create_repository();

    EXPECT_NO_THROW(shard0.durable().server().stats("repo-b"));
    EXPECT_THROW(shard0.durable().server().stats("repo-a"),
                 std::invalid_argument);
    EXPECT_NO_THROW(shard1.durable().server().stats("repo-a"));
    EXPECT_THROW(shard1.durable().server().stats("repo-b"),
                 std::invalid_argument);
    EXPECT_EQ(cluster.shard_of("repo-b"), 0u);
    EXPECT_EQ(cluster.shard_of("repo-a"), 1u);

    // Cluster control ops carry no repository id and are not routable.
    net::MessageWriter promote;
    promote.write_u8(static_cast<std::uint8_t>(ClusterOp::kPromote));
    EXPECT_THROW(cluster.call(promote.take()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replication: WAL shipping, state, promote
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, ReplicationShipsWalAndFollowerMatchesPrimary) {
    Node primary(store::PosixVfs::instance(), node_dir("primary"));
    NodeOptions follower_options;
    follower_options.role = Role::kFollower;
    Node follower(store::PosixVfs::instance(), node_dir("follower"),
                  follower_options);

    net::MeteredTransport client_wire(primary, net::LinkProfile::loopback());
    CaptureTransport capture(client_wire);
    auto client = make_client(capture, "repo-a");
    run_repo_workload(*client, /*seed=*/3, /*objects=*/4);

    net::MeteredTransport repl_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(follower, repl_wire);
    const std::size_t shipped = replicator.sync();
    EXPECT_EQ(shipped, 6u);  // create + 4 updates + train

    EXPECT_EQ(follower.acked_lsn(), primary.durable().durability().last_lsn);
    EXPECT_EQ(snapshot_of(follower), snapshot_of(primary));
    // The follower re-logged every shipped record into its own WAL.
    EXPECT_EQ(follower.durable().durability().records_logged, 6u);

    // kReplState over the wire reports both sides correctly.
    net::MessageWriter state_request;
    state_request.write_u8(static_cast<std::uint8_t>(ClusterOp::kReplState));
    const Bytes state = follower.handle(state_request.take());
    net::MessageReader reader(state);
    EXPECT_EQ(reader.read_u8(), static_cast<std::uint8_t>(Role::kFollower));
    EXPECT_EQ(reader.read_u64(), 6u);  // local last_lsn
    EXPECT_EQ(reader.read_u64(), 6u);  // acked replication offset

    // A caught-up pump is a no-op.
    const Replicator::PumpResult idle = replicator.pump();
    EXPECT_EQ(idle.records_applied, 0u);
    EXPECT_TRUE(idle.caught_up);

    // Reads are served by the follower, bitwise-identically; mutations
    // are refused until promotion.
    sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
        .num_classes = 2, .image_size = 48, .seed = 3});
    client->search(gen.make(1), 2);
    const Bytes search_request = capture.last_request();
    const Bytes primary_response = capture.last_response();
    EXPECT_EQ(follower.handle(search_request), primary_response);
    // A client mutation (the captured enveloped create) is refused even
    // though its envelope sits in the follower's replay cache: the role
    // gate comes first, and failover handles redirection.
    EXPECT_THROW(follower.handle(capture.requests().front()),
                 NotPrimaryError);

    // Promote over the wire; the follower then accepts mutations.
    net::MeteredTransport follower_wire(follower,
                                        net::LinkProfile::loopback());
    net::MessageWriter promote;
    promote.write_u8(static_cast<std::uint8_t>(ClusterOp::kPromote));
    const Bytes ack = follower_wire.call(promote.take());
    ASSERT_EQ(ack.size(), 1u);
    EXPECT_EQ(ack[0], 1u);
    EXPECT_EQ(follower.role(), Role::kPrimary);
    auto failover_client = make_client(follower_wire, "repo-a");
    sim::FlickrLikeGenerator more(sim::FlickrLikeParams{
        .num_classes = 2, .image_size = 48, .seed = 9});
    failover_client->update(more.make(41));  // does not throw
}

TEST_F(ClusterTest, SnapshotBootstrapAfterCheckpointTruncation) {
    // Aggressive checkpointing + tiny segments: by the end of the
    // workload the primary's log head has been truncated away, so a
    // from-zero follower MUST bootstrap via snapshot.
    NodeOptions primary_options;
    primary_options.storage.checkpoint_every_bytes = 1024;
    primary_options.storage.wal.segment_bytes = 4096;
    Node primary(store::PosixVfs::instance(), node_dir("primary"),
                 primary_options);

    net::MeteredTransport client_wire(primary, net::LinkProfile::loopback());
    auto client = make_client(client_wire, "repo-a");
    run_repo_workload(*client, /*seed=*/5, /*objects=*/6);
    ASSERT_GT(primary.durable().oldest_log_lsn(), 1u)
        << "workload too small to truncate the log head";

    NodeOptions follower_options;
    follower_options.role = Role::kFollower;
    Node follower(store::PosixVfs::instance(), node_dir("follower"),
                  follower_options);
    net::MeteredTransport repl_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(follower, repl_wire);

    const Replicator::PumpResult first = replicator.pump();
    EXPECT_TRUE(first.restored_snapshot);
    EXPECT_GT(first.acked_lsn, 0u);
    EXPECT_EQ(follower.replication().snapshots_restored, 1u);
    replicator.sync();
    EXPECT_EQ(snapshot_of(follower), snapshot_of(primary));

    // Incremental shipping still works after the bootstrap.
    sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
        .num_classes = 2, .image_size = 48, .seed = 5});
    client->update(gen.make(77));
    const std::size_t shipped = replicator.sync();
    EXPECT_GE(shipped, 1u);
    EXPECT_EQ(snapshot_of(follower), snapshot_of(primary));
    EXPECT_EQ(follower.acked_lsn(), primary.durable().durability().last_lsn);
}

TEST_F(ClusterTest, FollowerCrashRepullIsDeduplicated) {
    Node primary(store::PosixVfs::instance(), node_dir("primary"));
    net::MeteredTransport client_wire(primary, net::LinkProfile::loopback());
    auto client = make_client(client_wire, "repo-a");
    run_repo_workload(*client, /*seed=*/4, /*objects=*/4);

    const fs::path follower_dir = node_dir("follower");
    {
        NodeOptions options;
        options.role = Role::kFollower;
        Node follower(store::PosixVfs::instance(), follower_dir, options);
        net::MeteredTransport repl_wire(primary,
                                        net::LinkProfile::loopback());
        Replicator replicator(follower, repl_wire);
        replicator.sync();
        EXPECT_EQ(snapshot_of(follower), snapshot_of(primary));
    }
    // Crash model: the follower applied and locally logged everything,
    // but died before its replication offset reached disk. Deleting the
    // offset file forces the worst case — a full re-pull from zero.
    fs::remove(follower_dir / "repl-offset");

    NodeOptions options;
    options.role = Role::kFollower;
    Node reopened(store::PosixVfs::instance(), follower_dir, options);
    EXPECT_EQ(reopened.acked_lsn(), 0u);
    // Recovery already replayed the local WAL, so state is intact...
    EXPECT_EQ(snapshot_of(reopened), snapshot_of(primary));

    net::MeteredTransport repl_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(reopened, repl_wire);
    const std::size_t redelivered = replicator.sync();
    EXPECT_EQ(redelivered, 6u);  // every record re-pulled...
    // ...but every re-apply was suppressed by the rebuilt replay cache:
    // exactly-once held, nothing was logged twice.
    EXPECT_EQ(reopened.durable().durability().replays_suppressed, 6u);
    EXPECT_EQ(reopened.durable().durability().records_logged, 0u);
    EXPECT_EQ(snapshot_of(reopened), snapshot_of(primary));
    EXPECT_EQ(reopened.acked_lsn(), primary.durable().durability().last_lsn);
}

TEST_F(ClusterTest, RetryAfterFailoverIsDeduplicated) {
    Node primary(store::PosixVfs::instance(), node_dir("primary"));
    NodeOptions follower_options;
    follower_options.role = Role::kFollower;
    Node follower(store::PosixVfs::instance(), node_dir("follower"),
                  follower_options);

    net::MeteredTransport client_wire(primary, net::LinkProfile::loopback());
    CaptureTransport capture(client_wire);
    auto client = make_client(capture, "repo-a");
    run_repo_workload(*client, /*seed=*/6, /*objects=*/3);
    const Bytes last_mutation = capture.last_request();  // enveloped train
    const Bytes original_response = capture.last_response();
    ASSERT_TRUE(net::parse_envelope(last_mutation).has_value());

    net::MeteredTransport repl_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(follower, repl_wire);
    replicator.sync();
    follower.promote();

    // The client's retry of an already-applied mutation lands on the
    // promoted follower: answered from the shipped replay cache, state
    // untouched, response byte-identical to the primary's original.
    const Bytes before = snapshot_of(follower);
    const std::size_t suppressed_before =
        follower.durable().durability().replays_suppressed;
    const Bytes replayed = follower.handle(last_mutation);
    EXPECT_EQ(replayed, original_response);
    EXPECT_EQ(follower.durable().durability().replays_suppressed,
              suppressed_before + 1);
    EXPECT_EQ(snapshot_of(follower), before);
}

}  // namespace
}  // namespace mie::cluster
