// Regression: the acknowledged replication offset is read from disk at
// most once, at Node construction. Every later sync() round may WRITE
// the offset file (crash-atomic temp+rename) but must never read it
// back — the authoritative value lives in memory. A re-read per pump
// round would put a disk read on the replication hot path and, worse,
// would let a torn or stale file overwrite in-memory truth.
//
// The probe is a counting Vfs wrapper: it delegates everything to the
// real Vfs and tallies read_file() calls and rename() targets per path,
// so the test can assert "reads of <dir>/repl-offset do not grow after
// startup, only writes do" directly against the storage interface the
// node actually uses.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "net/transport.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie::cluster {
namespace {

namespace fs = std::filesystem;

/// Pass-through Vfs that counts read_file() calls and rename() targets
/// by exact path (atomic_write_file surfaces as a rename onto the final
/// path, so rename-counts are write-counts for crash-atomic files).
class CountingVfs final : public store::Vfs {
public:
    explicit CountingVfs(store::Vfs& base) : base_(base) {}

    std::size_t reads_of(const fs::path& path) const {
        const auto it = reads_.find(path.string());
        return it == reads_.end() ? 0 : it->second;
    }
    std::size_t writes_of(const fs::path& path) const {
        const auto it = renames_to_.find(path.string());
        return it == renames_to_.end() ? 0 : it->second;
    }

    std::unique_ptr<store::File> open_append(const fs::path& path) override {
        return base_.open_append(path);
    }
    std::unique_ptr<store::File> create_truncate(
        const fs::path& path) override {
        return base_.create_truncate(path);
    }
    Bytes read_file(const fs::path& path) const override {
        ++reads_[path.string()];
        return base_.read_file(path);
    }
    bool exists(const fs::path& path) const override {
        return base_.exists(path);
    }
    std::uint64_t file_size(const fs::path& path) const override {
        return base_.file_size(path);
    }
    std::vector<fs::path> list_dir(const fs::path& dir) const override {
        return base_.list_dir(dir);
    }
    void remove_file(const fs::path& path) override {
        base_.remove_file(path);
    }
    void truncate_file(const fs::path& path,
                       std::uint64_t new_size) override {
        base_.truncate_file(path, new_size);
    }
    void rename(const fs::path& from, const fs::path& to) override {
        ++renames_to_[to.string()];
        base_.rename(from, to);
    }
    void create_directories(const fs::path& dir) override {
        base_.create_directories(dir);
    }
    void sync_dir(const fs::path& dir) override { base_.sync_dir(dir); }

private:
    store::Vfs& base_;
    mutable std::map<std::string, std::size_t> reads_;
    std::map<std::string, std::size_t> renames_to_;
};

class ReplicationOffsetTest : public ::testing::Test {
protected:
    ReplicationOffsetTest()
        : dir_(fs::temp_directory_path() /
               ("mie_repl_offset_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~ReplicationOffsetTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path dir_;
};

TEST_F(ReplicationOffsetTest, OffsetFileIsOnlyWrittenNeverReReadAfterStartup) {
    // Primary on the plain Vfs; only the follower's I/O is counted.
    Node primary(store::PosixVfs::instance(), dir_ / "p");
    net::MeteredTransport wire(primary, net::LinkProfile::loopback());

    CountingVfs counting(store::PosixVfs::instance());
    const fs::path offset_path = dir_ / "f" / "repl-offset";
    auto follower = std::make_unique<Node>(
        counting, dir_ / "f", NodeOptions{.role = Role::kFollower});

    // Fresh directory: no offset file yet, so startup reads nothing.
    EXPECT_EQ(counting.reads_of(offset_path), 0u);
    EXPECT_EQ(counting.writes_of(offset_path), 0u);

    MieClient client(wire, "offset-repo",
                     RepositoryKey::generate(to_bytes("offset-repo-key"), 64,
                                             64, 0.7978845608),
                     to_bytes("offset-user"));
    client.train_params.tree_branch = 4;
    client.train_params.tree_depth = 2;
    sim::FlickrLikeGenerator generator(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 32, .seed = 9});

    net::MeteredTransport pump_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(*follower, pump_wire);

    client.create_repository();
    std::size_t writes_before = counting.writes_of(offset_path);
    for (int round = 0; round < 4; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        client.update(generator.make(round));
        replicator.sync();
        // New records applied => the offset advanced => exactly the
        // write path ran. The in-memory value is authoritative: still
        // zero reads, every round.
        EXPECT_EQ(counting.reads_of(offset_path), 0u);
        EXPECT_GT(counting.writes_of(offset_path), writes_before);
        writes_before = counting.writes_of(offset_path);
    }

    // A catch-up round with nothing new: no read AND no write (the
    // flush is a no-op while the in-memory offset is clean).
    replicator.sync();
    EXPECT_EQ(counting.reads_of(offset_path), 0u);
    EXPECT_EQ(counting.writes_of(offset_path), writes_before);

    // Restart the follower: the one legitimate read, resuming from the
    // persisted offset instead of re-pulling from zero.
    const std::uint64_t acked_before = follower->acked_lsn();
    ASSERT_GT(acked_before, 0u);
    follower.reset();
    follower = std::make_unique<Node>(
        counting, dir_ / "f", NodeOptions{.role = Role::kFollower});
    EXPECT_EQ(counting.reads_of(offset_path), 1u);
    EXPECT_EQ(follower->acked_lsn(), acked_before);

    // And after the restart the invariant holds again: pump rounds
    // write without ever re-reading.
    Replicator after_restart(*follower, pump_wire);
    client.update(generator.make(99));
    after_restart.sync();
    after_restart.sync();
    EXPECT_EQ(counting.reads_of(offset_path), 1u);
    EXPECT_GT(counting.writes_of(offset_path), writes_before);
}

}  // namespace
}  // namespace mie::cluster
