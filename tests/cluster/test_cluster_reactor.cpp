// Cluster nodes hosted on the epoll reactor, end to end over real TCP.
//
// The in-process cluster tests pin the protocol; this suite pins the
// deployment shape: each replica is a cluster::Node behind its own
// GroupCommitter + ReactorServer, client traffic and the replication
// pump both ride net::TcpTransport, and failover is triggered by
// actually stopping the primary's server. Mutations on the primary still
// flow through group commit (Node implements BatchRequestHandler), while
// cluster control ops (kReplPull/kReplState/kPromote) and searches take
// the reactor's read path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "mie/wire.hpp"
#include "net/tcp.hpp"
#include "reactor/reactor.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie::cluster {
namespace {

namespace fs = std::filesystem;
using reactor::GroupCommitter;
using reactor::ReactorServer;

/// A node plus the reactor stack that serves it on 127.0.0.1.
struct HostedNode {
    HostedNode(const fs::path& dir, Role role)
        : node(store::PosixVfs::instance(), dir, NodeOptions{.role = role}),
          committer(node),
          server(node, &committer, is_mutating_request) {
        server.start();
    }

    ~HostedNode() {
        server.stop();
        committer.stop();
    }

    Node node;
    GroupCommitter committer;
    ReactorServer server;
};

class ClusterReactorTest : public ::testing::Test {
protected:
    ClusterReactorTest()
        : dir_(fs::temp_directory_path() /
               ("mie_cluster_reactor_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~ClusterReactorTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path dir_;
};

TEST_F(ClusterReactorTest, ReplicationAndFailoverOverTcp) {
    auto primary = std::make_unique<HostedNode>(dir_ / "p", Role::kPrimary);
    HostedNode follower(dir_ / "f", Role::kFollower);

    net::TcpTransport to_primary("127.0.0.1", primary->server.port());
    net::TcpTransport to_follower("127.0.0.1", follower.server.port());
    ClusterClient cluster(
        std::vector<ShardEndpoints>{{&to_primary, &to_follower}});

    MieClient client(cluster, "repo-tcp",
                     RepositoryKey::generate(to_bytes("reactor-cluster"), 64,
                                             64, 0.7978845608),
                     to_bytes("user"));
    client.train_params.tree_branch = 4;
    client.train_params.tree_depth = 2;
    sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
        .num_classes = 2, .image_size = 48, .seed = 11});

    client.create_repository();
    for (const auto& object : generator.make_batch(0, 4)) {
        client.update(object);
    }
    client.train();
    // Primary mutations went through group commit, not the read path.
    EXPECT_EQ(primary->committer.stats().submitted, 6u);
    EXPECT_EQ(primary->committer.stats().errors, 0u);

    // Replication pump over its own TCP connection to the primary.
    net::TcpTransport repl_link("127.0.0.1", primary->server.port());
    Replicator repl(follower.node, repl_link);
    EXPECT_EQ(repl.sync(), 6u);
    EXPECT_EQ(follower.node.acked_lsn(),
              primary->node.durable().durability().last_lsn);
    EXPECT_EQ(follower.node.durable().server().export_snapshot(),
              primary->node.durable().server().export_snapshot());

    // Reads are served by either replica over TCP, byte-identically.
    const auto results = client.search(generator.make(1), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 1u);

    // Kill the primary for real: stop its server, drop the hosted stack.
    primary.reset();

    // The next mutation hits a dead endpoint; the ClusterClient promotes
    // the follower over TCP (kPromote on the read path) and replays the
    // enveloped request against it — accepted because the promoted node
    // now routes mutations through its own group committer.
    client.update(generator.make(100));
    EXPECT_TRUE(cluster.on_follower(0));
    EXPECT_EQ(cluster.stats().failovers, 1u);
    EXPECT_EQ(follower.node.role(), Role::kPrimary);
    EXPECT_GE(follower.committer.stats().submitted, 1u);

    // The promoted node serves searches over the new object.
    const auto post = client.search(generator.make(100), 1);
    ASSERT_FALSE(post.empty());
    EXPECT_EQ(post.front().object_id, 100u);
}

// A mutation sent straight to a follower over TCP (bypassing the
// ClusterClient) must not be applied: the role gate throws inside the
// group-commit path, the reactor drops that client's connection, and the
// follower's durable state is untouched.
TEST_F(ClusterReactorTest, FollowerRejectsDirectMutationOverTcp) {
    HostedNode follower(dir_ / "f", Role::kFollower);
    net::TcpTransport direct("127.0.0.1", follower.server.port());

    MieClient client(direct, "repo-tcp",
                     RepositoryKey::generate(to_bytes("reactor-cluster"), 64,
                                             64, 0.7978845608),
                     to_bytes("user"));
    EXPECT_THROW(client.create_repository(), net::TransportError);
    EXPECT_EQ(follower.node.durable().durability().records_logged, 0u);
    EXPECT_EQ(follower.committer.stats().errors, 1u);
}

}  // namespace
}  // namespace mie::cluster
