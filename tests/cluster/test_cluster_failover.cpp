// Cluster failover fault matrix.
//
// A two-shard cluster (each shard = primary + follower + WAL-shipping
// replicator) runs a mutating workload while the target shard's primary
// is killed mid-stream — at different workload positions, with the kill
// striking either before the primary saw the request (send kinds) or
// after it applied but before the client learned (recv kinds, the case
// only exactly-once machinery can save). The ClusterClient must exhaust
// its retries, promote the follower, and replay the in-flight mutation
// under the idempotency envelope.
//
// The oracle is an acked-operations shadow: every request bytes the
// client saw succeed is replayed into a per-shard shadow server. After
// failover the promoted follower's exported snapshot must equal its
// shadow EXACTLY — an operation acked once appears once, whether it was
// acked by the dead primary (and shipped), applied-but-unacked on the
// dead primary (and replayed fresh on the follower), or acked by the
// promoted follower directly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "cluster/router.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "mie/server.hpp"
#include "net/envelope.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie::cluster {
namespace {

namespace fs = std::filesystem;

using net::FaultKind;

constexpr std::uint32_t kTargetShard = 1;  // repo-a and repo-c live here

bool is_send_kind(FaultKind kind) {
    return kind == FaultKind::kDropSend || kind == FaultKind::kResetSend;
}

/// Records successfully acked requests (the shadow's input).
class AckedCapture final : public net::Transport {
public:
    explicit AckedCapture(net::Transport& inner) : inner_(inner) {}

    Bytes call(BytesView request) override {
        Bytes copy(request.begin(), request.end());
        Bytes response = inner_.call(copy);
        acked_.push_back(std::move(copy));
        last_response_ = response;
        return response;
    }

    const std::vector<Bytes>& acked() const { return acked_; }
    const Bytes& last_request() const { return acked_.back(); }
    const Bytes& last_response() const { return last_response_; }

private:
    net::Transport& inner_;
    std::vector<Bytes> acked_;
    Bytes last_response_;
};

/// Kills the primary behind `faulty` at its very next call: the kill
/// kind strikes first (send kinds on the send op, recv kinds on the recv
/// op — after the server applied), and every later send op resets, so
/// retries exhaust and the primary stays dead for good.
void arm_kill(net::FaultyTransport& faulty, FaultKind kind) {
    const std::uint64_t base = faulty.ops_issued();  // next call's send op
    faulty.schedule_fault(is_send_kind(kind) ? base : base + 1, kind);
    for (std::uint64_t op = base + 2; op < base + 100; op += 2) {
        faulty.schedule_fault(op, FaultKind::kResetSend);
    }
}

class ClusterFailoverTest : public ::testing::Test {
protected:
    ClusterFailoverTest()
        : dir_(fs::temp_directory_path() /
               ("mie_cluster_failover_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~ClusterFailoverTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    static std::unique_ptr<MieClient> make_client(net::Transport& transport,
                                                  const std::string& repo) {
        auto client = std::make_unique<MieClient>(
            transport, repo,
            RepositoryKey::generate(to_bytes("failover-" + repo), 64, 64,
                                    0.7978845608),
            to_bytes("user-" + repo));
        client->train_params.tree_branch = 4;
        client->train_params.tree_depth = 2;
        return client;
    }

    /// One matrix cell: `kind` kills the target shard's primary at that
    /// shard's `kill_call`-th logical client call.
    void run_cell(FaultKind kind, std::size_t kill_call) {
        SCOPED_TRACE(std::string(net::fault_kind_name(kind)) +
                     " at shard-1 call " + std::to_string(kill_call));
        const fs::path cell =
            dir_ / (std::string(net::fault_kind_name(kind)) + "-" +
                    std::to_string(kill_call));

        // Shard nodes: primary + follower each, own directories.
        NodeOptions follower_options;
        follower_options.role = Role::kFollower;
        Node p0(store::PosixVfs::instance(), cell / "p0");
        Node p1(store::PosixVfs::instance(), cell / "p1");
        Node f0(store::PosixVfs::instance(), cell / "f0", follower_options);
        Node f1(store::PosixVfs::instance(), cell / "f1", follower_options);

        // Client stacks. Only shard 1's primary link gets the fault
        // injector; every endpoint retries transient faults first.
        net::MeteredTransport wire_p0(p0, net::LinkProfile::loopback());
        net::MeteredTransport wire_p1(p1, net::LinkProfile::loopback());
        net::FaultyTransport faulty_p1(wire_p1);
        net::MeteredTransport wire_f0(f0, net::LinkProfile::loopback());
        net::MeteredTransport wire_f1(f1, net::LinkProfile::loopback());
        const net::RetryPolicy policy{.max_attempts = 3};
        net::RetryingTransport retry_p0(wire_p0, policy);
        net::RetryingTransport retry_p1(faulty_p1, policy);
        net::RetryingTransport retry_f0(wire_f0, policy);
        net::RetryingTransport retry_f1(wire_f1, policy);
        for (net::RetryingTransport* t :
             {&retry_p0, &retry_p1, &retry_f0, &retry_f1}) {
            t->set_sleeper([](double) {});
        }

        ClusterClient cluster(
            {{&retry_p0, &retry_f0}, {&retry_p1, &retry_f1}});
        AckedCapture capture(cluster);

        // Replication pumps ride their own clean links to the primaries.
        net::MeteredTransport repl_wire0(p0, net::LinkProfile::loopback());
        net::MeteredTransport repl_wire1(p1, net::LinkProfile::loopback());
        Replicator repl0(f0, repl_wire0);
        Replicator repl1(f1, repl_wire1);

        // Acked-operations shadow, one per shard.
        MieServer shadow0, shadow1;
        net::DedupHandler shadow_dedup0(shadow0);
        net::DedupHandler shadow_dedup1(shadow1);

        const Router router(2);
        const std::vector<std::string> repos = {"repo-a", "repo-b", "repo-c",
                                                "repo-d"};
        std::vector<std::unique_ptr<MieClient>> clients;
        std::vector<sim::FlickrLikeGenerator> generators;
        for (std::size_t i = 0; i < repos.size(); ++i) {
            clients.push_back(make_client(capture, repos[i]));
            generators.emplace_back(sim::FlickrLikeParams{
                .num_classes = 2, .image_size = 48,
                .seed = 20 + static_cast<std::uint64_t>(i)});
        }

        std::size_t target_calls = 0;
        bool killed = false;
        const auto issue = [&](std::size_t repo_index,
                               const std::function<void()>& op) {
            const std::uint32_t shard = router.shard_of(repos[repo_index]);
            if (shard == kTargetShard && !killed &&
                target_calls == kill_call) {
                arm_kill(faulty_p1, kind);
                killed = true;  // the primary never comes back
            }
            const std::size_t before = capture.acked().size();
            op();  // may fail over inside the ClusterClient
            if (shard == kTargetShard) ++target_calls;
            for (std::size_t i = before; i < capture.acked().size(); ++i) {
                (shard == 0 ? shadow_dedup0 : shadow_dedup1)
                    .handle(capture.acked()[i]);
            }
            // Acked => replicated, while the shard's primary is alive.
            repl0.sync();
            if (!killed) repl1.sync();
        };

        // Interleaved workload: create, two updates, train — round-robin
        // across repositories so the kill lands between cross-shard ops.
        for (std::size_t r = 0; r < repos.size(); ++r) {
            issue(r, [&] { clients[r]->create_repository(); });
        }
        for (int object = 0; object < 2; ++object) {
            for (std::size_t r = 0; r < repos.size(); ++r) {
                issue(r, [&] {
                    clients[r]->update(generators[r].make(object));
                });
            }
        }
        for (std::size_t r = 0; r < repos.size(); ++r) {
            issue(r, [&] { clients[r]->train(); });
        }

        // The kill happened, failover promoted shard 1's follower, and
        // shard 0 never noticed anything.
        ASSERT_TRUE(killed);
        EXPECT_TRUE(cluster.on_follower(kTargetShard));
        EXPECT_FALSE(cluster.on_follower(0));
        EXPECT_EQ(cluster.stats().failovers, 1u);
        EXPECT_GE(faulty_p1.stats().faults_injected, 1u);
        EXPECT_EQ(f1.role(), Role::kPrimary);

        // Recovered cluster state == acked-operations shadow, exactly.
        EXPECT_EQ(p0.durable().server().export_snapshot(),
                  shadow0.export_snapshot());
        EXPECT_EQ(f1.durable().server().export_snapshot(),
                  shadow1.export_snapshot());
        // The healthy shard's follower also tracked every acked op.
        EXPECT_EQ(f0.durable().server().export_snapshot(),
                  shadow0.export_snapshot());

        // Ranked search after failover: served by the promoted follower,
        // byte-identical to the shadow's answer.
        const auto results = clients[0]->search(generators[0].make(1), 2);
        ASSERT_FALSE(results.empty());
        EXPECT_EQ(shadow1.handle(capture.last_request()),
                  capture.last_response());
    }

    fs::path dir_;
};

// Send kills: the request never reached the primary; the replayed
// envelope applies fresh on the promoted follower.
TEST_F(ClusterFailoverTest, ResetSendKillsAcrossWorkloadPositions) {
    for (const std::size_t position : {0u, 2u, 5u, 7u}) {
        run_cell(FaultKind::kResetSend, position);
    }
}

// Reset-recv kills: the primary APPLIED the mutation but the ack was
// lost — the exactly-once case. The follower never saw the record (the
// pump stops at the kill), so the client's replay applies it fresh; the
// shadow proves it applied exactly once.
TEST_F(ClusterFailoverTest, ResetRecvKillsAcrossWorkloadPositions) {
    for (const std::size_t position : {0u, 2u, 5u, 7u}) {
        run_cell(FaultKind::kResetRecv, position);
    }
}

// Drop-recv kills: same applied-but-unacked window, surfaced as timeouts
// instead of resets.
TEST_F(ClusterFailoverTest, DropRecvKillsAcrossWorkloadPositions) {
    for (const std::size_t position : {0u, 2u, 5u, 7u}) {
        run_cell(FaultKind::kDropRecv, position);
    }
}

// Losing BOTH replicas of a shard is not survivable: the client surfaces
// a typed TransportError instead of hanging or mis-routing.
TEST_F(ClusterFailoverTest, ShardWithBothReplicasDeadSurfacesError) {
    Node p1(store::PosixVfs::instance(), dir_ / "p1");
    Node f1(store::PosixVfs::instance(), dir_ / "f1",
            NodeOptions{.role = Role::kFollower});
    net::MeteredTransport wire_p1(p1, net::LinkProfile::loopback());
    net::MeteredTransport wire_f1(f1, net::LinkProfile::loopback());
    net::FaultyTransport faulty_p1(wire_p1);
    net::FaultyTransport faulty_f1(wire_f1);
    net::RetryingTransport retry_p1(faulty_p1,
                                    net::RetryPolicy{.max_attempts = 2});
    net::RetryingTransport retry_f1(faulty_f1,
                                    net::RetryPolicy{.max_attempts = 2});
    retry_p1.set_sleeper([](double) {});
    retry_f1.set_sleeper([](double) {});

    // Single-shard cluster: every repo routes to shard 0 here.
    ClusterClient cluster(
        std::vector<ShardEndpoints>{{&retry_p1, &retry_f1}});
    arm_kill(faulty_p1, FaultKind::kResetSend);
    arm_kill(faulty_f1, FaultKind::kResetSend);

    auto client = make_client(cluster, "repo-a");
    EXPECT_THROW(client->create_repository(), net::TransportError);
    EXPECT_FALSE(cluster.on_follower(0));
}

}  // namespace
}  // namespace mie::cluster
