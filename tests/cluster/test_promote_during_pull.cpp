// Regression: client failover racing an in-flight replication pull.
//
// Scenario pinned here: a shard's primary link looks dead to the CLIENT
// (scripted faults exhaust its retries) while the primary itself is
// alive and still serving the replication feed. The ClusterClient
// promotes the follower and replays the mutation there — a spurious
// failover. The Replicator that was pumping primary -> follower is now
// pumping primary -> PRIMARY; if that pull were allowed to apply, the
// old primary's state would silently overwrite the promoted node's
// divergent (post-failover) state — split-brain by replication.
//
// Expected behavior, pinned: Replicator::pump() fails fast with
// NotFollowerError before touching the network; a pull response already
// in flight hits the same wall inside apply_replicated() (checked under
// the node lock, the same lock promote() takes); snapshot bootstrap is
// refused identically. In every case the promoted node's state is
// untouched.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "net/envelope.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie::cluster {
namespace {

namespace fs = std::filesystem;

using net::FaultKind;

/// Makes the client's primary link dead for good from its next call:
/// the first op resets on send (the primary never sees the request) and
/// so does every retry, until the ClusterClient gives up and fails over.
void kill_client_link(net::FaultyTransport& faulty) {
    const std::uint64_t base = faulty.ops_issued();
    for (std::uint64_t op = base; op < base + 100; op += 2) {
        faulty.schedule_fault(op, FaultKind::kResetSend);
    }
}

class PromoteDuringPullTest : public ::testing::Test {
protected:
    PromoteDuringPullTest()
        : dir_(fs::temp_directory_path() /
               ("mie_promote_pull_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~PromoteDuringPullTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path dir_;
};

TEST_F(PromoteDuringPullTest, PumpIntoPromotedFollowerFailsFastAndSafely) {
    Node primary(store::PosixVfs::instance(), dir_ / "p");
    Node follower(store::PosixVfs::instance(), dir_ / "f",
                  NodeOptions{.role = Role::kFollower});

    // Client stack: faults only on the primary link, so the failover is
    // spurious — the primary stays alive underneath.
    net::MeteredTransport wire_p(primary, net::LinkProfile::loopback());
    net::MeteredTransport wire_f(follower, net::LinkProfile::loopback());
    net::FaultyTransport faulty_p(wire_p);
    net::RetryingTransport retry_p(faulty_p,
                                   net::RetryPolicy{.max_attempts = 3});
    net::RetryingTransport retry_f(wire_f,
                                   net::RetryPolicy{.max_attempts = 3});
    retry_p.set_sleeper([](double) {});
    retry_f.set_sleeper([](double) {});
    ClusterClient cluster(
        std::vector<ShardEndpoints>{{&retry_p, &retry_f}});

    MieClient client(cluster, "race-repo",
                     RepositoryKey::generate(to_bytes("race-repo-key"), 64,
                                             64, 0.7978845608),
                     to_bytes("race-user"));
    client.train_params.tree_branch = 4;
    client.train_params.tree_depth = 2;
    sim::FlickrLikeGenerator generator(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 32, .seed = 3});

    // The replication pump rides its own clean link to the primary.
    net::MeteredTransport pump_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(follower, pump_wire);

    // Healthy phase: mutations replicate normally.
    client.create_repository();
    client.update(generator.make(0));
    replicator.sync();
    EXPECT_GT(follower.acked_lsn(), 0u);

    // Kill the CLIENT's view of the primary; the next mutation fails
    // over: promote the follower, replay there. The primary never saw
    // the mutation (send-side resets), so the two nodes now diverge —
    // exactly the state replication must not "fix".
    kill_client_link(faulty_p);
    client.update(generator.make(1));
    ASSERT_EQ(cluster.stats().failovers, 1u);
    ASSERT_EQ(follower.role(), Role::kPrimary);
    ASSERT_EQ(primary.role(), Role::kPrimary);  // split-brain, contained

    const Bytes state_before =
        follower.durable().server().export_snapshot();
    const std::uint64_t acked_before = follower.acked_lsn();
    const auto stats_before = follower.replication();
    const std::uint64_t pump_calls_before = pump_wire.calls();

    // The racing pump round: refused before the network round trip.
    EXPECT_THROW(replicator.pump(), NotFollowerError);
    EXPECT_THROW(replicator.sync(), NotFollowerError);
    EXPECT_EQ(pump_wire.calls(), pump_calls_before);

    // A pull response that was already in flight when the promote
    // landed is refused at apply time, under the node lock.
    const Bytes record = net::envelope_wrap(99, 1, to_bytes("stale-record"));
    EXPECT_THROW(follower.apply_replicated(acked_before + 1, record),
                 NotFollowerError);
    EXPECT_THROW(
        follower.restore_replication_snapshot(
            acked_before + 10, primary.durable().server().export_snapshot()),
        NotFollowerError);

    // Nothing about the promoted node moved: snapshot, offset, stats.
    EXPECT_EQ(follower.durable().server().export_snapshot(), state_before);
    EXPECT_EQ(follower.acked_lsn(), acked_before);
    EXPECT_EQ(follower.replication().records_applied,
              stats_before.records_applied);
    EXPECT_EQ(follower.replication().records_skipped,
              stats_before.records_skipped);
    EXPECT_EQ(follower.replication().snapshots_restored,
              stats_before.snapshots_restored);

    // The promoted node keeps serving: a search answers from its state.
    const auto results = client.search(generator.make(1), 2);
    EXPECT_FALSE(results.empty());
}

// A plain (never-promoted) follower still replicates fine after the
// guard was added — the gate keys on role, not on pump history.
TEST_F(PromoteDuringPullTest, GuardDoesNotAffectARealFollower) {
    Node primary(store::PosixVfs::instance(), dir_ / "p");
    Node follower(store::PosixVfs::instance(), dir_ / "f",
                  NodeOptions{.role = Role::kFollower});
    net::MeteredTransport wire_p(primary, net::LinkProfile::loopback());
    MieClient client(wire_p, "ok-repo",
                     RepositoryKey::generate(to_bytes("ok-repo-key"), 64, 64,
                                             0.7978845608),
                     to_bytes("ok-user"));
    client.train_params.tree_branch = 4;
    client.train_params.tree_depth = 2;
    sim::FlickrLikeGenerator generator(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 32, .seed = 4});
    client.create_repository();
    client.update(generator.make(0));

    net::MeteredTransport pump_wire(primary, net::LinkProfile::loopback());
    Replicator replicator(follower, pump_wire);
    EXPECT_NO_THROW(replicator.sync());
    EXPECT_EQ(follower.durable().server().export_snapshot(),
              primary.durable().server().export_snapshot());
}

}  // namespace
}  // namespace mie::cluster
