// Leakage-analysis tests: the clustering attack must succeed on raw
// structure and fail on structure the DPE threshold hides.
#include <gtest/gtest.h>

#include "dpe/dense_dpe.hpp"
#include "eval/leakage.hpp"
#include "util/rng.hpp"

namespace mie::eval {
namespace {

TEST(ClusterLabelAccuracy, PerfectAndChance) {
    // Perfect: clusters == labels.
    EXPECT_DOUBLE_EQ(cluster_label_accuracy({0, 0, 1, 1}, {5, 5, 9, 9}),
                     1.0);
    // One cluster holding both labels: majority vote gets half.
    EXPECT_DOUBLE_EQ(cluster_label_accuracy({0, 0, 0, 0}, {5, 5, 9, 9}),
                     0.5);
    EXPECT_THROW(cluster_label_accuracy({0}, {1, 2}), std::invalid_argument);
    EXPECT_THROW(cluster_label_accuracy({}, {}), std::invalid_argument);
}

TEST(ClusterLabelAccuracy, LabelPermutationInvariant) {
    // Accuracy must not depend on cluster numbering.
    EXPECT_DOUBLE_EQ(cluster_label_accuracy({1, 1, 0, 0}, {5, 5, 9, 9}),
                     1.0);
}

std::vector<dpe::BitCode> class_codes(std::uint32_t label, int count,
                                      SplitMix64& rng) {
    // Class prototype: a distinct third of the bits set.
    std::vector<dpe::BitCode> codes;
    for (int i = 0; i < count; ++i) {
        dpe::BitCode code(96);
        for (std::size_t b = 0; b < 32; ++b) {
            code.set((static_cast<std::size_t>(label) * 32 + b) % 96, true);
        }
        for (int flip = 0; flip < 4; ++flip) {
            const std::size_t bit = rng.next_below(96);
            code.set(bit, !code.get(bit));
        }
        codes.push_back(code);
    }
    return codes;
}

TEST(DpeClusteringAttack, RecoversObviousStructure) {
    SplitMix64 rng(3);
    std::vector<std::vector<dpe::BitCode>> objects;
    std::vector<std::uint32_t> labels;
    for (std::uint32_t label = 0; label < 3; ++label) {
        for (int i = 0; i < 10; ++i) {
            objects.push_back(class_codes(label, 5, rng));
            labels.push_back(label);
        }
    }
    EXPECT_GT(dpe_clustering_attack(objects, labels), 0.9);
}

TEST(DpeClusteringAttack, ChanceOnRandomCodes) {
    SplitMix64 rng(4);
    std::vector<std::vector<dpe::BitCode>> objects;
    std::vector<std::uint32_t> labels;
    for (std::uint32_t label = 0; label < 4; ++label) {
        for (int i = 0; i < 10; ++i) {
            std::vector<dpe::BitCode> codes;
            for (int c = 0; c < 5; ++c) {
                dpe::BitCode code(96);
                for (std::size_t b = 0; b < 96; ++b) {
                    code.set(b, rng.next_double() < 0.5);
                }
                codes.push_back(code);
            }
            objects.push_back(std::move(codes));
            labels.push_back(label);
        }
    }
    // Labels are independent of the codes: accuracy near chance (0.25),
    // with slack for majority-vote inflation on small samples.
    EXPECT_LT(dpe_clustering_attack(objects, labels), 0.55);
}

TEST(DpeClusteringAttack, InputValidation) {
    EXPECT_THROW(dpe_clustering_attack({}, {}), std::invalid_argument);
    EXPECT_THROW(dpe_clustering_attack({{}}, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace mie::eval
