// mAP / precision / recall metric tests.
#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace mie::eval {
namespace {

TEST(AveragePrecision, PerfectRanking) {
    EXPECT_DOUBLE_EQ(average_precision({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(average_precision({1, 2, 9, 9}, {1, 2}), 1.0);
}

TEST(AveragePrecision, KnownValue) {
    // Relevant at positions 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
    EXPECT_NEAR(average_precision({1, 9, 2}, {1, 2}), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, MissedRelevantPenalized) {
    // One of two relevant docs never retrieved: AP = (1/1)/2 = 0.5.
    EXPECT_DOUBLE_EQ(average_precision({1, 9, 8}, {1, 2}), 0.5);
}

TEST(AveragePrecision, EdgeCases) {
    EXPECT_DOUBLE_EQ(average_precision({}, {1}), 0.0);
    EXPECT_DOUBLE_EQ(average_precision({1, 2}, {}), 0.0);
    EXPECT_DOUBLE_EQ(average_precision({9, 8}, {1}), 0.0);
}

TEST(MeanAveragePrecision, AveragesAcrossQueries) {
    const std::vector<std::vector<std::uint64_t>> ranked = {{1}, {9}};
    const std::vector<std::unordered_set<std::uint64_t>> relevant = {{1},
                                                                     {2}};
    EXPECT_DOUBLE_EQ(mean_average_precision(ranked, relevant), 0.5);
    EXPECT_DOUBLE_EQ(mean_average_precision({}, {}), 0.0);
    EXPECT_THROW(mean_average_precision(ranked, {{1}}),
                 std::invalid_argument);
}

TEST(PrecisionRecallAtK, KnownValues) {
    const std::vector<std::uint64_t> ranked = {1, 9, 2, 8};
    const std::unordered_set<std::uint64_t> relevant = {1, 2, 3};
    EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 2), 0.5);
    EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 4), 0.5);
    EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 0), 0.0);
    EXPECT_NEAR(recall_at_k(ranked, relevant, 4), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(recall_at_k(ranked, relevant, 1), 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(recall_at_k(ranked, {}, 4), 0.0);
}

}  // namespace
}  // namespace mie::eval
