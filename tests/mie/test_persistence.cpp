// Cloud-server persistence tests: snapshots survive restarts with search
// behaviour intact (deterministic retraining).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "mie/client.hpp"
#include "mie/persistence.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

class PersistenceTest : public ::testing::Test {
protected:
    PersistenceTest()
        : key_(RepositoryKey::generate(to_bytes("persist"), 64, 64,
                                       0.7978845608)),
          generator_(sim::FlickrLikeParams{.num_classes = 4,
                                           .image_size = 48,
                                           .seed = 71}),
          // Keyed by test name + pid: ctest runs each case as its own
          // process in parallel, so a shared path would collide.
          path_(std::filesystem::temp_directory_path() /
                ("mie_persistence_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()) +
                 "_" + std::to_string(::getpid()) + ".snap")) {}

    ~PersistenceTest() override {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    RepositoryKey key_;
    sim::FlickrLikeGenerator generator_;
    std::filesystem::path path_;
};

TEST_F(PersistenceTest, SnapshotRoundtripPreservesSearch) {
    MieServer original;
    {
        net::MeteredTransport transport(original,
                                        net::LinkProfile::loopback());
        MieClient client(transport, "repo", key_, to_bytes("u"));
        client.train_params.tree_branch = 5;
        client.train_params.tree_depth = 2;
        client.create_repository();
        for (const auto& object : generator_.make_batch(0, 10)) {
            client.update(object);
        }
        client.train();
    }
    save_server_snapshot(original, path_);

    // "Restart": a fresh server restored from disk.
    MieServer restored;
    load_server_snapshot(restored, path_);

    const auto before = original.stats("repo");
    const auto after = restored.stats("repo");
    EXPECT_EQ(after.num_objects, before.num_objects);
    EXPECT_EQ(after.trained, before.trained);
    EXPECT_EQ(after.visual_words, before.visual_words);
    EXPECT_EQ(after.image_index_terms, before.image_index_terms);
    EXPECT_EQ(after.text_index_terms, before.text_index_terms);

    // Identical search results through both servers.
    net::MeteredTransport t1(original, net::LinkProfile::loopback());
    net::MeteredTransport t2(restored, net::LinkProfile::loopback());
    MieClient c1(t1, "repo", key_, to_bytes("u"));
    MieClient c2(t2, "repo", key_, to_bytes("u"));
    for (std::uint64_t id = 0; id < 6; ++id) {
        const auto r1 = c1.search(generator_.make(id), 4);
        const auto r2 = c2.search(generator_.make(id), 4);
        ASSERT_EQ(r1.size(), r2.size()) << id;
        for (std::size_t i = 0; i < r1.size(); ++i) {
            EXPECT_EQ(r1[i].object_id, r2[i].object_id) << id;
            EXPECT_DOUBLE_EQ(r1[i].score, r2[i].score) << id;
        }
    }
}

TEST_F(PersistenceTest, RestoredServerAcceptsNewUpdates) {
    MieServer original;
    {
        net::MeteredTransport transport(original,
                                        net::LinkProfile::loopback());
        MieClient client(transport, "repo", key_, to_bytes("u"));
        client.create_repository();
        for (const auto& object : generator_.make_batch(0, 6)) {
            client.update(object);
        }
        client.train();
    }
    save_server_snapshot(original, path_);

    MieServer restored;
    load_server_snapshot(restored, path_);
    net::MeteredTransport transport(restored, net::LinkProfile::loopback());
    MieClient client(transport, "repo", key_, to_bytes("u"));
    client.update(generator_.make(50));
    const auto results = client.search(generator_.make(50), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 50u);
}

TEST_F(PersistenceTest, UntrainedRepositorySurvives) {
    MieServer original;
    {
        net::MeteredTransport transport(original,
                                        net::LinkProfile::loopback());
        MieClient client(transport, "repo", key_, to_bytes("u"));
        client.create_repository();
        client.update(generator_.make(0));
    }
    save_server_snapshot(original, path_);
    MieServer restored;
    load_server_snapshot(restored, path_);
    EXPECT_FALSE(restored.stats("repo").trained);
    EXPECT_EQ(restored.stats("repo").num_objects, 1u);
    // Linear-scan search still works.
    net::MeteredTransport transport(restored, net::LinkProfile::loopback());
    MieClient client(transport, "repo", key_, to_bytes("u"));
    const auto results = client.search(generator_.make(0), 1);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 0u);
}

TEST_F(PersistenceTest, EmptyServerRoundtrips) {
    MieServer original;
    save_server_snapshot(original, path_);
    MieServer restored;
    load_server_snapshot(restored, path_);
    EXPECT_THROW(restored.stats("absent"), std::invalid_argument);
}

TEST_F(PersistenceTest, ErrorsOnMissingAndCorruptFiles) {
    MieServer server;
    EXPECT_THROW(load_server_snapshot(server, "/nonexistent/dir/x.snap"),
                 std::runtime_error);
    // Corrupt: truncated snapshot.
    {
        std::ofstream out(path_, std::ios::binary);
        out.write("\x05\x00\x00\x00garbage", 11);
    }
    EXPECT_ANY_THROW(load_server_snapshot(server, path_));
}

}  // namespace
}  // namespace mie
