// Observable security-property tests: the leakage each scheme's wire
// traffic exposes must match the paper's ideal functionalities (F_DPE
// Alg. 1, F_MIE Alg. 4) — no more, no less.
#include <gtest/gtest.h>

#include "baseline/msse_common.hpp"
#include "crypto/ctr.hpp"
#include "dpe/dense_dpe.hpp"
#include "dpe/sparse_dpe.hpp"
#include "mie/client.hpp"
#include "mie/object_codec.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

TEST(SecurityProperties, ObjectCiphertextsAreSemanticallyFresh) {
    // The same object encrypted under two different data keys yields
    // unrelated ciphertexts (IND-CPA smoke: no shared prefix/pattern).
    sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{.image_size = 32});
    const Bytes plaintext = encode_object(gen.make(0));
    const DataKeyring ring_a(to_bytes("user-a")), ring_b(to_bytes("user-b"));
    const crypto::AesCtr ca(ring_a.data_key(0)), cb(ring_b.data_key(0));
    const Bytes nonce(16, 5);
    const Bytes blob_a = ca.seal(nonce, plaintext);
    const Bytes blob_b = cb.seal(nonce, plaintext);
    ASSERT_EQ(blob_a.size(), blob_b.size());
    std::size_t equal_bytes = 0;
    for (std::size_t i = 16; i < blob_a.size(); ++i) {
        if (blob_a[i] == blob_b[i]) ++equal_bytes;
    }
    // Random agreement is ~1/256 per byte.
    EXPECT_LT(equal_bytes, blob_a.size() / 16);
}

TEST(SecurityProperties, MieUpdateLeaksTokenEqualityAcrossUpdates) {
    // F_MIE update leakage includes ID(w): two objects sharing a keyword
    // produce the SAME Sparse-DPE token (this is the deliberate trade:
    // leak at update time, not query time). Distinct keywords produce
    // unrelated tokens.
    const auto key = dpe::SparseDpe::keygen(to_bytes("repo"));
    const dpe::SparseDpe dpe(key);
    EXPECT_EQ(dpe.encode("beach"), dpe.encode("beach"));
    EXPECT_NE(dpe.encode("beach"), dpe.encode("beachy"));
}

TEST(SecurityProperties, DenseDpeLeaksNothingBeyondThreshold) {
    // Pairs of far-apart plaintexts (d >> t) must be mutually
    // indistinguishable in encoded space: their encoded distances
    // concentrate around the same saturation value, so the server cannot
    // order them. (Complemented by the statistical sweep in
    // test_dense_dpe.cpp.)
    const auto key =
        dpe::DenseDpe::keygen(to_bytes("k"), 8, 2048, 0.7978845608);
    const dpe::DenseDpe dpe(key);
    const features::FeatureVec base(8, 0.0f);
    features::FeatureVec far_a(8, 0.0f), far_b(8, 0.0f);
    far_a[0] = 5.0f;   // distance 5 from base
    far_b[1] = 50.0f;  // distance 50 from base
    const double d_a =
        dpe::DenseDpe::distance(dpe.encode(base), dpe.encode(far_a));
    const double d_b =
        dpe::DenseDpe::distance(dpe.encode(base), dpe.encode(far_b));
    EXPECT_NEAR(d_a, d_b, 0.08);  // can't tell 5 from 50
}

TEST(SecurityProperties, MsseLabelsAreUnlinkableAcrossCounters) {
    // Successive index labels of one keyword (counter 0, 1, 2, ...) are
    // PRF outputs: without k1 they look unrelated, so the server cannot
    // group a keyword's postings before the keyword is searched.
    const Bytes rk2 = to_bytes("msse-rk2-material");
    const Bytes k1 = baseline::derive_k1(rk2, "t/beach");
    const Bytes l0 = baseline::index_label(k1, 0);
    const Bytes l1 = baseline::index_label(k1, 1);
    EXPECT_NE(l0, l1);
    // Different keywords with the same counter: also unrelated.
    const Bytes other = baseline::index_label(
        baseline::derive_k1(rk2, "t/ocean"), 0);
    EXPECT_NE(l0, other);
    // But the rightful key holder re-derives them exactly.
    EXPECT_EQ(l0, baseline::index_label(baseline::derive_k1(rk2, "t/beach"),
                                        0));
}

TEST(SecurityProperties, RepositoryKeysDontLeakAcrossRepositories) {
    const auto a = RepositoryKey::generate(to_bytes("e1"), 8, 64, 1.0);
    const auto b = RepositoryKey::generate(to_bytes("e2"), 8, 64, 1.0);
    EXPECT_NE(a.dense.seed, b.dense.seed);
    EXPECT_NE(a.sparse.key, b.sparse.key);
    // And within one repository, the dense and sparse keys are domain-
    // separated (not derived equal).
    EXPECT_FALSE(ct_equal(a.dense.seed.view(), a.sparse.key.view()));
}

TEST(SecurityProperties, ServerStoresNoPlaintext) {
    // End-to-end: after a full MIE workflow, serialize-scan the wire
    // traffic by intercepting the stored blob via search and confirm the
    // object's text never appears in any ciphertext the server holds.
    MieServer server;
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient client(transport, "repo",
                     RepositoryKey::generate(to_bytes("e"), 64, 64, 0.798),
                     to_bytes("u"));
    client.create_repository();
    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.image_size = 48, .seed = 77});
    auto object = gen.make(0);
    object.text = "supersecretkeyword confidential diagnosis";
    client.update(object);
    const auto results = client.search(object, 1);
    ASSERT_FALSE(results.empty());
    const std::string blob_str(results[0].encrypted_object.begin(),
                               results[0].encrypted_object.end());
    EXPECT_EQ(blob_str.find("supersecretkeyword"), std::string::npos);
    EXPECT_EQ(blob_str.find("confidential"), std::string::npos);
    // And the rightful user still recovers it.
    EXPECT_EQ(client.decrypt_result(results[0]).text, object.text);
}

TEST(SecurityProperties, FrequenciesAreVisibleAtUpdateOnlyByDesign) {
    // MIE's documented trade-off (Table I): update leakage includes
    // freq(w). The wire format carries token frequencies in the clear —
    // assert this is bounded to frequencies, i.e. the tokens themselves
    // are PRF outputs, not keywords.
    const auto key = dpe::SparseDpe::keygen(to_bytes("freq"));
    const dpe::SparseDpe dpe(key);
    const Bytes token = dpe.encode("confidential");
    const std::string token_str(token.begin(), token.end());
    EXPECT_EQ(token_str.find("confidential"), std::string::npos);
    EXPECT_EQ(token.size(), dpe::SparseDpe::kTokenSize);
}

}  // namespace
}  // namespace mie
