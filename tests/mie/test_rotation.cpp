// Key-rotation tests: after rotation, the new key works, the old key's
// encodings are gone, and skipped (other-owner) objects are reported.
#include <gtest/gtest.h>

#include "mie/client.hpp"
#include "mie/rotation.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

class RotationTest : public ::testing::Test {
protected:
    RotationTest()
        : old_key_(RepositoryKey::generate(to_bytes("old"), 64, 64,
                                           0.7978845608)),
          new_key_(RepositoryKey::generate(to_bytes("new"), 64, 64,
                                           0.7978845608)),
          transport_(server_, net::LinkProfile::loopback()),
          generator_(sim::FlickrLikeParams{.num_classes = 3,
                                           .image_size = 48,
                                           .seed = 61}) {}

    void load(std::size_t count) {
        MieClient client(transport_, "repo", old_key_, to_bytes("owner"));
        client.train_params.tree_branch = 5;
        client.train_params.tree_depth = 2;
        client.create_repository();
        for (const auto& object : generator_.make_batch(0, count)) {
            client.update(object);
        }
        client.train();
    }

    RepositoryKey old_key_;
    RepositoryKey new_key_;
    MieServer server_;
    net::MeteredTransport transport_;
    sim::FlickrLikeGenerator generator_;
};

TEST_F(RotationTest, NewKeyWorksAfterRotation) {
    load(8);
    TrainParams params;
    params.tree_branch = 5;
    params.tree_depth = 2;
    const auto report = rotate_repository_key(
        transport_, "repo", new_key_, DataKeyring(to_bytes("owner")),
        to_bytes("owner"), params);
    EXPECT_EQ(report.objects_rotated, 8u);
    EXPECT_EQ(report.objects_skipped, 0u);

    MieClient fresh(transport_, "repo", new_key_, to_bytes("owner"));
    const auto results = fresh.search(generator_.make(2), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 2u);
    EXPECT_EQ(fresh.decrypt_result(results.front()).text,
              generator_.make(2).text);
}

TEST_F(RotationTest, OldKeyIsRevoked) {
    load(8);
    TrainParams params;
    params.tree_branch = 5;
    params.tree_depth = 2;
    rotate_repository_key(transport_, "repo", new_key_,
                          DataKeyring(to_bytes("owner")), to_bytes("owner"),
                          params);

    // A holder of the OLD key can no longer retrieve by content: their
    // tokens/encodings no longer match anything indexed.
    MieClient revoked(transport_, "repo", old_key_, to_bytes("owner"));
    int correct = 0;
    for (std::uint64_t id = 0; id < 4; ++id) {
        const auto results = revoked.search(generator_.make(id), 1);
        if (!results.empty() && results.front().object_id == id) ++correct;
    }
    EXPECT_LT(correct, 3);  // no better than noise
}

TEST_F(RotationTest, OtherOwnersObjectsAreSkippedAndReported) {
    load(6);
    // A second owner adds two objects under their own data keys.
    MieClient other(transport_, "repo", old_key_, to_bytes("other-owner"));
    other.update(generator_.make(100));
    other.update(generator_.make(101));

    const auto report = rotate_repository_key(
        transport_, "repo", new_key_, DataKeyring(to_bytes("owner")),
        to_bytes("owner"));
    EXPECT_EQ(report.objects_rotated, 6u);
    EXPECT_EQ(report.objects_skipped, 2u);
    // The rotated repository holds only the caller's share until the other
    // owner re-uploads.
    EXPECT_EQ(server_.stats("repo").num_objects, 6u);
}

TEST_F(RotationTest, EmptyRepositoryRotatesCleanly) {
    MieClient client(transport_, "repo", old_key_, to_bytes("owner"));
    client.create_repository();
    const auto report = rotate_repository_key(
        transport_, "repo", new_key_, DataKeyring(to_bytes("owner")),
        to_bytes("owner"));
    EXPECT_EQ(report.objects_rotated, 0u);
    EXPECT_EQ(report.objects_skipped, 0u);
}

}  // namespace
}  // namespace mie
