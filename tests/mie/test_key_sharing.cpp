// Key-sharing protocol tests (§III-A): signed hybrid envelopes carrying
// repository keys and per-object data keys.
#include <gtest/gtest.h>

#include "crypto/ctr.hpp"
#include "mie/key_sharing.hpp"

namespace mie {
namespace {

class KeySharingTest : public ::testing::Test {
protected:
    KeySharingTest()
        : drbg_(to_bytes("ks-test")),
          alice_(crypto::RsaKeyPair::generate(drbg_, 1024)),
          bob_(crypto::RsaKeyPair::generate(drbg_, 1024)),
          mallory_(crypto::RsaKeyPair::generate(drbg_, 1024)),
          repo_key_(RepositoryKey::generate(to_bytes("repo"), 64, 64, 0.8)) {
    }

    crypto::CtrDrbg drbg_;
    crypto::RsaKeyPair alice_;    // repository owner / sender
    crypto::RsaKeyPair bob_;      // trusted recipient
    crypto::RsaKeyPair mallory_;  // adversary
    RepositoryKey repo_key_;
};

TEST_F(KeySharingTest, RepositoryKeyRoundtrip) {
    const auto envelope = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    const auto received = open_repository_key(envelope, bob_.private_key(),
                                              alice_.public_key());
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->dense.seed, repo_key_.dense.seed);
    EXPECT_EQ(received->sparse.key, repo_key_.sparse.key);
    EXPECT_EQ(envelope.repo_id, "album");
}

TEST_F(KeySharingTest, EnvelopeSerializationRoundtrip) {
    const auto envelope = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    const auto parsed = KeyEnvelope::deserialize(envelope.serialize());
    const auto received = open_repository_key(parsed, bob_.private_key(),
                                              alice_.public_key());
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->dense.seed, repo_key_.dense.seed);
}

TEST_F(KeySharingTest, WrongRecipientCannotOpen) {
    const auto envelope = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    EXPECT_THROW(open_repository_key(envelope, mallory_.private_key(),
                                     alice_.public_key()),
                 std::invalid_argument);
}

TEST_F(KeySharingTest, ForgedSenderIsRejected) {
    // Mallory wraps her own key claiming to be Alice: Bob checks the
    // signature against Alice's public key and rejects.
    const auto forged = share_repository_key(repo_key_, "album",
                                             bob_.public_key(),
                                             mallory_.private_key(), drbg_);
    EXPECT_EQ(open_repository_key(forged, bob_.private_key(),
                                  alice_.public_key()),
              std::nullopt);
}

TEST_F(KeySharingTest, TamperedEnvelopeIsRejected) {
    auto envelope = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    envelope.sealed_payload[3] ^= 1;
    EXPECT_EQ(open_repository_key(envelope, bob_.private_key(),
                                  alice_.public_key()),
              std::nullopt);
    // Splicing the repo id is also caught (it is signed).
    auto respliced = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    respliced.repo_id = "other-repo";
    EXPECT_EQ(open_repository_key(respliced, bob_.private_key(),
                                  alice_.public_key()),
              std::nullopt);
}

TEST_F(KeySharingTest, DataKeyGrantIsPerObject) {
    const DataKeyring ring(to_bytes("alice-master"));
    const auto envelope =
        share_data_key(ring, 42, "album", bob_.public_key(),
                       alice_.private_key(), drbg_);
    EXPECT_EQ(envelope.grant, KeyGrant::kDataKey);
    EXPECT_EQ(envelope.object_id, 42u);
    const auto dk =
        open_data_key(envelope, bob_.private_key(), alice_.public_key());
    ASSERT_TRUE(dk.has_value());
    EXPECT_EQ(*dk, ring.data_key(42));
    // The grant carries only object 42's key, not 43's.
    EXPECT_NE(*dk, ring.data_key(43));
}

TEST_F(KeySharingTest, GrantTypeMismatchThrows) {
    const auto envelope = share_repository_key(
        repo_key_, "album", bob_.public_key(), alice_.private_key(), drbg_);
    EXPECT_THROW(
        open_data_key(envelope, bob_.private_key(), alice_.public_key()),
        std::invalid_argument);
}

TEST_F(KeySharingTest, SharedKeyActuallyDecryptsObjects) {
    // End-to-end: Bob uses a shared data key to open Alice's ciphertext.
    const DataKeyring ring(to_bytes("alice-master"));
    const Bytes plaintext = to_bytes("object 7 contents");
    const crypto::AesCtr cipher(ring.data_key(7));
    const Bytes blob = cipher.seal(Bytes(16, 9), plaintext);

    const auto envelope = share_data_key(ring, 7, "album", bob_.public_key(),
                                         alice_.private_key(), drbg_);
    const auto dk =
        open_data_key(envelope, bob_.private_key(), alice_.public_key());
    ASSERT_TRUE(dk.has_value());
    EXPECT_EQ(crypto::AesCtr(*dk).open(blob), plaintext);
}

}  // namespace
}  // namespace mie
