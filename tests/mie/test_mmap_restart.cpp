// Mmap-checkpoint restart path (DurableServer with mmap_checkpoints) and
// the IVF-probed search through the full client/server wire.
//
// Unlike the legacy inline checkpoint (which stores objects only and
// retrains on restore), the mmap snapshot serializes the vocab trees and
// inverted indexes verbatim — so a checkpoint restart must be BIT-exact
// against the pre-crash server, including per-term index counters, and
// re-exporting the snapshot after a restart must reproduce the same
// bytes. Corrupted / truncated / deleted snapshot files must fall back
// to full WAL replay without losing an acknowledged operation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/server.hpp"
#include "mie/wire.hpp"
#include "net/transport.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie {
namespace {

namespace fs = std::filesystem;

constexpr char kRepo[] = "repo";
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct WidthGuard {
    ~WidthGuard() { exec::set_max_threads(0); }
};

/// Forwards to a handler while keeping a copy of every request.
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        requests.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> requests;

private:
    net::RequestHandler& handler_;
};

Bytes list_objects_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kListObjects));
    writer.write_string(kRepo);
    return writer.take();
}

Bytes stats_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kStats));
    writer.write_string(kRepo);
    return writer.take();
}

std::map<std::uint64_t, Bytes> listing_of(net::RequestHandler& server) {
    const Bytes response = server.handle(list_objects_request());
    net::MessageReader reader(response);
    std::map<std::uint64_t, Bytes> objects;
    const auto count = reader.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t id = reader.read_u64();
        objects[id] = reader.read_bytes();
    }
    return objects;
}

/// Bit-exact equality: object store AND every derived index counter.
void expect_same_state(net::RequestHandler& recovered,
                       net::RequestHandler& expected) {
    EXPECT_EQ(listing_of(recovered), listing_of(expected));
    EXPECT_EQ(recovered.handle(stats_request()),
              expected.handle(stats_request()));
}

RepositoryKey test_key() {
    return RepositoryKey::generate(to_bytes("mmap"), 64, 64, 0.7978845608);
}

sim::FlickrLikeGenerator make_generator() {
    return sim::FlickrLikeGenerator(sim::FlickrLikeParams{
        .num_classes = 4, .image_size = 48, .seed = 71});
}

class MmapRestartTest : public ::testing::Test {
protected:
    MmapRestartTest()
        : dir_(fs::temp_directory_path() /
               ("mie_mmap_restart_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~MmapRestartTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /// create + 10 updates + train + 4 updates, recorded as wire bytes.
    static const std::vector<Bytes>& workload() {
        static const std::vector<Bytes> requests = [] {
            MieServer scratch;
            RecordingTransport transport(scratch);
            auto key = test_key();
            MieClient client(transport, kRepo, key, to_bytes("u"));
            client.train_params.tree_branch = 5;
            client.train_params.tree_depth = 2;
            auto generator = make_generator();
            client.create_repository();
            for (const auto& object : generator.make_batch(0, 10)) {
                client.update(object);
            }
            client.train();
            for (const auto& object : generator.make_batch(10, 4)) {
                client.update(object);
            }
            return std::move(transport.requests);
        }();
        return requests;
    }

    static void drive(net::RequestHandler& server,
                      const std::vector<Bytes>& requests) {
        for (const Bytes& request : requests) server.handle(request);
    }

    /// The single snapshot file the stub checkpoint published.
    fs::path snapshot_file() const {
        const auto entries =
            store::PosixVfs::instance().list_dir(dir_ / "snapshots");
        EXPECT_EQ(entries.size(), 1u);
        return entries.empty() ? fs::path{} : entries.front();
    }

    fs::path dir_;
};

TEST_F(MmapRestartTest, CheckpointRestartIsBitExact) {
    MieServer shadow;
    drive(shadow, workload());
    Bytes exported_before;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_);
        drive(durable, workload());
        durable.checkpoint_now();
        exported_before = durable.server().export_mapped_snapshot();
        EXPECT_TRUE(fs::exists(snapshot_file()));
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_);
    const auto stats = recovered.durability();
    EXPECT_TRUE(stats.recovered_from_checkpoint);
    EXPECT_EQ(stats.recovered_records, 0u);
    // Mapped checkpoints carry trees + indexes verbatim: strict equality,
    // not just the object store.
    expect_same_state(recovered, shadow);
    // Re-exporting after the mmap restore reproduces the same bytes.
    EXPECT_EQ(recovered.server().export_mapped_snapshot(), exported_before);
}

TEST_F(MmapRestartTest, WalTailReplaysOnTopOfMappedSnapshot) {
    const auto& requests = workload();
    const std::size_t cut = requests.size() - 3;
    MieServer shadow;
    drive(shadow, requests);
    {
        DurableServer durable(store::PosixVfs::instance(), dir_);
        for (std::size_t i = 0; i < cut; ++i) durable.handle(requests[i]);
        durable.checkpoint_now();
        for (std::size_t i = cut; i < requests.size(); ++i) {
            durable.handle(requests[i]);
        }
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_);
    const auto stats = recovered.durability();
    EXPECT_TRUE(stats.recovered_from_checkpoint);
    EXPECT_EQ(stats.recovered_records, requests.size() - cut);
    expect_same_state(recovered, shadow);
}

// Damage the published snapshot file in three ways; every variant must
// fall back to full WAL replay (the log was never truncated past LSN 1)
// and recover the acknowledged state exactly.
TEST_F(MmapRestartTest, DamagedSnapshotFallsBackToWalReplay) {
    MieServer shadow;
    drive(shadow, workload());
    const char* damages[] = {"corrupt", "truncate", "delete"};
    for (const char* damage : damages) {
        SCOPED_TRACE(damage);
        const fs::path cell_dir = dir_ / damage;
        {
            DurableServer durable(store::PosixVfs::instance(), cell_dir);
            drive(durable, workload());
            durable.checkpoint_now();
        }
        const auto entries =
            store::PosixVfs::instance().list_dir(cell_dir / "snapshots");
        ASSERT_EQ(entries.size(), 1u);
        const fs::path snapshot = entries.front();
        const auto size = fs::file_size(snapshot);
        if (std::string(damage) == "corrupt") {
            std::fstream f(snapshot,
                           std::ios::in | std::ios::out | std::ios::binary);
            f.seekp(static_cast<std::streamoff>(size / 2));
            const char byte = 0x5A;
            f.write(&byte, 1);
        } else if (std::string(damage) == "truncate") {
            fs::resize_file(snapshot, size / 2);
        } else {
            fs::remove(snapshot);
        }
        DurableServer recovered(store::PosixVfs::instance(), cell_dir);
        const auto stats = recovered.durability();
        EXPECT_FALSE(stats.recovered_from_checkpoint);
        EXPECT_EQ(stats.recovered_records, workload().size());
        expect_same_state(recovered, shadow);
    }
}

// Flipping mmap_checkpoints between runs is safe in both directions:
// recovery dispatches on the checkpoint record itself, not the flag.
TEST_F(MmapRestartTest, LegacyCheckpointInteropBothDirections) {
    MieServer shadow;
    drive(shadow, workload());
    DurableServer::Options legacy;
    legacy.mmap_checkpoints = false;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_, legacy);
        drive(durable, workload());
        durable.checkpoint_now();
    }
    {
        // Legacy inline checkpoint read back under mmap options. The
        // legacy format retrains on restore, so only the object store is
        // exact — and a fresh mmap checkpoint written NOW must then be
        // readable by a legacy-configured server.
        DurableServer durable(store::PosixVfs::instance(), dir_);
        EXPECT_TRUE(durable.durability().recovered_from_checkpoint);
        EXPECT_EQ(listing_of(durable), listing_of(shadow));
        durable.checkpoint_now();
        EXPECT_TRUE(fs::exists(snapshot_file()));
    }
    DurableServer durable(store::PosixVfs::instance(), dir_, legacy);
    EXPECT_TRUE(durable.durability().recovered_from_checkpoint);
    EXPECT_EQ(listing_of(durable), listing_of(shadow));
}

// The probed (ANN) search through the full wire: deterministic at every
// thread count, exact when probes >= cells, strictly less scoring work
// when probes are low, and stable across an mmap restart.
TEST_F(MmapRestartTest, ProbedSearchDeterministicAndCheaperAcrossRestart) {
    const WidthGuard guard;
    MieServer server;
    drive(server, workload());
    auto key = test_key();
    auto generator = make_generator();
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient client(transport, kRepo, key, to_bytes("u"));

    // Exact baseline (probes = 0).
    client.search_probes = 0;
    const auto exact = client.search(generator.make(2), 5);
    const auto exact_work = client.last_search_work();
    ASSERT_FALSE(exact.empty());
    ASSERT_GT(exact_work.postings_scored, 0u);
    EXPECT_EQ(exact_work.query_descriptors, exact_work.descriptors_kept);

    // probes = 1: every descriptor outside the top cell is dropped, so
    // scoring work strictly shrinks; results stay deterministic at any
    // thread count.
    client.search_probes = 1;
    const auto probed = client.search(generator.make(2), 5);
    const auto probed_work = client.last_search_work();
    EXPECT_LT(probed_work.postings_scored, exact_work.postings_scored);
    EXPECT_LT(probed_work.descriptors_kept, probed_work.query_descriptors);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        const auto again = client.search(generator.make(2), 5);
        ASSERT_EQ(again.size(), probed.size()) << threads;
        for (std::size_t i = 0; i < again.size(); ++i) {
            EXPECT_EQ(again[i].object_id, probed[i].object_id) << threads;
            EXPECT_DOUBLE_EQ(again[i].score, probed[i].score) << threads;
        }
    }
    exec::set_max_threads(0);

    // probes >= cell count degenerates to the exact search.
    client.search_probes = 64;
    const auto wide = client.search(generator.make(2), 5);
    ASSERT_EQ(wide.size(), exact.size());
    for (std::size_t i = 0; i < wide.size(); ++i) {
        EXPECT_EQ(wide[i].object_id, exact[i].object_id);
        EXPECT_DOUBLE_EQ(wide[i].score, exact[i].score);
    }
    EXPECT_EQ(client.last_search_work().postings_scored,
              exact_work.postings_scored);

    // Same probed results through a durable server after an mmap restart.
    {
        DurableServer durable(store::PosixVfs::instance(), dir_);
        drive(durable, workload());
        durable.checkpoint_now();
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_);
    ASSERT_TRUE(recovered.durability().recovered_from_checkpoint);
    net::MeteredTransport transport2(recovered,
                                     net::LinkProfile::loopback());
    MieClient client2(transport2, kRepo, key, to_bytes("u"));
    client2.search_probes = 1;
    const auto after = client2.search(generator.make(2), 5);
    ASSERT_EQ(after.size(), probed.size());
    for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_EQ(after[i].object_id, probed[i].object_id);
        EXPECT_DOUBLE_EQ(after[i].score, probed[i].score);
    }
    EXPECT_EQ(client2.last_search_work().postings_scored,
              probed_work.postings_scored);
}

}  // namespace
}  // namespace mie
