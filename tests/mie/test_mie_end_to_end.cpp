// End-to-end MIE framework tests: the full client -> wire -> cloud path,
// covering every operation of Definition 2 plus multi-user sharing.
#include <gtest/gtest.h>

#include <memory>

#include "mie/client.hpp"
#include "mie/object_codec.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

constexpr std::size_t kSurfDims = 64;

class MieEndToEnd : public ::testing::Test {
protected:
    MieEndToEnd()
        : repo_key_(RepositoryKey::generate(to_bytes("test-entropy"),
                                            kSurfDims, 128, 0.7978845608)),
          transport_(server_, net::LinkProfile::loopback()),
          client_(std::make_unique<MieClient>(transport_, "repo", repo_key_,
                                              to_bytes("user-1-secret"))),
          generator_(sim::FlickrLikeParams{.num_classes = 5,
                                           .image_size = 64,
                                           .seed = 11}) {
        // Small training set keeps the suite fast.
        client_->train_params.max_training_samples = 2000;
        client_->train_params.tree_branch = 5;
        client_->train_params.tree_depth = 2;
    }

    void load_objects(std::size_t count) {
        client_->create_repository();
        for (const auto& object : generator_.make_batch(0, count)) {
            client_->update(object);
        }
    }

    RepositoryKey repo_key_;
    MieServer server_;
    net::MeteredTransport transport_;
    std::unique_ptr<MieClient> client_;
    sim::FlickrLikeGenerator generator_;
};

TEST_F(MieEndToEnd, CreateRepositoryInitializesServerState) {
    client_->create_repository();
    const auto stats = server_.stats("repo");
    EXPECT_EQ(stats.num_objects, 0u);
    EXPECT_FALSE(stats.trained);
}

TEST_F(MieEndToEnd, UpdateStoresEncryptedObjects) {
    load_objects(4);
    const auto stats = server_.stats("repo");
    EXPECT_EQ(stats.num_objects, 4u);
    EXPECT_FALSE(stats.trained);  // indexing deferred until TRAIN
    EXPECT_EQ(stats.image_index_terms, 0u);
}

TEST_F(MieEndToEnd, SearchBeforeTrainUsesLinearScanAndFindsSelf) {
    load_objects(6);
    const auto query = generator_.make(2);
    const auto results = client_->search(query, 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 2u);  // exact object ranks first
}

TEST_F(MieEndToEnd, TrainBuildsCloudSideIndexes) {
    load_objects(8);
    client_->train();
    const auto stats = server_.stats("repo");
    EXPECT_TRUE(stats.trained);
    EXPECT_GT(stats.visual_words, 1u);
    EXPECT_GT(stats.image_index_terms, 0u);
    EXPECT_GT(stats.text_index_terms, 0u);
    // Client spent nothing on training: it is outsourced.
    EXPECT_DOUBLE_EQ(client_->meter().seconds(sim::SubOp::kTrain), 0.0);
}

TEST_F(MieEndToEnd, TrainedSearchFindsSelfAndClassmates) {
    load_objects(10);
    client_->train();
    const auto query = generator_.make(3);
    const auto results = client_->search(query, 5);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 3u);
    // Scores are descending.
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_LE(results[i].score, results[i - 1].score);
    }
}

TEST_F(MieEndToEnd, ResultsDecryptToOriginalObject) {
    load_objects(5);
    const auto query = generator_.make(1);
    const auto results = client_->search(query, 1);
    ASSERT_FALSE(results.empty());
    const auto decrypted = client_->decrypt_result(results.front());
    EXPECT_EQ(decrypted.id, 1u);
    EXPECT_EQ(decrypted.text, generator_.make(1).text);
    EXPECT_EQ(decrypted.image.width(), 64);
}

TEST_F(MieEndToEnd, StoredBlobsAreNotPlaintext) {
    load_objects(1);
    // Search returns the ciphertext blob; it must differ from the plaintext
    // serialization (semantic security smoke test).
    const auto results = client_->search(generator_.make(0), 1);
    ASSERT_FALSE(results.empty());
    const Bytes plaintext = encode_object(generator_.make(0));
    EXPECT_NE(results.front().encrypted_object, plaintext);
}

TEST_F(MieEndToEnd, UpdateAfterTrainIndexesDynamically) {
    load_objects(6);
    client_->train();
    const auto before = server_.stats("repo");
    client_->update(generator_.make(100));
    const auto after = server_.stats("repo");
    EXPECT_EQ(after.num_objects, before.num_objects + 1);
    // New object is searchable without retraining.
    const auto results = client_->search(generator_.make(100), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 100u);
}

TEST_F(MieEndToEnd, ReUpdateReplacesObject) {
    load_objects(3);
    client_->train();
    auto changed = generator_.make(1);
    changed.text = "completely different replacement tags here";
    client_->update(changed);
    EXPECT_EQ(server_.stats("repo").num_objects, 3u);
    const auto decrypted =
        client_->decrypt_result(client_->search(changed, 1).front());
    EXPECT_EQ(decrypted.text, changed.text);
}

TEST_F(MieEndToEnd, RemoveDeletesObjectAndIndexEntries) {
    load_objects(5);
    client_->train();
    client_->remove(2);
    EXPECT_EQ(server_.stats("repo").num_objects, 4u);
    const auto results = client_->search(generator_.make(2), 5);
    for (const auto& result : results) {
        EXPECT_NE(result.object_id, 2u);
    }
    // Removing again is a no-op.
    client_->remove(2);
    EXPECT_EQ(server_.stats("repo").num_objects, 4u);
}

TEST_F(MieEndToEnd, MultipleUsersShareRepositoryWithSharedKey) {
    // User 2 has the repository key but their own transport and secret.
    net::MeteredTransport transport2(server_, net::LinkProfile::loopback());
    MieClient user2(transport2, "repo", repo_key_, to_bytes("user-2-secret"));

    client_->create_repository();
    client_->update(generator_.make(0));
    user2.update(generator_.make(1));
    client_->train();
    user2.update(generator_.make(2));

    EXPECT_EQ(server_.stats("repo").num_objects, 3u);
    // Either user can search the whole repository.
    const auto results = user2.search(generator_.make(0), 1);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 0u);
}

TEST_F(MieEndToEnd, ClientWithoutRepositoryKeyGetsUnrelatedTokens) {
    // A client with a different repository key produces encodings that do
    // not match the stored ones, so its searches return nothing relevant.
    load_objects(4);
    client_->train();
    const auto other_key = RepositoryKey::generate(to_bytes("other-entropy"),
                                                   kSurfDims, 128,
                                                   0.7978845608);
    net::MeteredTransport transport2(server_, net::LinkProfile::loopback());
    MieClient intruder(transport2, "repo", other_key, to_bytes("intruder"));
    // The key holder retrieves every object as its own top-1; the intruder's
    // encodings are unrelated to the stored ones, so it cannot do the same.
    int mine_correct = 0, theirs_correct = 0;
    for (std::uint64_t id = 0; id < 4; ++id) {
        const auto mine = client_->search(generator_.make(id), 1);
        if (!mine.empty() && mine.front().object_id == id) ++mine_correct;
        const auto theirs = intruder.search(generator_.make(id), 1);
        if (!theirs.empty() && theirs.front().object_id == id) {
            ++theirs_correct;
        }
    }
    EXPECT_EQ(mine_correct, 4);
    EXPECT_LT(theirs_correct, 3);
}

TEST_F(MieEndToEnd, MeterAttributesSubOperations) {
    load_objects(3);
    const auto& meter = client_->meter();
    EXPECT_GT(meter.seconds(sim::SubOp::kIndex), 0.0);
    EXPECT_GT(meter.seconds(sim::SubOp::kEncrypt), 0.0);
    EXPECT_GE(meter.seconds(sim::SubOp::kNetwork), 0.0);
    EXPECT_DOUBLE_EQ(meter.seconds(sim::SubOp::kTrain), 0.0);
}

TEST_F(MieEndToEnd, TransportMetersBytes) {
    load_objects(2);
    EXPECT_GT(transport_.bytes_up(), 0u);
    EXPECT_GT(transport_.bytes_down(), 0u);
    EXPECT_EQ(transport_.calls(), 3u);  // create + 2 updates
}

TEST_F(MieEndToEnd, UnknownRepositoryIsAnError) {
    net::MeteredTransport transport2(server_, net::LinkProfile::loopback());
    MieClient ghost(transport2, "missing", repo_key_, to_bytes("g"));
    EXPECT_THROW(ghost.search(generator_.make(0), 1), std::invalid_argument);
}

TEST(MieObjectCodec, Roundtrip) {
    sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{.image_size = 32});
    const auto object = gen.make(7);
    const auto decoded = decode_object(encode_object(object));
    EXPECT_EQ(decoded.id, object.id);
    EXPECT_EQ(decoded.text, object.text);
    EXPECT_EQ(decoded.image.width(), object.image.width());
    EXPECT_EQ(decoded.image.height(), object.image.height());
    // Pixels survive up to 8-bit quantization.
    EXPECT_NEAR(decoded.image.at(10, 10),
                std::clamp(object.image.at(10, 10), 0.0f, 1.0f), 1.0f / 255);
}

TEST(MieKeys, RepositoryKeyRoundtripAndDataKeys) {
    const auto key =
        RepositoryKey::generate(to_bytes("k"), 64, 64, 0.5);
    const auto parsed = RepositoryKey::deserialize(key.serialize());
    EXPECT_EQ(parsed.dense.seed, key.dense.seed);
    EXPECT_EQ(parsed.sparse.key, key.sparse.key);

    const DataKeyring ring(to_bytes("master"));
    EXPECT_EQ(ring.data_key(1).size(), 32u);
    EXPECT_NE(ring.data_key(1), ring.data_key(2));
    EXPECT_EQ(ring.data_key(1), DataKeyring(to_bytes("master")).data_key(1));
}

}  // namespace
}  // namespace mie
