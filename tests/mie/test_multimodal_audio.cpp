// Three-modality end-to-end tests: image + text + audio flowing through
// the MIE framework (extraction, DPE encoding, per-modality cloud indexes,
// multimodal fusion).
#include <gtest/gtest.h>

#include "mie/client.hpp"
#include "mie/extract.hpp"
#include "mie/object_codec.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

sim::FlickrLikeParams audio_params(std::uint64_t seed) {
    return sim::FlickrLikeParams{.num_classes = 4,
                                 .image_size = 64,
                                 .with_audio = true,
                                 .audio_samples = 4096,
                                 .seed = seed};
}

TEST(MultimodalAudio, GeneratorProducesClassCorrelatedAudio) {
    const sim::FlickrLikeGenerator gen(audio_params(51));
    const auto a = gen.make(0);   // class 0
    const auto b = gen.make(4);   // class 0
    const auto c = gen.make(1);   // class 1
    ASSERT_EQ(a.audio.size(), 4096u);
    const auto da = features::extract_audio_descriptors(a.audio);
    const auto db = features::extract_audio_descriptors(b.audio);
    const auto dc = features::extract_audio_descriptors(c.audio);
    ASSERT_FALSE(da.empty());
    double same = 0.0, cross = 0.0;
    const std::size_t count = std::min({da.size(), db.size(), dc.size()});
    for (std::size_t i = 0; i < count; ++i) {
        same += features::euclidean_distance(da[i], db[i]);
        cross += features::euclidean_distance(da[i], dc[i]);
    }
    EXPECT_LT(same, cross);
}

TEST(MultimodalAudio, ExtractMultimodalCoversThreeModalities) {
    const sim::FlickrLikeGenerator gen(audio_params(52));
    const auto features = extract_multimodal(gen.make(0));
    EXPECT_TRUE(features.dense.contains(kImageModality));
    EXPECT_TRUE(features.dense.contains(kAudioModality));
    EXPECT_TRUE(features.sparse.contains(kTextModality));
    // All dense descriptors share the repository key's dimensionality.
    for (const auto& [modality, descriptors] : features.dense) {
        for (const auto& d : descriptors) EXPECT_EQ(d.size(), 64u);
    }
}

TEST(MultimodalAudio, ObjectCodecRoundtripsAudio) {
    const sim::FlickrLikeGenerator gen(audio_params(53));
    const auto object = gen.make(2);
    const auto decoded = decode_object(encode_object(object));
    ASSERT_EQ(decoded.audio.size(), object.audio.size());
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_NEAR(decoded.audio[i], object.audio[i], 1.0f / 32767 + 1e-4f);
    }
}

class ThreeModalityEndToEnd : public ::testing::Test {
protected:
    ThreeModalityEndToEnd()
        : repo_key_(RepositoryKey::generate(to_bytes("audio-e2e"), 64, 128,
                                            0.7978845608)),
          transport_(server_, net::LinkProfile::loopback()),
          client_(transport_, "repo", repo_key_, to_bytes("user")),
          generator_(audio_params(54)) {
        client_.train_params.tree_branch = 5;
        client_.train_params.tree_depth = 2;
        client_.create_repository();
        for (const auto& object : generator_.make_batch(0, 12)) {
            client_.update(object);
        }
        client_.train();
    }

    RepositoryKey repo_key_;
    MieServer server_;
    net::MeteredTransport transport_;
    MieClient client_;
    sim::FlickrLikeGenerator generator_;
};

TEST_F(ThreeModalityEndToEnd, ServerTracksBothDenseModalities) {
    const auto stats = server_.stats("repo");
    EXPECT_EQ(stats.dense_modalities, 2u);   // image + audio
    EXPECT_EQ(stats.sparse_modalities, 1u);  // text
    EXPECT_GT(stats.visual_words, 2u);
}

TEST_F(ThreeModalityEndToEnd, FullQueryFindsSelf) {
    for (std::uint64_t id : {0ULL, 5ULL, 11ULL}) {
        const auto results = client_.search(generator_.make(id), 3);
        ASSERT_FALSE(results.empty()) << id;
        EXPECT_EQ(results.front().object_id, id);
    }
}

TEST_F(ThreeModalityEndToEnd, AudioOnlyQueryWorks) {
    // Query with just the audio modality: strip image/text.
    auto query = generator_.make(3);
    query.image = features::Image(16, 16);  // flat -> no image descriptors
    query.text.clear();
    const auto results = client_.search(query, 4);
    ASSERT_FALSE(results.empty());
    // Audio identifies the class; the top result shares object 3's class.
    const auto top = client_.decrypt_result(results.front());
    EXPECT_EQ(top.id % 4, 3u % 4);
}

TEST_F(ThreeModalityEndToEnd, MixedRepositoriesDegradeGracefully) {
    // Objects without audio coexist with objects that have it.
    sim::FlickrLikeGenerator silent(sim::FlickrLikeParams{
        .num_classes = 4, .image_size = 64, .with_audio = false,
        .seed = 54});
    client_.update(silent.make(100));
    const auto results = client_.search(silent.make(100), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 100u);
}

TEST_F(ThreeModalityEndToEnd, DecryptedResultsCarryAudio) {
    const auto results = client_.search(generator_.make(7), 1);
    ASSERT_FALSE(results.empty());
    const auto object = client_.decrypt_result(results.front());
    EXPECT_EQ(object.audio.size(), 4096u);
}

}  // namespace
}  // namespace mie
