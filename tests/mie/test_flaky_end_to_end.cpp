// Soak test: a full MIE workload over a link that randomly drops,
// resets, truncates, corrupts, and delays 5% of all I/O operations.
// Graceful degradation means degraded latency, NOT degraded answers:
// every search result of the flaky run must be bitwise identical to the
// fault-free run — same object ids, same score bits, same ciphertext
// bytes. The same property is checked for the MSSE baseline (whose
// counter protocol is stateful, so a double-applied retry would corrupt
// frequencies and shift scores).
//
// Workload size honours MIE_BENCH_SCALE like the benches do (ctest runs
// at the default scale in well under a minute).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "baseline/msse_client.hpp"
#include "baseline/msse_server.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "net/envelope.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

std::size_t soak_objects() {
    double scale = 1.0;
    if (const char* env = std::getenv("MIE_BENCH_SCALE")) {
        const double value = std::atof(env);
        if (value > 0.0) scale = std::clamp(value, 0.1, 100.0);
    }
    return std::max<std::size_t>(
        6, static_cast<std::size_t>(12.0 * scale));
}

/// One ranked result list, flattened to raw bytes for bitwise compare.
Bytes flatten(const std::vector<SearchResult>& results) {
    Bytes out;
    for (const auto& result : results) {
        append_le<std::uint64_t>(out, result.object_id);
        std::uint64_t score_bits;
        std::memcpy(&score_bits, &result.score, sizeof(score_bits));
        append_le<std::uint64_t>(out, score_bits);
        append_le<std::uint32_t>(
            out, static_cast<std::uint32_t>(result.encrypted_object.size()));
        out.insert(out.end(), result.encrypted_object.begin(),
                   result.encrypted_object.end());
    }
    return out;
}

/// Runs the full workload for `scheme`: create, add, train, search every
/// object, remove a third, search again. Returns the flattened bytes of
/// every ranked list, in order.
Bytes run_workload(SearchableScheme& scheme, std::size_t num_objects) {
    sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
        .num_classes = 3, .image_size = 48, .seed = 77});
    scheme.create_repository();
    for (std::size_t i = 0; i < num_objects; ++i) {
        scheme.update(gen.make(i));
    }
    scheme.train();
    Bytes transcript;
    for (std::size_t i = 0; i < num_objects; ++i) {
        const Bytes flat = flatten(scheme.search(gen.make(i), 5));
        transcript.insert(transcript.end(), flat.begin(), flat.end());
    }
    for (std::size_t i = 0; i < num_objects; i += 3) {
        scheme.remove(i);
    }
    for (std::size_t i = 0; i < num_objects; ++i) {
        const Bytes flat = flatten(scheme.search(gen.make(i), 5));
        transcript.insert(transcript.end(), flat.begin(), flat.end());
    }
    return transcript;
}

/// The transport stack both soak runs share; `rate` = 0 is the clean run.
struct Stack {
    net::DedupHandler dedup;
    net::MeteredTransport wire;
    net::FaultyTransport faulty;
    net::RetryingTransport retrying;

    Stack(net::RequestHandler& server, double rate, std::uint64_t seed)
        : dedup(server),
          wire(dedup, net::LinkProfile::loopback()),
          faulty(wire, net::FaultPlan{.rate = rate, .seed = seed}),
          retrying(faulty, net::RetryPolicy{.max_attempts = 10,
                                            .jitter_seed = seed}) {
        retrying.set_sleeper([](double) {});
    }
};

/// Fault-handling bookkeeping of one soak run.
struct RunStats {
    std::uint64_t faults_injected = 0;
    std::uint64_t retries = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t replays_suppressed = 0;
};

TEST(FlakySoak, MieResultsAreBitwiseIdenticalAt5PercentFaults) {
    const std::size_t num_objects = soak_objects();
    const auto key = RepositoryKey::generate(to_bytes("soak"), 64, 64,
                                             0.7978845608);

    auto run = [&](double rate, RunStats* out) {
        MieServer server;
        Stack stack(server, rate, 0x50AC);
        MieClient client(stack.retrying, "soak-repo", key,
                         to_bytes("soak-user"));
        client.train_params.tree_branch = 5;
        client.train_params.tree_depth = 2;
        Bytes transcript = run_workload(client, num_objects);
        if (out) {
            out->faults_injected = stack.faulty.stats().faults_injected;
            out->retries = stack.retrying.stats().retries;
            out->exhausted = stack.retrying.stats().exhausted;
            out->replays_suppressed = stack.dedup.replays_suppressed();
        }
        return transcript;
    };

    const Bytes clean = run(0.0, nullptr);
    RunStats stats;
    const Bytes flaky = run(0.05, &stats);

    // The flaky link really was flaky…
    EXPECT_GT(stats.faults_injected, 0u);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_EQ(stats.exhausted, 0u);
    // …and the user cannot tell: identical ids, score bits, ciphertexts.
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, flaky);
}

TEST(FlakySoak, MsseResultsAreBitwiseIdenticalAt5PercentFaults) {
    const std::size_t num_objects = soak_objects();

    auto run = [&](double rate) {
        baseline::MsseServer server;
        Stack stack(server, rate, 0x5EAC);
        baseline::MsseClient client(stack.retrying, "soak-repo",
                                    to_bytes("soak-entropy"),
                                    to_bytes("soak-user"));
        client.train_params.tree_branch = 20;
        client.train_params.tree_depth = 1;
        return run_workload(client, num_objects);
    };

    const Bytes clean = run(0.0);
    const Bytes flaky = run(0.05);
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, flaky);
}

}  // namespace
}  // namespace mie
