// DurableServer crash-recovery tests.
//
// Strategy: record a realistic mixed CREATE/UPDATE/TRAIN/REMOVE workload
// once as raw wire requests (via a recording transport), then replay
// those bytes against DurableServer instances under fault injection.
// A "shadow" in-memory MieServer is fed exactly the requests the durable
// server acknowledged; after a crash + recovery, the recovered server
// must match the shadow — every acknowledged operation present, no
// object lost. The only tolerated divergence is the single in-flight
// request whose log record was written but whose ack never returned
// (the classic logged-but-unacknowledged window; replaying it is the
// documented at-least-once behaviour for unacknowledged operations).
#include <gtest/gtest.h>

#include <algorithm>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/persistence.hpp"
#include "mie/server.hpp"
#include "mie/wire.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie {
namespace {

namespace fs = std::filesystem;

constexpr char kRepo[] = "repo";

/// Forwards to a handler while keeping a copy of every request.
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        requests.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> requests;

private:
    net::RequestHandler& handler_;
};

Bytes list_objects_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kListObjects));
    writer.write_string(kRepo);
    return writer.take();
}

Bytes stats_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kStats));
    writer.write_string(kRepo);
    return writer.take();
}

/// id -> ciphertext blob, order-independent.
std::map<std::uint64_t, Bytes> listing_of(net::RequestHandler& server) {
    const Bytes response = server.handle(list_objects_request());
    net::MessageReader reader(response);
    std::map<std::uint64_t, Bytes> objects;
    const auto count = reader.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t id = reader.read_u64();
        objects[id] = reader.read_bytes();
    }
    return objects;
}

/// Asserts `recovered` holds exactly the same repository state as
/// `expected` (object set with identical blobs, plus index statistics).
/// This strict form only holds for pure WAL replay, which re-executes the
/// original request sequence and therefore reproduces the index
/// bit-for-bit.
void expect_same_state(net::RequestHandler& recovered,
                       net::RequestHandler& expected) {
    EXPECT_EQ(listing_of(recovered), listing_of(expected));
    EXPECT_EQ(recovered.handle(stats_request()),
              expected.handle(stats_request()));
}

struct CoreStats {
    std::uint64_t num_objects = 0;
    bool trained = false;
};

CoreStats core_stats_of(net::RequestHandler& server) {
    // Keep the response alive: MessageReader is a view over the bytes.
    const Bytes response = server.handle(stats_request());
    net::MessageReader reader(response);
    CoreStats stats;
    stats.num_objects = reader.read_u64();
    stats.trained = reader.read_u8() != 0;
    return stats;
}

/// Asserts the acknowledged state matches: identical object store and
/// trained flag. Used for checkpoint-restored servers, where the object
/// store is exact but derived index structures are deterministically
/// retrained from the *current* objects (the snapshot format does not
/// serialize trees/indexes), so per-term index counters can legitimately
/// differ from a server that trained earlier on a different object set.
void expect_same_objects(net::RequestHandler& recovered,
                         net::RequestHandler& expected) {
    EXPECT_EQ(listing_of(recovered), listing_of(expected));
    const CoreStats a = core_stats_of(recovered);
    const CoreStats b = core_stats_of(expected);
    EXPECT_EQ(a.num_objects, b.num_objects);
    EXPECT_EQ(a.trained, b.trained);
}

class DurableServerTest : public ::testing::Test {
protected:
    DurableServerTest()
        // Keyed by test name + pid: ctest runs each case as its own
        // process in parallel, so a shared directory would collide.
        : dir_(fs::temp_directory_path() /
               ("mie_durable_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~DurableServerTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /// Records the mixed workload once per suite: create, 10 updates,
    /// train, 4 more updates, 2 removes, 1 overwrite.
    static const std::vector<Bytes>& workload() {
        static const std::vector<Bytes> requests = [] {
            MieServer scratch;
            RecordingTransport transport(scratch);
            auto key = RepositoryKey::generate(to_bytes("durable"), 64, 64,
                                               0.7978845608);
            MieClient client(transport, kRepo, key, to_bytes("u"));
            client.train_params.tree_branch = 5;
            client.train_params.tree_depth = 2;
            sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
                .num_classes = 4, .image_size = 48, .seed = 71});
            client.create_repository();
            for (const auto& object : generator.make_batch(0, 10)) {
                client.update(object);
            }
            client.train();
            for (const auto& object : generator.make_batch(10, 4)) {
                client.update(object);
            }
            client.remove(3);
            client.remove(7);
            client.update(generator.make(5));  // overwrite in place
            return std::move(transport.requests);
        }();
        return requests;
    }

    /// Default small-scale engine options: tiny segments so the workload
    /// rotates several times.
    static DurableServer::Options small_segments(
        std::uint64_t checkpoint_every_bytes = 0) {
        DurableServer::Options options;
        options.wal.segment_bytes = 32 * 1024;
        options.checkpoint_every_bytes = checkpoint_every_bytes;
        return options;
    }

    /// Replays `requests` until the durable server dies; requests that
    /// return normally are applied to `shadow` too. Returns the request
    /// in flight when the crash hit, if any.
    static std::optional<Bytes> drive(DurableServer& durable,
                                      MieServer& shadow,
                                      const std::vector<Bytes>& requests) {
        for (const Bytes& request : requests) {
            try {
                durable.handle(request);
            } catch (const store::IoError&) {
                return request;
            }
            shadow.handle(request);
        }
        return std::nullopt;
    }

    /// True when the two servers agree on the acknowledged state —
    /// under `strict` additionally on every derived index counter.
    static bool state_matches(net::RequestHandler& a, net::RequestHandler& b,
                              bool strict) {
        if (listing_of(a) != listing_of(b)) return false;
        if (strict) {
            return a.handle(stats_request()) == b.handle(stats_request());
        }
        const CoreStats sa = core_stats_of(a);
        const CoreStats sb = core_stats_of(b);
        return sa.num_objects == sb.num_objects && sa.trained == sb.trained;
    }

    /// Recovered state must equal shadow(acked), or — only when a logged
    /// record was in flight — shadow(acked + in-flight). Pass
    /// `strict=false` when recovery may have gone through a checkpoint
    /// (see expect_same_objects).
    static void expect_recovered(DurableServer& recovered, MieServer& shadow,
                                 const std::optional<Bytes>& in_flight,
                                 bool strict = true) {
        if (state_matches(recovered, shadow, strict)) return;
        ASSERT_TRUE(in_flight.has_value())
            << "recovered state diverges with no in-flight operation";
        shadow.handle(*in_flight);
        if (strict) {
            expect_same_state(recovered, shadow);
        } else {
            expect_same_objects(recovered, shadow);
        }
    }

    fs::path dir_;
};

TEST_F(DurableServerTest, WalOnlyRecoveryMatchesUncrashedServer) {
    MieServer shadow;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments());
        const auto in_flight = drive(durable, shadow, workload());
        EXPECT_FALSE(in_flight.has_value());
        const auto stats = durable.durability();
        EXPECT_EQ(stats.records_logged, workload().size());
        EXPECT_EQ(stats.checkpoints_written, 0u);
        // Process "crash": the server object is destroyed with no
        // checkpoint and no clean-shutdown hook.
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());
    const auto stats = recovered.durability();
    EXPECT_FALSE(stats.recovered_from_checkpoint);
    EXPECT_EQ(stats.recovered_records, workload().size());
    expect_same_state(recovered, shadow);

    // The WAL -> recover -> stats() equivalence, against the uncrashed
    // in-memory server.
    const auto recovered_stats = recovered.server().stats(kRepo);
    const auto shadow_stats = shadow.stats(kRepo);
    EXPECT_EQ(recovered_stats.num_objects, shadow_stats.num_objects);
    EXPECT_EQ(recovered_stats.trained, shadow_stats.trained);
    EXPECT_EQ(recovered_stats.visual_words, shadow_stats.visual_words);
    EXPECT_EQ(recovered_stats.image_index_terms,
              shadow_stats.image_index_terms);
    EXPECT_EQ(recovered_stats.text_index_terms,
              shadow_stats.text_index_terms);
}

TEST_F(DurableServerTest, RecoveredServerSearchesAndAcceptsNewUpdates) {
    MieServer shadow;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments());
        drive(durable, shadow, workload());
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());

    auto key = RepositoryKey::generate(to_bytes("durable"), 64, 64,
                                       0.7978845608);
    sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
        .num_classes = 4, .image_size = 48, .seed = 71});
    net::MeteredTransport t1(recovered, net::LinkProfile::loopback());
    net::MeteredTransport t2(shadow, net::LinkProfile::loopback());
    MieClient c1(t1, kRepo, key, to_bytes("u"));
    MieClient c2(t2, kRepo, key, to_bytes("u"));
    // Identical ranked results through the recovered and shadow servers
    // (deterministic retraining).
    for (std::uint64_t id = 0; id < 5; ++id) {
        const auto r1 = c1.search(generator.make(id), 4);
        const auto r2 = c2.search(generator.make(id), 4);
        ASSERT_EQ(r1.size(), r2.size()) << id;
        for (std::size_t i = 0; i < r1.size(); ++i) {
            EXPECT_EQ(r1[i].object_id, r2[i].object_id) << id;
            EXPECT_DOUBLE_EQ(r1[i].score, r2[i].score) << id;
        }
    }
    // New mutations keep working (and keep being logged).
    c1.update(generator.make(60));
    const auto results = c1.search(generator.make(60), 2);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 60u);
    EXPECT_GT(recovered.durability().records_logged, 0u);
}

TEST_F(DurableServerTest, CheckpointPlusTailRecovery) {
    MieServer shadow;
    std::size_t checkpoints = 0;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments(/*checkpoint_every_bytes=*/
                                             8 * 1024));
        drive(durable, shadow, workload());
        checkpoints = durable.durability().checkpoints_written;
        ASSERT_GE(checkpoints, 1u)
            << "workload too small to trigger the checkpoint threshold";
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments(8 * 1024));
    const auto stats = recovered.durability();
    EXPECT_TRUE(stats.recovered_from_checkpoint);
    // Only the records after the last checkpoint replay.
    EXPECT_LT(stats.recovered_records, workload().size());
    expect_same_objects(recovered, shadow);
}

TEST_F(DurableServerTest, ManualCheckpointTruncatesLog) {
    MieServer shadow;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments());
        drive(durable, shadow, workload());
        durable.checkpoint_now();
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());
    EXPECT_TRUE(recovered.durability().recovered_from_checkpoint);
    EXPECT_EQ(recovered.durability().recovered_records, 0u);
    expect_same_objects(recovered, shadow);
}

// The kill-and-recover matrix: crash the server at arbitrary byte
// positions in the log stream (torn tail record / truncated segment are
// produced naturally by tearing at header vs payload offsets), with and
// without checkpointing active (the latter also covers crashes during
// checkpoint writes and between checkpoint and truncation), then verify
// recovery yields exactly the acknowledged state.
TEST_F(DurableServerTest, KillAndRecoverAtArbitraryPoints) {
    // Calibrate: total bytes a faultless run appends.
    std::uint64_t total_bytes = 0;
    {
        store::FaultInjectingVfs vfs(store::PosixVfs::instance());
        MieServer shadow;
        DurableServer durable(vfs, dir_ / "calibrate", small_segments());
        drive(durable, shadow, workload());
        total_bytes = vfs.bytes_appended();
        ASSERT_GT(total_bytes, 0u);
    }

    const std::uint64_t checkpoint_cells[] = {0, 8 * 1024};
    const std::size_t torn_cells[] = {0, 7};
    int cell = 0;
    for (const std::uint64_t checkpoint_every : checkpoint_cells) {
        for (const std::size_t torn : torn_cells) {
            for (int step = 1; step <= 6; ++step) {
                const std::uint64_t fail_at = total_bytes * step / 7;
                const fs::path cell_dir =
                    dir_ / ("cell_" + std::to_string(cell++));
                MieServer shadow;
                std::optional<Bytes> in_flight;
                {
                    store::FaultInjectingVfs vfs(
                        store::PosixVfs::instance());
                    DurableServer durable(vfs, cell_dir,
                                          small_segments(checkpoint_every));
                    vfs.fail_after_bytes(fail_at, torn);
                    in_flight = drive(durable, shadow, workload());
                    ASSERT_TRUE(in_flight.has_value())
                        << "fault at byte " << fail_at << " never fired";
                    EXPECT_TRUE(vfs.crashed());
                }
                DurableServer recovered(store::PosixVfs::instance(),
                                        cell_dir,
                                        small_segments(checkpoint_every));
                SCOPED_TRACE("fail_at=" + std::to_string(fail_at) +
                             " torn=" + std::to_string(torn) +
                             " checkpoint_every=" +
                             std::to_string(checkpoint_every));
                // Pure-replay recoveries must match bit-for-bit; a
                // checkpoint restore is only object-exact (see
                // expect_same_objects).
                const bool strict =
                    !recovered.durability().recovered_from_checkpoint;
                expect_recovered(recovered, shadow, in_flight, strict);
            }
        }
    }
}

// Power-loss cell: with SyncPolicy::kEveryRecord every acknowledged
// record is fsynced, so dropping all unsynced bytes at the crash point
// must still recover every acknowledged operation.
TEST_F(DurableServerTest, PowerLossWithSyncEveryRecord) {
    std::uint64_t total_bytes = 0;
    {
        store::FaultInjectingVfs vfs(store::PosixVfs::instance());
        MieServer shadow;
        DurableServer durable(vfs, dir_ / "calibrate", small_segments());
        drive(durable, shadow, workload());
        total_bytes = vfs.bytes_appended();
    }
    for (int step = 1; step <= 4; ++step) {
        const std::uint64_t fail_at = total_bytes * step / 5;
        const fs::path cell_dir = dir_ / ("power_" + std::to_string(step));
        MieServer shadow;
        std::optional<Bytes> in_flight;
        {
            store::FaultInjectingVfs vfs(store::PosixVfs::instance());
            auto options = small_segments();
            options.wal.sync_policy = store::SyncPolicy::kEveryRecord;
            DurableServer durable(vfs, cell_dir, options);
            vfs.fail_after_bytes(fail_at, 5);
            in_flight = drive(durable, shadow, workload());
            ASSERT_TRUE(in_flight.has_value());
            vfs.power_loss();  // unsynced bytes (the torn tail) vanish
        }
        DurableServer recovered(store::PosixVfs::instance(), cell_dir,
                                small_segments());
        SCOPED_TRACE("fail_at=" + std::to_string(fail_at));
        expect_recovered(recovered, shadow, in_flight);
    }
}

// Corrupt-CRC cell: flip a byte inside the last durable record. Recovery
// must detect the corruption, never apply garbage, and serve exactly the
// log prefix before the corrupted record.
TEST_F(DurableServerTest, CorruptCrcYieldsExactPrefixState) {
    MieServer shadow;
    const auto& requests = workload();
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments());
        // Apply everything but keep the shadow one mutating request
        // behind: the last request is the one we will corrupt.
        for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
            durable.handle(requests[i]);
            shadow.handle(requests[i]);
        }
        durable.handle(requests.back());  // acked, but about to corrupt
    }
    // Find the last WAL segment and flip a byte in its final record's
    // payload (the CRC check must catch it).
    const fs::path wal_dir = dir_ / "wal";
    std::vector<fs::path> segments =
        store::PosixVfs::instance().list_dir(wal_dir);
    std::sort(segments.begin(), segments.end());
    ASSERT_FALSE(segments.empty());
    const fs::path last_segment = segments.back();
    const auto size = fs::file_size(last_segment);
    {
        std::fstream f(last_segment,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(static_cast<std::streamoff>(size - 3));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A);  // guaranteed to change
        f.seekp(static_cast<std::streamoff>(size - 3));
        f.write(&byte, 1);
    }
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());
    EXPECT_TRUE(recovered.durability().tail_truncated);
    expect_same_state(recovered, shadow);
    // The recovered server still accepts new mutations.
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kRemove));
    writer.write_string(kRepo);
    writer.write_u64(0);
    const Bytes remove_request = writer.take();
    recovered.handle(remove_request);
    shadow.handle(remove_request);
    expect_same_state(recovered, shadow);
}

// Plain snapshot persistence still works on top of the refactored
// server, and the durable checkpoint format is the same export format.
TEST_F(DurableServerTest, SnapshotPersistenceInteroperates) {
    MieServer shadow;
    {
        DurableServer durable(store::PosixVfs::instance(), dir_,
                              small_segments());
        drive(durable, shadow, workload());
        save_server_snapshot(durable.server(), dir_ / "manual.snap");
    }
    MieServer restored;
    load_server_snapshot(restored, dir_ / "manual.snap");
    // Snapshot restore retrains on the current object set, so only the
    // acknowledged state (not per-term index counters) is bit-exact.
    expect_same_objects(restored, shadow);
}

}  // namespace
}  // namespace mie
