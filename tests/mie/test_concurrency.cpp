// Concurrency tests: the MIE server safely serves multiple writers and
// searchers at once (the property Fig. 4's experiment relies on).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

constexpr std::size_t kDims = 64;

RepositoryKey shared_key() {
    return RepositoryKey::generate(to_bytes("concurrency"), kDims, 64,
                                   0.7978845608);
}

TEST(MieConcurrency, ParallelWritersAllLand) {
    MieServer server;
    const auto key = shared_key();
    constexpr int kWriters = 4;
    constexpr int kObjectsPerWriter = 6;

    net::MeteredTransport setup_transport(server,
                                          net::LinkProfile::loopback());
    MieClient setup(setup_transport, "repo", key, to_bytes("setup"));
    setup.create_repository();

    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            try {
                net::MeteredTransport transport(
                    server, net::LinkProfile::loopback());
                MieClient client(transport, "repo", key,
                                 to_bytes("writer" + std::to_string(w)));
                sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
                    .image_size = 48,
                    .seed = 100 + static_cast<std::uint64_t>(w)});
                for (int i = 0; i < kObjectsPerWriter; ++i) {
                    client.update(gen.make(
                        static_cast<std::uint64_t>(w) * 1000 + i));
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto& t : writers) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.stats("repo").num_objects,
              static_cast<std::size_t>(kWriters * kObjectsPerWriter));
}

TEST(MieConcurrency, WritersAndSearchersInterleave) {
    MieServer server;
    const auto key = shared_key();
    net::MeteredTransport setup_transport(server,
                                          net::LinkProfile::loopback());
    MieClient setup(setup_transport, "repo", key, to_bytes("setup"));
    setup.create_repository();
    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.image_size = 48, .seed = 9});
    for (int i = 0; i < 8; ++i) setup.update(gen.make(i));
    setup.train_params.tree_branch = 5;
    setup.train_params.tree_depth = 2;
    setup.train();

    std::atomic<int> failures{0};
    std::thread writer([&] {
        try {
            net::MeteredTransport transport(server,
                                            net::LinkProfile::loopback());
            MieClient client(transport, "repo", key, to_bytes("w"));
            for (int i = 100; i < 112; ++i) client.update(gen.make(i));
        } catch (...) {
            ++failures;
        }
    });
    std::thread searcher([&] {
        try {
            net::MeteredTransport transport(server,
                                            net::LinkProfile::loopback());
            MieClient client(transport, "repo", key, to_bytes("s"));
            for (int q = 0; q < 12; ++q) {
                const auto results = client.search(gen.make(q % 8), 3);
                if (results.empty()) ++failures;
            }
        } catch (...) {
            ++failures;
        }
    });
    writer.join();
    searcher.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.stats("repo").num_objects, 20u);
    // Everything remains searchable after the interleaving: the object
    // added mid-stream is retrieved among the top results.
    const auto results = setup.search(gen.make(105), 3);
    ASSERT_FALSE(results.empty());
    bool found = false;
    for (const auto& result : results) {
        if (result.object_id == 105u) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(MieConcurrency, ConcurrentRemovalsAndUpdatesStayConsistent) {
    MieServer server;
    const auto key = shared_key();
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient setup(transport, "repo", key, to_bytes("setup"));
    setup.create_repository();
    sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.image_size = 48, .seed = 4});
    for (int i = 0; i < 16; ++i) setup.update(gen.make(i));
    setup.train();

    std::thread remover([&] {
        net::MeteredTransport t(server, net::LinkProfile::loopback());
        MieClient client(t, "repo", key, to_bytes("r"));
        for (int i = 0; i < 8; ++i) client.remove(i);
    });
    std::thread updater([&] {
        net::MeteredTransport t(server, net::LinkProfile::loopback());
        MieClient client(t, "repo", key, to_bytes("u"));
        for (int i = 8; i < 16; ++i) client.update(gen.make(i));
    });
    remover.join();
    updater.join();
    EXPECT_EQ(server.stats("repo").num_objects, 8u);
    for (int i = 8; i < 16; ++i) {
        const auto results = setup.search(gen.make(i), 1);
        ASSERT_FALSE(results.empty()) << i;
        EXPECT_GE(results.front().object_id, 8u) << i;
    }
}

}  // namespace
}  // namespace mie
