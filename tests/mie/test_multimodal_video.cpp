// Four-modality end-to-end tests: image + text + audio + video through
// the MIE framework.
#include <gtest/gtest.h>

#include "mie/client.hpp"
#include "mie/extract.hpp"
#include "mie/object_codec.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace mie {
namespace {

sim::FlickrLikeParams full_params(std::uint64_t seed) {
    return sim::FlickrLikeParams{.num_classes = 3,
                                 .image_size = 48,
                                 .with_audio = true,
                                 .audio_samples = 2048,
                                 .with_video = true,
                                 .video_frames = 4,
                                 .seed = seed};
}

TEST(MultimodalVideo, GeneratorProducesFrames) {
    const sim::FlickrLikeGenerator gen(full_params(81));
    const auto object = gen.make(0);
    ASSERT_EQ(object.video.size(), 4u);
    for (const auto& frame : object.video) {
        EXPECT_EQ(frame.width(), 48);
        EXPECT_EQ(frame.height(), 48);
    }
    // Frames differ (motion) but share the class scene.
    EXPECT_NE(object.video[0].pixels(), object.video[1].pixels());
}

TEST(MultimodalVideo, ExtractionCoversFourModalities) {
    const sim::FlickrLikeGenerator gen(full_params(82));
    const auto features = extract_multimodal(gen.make(1));
    EXPECT_TRUE(features.dense.contains(kImageModality));
    EXPECT_TRUE(features.dense.contains(kAudioModality));
    EXPECT_TRUE(features.dense.contains(kVideoModality));
    EXPECT_TRUE(features.sparse.contains(kTextModality));
    // Frame stride 2 of 4 frames -> descriptors from 2 frames.
    EXPECT_FALSE(features.dense.at(kVideoModality).empty());
    for (const auto& d : features.dense.at(kVideoModality)) {
        EXPECT_EQ(d.size(), 64u);
    }
}

TEST(MultimodalVideo, CodecRoundtripsFrames) {
    const sim::FlickrLikeGenerator gen(full_params(83));
    const auto object = gen.make(2);
    const auto decoded = decode_object(encode_object(object));
    ASSERT_EQ(decoded.video.size(), object.video.size());
    EXPECT_NEAR(decoded.video[1].at(10, 10),
                std::clamp(object.video[1].at(10, 10), 0.0f, 1.0f),
                1.0f / 255 + 1e-5f);
}

TEST(MultimodalVideo, EndToEndSearchWithAllFourModalities) {
    MieServer server;
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient client(transport, "repo",
                     RepositoryKey::generate(to_bytes("video-e2e"), 64, 128,
                                             0.7978845608),
                     to_bytes("u"));
    client.train_params.tree_branch = 5;
    client.train_params.tree_depth = 2;
    const sim::FlickrLikeGenerator gen(full_params(84));
    client.create_repository();
    for (const auto& object : gen.make_batch(0, 9)) {
        client.update(object);
    }
    client.train();

    const auto stats = server.stats("repo");
    EXPECT_EQ(stats.dense_modalities, 3u);  // image + audio + video
    EXPECT_EQ(stats.sparse_modalities, 1u);

    const auto results = client.search(gen.make(4), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 4u);

    // Video-only query (strip everything else).
    auto query = gen.make(5);
    query.image = features::Image(16, 16);
    query.text.clear();
    query.audio.clear();
    const auto video_results = client.search(query, 3);
    ASSERT_FALSE(video_results.empty());
    const auto top = client.decrypt_result(video_results.front());
    EXPECT_EQ(top.id % 3, 5u % 3);  // class recovered from video alone
}

}  // namespace
}  // namespace mie
