// Dispatch-equivalence suite for src/kernels: every kernel must produce
// bitwise-identical results at every ladder level the CPU supports
// (scalar / sse2 / avx2 / native), over random and edge-length inputs —
// the determinism contract of DESIGN.md §10. Also covers the
// MIE_KERNEL_LEVEL parse/resolve logic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "kernels/kernels.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mie::kernels {
namespace {

std::vector<Level> available_levels() {
    std::vector<Level> levels;
    for (int i = 0; i <= static_cast<int>(max_level()); ++i) {
        levels.push_back(static_cast<Level>(i));
    }
    return levels;
}

// Edge lengths: empty, sub-block, block-aligned, pipeline-aligned (8
// blocks = 128 B), and misaligned around each boundary.
const std::size_t kByteLengths[] = {0,  1,  7,  8,   15,  16,  17,  31,
                                    32, 33, 64, 127, 128, 129, 255, 1024,
                                    1031};

std::vector<std::uint8_t> random_bytes(SplitMix64& rng, std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng());
    return out;
}

// A deterministic expanded AES key schedule in byte order (the kernels
// don't expand keys; crypto::Aes does — here any schedule-shaped bytes
// exercise the permutation identically at every level).
std::vector<std::uint8_t> fake_schedule(SplitMix64& rng, int rounds) {
    return random_bytes(rng, 16 * static_cast<std::size_t>(rounds + 1));
}

TEST(KernelDispatch, LevelParsing) {
    Level level = Level::kNative;
    EXPECT_TRUE(parse_level("scalar", &level));
    EXPECT_EQ(level, Level::kScalar);
    EXPECT_TRUE(parse_level("sse2", &level));
    EXPECT_EQ(level, Level::kSse2);
    EXPECT_TRUE(parse_level("avx2", &level));
    EXPECT_EQ(level, Level::kAvx2);
    EXPECT_TRUE(parse_level("native", &level));
    EXPECT_EQ(level, Level::kNative);

    level = Level::kSse2;
    EXPECT_FALSE(parse_level(nullptr, &level));
    EXPECT_FALSE(parse_level("", &level));
    EXPECT_FALSE(parse_level("AVX2", &level));
    EXPECT_FALSE(parse_level("avx512", &level));
    EXPECT_EQ(level, Level::kSse2);  // untouched on failure
}

TEST(KernelDispatch, ResolveClampsToHardware) {
    EXPECT_EQ(resolve_level("scalar"), Level::kScalar);
    // Absent or garbage override resolves to the best the CPU has.
    EXPECT_EQ(resolve_level(nullptr), max_level());
    EXPECT_EQ(resolve_level("bogus"), max_level());
    // A request above the hardware clamps down.
    EXPECT_LE(resolve_level("native"), max_level());
    EXPECT_LE(resolve_level("avx2"), Level::kAvx2);
    EXPECT_LE(resolve_level("avx2"), max_level());
    // active_level() is resolve_level over the real environment.
    EXPECT_EQ(active_level(),
              resolve_level(std::getenv("MIE_KERNEL_LEVEL")));
}

TEST(KernelDispatch, LevelNamesRoundTrip) {
    for (Level level : available_levels()) {
        Level parsed = Level::kNative;
        ASSERT_TRUE(parse_level(level_name(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(KernelDispatch, TableForClampsAboveMax) {
    // table_for(native) must be callable even if the CPU tops out lower.
    const KernelTable& t = table_for(Level::kNative);
    const std::uint8_t data[3] = {1, 2, 3};
    EXPECT_EQ(t.crc32c_update(0xFFFFFFFFu, data, 3),
              table_for(max_level()).crc32c_update(0xFFFFFFFFu, data, 3));
}

TEST(KernelEquivalence, AesEncryptBlock) {
    SplitMix64 rng(11);
    for (const int rounds : {10, 14}) {
        const auto schedule = fake_schedule(rng, rounds);
        for (int trial = 0; trial < 32; ++trial) {
            const auto input = random_bytes(rng, 16);
            std::uint8_t expected[16];
            std::memcpy(expected, input.data(), 16);
            table_for(Level::kScalar)
                .aes_encrypt_block(schedule.data(), rounds, expected);
            for (Level level : available_levels()) {
                std::uint8_t got[16];
                std::memcpy(got, input.data(), 16);
                table_for(level).aes_encrypt_block(schedule.data(), rounds,
                                                   got);
                ASSERT_EQ(0, std::memcmp(expected, got, 16))
                    << "level=" << level_name(level)
                    << " rounds=" << rounds << " trial=" << trial;
            }
        }
    }
}

TEST(KernelEquivalence, AesCtr64Xor) {
    SplitMix64 rng(22);
    const auto schedule = fake_schedule(rng, 10);
    // Counters at and around the interesting wrap boundaries: zero,
    // 32-bit word wrap, full 64-bit wrap (must not carry into the nonce).
    const std::uint64_t kCounters[] = {0,
                                       1,
                                       0xFFFFFFFFull - 3,
                                       0xFFFFFFFFull,
                                       0x00000001FFFFFFFFull,
                                       ~0ull - 4,
                                       ~0ull};
    for (const std::uint64_t start : kCounters) {
        for (const std::size_t len : kByteLengths) {
            std::uint8_t counter_init[16];
            for (int i = 0; i < 8; ++i) {
                counter_init[i] = static_cast<std::uint8_t>(rng());
            }
            for (int i = 0; i < 8; ++i) {
                counter_init[8 + i] =
                    static_cast<std::uint8_t>(start >> (8 * (7 - i)));
            }
            const auto plain = random_bytes(rng, len);

            auto expected = plain;
            std::uint8_t expected_counter[16];
            std::memcpy(expected_counter, counter_init, 16);
            table_for(Level::kScalar)
                .aes_ctr64_xor(schedule.data(), 10, expected_counter,
                               expected.data(), len);
            for (Level level : available_levels()) {
                auto got = plain;
                std::uint8_t counter[16];
                std::memcpy(counter, counter_init, 16);
                table_for(level).aes_ctr64_xor(schedule.data(), 10, counter,
                                               got.data(), len);
                ASSERT_EQ(expected, got)
                    << "level=" << level_name(level) << " len=" << len
                    << " start=" << start;
                ASSERT_EQ(0, std::memcmp(expected_counter, counter, 16))
                    << "counter mismatch at level=" << level_name(level)
                    << " len=" << len << " start=" << start;
            }
        }
    }
}

TEST(KernelEquivalence, AesCtr128Keystream) {
    SplitMix64 rng(33);
    const auto schedule = fake_schedule(rng, 14);
    const std::size_t kBlockCounts[] = {0, 1, 2, 7, 8, 9, 16, 23};
    for (const std::size_t blocks : kBlockCounts) {
        // Include a counter that wraps the low 64-bit word mid-batch.
        for (const bool near_wrap : {false, true}) {
            std::uint8_t counter_init[16];
            for (auto& b : counter_init) {
                b = static_cast<std::uint8_t>(rng());
            }
            if (near_wrap) {
                for (int i = 8; i < 16; ++i) counter_init[i] = 0xFF;
                counter_init[15] = 0xFB;  // wraps after 5 blocks
            }
            std::vector<std::uint8_t> expected(blocks * 16);
            std::uint8_t expected_counter[16];
            std::memcpy(expected_counter, counter_init, 16);
            table_for(Level::kScalar)
                .aes_ctr128_keystream(schedule.data(), 14, expected_counter,
                                      expected.data(), blocks);
            for (Level level : available_levels()) {
                std::vector<std::uint8_t> got(blocks * 16);
                std::uint8_t counter[16];
                std::memcpy(counter, counter_init, 16);
                table_for(level).aes_ctr128_keystream(
                    schedule.data(), 14, counter, got.data(), blocks);
                ASSERT_EQ(expected, got)
                    << "level=" << level_name(level) << " blocks=" << blocks
                    << " near_wrap=" << near_wrap;
                ASSERT_EQ(0, std::memcmp(expected_counter, counter, 16));
            }
        }
    }
}

TEST(KernelEquivalence, L2SquaredAndDotBitwise) {
    SplitMix64 rng(44);
    // Lengths around the 4-wide block boundary plus the real descriptor
    // sizes (64-dim U-SURF, 128-bit DPE projections).
    const std::size_t kVecLengths[] = {0, 1, 2,  3,  4,  5,   7,  8,
                                       9, 63, 64, 65, 67, 128, 1000};
    for (const std::size_t n : kVecLengths) {
        std::vector<float> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Mix magnitudes so summation order actually matters.
            a[i] = static_cast<float>((rng.next_double() - 0.5) *
                                      (i % 7 == 0 ? 1e6 : 1.0));
            b[i] = static_cast<float>((rng.next_double() - 0.5) *
                                      (i % 11 == 0 ? 1e-6 : 1.0));
        }
        const double l2_expected =
            table_for(Level::kScalar).l2_squared(a.data(), b.data(), n);
        const double dot_expected =
            table_for(Level::kScalar).dot(a.data(), b.data(), n);
        for (Level level : available_levels()) {
            const double l2 =
                table_for(level).l2_squared(a.data(), b.data(), n);
            const double dot = table_for(level).dot(a.data(), b.data(), n);
            // Bitwise equality, not EXPECT_DOUBLE_EQ: the determinism
            // contract is exact.
            std::uint64_t expected_bits, got_bits;
            std::memcpy(&expected_bits, &l2_expected, 8);
            std::memcpy(&got_bits, &l2, 8);
            ASSERT_EQ(expected_bits, got_bits)
                << "l2 level=" << level_name(level) << " n=" << n;
            std::memcpy(&expected_bits, &dot_expected, 8);
            std::memcpy(&got_bits, &dot, 8);
            ASSERT_EQ(expected_bits, got_bits)
                << "dot level=" << level_name(level) << " n=" << n;
        }
    }
}

TEST(KernelEquivalence, Crc32c) {
    SplitMix64 rng(55);
    for (const std::size_t len : kByteLengths) {
        const auto data = random_bytes(rng, len);
        const std::uint32_t expected =
            table_for(Level::kScalar)
                .crc32c_update(0xFFFFFFFFu, data.data(), len);
        for (Level level : available_levels()) {
            EXPECT_EQ(expected, table_for(level).crc32c_update(
                                    0xFFFFFFFFu, data.data(), len))
                << "level=" << level_name(level) << " len=" << len;
        }
        // Incremental split must match one-shot at every level.
        if (len >= 2) {
            const std::size_t cut = len / 3 + 1;
            for (Level level : available_levels()) {
                std::uint32_t state = table_for(level).crc32c_update(
                    0xFFFFFFFFu, data.data(), cut);
                state = table_for(level).crc32c_update(
                    state, data.data() + cut, len - cut);
                EXPECT_EQ(expected, state)
                    << "split level=" << level_name(level) << " len=" << len;
            }
        }
    }
}

TEST(KernelEquivalence, Crc32cCheckValue) {
    // CRC-32C check value ("123456789" -> 0xE3069283) at every level.
    const std::uint8_t msg[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    for (Level level : available_levels()) {
        const std::uint32_t crc =
            table_for(level).crc32c_update(0xFFFFFFFFu, msg, 9) ^
            0xFFFFFFFFu;
        EXPECT_EQ(crc, 0xE3069283u) << "level=" << level_name(level);
    }
}

}  // namespace
}  // namespace mie::kernels
