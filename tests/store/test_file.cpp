// store::File / Vfs tests: POSIX implementation, crash-atomic writes,
// and the fault-injection semantics the recovery tests rely on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "store/file.hpp"
#include "util/crc32.hpp"
#include "util/crc32c.hpp"

namespace mie::store {
namespace {

namespace fs = std::filesystem;

class FileTest : public ::testing::Test {
protected:
    FileTest()
        // Keyed by test name + pid: ctest runs each case as its own
        // process in parallel, so a shared directory would collide.
        : dir_(fs::temp_directory_path() /
               ("mie_store_file_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {
        PosixVfs::instance().create_directories(dir_);
    }

    ~FileTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path dir_;
};

TEST_F(FileTest, AppendReadRoundtrip) {
    PosixVfs vfs;
    const fs::path path = dir_ / "a.bin";
    {
        auto file = vfs.create_truncate(path);
        file->append(to_bytes("hello "));
        file->append(to_bytes("world"));
        EXPECT_EQ(file->size(), 11u);
        file->sync();
    }
    EXPECT_EQ(vfs.read_file(path), to_bytes("hello world"));
    EXPECT_EQ(vfs.file_size(path), 11u);

    // open_append continues at the end.
    {
        auto file = vfs.open_append(path);
        EXPECT_EQ(file->size(), 11u);
        file->append(to_bytes("!"));
    }
    EXPECT_EQ(vfs.read_file(path), to_bytes("hello world!"));
}

TEST_F(FileTest, ReadMissingFileThrows) {
    PosixVfs vfs;
    EXPECT_THROW(vfs.read_file(dir_ / "absent.bin"), IoError);
}

TEST_F(FileTest, AtomicWriteReplacesContents) {
    PosixVfs vfs;
    const fs::path path = dir_ / "snap.bin";
    atomic_write_file(vfs, path, to_bytes("v1"));
    EXPECT_EQ(vfs.read_file(path), to_bytes("v1"));
    atomic_write_file(vfs, path, to_bytes("version-two"));
    EXPECT_EQ(vfs.read_file(path), to_bytes("version-two"));
    // No temp file left behind.
    EXPECT_FALSE(vfs.exists(dir_ / "snap.bin.tmp"));
}

TEST_F(FileTest, FaultInjectionFailsAtByteCount) {
    FaultInjectingVfs vfs(PosixVfs::instance());
    const fs::path path = dir_ / "f.bin";
    auto file = vfs.create_truncate(path);
    file->append(to_bytes("0123456789"));

    vfs.fail_after_bytes(5);  // next append dies after 5 more bytes
    EXPECT_THROW(file->append(to_bytes("abcdefgh")), IoError);
    EXPECT_TRUE(vfs.crashed());

    // Crashed Vfs refuses everything until reset.
    EXPECT_THROW(vfs.read_file(path), IoError);
    EXPECT_THROW(file->append(to_bytes("x")), IoError);

    // The torn prefix (5 bytes) reached the file — process crash keeps it.
    vfs.reset();
    file.reset();  // close the crashed handle before inspecting contents
    EXPECT_EQ(vfs.read_file(path), to_bytes("0123456789abcde"));
}

TEST_F(FileTest, TornWriteExtraBytes) {
    FaultInjectingVfs vfs(PosixVfs::instance());
    const fs::path path = dir_ / "torn.bin";
    auto file = vfs.create_truncate(path);
    vfs.fail_after_bytes(0, 3);  // fail immediately, tearing 3 bytes in
    EXPECT_THROW(file->append(to_bytes("abcdefgh")), IoError);
    vfs.reset();
    file.reset();
    EXPECT_EQ(vfs.read_file(path), to_bytes("abc"));
}

TEST_F(FileTest, PowerLossDropsUnsyncedSuffix) {
    FaultInjectingVfs vfs(PosixVfs::instance());
    const fs::path path = dir_ / "p.bin";
    {
        auto file = vfs.create_truncate(path);
        file->append(to_bytes("durable"));
        file->sync();
        file->append(to_bytes("-volatile"));  // never synced
    }
    vfs.power_loss();
    vfs.reset();
    EXPECT_EQ(vfs.read_file(path), to_bytes("durable"));
}

TEST_F(FileTest, PowerLossKeepsSyncedEverything) {
    FaultInjectingVfs vfs(PosixVfs::instance());
    const fs::path path = dir_ / "s.bin";
    {
        auto file = vfs.create_truncate(path);
        file->append(to_bytes("abc"));
        file->sync();
        file->append(to_bytes("def"));
        file->sync();
    }
    vfs.power_loss();
    vfs.reset();
    EXPECT_EQ(vfs.read_file(path), to_bytes("abcdef"));
}

TEST(Crc32cTest, MatchesKnownVectors) {
    // CRC-32C (Castagnoli) of "123456789" is the RFC 3720 check value.
    EXPECT_EQ(crc32c(to_bytes("123456789")), 0xE3069283u);
    EXPECT_EQ(crc32c(to_bytes("")), 0x00000000u);
    // Incremental == one-shot.
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, to_bytes("1234"));
    state = crc32c_update(state, to_bytes("56789"));
    EXPECT_EQ(crc32c_final(state), 0xE3069283u);
}

TEST(Crc32cTest, HardwareMatchesSoftware) {
    // The dispatching crc32c_update may pick the SSE4.2 path; the pure
    // table path must agree on every length and alignment offset so a
    // log written on one machine verifies on any other.
    Bytes data(1024 + 7, 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<unsigned char>(i * 131 + 17);
    }
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
        for (std::size_t len :
             {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
              std::size_t{63}, std::size_t{64}, std::size_t{1000}}) {
            const BytesView view(data.data() + offset, len);
            EXPECT_EQ(crc32c_update(crc32c_init(), view),
                      crc32c_update_software(crc32c_init(), view))
                << "offset=" << offset << " len=" << len;
        }
    }
}

TEST(Crc32Test, MatchesKnownVectors) {
    // IEEE CRC-32 of "123456789" is the classic check value.
    EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(to_bytes("")), 0x00000000u);
    // Incremental == one-shot.
    std::uint32_t state = crc32_init();
    state = crc32_update(state, to_bytes("1234"));
    state = crc32_update(state, to_bytes("56789"));
    EXPECT_EQ(crc32_final(state), 0xCBF43926u);
}

}  // namespace
}  // namespace mie::store
