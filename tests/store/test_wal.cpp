// WAL + checkpoint tests: rotation, replay, torn-tail truncation,
// corruption detection, segment truncation, checkpoint fallback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/checkpoint.hpp"
#include "store/engine.hpp"
#include "store/wal.hpp"

namespace mie::store {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
protected:
    WalTest()
        // Keyed by test name + pid: ctest runs each case as its own
        // process in parallel, so a shared directory would collide.
        : dir_(fs::temp_directory_path() /
               ("mie_store_wal_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~WalTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /// Collects (lsn, payload-as-string) pairs from replay.
    static std::vector<std::pair<Lsn, std::string>> drain(const Wal& wal,
                                                          Lsn after = 0) {
        std::vector<std::pair<Lsn, std::string>> out;
        wal.replay(after, [&](Lsn lsn, BytesView payload) {
            out.emplace_back(lsn, to_string(payload));
        });
        return out;
    }

    /// Flips one byte at `offset` inside `path`.
    static void corrupt_byte(const fs::path& path, std::uint64_t offset) {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(static_cast<std::streamoff>(offset));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A);
        f.seekp(static_cast<std::streamoff>(offset));
        f.write(&byte, 1);
    }

    fs::path dir_;
    PosixVfs vfs_;
};

TEST_F(WalTest, AppendAssignsSequentialLsns) {
    Wal wal(vfs_, dir_, {});
    EXPECT_EQ(wal.last_lsn(), 0u);
    EXPECT_EQ(wal.append(to_bytes("a")), 1u);
    EXPECT_EQ(wal.append(to_bytes("b")), 2u);
    EXPECT_EQ(wal.append(to_bytes("c")), 3u);
    EXPECT_EQ(wal.last_lsn(), 3u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0], (std::pair<Lsn, std::string>{1, "a"}));
    EXPECT_EQ(records[2], (std::pair<Lsn, std::string>{3, "c"}));
}

TEST_F(WalTest, ReplaySkipsThroughAfter) {
    Wal wal(vfs_, dir_, {});
    for (int i = 0; i < 10; ++i) wal.append(to_bytes(std::to_string(i)));
    const auto records = drain(wal, 7);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].first, 8u);
    EXPECT_EQ(records[2].first, 10u);
}

TEST_F(WalTest, SurvivesReopen) {
    {
        Wal wal(vfs_, dir_, {});
        wal.append(to_bytes("one"));
        wal.append(to_bytes("two"));
        wal.sync();
    }
    Wal wal(vfs_, dir_, {});
    EXPECT_EQ(wal.last_lsn(), 2u);
    EXPECT_FALSE(wal.tail_truncated_on_open());
    EXPECT_EQ(wal.append(to_bytes("three")), 3u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[2].second, "three");
}

TEST_F(WalTest, ZeroPreallocatedTailIsEndOfLog) {
    // A process crash can leave the active segment with a zero-filled
    // preallocated tail (mmap appends grow the file in chunks ahead of
    // the logical size). Recovery must read every record and treat the
    // zeros as end-of-log.
    {
        Wal wal(vfs_, dir_, {});
        wal.append(to_bytes("one"));
        wal.append(to_bytes("two"));
        wal.sync();
    }
    const auto segments = vfs_.list_dir(dir_);
    ASSERT_EQ(segments.size(), 1u);
    {
        std::ofstream f(segments.front(),
                        std::ios::binary | std::ios::app);
        const std::string zeros(64 * 1024, '\0');
        f.write(zeros.data(),
                static_cast<std::streamsize>(zeros.size()));
    }
    Wal wal(vfs_, dir_, {});
    EXPECT_EQ(wal.last_lsn(), 2u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].second, "two");
    // The log keeps working past the repaired tail.
    EXPECT_EQ(wal.append(to_bytes("three")), 3u);
}

TEST_F(WalTest, RotatesAtSegmentThreshold) {
    Wal::Options options;
    options.segment_bytes = 128;  // tiny segments force rotation
    Wal wal(vfs_, dir_, {options});
    for (int i = 0; i < 50; ++i) {
        wal.append(to_bytes("payload-" + std::to_string(i)));
    }
    EXPECT_GT(wal.num_segments(), 3u);
    // Reopen sees the same records across all segments.
    wal.sync();
    Wal reopened(vfs_, dir_, {options});
    const auto records = drain(reopened);
    ASSERT_EQ(records.size(), 50u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].first, i + 1);
        EXPECT_EQ(records[i].second, "payload-" + std::to_string(i));
    }
}

TEST_F(WalTest, TornTailIsTruncatedOnReopen) {
    {
        Wal wal(vfs_, dir_, {});
        wal.append(to_bytes("good-1"));
        wal.append(to_bytes("good-2"));
        wal.sync();
    }
    // Simulate a torn record: append garbage that looks like a partial
    // record header.
    const auto segments = vfs_.list_dir(dir_);
    ASSERT_EQ(segments.size(), 1u);
    {
        std::ofstream f(segments[0], std::ios::binary | std::ios::app);
        f.write("\x40\x00\x00\x00\xAB", 5);
    }
    Wal wal(vfs_, dir_, {});
    EXPECT_TRUE(wal.tail_truncated_on_open());
    EXPECT_EQ(wal.last_lsn(), 2u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 2u);
    // Appends continue cleanly after the truncated tail.
    EXPECT_EQ(wal.append(to_bytes("good-3")), 3u);
    EXPECT_EQ(drain(wal).size(), 3u);
}

TEST_F(WalTest, CorruptCrcStopsRecoveryAtCorruption) {
    std::uint64_t first_record_offset = 0;
    {
        Wal wal(vfs_, dir_, {});
        wal.append(to_bytes("aaaa"));
        first_record_offset = Wal::kHeaderBytes;
        wal.append(to_bytes("bbbb"));
        wal.append(to_bytes("cccc"));
        wal.sync();
    }
    const auto segments = vfs_.list_dir(dir_);
    ASSERT_EQ(segments.size(), 1u);
    // Flip a payload byte of record 2: its CRC no longer matches.
    const std::uint64_t record2_payload =
        first_record_offset + Wal::kRecordHeaderBytes + 4 +
        Wal::kRecordHeaderBytes;
    corrupt_byte(segments[0], record2_payload);

    Wal wal(vfs_, dir_, {});
    EXPECT_TRUE(wal.tail_truncated_on_open());
    // Only the prefix before the corruption survives; the corrupted
    // record and everything after it are discarded, never applied.
    EXPECT_EQ(wal.last_lsn(), 1u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].second, "aaaa");
}

TEST_F(WalTest, TruncatedSegmentFileRecoversPrefix) {
    Wal::Options options;
    options.segment_bytes = 1 << 20;
    {
        Wal wal(vfs_, dir_, {options});
        for (int i = 0; i < 5; ++i) {
            wal.append(to_bytes("record-" + std::to_string(i)));
        }
        wal.sync();
    }
    const auto segments = vfs_.list_dir(dir_);
    ASSERT_EQ(segments.size(), 1u);
    // Chop the file mid-way through the last record.
    const auto size = vfs_.file_size(segments[0]);
    vfs_.truncate_file(segments[0], size - 5);

    Wal wal(vfs_, dir_, {options});
    EXPECT_TRUE(wal.tail_truncated_on_open());
    EXPECT_EQ(wal.last_lsn(), 4u);
    EXPECT_EQ(drain(wal).size(), 4u);
}

TEST_F(WalTest, TruncateThroughDropsCoveredSegments) {
    Wal::Options options;
    options.segment_bytes = 96;
    Wal wal(vfs_, dir_, {options});
    for (int i = 0; i < 40; ++i) {
        wal.append(to_bytes("x" + std::to_string(i)));
    }
    const std::size_t before = wal.num_segments();
    ASSERT_GT(before, 2u);
    const Lsn last = wal.last_lsn();
    wal.truncate_through(last);
    // Only the active segment may remain.
    EXPECT_LT(wal.num_segments(), before);
    // Remaining records replay without error and continue from last+1.
    EXPECT_EQ(wal.append(to_bytes("after")), last + 1);
    Wal reopened(vfs_, dir_, {options});
    EXPECT_EQ(reopened.last_lsn(), last + 1);
}

TEST_F(WalTest, EveryRecordSyncPolicySurvivesPowerLoss) {
    FaultInjectingVfs faulty(vfs_);
    Wal::Options options;
    options.sync_policy = SyncPolicy::kEveryRecord;
    {
        Wal wal(faulty, dir_, {options});
        wal.append(to_bytes("acked-1"));
        wal.append(to_bytes("acked-2"));
    }
    faulty.power_loss();  // drops anything unsynced — nothing, here
    faulty.reset();
    Wal wal(vfs_, dir_, {});
    EXPECT_EQ(wal.last_lsn(), 2u);
    EXPECT_EQ(drain(wal).size(), 2u);
}

TEST_F(WalTest, NoSyncPolicyLosesUnsyncedTailOnPowerLoss) {
    FaultInjectingVfs faulty(vfs_);
    Wal::Options options;
    options.sync_policy = SyncPolicy::kOnRotate;
    {
        Wal wal(faulty, dir_, {options});
        wal.append(to_bytes("lost-1"));
        wal.append(to_bytes("lost-2"));
        // no sync, no rotation: records sit in the "page cache"
    }
    faulty.power_loss();
    faulty.reset();
    Wal wal(vfs_, dir_, {});
    // The records are gone — exactly the documented kOnRotate window.
    EXPECT_EQ(wal.last_lsn(), 0u);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

TEST_F(WalTest, CheckpointRoundtrip) {
    CheckpointStore store(vfs_, dir_);
    EXPECT_FALSE(store.load_latest().has_value());
    store.write(7, to_bytes("snapshot-at-7"));
    const auto loaded = store.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->lsn, 7u);
    EXPECT_EQ(loaded->snapshot, to_bytes("snapshot-at-7"));
}

TEST_F(WalTest, NewerCheckpointReplacesOlder) {
    CheckpointStore store(vfs_, dir_);
    store.write(3, to_bytes("old"));
    store.write(9, to_bytes("new"));
    const auto loaded = store.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->lsn, 9u);
    EXPECT_EQ(loaded->snapshot, to_bytes("new"));
    // The old file was removed after the new one became durable.
    EXPECT_EQ(vfs_.list_dir(dir_).size(), 1u);
}

TEST_F(WalTest, CorruptCheckpointFallsBackToOlder) {
    CheckpointStore store(vfs_, dir_);
    store.write(3, to_bytes("good-old"));
    // Forge a newer, corrupt checkpoint by hand (write() would have
    // removed the older one, so build the file directly).
    store.write(9, to_bytes("good-new"));
    store.write(3, to_bytes("good-old"));  // re-create the older one
    const auto files = vfs_.list_dir(dir_);
    for (const auto& path : files) {
        if (path.filename().string().find("00000009") != std::string::npos) {
            corrupt_byte(path, 30);  // inside the snapshot body
        }
    }
    const auto loaded = store.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->lsn, 3u);
    EXPECT_EQ(loaded->snapshot, to_bytes("good-old"));
}

// ---------------------------------------------------------------------------
// StorageEngine: checkpoint + replay orchestration
// ---------------------------------------------------------------------------

TEST_F(WalTest, EngineRecoversCheckpointPlusTail) {
    std::vector<std::string> applied;
    std::string restored;
    StorageEngine::Options options;
    options.wal.segment_bytes = 256;
    options.checkpoint_every_bytes = 0;  // manual checkpoints only
    {
        StorageEngine engine(
            vfs_, dir_, options,
            [&](BytesView s) { restored = to_string(s); },
            [&](BytesView p) { applied.push_back(to_string(p)); });
        engine.log(to_bytes("op-1"));
        engine.log(to_bytes("op-2"));
        engine.checkpoint(to_bytes("state-after-2"));
        engine.log(to_bytes("op-3"));
        engine.log(to_bytes("op-4"));
        engine.sync();
    }
    applied.clear();
    restored.clear();
    StorageEngine engine(
        vfs_, dir_, options,
        [&](BytesView s) { restored = to_string(s); },
        [&](BytesView p) { applied.push_back(to_string(p)); });
    EXPECT_EQ(restored, "state-after-2");
    ASSERT_EQ(applied.size(), 2u);
    EXPECT_EQ(applied[0], "op-3");
    EXPECT_EQ(applied[1], "op-4");
    EXPECT_TRUE(engine.recovery().had_checkpoint);
    EXPECT_EQ(engine.recovery().checkpoint_lsn, 2u);
    EXPECT_EQ(engine.last_lsn(), 4u);
    // Appends continue with fresh LSNs.
    EXPECT_EQ(engine.log(to_bytes("op-5")), 5u);
}

TEST_F(WalTest, CrashBetweenCheckpointAndTruncateIsSafe) {
    // Model the crash window by building the on-disk state it leaves:
    // a durable checkpoint at LSN 2 while ALL log segments still exist.
    std::vector<std::string> applied;
    std::string restored;
    {
        Wal wal(vfs_, dir_ / "wal", {});
        wal.append(to_bytes("op-1"));
        wal.append(to_bytes("op-2"));
        wal.append(to_bytes("op-3"));
        wal.sync();
        CheckpointStore checkpoints(vfs_, dir_ / "checkpoints");
        checkpoints.write(2, to_bytes("state-after-2"));
        // crash here: truncate_through(2) never ran
    }
    StorageEngine::Options options;
    StorageEngine engine(
        vfs_, dir_, options,
        [&](BytesView s) { restored = to_string(s); },
        [&](BytesView p) { applied.push_back(to_string(p)); });
    EXPECT_EQ(restored, "state-after-2");
    // Records covered by the checkpoint are NOT replayed twice.
    ASSERT_EQ(applied.size(), 1u);
    EXPECT_EQ(applied[0], "op-3");
}

// ---------------------------------------------------------------------------
// Batched appends (group commit).
// ---------------------------------------------------------------------------

/// Vfs wrapper that counts File::sync() calls — evidence that a batch
/// costs one flush, not one per record.
class SyncCountingVfs final : public Vfs {
public:
    explicit SyncCountingVfs(Vfs& base) : base_(base) {}

    std::size_t syncs = 0;

    std::unique_ptr<File> open_append(const fs::path& path) override {
        return std::make_unique<CountingFile>(base_.open_append(path), *this);
    }
    std::unique_ptr<File> create_truncate(const fs::path& path) override {
        return std::make_unique<CountingFile>(base_.create_truncate(path),
                                              *this);
    }
    Bytes read_file(const fs::path& path) const override {
        return base_.read_file(path);
    }
    bool exists(const fs::path& path) const override {
        return base_.exists(path);
    }
    std::uint64_t file_size(const fs::path& path) const override {
        return base_.file_size(path);
    }
    std::vector<fs::path> list_dir(const fs::path& dir) const override {
        return base_.list_dir(dir);
    }
    void remove_file(const fs::path& path) override {
        base_.remove_file(path);
    }
    void truncate_file(const fs::path& path,
                       std::uint64_t new_size) override {
        base_.truncate_file(path, new_size);
    }
    void rename(const fs::path& from, const fs::path& to) override {
        base_.rename(from, to);
    }
    void create_directories(const fs::path& dir) override {
        base_.create_directories(dir);
    }
    void sync_dir(const fs::path& dir) override { base_.sync_dir(dir); }

private:
    class CountingFile final : public File {
    public:
        CountingFile(std::unique_ptr<File> inner, SyncCountingVfs& owner)
            : inner_(std::move(inner)), owner_(owner) {}
        void append(BytesView data) override { inner_->append(data); }
        void append_parts(BytesView header, BytesView payload) override {
            inner_->append_parts(header, payload);
        }
        void sync() override {
            ++owner_.syncs;
            inner_->sync();
        }
        void flush_async() override { inner_->flush_async(); }
        std::uint64_t size() const override { return inner_->size(); }

    private:
        std::unique_ptr<File> inner_;
        SyncCountingVfs& owner_;
    };

    Vfs& base_;
};

TEST_F(WalTest, AppendBatchAssignsSequentialLsnsAndReplays) {
    Wal wal(vfs_, dir_, {});
    const Bytes a = to_bytes("a"), b = to_bytes("b"), c = to_bytes("c");
    EXPECT_EQ(wal.append_batch({BytesView(a), BytesView(b), BytesView(c)}),
              3u);
    EXPECT_EQ(wal.append(to_bytes("d")), 4u);  // interleaves seamlessly
    const Bytes e = to_bytes("e");
    EXPECT_EQ(wal.append_batch({BytesView(e)}), 5u);
    const auto records = drain(wal);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[0], (std::pair<Lsn, std::string>{1, "a"}));
    EXPECT_EQ(records[2], (std::pair<Lsn, std::string>{3, "c"}));
    EXPECT_EQ(records[4], (std::pair<Lsn, std::string>{5, "e"}));
}

TEST_F(WalTest, AppendBatchEmptyIsANoop) {
    Wal wal(vfs_, dir_, {});
    EXPECT_EQ(wal.append_batch({}), 0u);
    EXPECT_EQ(wal.last_lsn(), 0u);
}

TEST_F(WalTest, AppendBatchCostsOneFsyncUnderSyncEveryRecord) {
    SyncCountingVfs counting(vfs_);
    Wal::Options options;
    options.sync_policy = SyncPolicy::kEveryRecord;
    Wal wal(counting, dir_, options);

    const std::size_t baseline = counting.syncs;
    std::vector<Bytes> payloads;
    std::vector<BytesView> views;
    for (int i = 0; i < 16; ++i) {
        payloads.push_back(to_bytes("record-" + std::to_string(i)));
    }
    for (const Bytes& p : payloads) views.push_back(BytesView(p));
    wal.append_batch(views);
    // Group commit: 16 records, ONE flush.
    EXPECT_EQ(counting.syncs - baseline, 1u);

    const std::size_t before_serial = counting.syncs;
    for (const Bytes& p : payloads) wal.append(BytesView(p));
    // The serial path pays per record — the cost the batch amortizes.
    EXPECT_EQ(counting.syncs - before_serial, payloads.size());
}

TEST_F(WalTest, AppendBatchSurvivesReopenAndRotation) {
    Wal::Options options;
    options.segment_bytes = 128;  // force rotations inside the batch
    {
        Wal wal(vfs_, dir_, options);
        std::vector<Bytes> payloads;
        std::vector<BytesView> views;
        for (int i = 0; i < 32; ++i) {
            payloads.push_back(
                to_bytes("payload-" + std::to_string(i) + std::string(16, 'x')));
        }
        for (const Bytes& p : payloads) views.push_back(BytesView(p));
        EXPECT_EQ(wal.append_batch(views), 32u);
        EXPECT_GT(wal.num_segments(), 1u);
    }
    Wal reopened(vfs_, dir_, options);
    EXPECT_FALSE(reopened.tail_truncated_on_open());
    const auto records = drain(reopened);
    ASSERT_EQ(records.size(), 32u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].first, i + 1);
        EXPECT_EQ(records[i].second.substr(0, 8),
                  ("payload-" + std::to_string(i)).substr(0, 8));
    }
}

TEST_F(WalTest, EngineCheckpointDueFollowsThreshold) {
    StorageEngine::Options options;
    options.checkpoint_every_bytes = 64;
    StorageEngine engine(
        vfs_, dir_, options, [](BytesView) {}, [](BytesView) {});
    EXPECT_FALSE(engine.checkpoint_due());
    engine.log(to_bytes("a long enough payload to cross the threshold"));
    engine.log(to_bytes("second payload"));
    EXPECT_TRUE(engine.checkpoint_due());
    engine.checkpoint(to_bytes("snap"));
    EXPECT_FALSE(engine.checkpoint_due());
}

// -- read_from tail reader (the replication feed) ------------------------

TEST_F(WalTest, ReadFromDeliversBoundedBatchesInOrder) {
    Wal wal(vfs_, dir_, {});
    for (int i = 0; i < 10; ++i) wal.append(to_bytes("r" + std::to_string(i)));

    std::vector<std::pair<Lsn, std::string>> got;
    const auto sink = [&got](Lsn lsn, BytesView payload) {
        got.emplace_back(lsn, to_string(payload));
    };

    Wal::TailRead tail = wal.read_from(0, 4, sink);
    EXPECT_EQ(tail.records, 4u);
    EXPECT_EQ(tail.last_lsn, 4u);
    EXPECT_FALSE(tail.end_of_log);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got.front(), (std::pair<Lsn, std::string>{1, "r0"}));
    EXPECT_EQ(got.back(), (std::pair<Lsn, std::string>{4, "r3"}));

    got.clear();
    tail = wal.read_from(4, 4, sink);
    EXPECT_EQ(tail.records, 4u);
    EXPECT_EQ(tail.last_lsn, 8u);
    EXPECT_FALSE(tail.end_of_log);

    got.clear();
    tail = wal.read_from(8, 4, sink);
    EXPECT_EQ(tail.records, 2u);
    EXPECT_EQ(tail.last_lsn, 10u);
    EXPECT_TRUE(tail.end_of_log);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got.back(), (std::pair<Lsn, std::string>{10, "r9"}));

    // Caught-up reader: nothing delivered, end_of_log reported.
    got.clear();
    tail = wal.read_from(10, 4, sink);
    EXPECT_EQ(tail.records, 0u);
    EXPECT_EQ(tail.last_lsn, 0u);
    EXPECT_TRUE(tail.end_of_log);
    EXPECT_TRUE(got.empty());
}

TEST_F(WalTest, ReadFromSpansRotatedSegments) {
    Wal::Options options;
    options.segment_bytes = 96;  // tiny segments force rotation
    Wal wal(vfs_, dir_, options);
    for (int i = 0; i < 24; ++i) {
        wal.append(to_bytes("record-" + std::to_string(i)));
    }
    ASSERT_GT(wal.num_segments(), 2u);

    // One big read crosses every segment boundary in order.
    std::vector<Lsn> lsns;
    const Wal::TailRead all = wal.read_from(
        0, 100, [&lsns](Lsn lsn, BytesView) { lsns.push_back(lsn); });
    EXPECT_EQ(all.records, 24u);
    EXPECT_TRUE(all.end_of_log);
    ASSERT_EQ(lsns.size(), 24u);
    for (std::size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);

    // A bounded read whose window straddles a boundary stays contiguous.
    lsns.clear();
    const Wal::TailRead window = wal.read_from(
        5, 6, [&lsns](Lsn lsn, BytesView) { lsns.push_back(lsn); });
    EXPECT_EQ(window.records, 6u);
    EXPECT_EQ(window.last_lsn, 11u);
    EXPECT_FALSE(window.end_of_log);
    ASSERT_EQ(lsns.size(), 6u);
    EXPECT_EQ(lsns.front(), 6u);
    EXPECT_EQ(lsns.back(), 11u);
}

TEST_F(WalTest, ReadFromSeesActiveSegmentRecordsImmediately) {
    Wal wal(vfs_, dir_, {});
    wal.append(to_bytes("unsynced"));  // no sync(): still only page cache
    std::vector<std::pair<Lsn, std::string>> got;
    const Wal::TailRead tail =
        wal.read_from(0, 10, [&got](Lsn lsn, BytesView payload) {
            got.emplace_back(lsn, to_string(payload));
        });
    EXPECT_EQ(tail.records, 1u);
    EXPECT_TRUE(tail.end_of_log);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], (std::pair<Lsn, std::string>{1, "unsynced"}));
}

TEST_F(WalTest, OldestLsnTracksTruncation) {
    Wal::Options options;
    options.segment_bytes = 96;
    Wal wal(vfs_, dir_, options);
    for (int i = 0; i < 24; ++i) {
        wal.append(to_bytes("record-" + std::to_string(i)));
    }
    EXPECT_EQ(wal.oldest_lsn(), 1u);
    wal.truncate_through(12);
    const Lsn oldest = wal.oldest_lsn();
    EXPECT_GT(oldest, 1u);
    EXPECT_LE(oldest, 13u);  // only fully-covered segments are deleted

    // A reader whose offset predates the retained head detects the gap
    // via oldest_lsn(); a reader at/after the head still reads cleanly.
    EXPECT_LT(0u + 1, oldest);  // the "needs snapshot" predicate
    std::vector<Lsn> lsns;
    const Wal::TailRead tail = wal.read_from(
        oldest - 1, 100, [&lsns](Lsn lsn, BytesView) { lsns.push_back(lsn); });
    EXPECT_TRUE(tail.end_of_log);
    ASSERT_FALSE(lsns.empty());
    EXPECT_EQ(lsns.front(), oldest);
    EXPECT_EQ(lsns.back(), 24u);
}

TEST_F(WalTest, EngineExposesTailReader) {
    StorageEngine::Options options;
    StorageEngine engine(
        vfs_, dir_, options, [](BytesView) {}, [](BytesView) {});
    engine.log(to_bytes("alpha"));
    engine.log(to_bytes("beta"));
    EXPECT_EQ(engine.oldest_lsn(), 1u);
    std::vector<std::pair<Lsn, std::string>> got;
    const Wal::TailRead tail =
        engine.read_from(1, 10, [&got](Lsn lsn, BytesView payload) {
            got.emplace_back(lsn, to_string(payload));
        });
    EXPECT_EQ(tail.records, 1u);
    EXPECT_TRUE(tail.end_of_log);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], (std::pair<Lsn, std::string>{2, "beta"}));
}

}  // namespace
}  // namespace mie::store
