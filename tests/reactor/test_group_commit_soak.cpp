// Group-commit dedup soak: randomized duplicate/interleaved envelope
// streams from 32 clients.
//
// 32 MieClients each record their enveloped mutation stream (create,
// updates, remove) against a private scratch server. The streams are
// then merged into one submission order by a seeded random interleave
// (per-client order preserved — envelope seqs are monotonic per client)
// and duplicates of already-submitted envelopes are injected at random
// later positions, exactly what at-least-once delivery produces under
// retries. Everything is pushed through a GroupCommitter in front of one
// DurableServer, so originals and their duplicates land in emergent,
// arbitrary batch groupings.
//
// Pinned contract: every duplicate's response is byte-identical to the
// original's (replay cache, even when both sit in the same batch), the
// server counts exactly one suppressed replay per duplicate, no
// completion carries an error, and the final state equals a shadow
// DedupHandler(MieServer) fed only the originals.
#include <gtest/gtest.h>

#include <unistd.h>

#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/keys.hpp"
#include "mie/server.hpp"
#include "net/envelope.hpp"
#include "reactor/group_commit.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"
#include "util/rng.hpp"

namespace mie::reactor {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kNumClients = 32;

/// Feeds a private scratch server and keeps a copy of every enveloped
/// (i.e. mutating) request the client sent.
class MutationRecorder final : public net::Transport {
public:
    MutationRecorder(net::RequestHandler& scratch, std::vector<Bytes>& out)
        : scratch_(scratch), out_(out) {}

    Bytes call(BytesView request) override {
        if (!request.empty() && request[0] == net::kEnvelopeMagic) {
            out_.emplace_back(request.begin(), request.end());
        }
        return scratch_.handle(request);
    }

private:
    net::RequestHandler& scratch_;
    std::vector<Bytes>& out_;
};

struct Submission {
    Bytes request;
    /// Index of the original submission this duplicates, or npos.
    std::size_t original = static_cast<std::size_t>(-1);

    bool is_duplicate() const {
        return original != static_cast<std::size_t>(-1);
    }
};

/// Records each client's mutation stream against its own scratch server.
std::vector<std::vector<Bytes>> record_streams() {
    std::vector<std::vector<Bytes>> streams(kNumClients);
    for (std::size_t c = 0; c < kNumClients; ++c) {
        MieServer scratch;
        MutationRecorder recorder(scratch, streams[c]);
        const std::string repo = "gc-repo-" + std::to_string(c);
        MieClient client(recorder, repo,
                         RepositoryKey::generate(to_bytes("gc-key-" + repo),
                                                 64, 64, 0.7978845608),
                         to_bytes("gc-user-" + std::to_string(c)));
        sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
            .num_classes = 2, .image_size = 32,
            .seed = 100 + static_cast<std::uint64_t>(c)});
        client.create_repository();
        client.update(generator.make(0));
        client.update(generator.make(1));
        client.remove(0);
        EXPECT_GE(streams[c].size(), 4u) << "client " << c;
    }
    return streams;
}

/// Seeded random merge preserving per-client order, with duplicates of
/// already-emitted envelopes woven in between originals.
std::vector<Submission> plan_submissions(
    const std::vector<std::vector<Bytes>>& streams, std::uint64_t seed,
    std::size_t* num_duplicates) {
    SplitMix64 rng(seed);
    std::vector<std::size_t> cursor(streams.size(), 0);
    std::size_t remaining = 0;
    for (const auto& stream : streams) remaining += stream.size();

    std::vector<Submission> plan;
    std::vector<std::size_t> originals;  // plan indexes of originals
    *num_duplicates = 0;
    while (remaining > 0) {
        // Duplicate injection: before the next original, sometimes
        // replay a random envelope that was already submitted.
        if (!originals.empty() && rng.next_double() < 0.3) {
            const std::size_t victim =
                originals[rng.next_below(originals.size())];
            plan.push_back(Submission{plan[victim].request, victim});
            ++*num_duplicates;
        }
        std::size_t c = rng.next_below(streams.size());
        while (cursor[c] >= streams[c].size()) c = (c + 1) % streams.size();
        originals.push_back(plan.size());
        plan.push_back(Submission{streams[c][cursor[c]],
                                  static_cast<std::size_t>(-1)});
        ++cursor[c];
        --remaining;
    }
    return plan;
}

void run_soak_round(const fs::path& dir, std::uint64_t seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto streams = record_streams();
    std::size_t num_duplicates = 0;
    const auto plan = plan_submissions(streams, seed, &num_duplicates);
    ASSERT_GT(num_duplicates, 0u);

    store::PosixVfs& vfs = store::PosixVfs::instance();
    DurableServer durable(vfs, dir / std::to_string(seed));

    std::mutex mutex;
    std::condition_variable cv;
    std::size_t completed = 0;
    std::vector<Bytes> responses(plan.size());
    std::vector<std::exception_ptr> errors(plan.size());
    {
        GroupCommitter committer(durable, GroupCommitOptions{.max_batch = 16});
        for (std::size_t i = 0; i < plan.size(); ++i) {
            committer.submit(
                plan[i].request,
                [&, i](Bytes response, std::exception_ptr error) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    responses[i] = std::move(response);
                    errors[i] = error;
                    ++completed;
                    cv.notify_one();
                });
        }
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return completed == plan.size(); });
        const auto stats = committer.stats();
        EXPECT_EQ(stats.submitted, plan.size());
        EXPECT_EQ(stats.errors, 0u);
    }

    // Every submission succeeded; every duplicate got its original's
    // bytes back, answered from the replay cache without re-applying.
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(errors[i], nullptr) << "submission " << i;
        if (plan[i].is_duplicate()) {
            EXPECT_EQ(responses[i], responses[plan[i].original])
                << "duplicate " << i << " of " << plan[i].original;
        }
    }
    EXPECT_EQ(durable.durability().replays_suppressed, num_duplicates);

    // Final state: exactly the originals, applied once each, in
    // submission order.
    MieServer shadow;
    net::DedupHandler shadow_dedup(shadow);
    for (const Submission& submission : plan) {
        if (!submission.is_duplicate()) shadow_dedup.handle(submission.request);
    }
    EXPECT_EQ(durable.server().export_snapshot(), shadow.export_snapshot());
    EXPECT_EQ(shadow_dedup.replays_suppressed(), 0u);
}

TEST(GroupCommitSoakTest, DuplicatedInterleavedEnvelopesFrom32Clients) {
    const fs::path dir =
        fs::temp_directory_path() /
        ("mie_gc_soak_" + std::to_string(::getpid()));
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
        run_soak_round(dir, seed);
    }
    std::error_code ec;
    fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace mie::reactor
