// Reactor server + group-commit tests.
//
// Covers the event-loop transport (partial frames across wakeups,
// pipelining, backpressure watermarks, slow-loris idle deadline,
// admission control) and the group-commit durability path: batched WAL
// appends must preserve log-before-ack and exactly-once dedup across
// injected crashes, byte-for-byte with the serial DurableServer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/server.hpp"
#include "mie/wire.hpp"
#include "net/frame.hpp"
#include "net/tcp.hpp"
#include "reactor/group_commit.hpp"
#include "reactor/reactor.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace mie::reactor {
namespace {

namespace fs = std::filesystem;

constexpr char kRepo[] = "repo";

class PrefixEcho final : public net::RequestHandler {
public:
    Bytes handle(BytesView request) override {
        Bytes response = to_bytes("ack:");
        response.insert(response.end(), request.begin(), request.end());
        return response;
    }
};

/// Blocking raw client socket: lets tests control exactly which bytes hit
/// the wire and when (partial frames, pipelining, trickling).
class RawClient {
public:
    explicit RawClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        address.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                            sizeof(address)),
                  0);
    }

    ~RawClient() {
        if (fd_ >= 0) ::close(fd_);
    }

    void send_bytes(const std::uint8_t* data, std::size_t length) {
        std::size_t sent = 0;
        while (sent < length) {
            const ssize_t n = ::send(fd_, data + sent, length - sent,
                                     MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            sent += static_cast<std::size_t>(n);
        }
    }

    void send_frame(BytesView payload) {
        const Bytes frame = net::encode_frame(payload);
        send_bytes(frame.data(), frame.size());
    }

    /// Reads one complete response frame (blocking).
    Bytes recv_frame() {
        std::uint8_t header[net::kFrameHeaderSize];
        recv_exact(header, net::kFrameHeaderSize);
        const net::FrameHeader parsed = net::parse_frame_header(header);
        Bytes payload(parsed.length);
        if (parsed.length > 0) recv_exact(payload.data(), parsed.length);
        net::verify_frame_payload(parsed, payload);
        return payload;
    }

    /// True when the peer closed the connection (EOF or reset).
    bool peer_closed() {
        std::uint8_t byte = 0;
        const ssize_t n = ::recv(fd_, &byte, 1, 0);
        return n <= 0;
    }

    int fd() const { return fd_; }

private:
    void recv_exact(std::uint8_t* out, std::size_t length) {
        std::size_t received = 0;
        while (received < length) {
            const ssize_t n =
                ::recv(fd_, out + received, length - received, 0);
            ASSERT_GT(n, 0) << "peer closed mid-frame";
            received += static_cast<std::size_t>(n);
        }
    }

    int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Event-loop transport behaviour.
// ---------------------------------------------------------------------------

TEST(Reactor, RoundtripSequentialAndLargeFrames) {
    PrefixEcho echo;
    ReactorServer server(echo, nullptr, nullptr);
    server.start();

    net::TcpTransport client("127.0.0.1", server.port());
    EXPECT_EQ(to_string(client.call(to_bytes("hello"))), "ack:hello");
    EXPECT_EQ(to_string(client.call({})), "ack:");
    for (int i = 0; i < 50; ++i) {
        const std::string message = "msg" + std::to_string(i);
        EXPECT_EQ(to_string(client.call(to_bytes(message))),
                  "ack:" + message);
    }
    // A frame spanning many TCP segments (and many epoll wakeups).
    const Bytes big(1 << 20, 0x7e);
    const Bytes response = client.call(big);
    ASSERT_EQ(response.size(), big.size() + 4);
    EXPECT_EQ(response[4], 0x7e);
    EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(Reactor, PartialFramesAcrossWakeupsAndPipelining) {
    PrefixEcho echo;
    ReactorServer server(echo, nullptr, nullptr);
    server.start();
    RawClient client(server.port());

    // Drip one frame a few bytes at a time: every chunk is its own epoll
    // wakeup, and no chunk boundary aligns with a frame boundary.
    const Bytes frame = net::encode_frame(to_bytes("dripped"));
    for (std::size_t offset = 0; offset < frame.size(); offset += 3) {
        const std::size_t n = std::min<std::size_t>(3, frame.size() - offset);
        client.send_bytes(frame.data() + offset, n);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(to_string(client.recv_frame()), "ack:dripped");

    // Pipelining: several frames in one write; responses come back in
    // request order.
    Bytes burst;
    for (int i = 0; i < 8; ++i) {
        const Bytes one =
            net::encode_frame(to_bytes("p" + std::to_string(i)));
        burst.insert(burst.end(), one.begin(), one.end());
    }
    client.send_bytes(burst.data(), burst.size());
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(to_string(client.recv_frame()),
                  "ack:p" + std::to_string(i));
    }
}

TEST(Reactor, ManyConcurrentClients) {
    PrefixEcho echo;
    ReactorServer server(echo, nullptr, nullptr);
    server.start();
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 16; ++c) {
        clients.emplace_back([&, c] {
            try {
                net::TcpTransport client("127.0.0.1", server.port());
                for (int i = 0; i < 20; ++i) {
                    const std::string message =
                        std::to_string(c) + ":" + std::to_string(i);
                    if (to_string(client.call(to_bytes(message))) !=
                        "ack:" + message) {
                        ++failures;
                    }
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(server.stats().connections_accepted, 16u);
}

TEST(Reactor, CorruptFrameDropsOnlyThatClient) {
    PrefixEcho echo;
    ReactorServer server(echo, nullptr, nullptr);
    server.start();

    net::TcpTransport healthy("127.0.0.1", server.port());
    RawClient bad(server.port());
    Bytes frame = net::encode_frame(to_bytes("tampered"));
    frame.back() ^= 0x01;
    bad.send_bytes(frame.data(), frame.size());
    EXPECT_TRUE(bad.peer_closed());
    EXPECT_EQ(to_string(healthy.call(to_bytes("still-up"))),
              "ack:still-up");
    EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(Reactor, BackpressureWatermarkPausesReads) {
    // A deliberately slow handler plus a tiny per-connection in-flight cap:
    // a client that pipelines far ahead must be paused (reads withheld)
    // rather than ballooning the pending queue — and still get every
    // response, in order.
    class SlowEcho final : public net::RequestHandler {
    public:
        Bytes handle(BytesView request) override {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return Bytes(request.begin(), request.end());
        }
    };
    SlowEcho slow;
    ReactorOptions options;
    options.per_connection_in_flight = 4;
    ReactorServer server(slow, nullptr, nullptr, options);
    server.start();

    RawClient client(server.port());
    constexpr int kRequests = 64;
    Bytes burst;
    for (int i = 0; i < kRequests; ++i) {
        const Bytes one =
            net::encode_frame(to_bytes("r" + std::to_string(i)));
        burst.insert(burst.end(), one.begin(), one.end());
    }
    client.send_bytes(burst.data(), burst.size());
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_EQ(to_string(client.recv_frame()), "r" + std::to_string(i));
    }
    EXPECT_GE(server.stats().backpressure_pauses, 1u);
    EXPECT_EQ(server.stats().frames_dispatched,
              static_cast<std::uint64_t>(kRequests));
}

TEST(Reactor, SlowLorisIsClosedWhileActiveClientSurvives) {
    PrefixEcho echo;
    ReactorOptions options;
    options.idle_timeout_seconds = 0.25;
    ReactorServer server(echo, nullptr, nullptr, options);
    server.start();

    RawClient loris(server.port());
    net::TcpTransport active("127.0.0.1", server.port());

    // The loris trickles one header byte per tick but never completes a
    // frame; the active client completes a call every ~60ms, which
    // resets ITS deadline but not the loris's.
    const Bytes frame = net::encode_frame(to_bytes("never-finished"));
    for (int i = 0; i < 8; ++i) {
        // Stop trickling before the deadline can have fired — a send to
        // an already-closed peer would EPIPE and fail the helper.
        if (i < 4) loris.send_bytes(frame.data() + i, 1);
        EXPECT_EQ(to_string(active.call(to_bytes("tick"))), "ack:tick");
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    EXPECT_TRUE(loris.peer_closed());
    EXPECT_EQ(to_string(active.call(to_bytes("after"))), "ack:after");
    EXPECT_GE(server.stats().idle_closed, 1u);
}

TEST(Reactor, ConnectionsBeyondCapAreRejected) {
    PrefixEcho echo;
    ReactorOptions options;
    options.max_connections = 2;
    ReactorServer server(echo, nullptr, nullptr, options);
    server.start();

    net::TcpTransport first("127.0.0.1", server.port());
    net::TcpTransport second("127.0.0.1", server.port());
    EXPECT_EQ(to_string(first.call(to_bytes("a"))), "ack:a");
    EXPECT_EQ(to_string(second.call(to_bytes("b"))), "ack:b");

    // The third connection is accepted by the kernel, then closed by the
    // reactor's admission check; its first call fails.
    RawClient third(server.port());
    EXPECT_TRUE(third.peer_closed());
    EXPECT_GE(server.stats().connections_rejected, 1u);
    // Earlier connections are unaffected.
    EXPECT_EQ(to_string(first.call(to_bytes("c"))), "ack:c");
}

TEST(Reactor, StopIsIdempotentAndDrainsInFlight) {
    class SlowEcho final : public net::RequestHandler {
    public:
        Bytes handle(BytesView request) override {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return Bytes(request.begin(), request.end());
        }
    };
    SlowEcho slow;
    auto server = std::make_unique<ReactorServer>(slow, nullptr, nullptr);
    server->start();
    server->start();  // no-op

    RawClient client(server->port());
    client.send_frame(to_bytes("inflight"));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // stop() must wait out the dispatched request (the handler outlives
    // the server only until stop returns), then close the connection.
    server->stop();
    server->stop();  // no-op
    server = nullptr;
}

// ---------------------------------------------------------------------------
// GroupCommitter: batching mechanics.
// ---------------------------------------------------------------------------

/// Echoes each request; the FIRST batch blocks until release() so a test
/// can deterministically pile requests into the next batch.
class GateEcho final : public net::BatchRequestHandler {
public:
    std::vector<Result> handle_batch(
        const std::vector<Bytes>& requests) override {
        {
            std::unique_lock lock(mutex_);
            batch_sizes_.push_back(requests.size());
            entered_.notify_all();
            release_.wait(lock, [&] { return open_; });
        }
        std::vector<Result> results(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            results[i].response = requests[i];
        }
        return results;
    }

    void wait_entered(std::size_t batches) {
        std::unique_lock lock(mutex_);
        entered_.wait(lock, [&] { return batch_sizes_.size() >= batches; });
    }

    void release() {
        const std::scoped_lock lock(mutex_);
        open_ = true;
        release_.notify_all();
    }

    std::vector<std::size_t> batch_sizes() {
        const std::scoped_lock lock(mutex_);
        return batch_sizes_;
    }

private:
    std::mutex mutex_;
    std::condition_variable entered_;
    std::condition_variable release_;
    bool open_ = false;
    std::vector<std::size_t> batch_sizes_;
};

TEST(GroupCommit, PendingRequestsCoalesceIntoOneBatch) {
    GateEcho gate;
    GroupCommitter committer(gate);

    std::atomic<int> completed{0};
    std::atomic<int> errors{0};
    const auto completion = [&](Bytes response, std::exception_ptr error) {
        (void)response;
        if (error) ++errors;
        ++completed;
    };

    committer.submit(to_bytes("first"), completion);
    gate.wait_entered(1);  // committer thread holds batch #1 at the gate
    for (int i = 0; i < 9; ++i) {
        committer.submit(to_bytes("q" + std::to_string(i)), completion);
    }
    gate.release();
    committer.stop();  // drains

    EXPECT_EQ(completed.load(), 10);
    EXPECT_EQ(errors.load(), 0);
    // Everything submitted while batch #1 was committing arrives as one
    // batch — the whole point of group commit.
    const auto sizes = gate.batch_sizes();
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_EQ(sizes[0], 1u);
    EXPECT_EQ(sizes[1], 9u);
    EXPECT_EQ(committer.stats().max_batch, 9u);
    EXPECT_EQ(committer.stats().batches, 2u);
}

TEST(GroupCommit, SubmitAfterStopFailsInline) {
    GateEcho gate;
    gate.release();
    GroupCommitter committer(gate);
    committer.stop();

    bool failed = false;
    committer.submit(to_bytes("late"),
                     [&](Bytes, std::exception_ptr error) {
                         failed = error != nullptr;
                     });
    EXPECT_TRUE(failed);
    EXPECT_EQ(committer.stats().errors, 1u);
}

TEST(GroupCommit, HandlerFailureFailsEveryRequestOfTheBatch) {
    class Throwing final : public net::BatchRequestHandler {
    public:
        std::vector<Result> handle_batch(const std::vector<Bytes>&) override {
            throw std::runtime_error("disk on fire");
        }
    };
    Throwing handler;
    GroupCommitter committer(handler);
    std::atomic<int> errors{0};
    for (int i = 0; i < 4; ++i) {
        committer.submit(to_bytes("x"), [&](Bytes, std::exception_ptr e) {
            if (e) ++errors;
        });
    }
    committer.stop();
    EXPECT_EQ(errors.load(), 4);
}

// ---------------------------------------------------------------------------
// Group-committed durability: handle_batch equivalence, dedup, crashes.
// ---------------------------------------------------------------------------

/// Forwards to a handler while keeping a copy of every request.
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        requests.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> requests;

private:
    net::RequestHandler& handler_;
};

Bytes list_objects_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kListObjects));
    writer.write_string(kRepo);
    return writer.take();
}

Bytes stats_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kStats));
    writer.write_string(kRepo);
    return writer.take();
}

/// id -> ciphertext blob, order-independent.
std::map<std::uint64_t, Bytes> listing_of(net::RequestHandler& server) {
    const Bytes response = server.handle(list_objects_request());
    net::MessageReader reader(response);
    std::map<std::uint64_t, Bytes> objects;
    const auto count = reader.read_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t id = reader.read_u64();
        objects[id] = reader.read_bytes();
    }
    return objects;
}

/// (listing, stats response), or nullopt when the repository does not
/// exist on that server — a legitimate state when a crash precedes the
/// CREATE's commit.
std::optional<std::pair<std::map<std::uint64_t, Bytes>, Bytes>>
state_fingerprint(net::RequestHandler& server) {
    try {
        return std::make_pair(listing_of(server),
                              server.handle(stats_request()));
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

bool same_state(net::RequestHandler& a, net::RequestHandler& b) {
    return state_fingerprint(a) == state_fingerprint(b);
}

/// The mixed mutating workload of the durable-server suite: create, 10
/// updates, train, 4 updates, 2 removes, 1 overwrite — recorded once as
/// raw (enveloped) wire requests.
const std::vector<Bytes>& workload() {
    static const std::vector<Bytes> requests = [] {
        MieServer scratch;
        RecordingTransport transport(scratch);
        auto key = RepositoryKey::generate(to_bytes("reactor"), 64, 64,
                                           0.7978845608);
        MieClient client(transport, kRepo, key, to_bytes("u"));
        client.train_params.tree_branch = 5;
        client.train_params.tree_depth = 2;
        sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
            .num_classes = 4, .image_size = 48, .seed = 71});
        client.create_repository();
        for (const auto& object : generator.make_batch(0, 10)) {
            client.update(object);
        }
        client.train();
        for (const auto& object : generator.make_batch(10, 4)) {
            client.update(object);
        }
        client.remove(3);
        client.remove(7);
        client.update(generator.make(5));
        return std::move(transport.requests);
    }();
    return requests;
}

class GroupCommitDurabilityTest : public ::testing::Test {
protected:
    GroupCommitDurabilityTest()
        : dir_(fs::temp_directory_path() /
               ("mie_reactor_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_" + std::to_string(::getpid()))) {}

    ~GroupCommitDurabilityTest() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    static DurableServer::Options small_segments() {
        DurableServer::Options options;
        options.wal.segment_bytes = 32 * 1024;
        options.wal.sync_policy = store::SyncPolicy::kEveryRecord;
        return options;
    }

    /// Drives the workload through handle_batch in chunks of `batch`;
    /// acked requests (no per-slot error) go to `shadow`. Returns the
    /// requests of the first failing batch, in order, or empty if none.
    static std::vector<Bytes> drive_batched(DurableServer& durable,
                                            MieServer& shadow,
                                            std::size_t batch_size) {
        const auto& requests = workload();
        for (std::size_t start = 0; start < requests.size();
             start += batch_size) {
            const std::size_t end =
                std::min(requests.size(), start + batch_size);
            const std::vector<Bytes> batch(requests.begin() + start,
                                           requests.begin() + end);
            const auto results = durable.handle_batch(batch);
            bool failed = false;
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (results[i].error) {
                    failed = true;
                } else {
                    shadow.handle(batch[i]);
                }
            }
            if (failed) return batch;
        }
        return {};
    }

    fs::path dir_;
};

TEST_F(GroupCommitDurabilityTest, BatchedApplyMatchesSerialApply) {
    MieServer serial_shadow;
    for (const Bytes& request : workload()) serial_shadow.handle(request);

    MieServer shadow;
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    const auto failed = drive_batched(durable, shadow, 4);
    EXPECT_TRUE(failed.empty());
    EXPECT_TRUE(same_state(durable, serial_shadow));

    const auto stats = durable.durability();
    EXPECT_EQ(stats.records_logged, workload().size());
    EXPECT_GE(stats.batches_committed,
              (workload().size() + 3) / 4 - 1);
    EXPECT_GE(stats.max_batch_records, 2u);
}

TEST_F(GroupCommitDurabilityTest, MixedBatchFailsOnlyInvalidSlots) {
    MieServer shadow;
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    const auto& requests = workload();
    // Valid create + garbage + valid update in one batch: the garbage
    // slot errors, the others commit.
    std::vector<Bytes> batch{requests[0], Bytes{}, requests[1]};
    const auto results = durable.handle_batch(batch);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].error, nullptr);
    EXPECT_NE(results[1].error, nullptr);
    EXPECT_EQ(results[2].error, nullptr);
    shadow.handle(requests[0]);
    shadow.handle(requests[1]);
    EXPECT_TRUE(same_state(durable, shadow));
    EXPECT_EQ(durable.durability().records_logged, 2u);
}

TEST_F(GroupCommitDurabilityTest, WithinBatchDuplicateIsAppliedOnce) {
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    const auto& requests = workload();
    durable.handle_batch({requests[0]});  // create
    // A retransmit landing in the same batch as its original: applied
    // once, logged once, both slots get the same response.
    const std::vector<Bytes> batch{requests[1], requests[1]};
    const auto results = durable.handle_batch(batch);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].error, nullptr);
    EXPECT_EQ(results[1].error, nullptr);
    EXPECT_EQ(results[0].response, results[1].response);
    const auto stats = durable.durability();
    EXPECT_EQ(stats.replays_suppressed, 1u);
    EXPECT_EQ(stats.records_logged, 2u);  // create + ONE update

    // The dedup also holds across batches (a later retransmit).
    const auto replay = durable.handle_batch({requests[1]});
    EXPECT_EQ(replay[0].response, results[0].response);
    EXPECT_EQ(durable.durability().replays_suppressed, 2u);
}

TEST_F(GroupCommitDurabilityTest, PowerLossMidBatchLosesNoAckedRequest) {
    // Calibrate total appended bytes for a faultless batched run.
    std::uint64_t total_bytes = 0;
    {
        store::FaultInjectingVfs vfs(store::PosixVfs::instance());
        MieServer shadow;
        DurableServer durable(vfs, dir_ / "calibrate", small_segments());
        drive_batched(durable, shadow, 4);
        total_bytes = vfs.bytes_appended();
        ASSERT_GT(total_bytes, 0u);
    }
    for (int step = 1; step <= 4; ++step) {
        const std::uint64_t fail_at = total_bytes * step / 5;
        const fs::path cell_dir = dir_ / ("power_" + std::to_string(step));
        MieServer shadow;
        {
            store::FaultInjectingVfs vfs(store::PosixVfs::instance());
            DurableServer durable(vfs, cell_dir, small_segments());
            vfs.fail_after_bytes(fail_at, 7);
            const auto failed = drive_batched(durable, shadow, 4);
            ASSERT_FALSE(failed.empty())
                << "fault at byte " << fail_at << " never fired";
            vfs.power_loss();
        }
        // kEveryRecord + group commit: every *acked* batch was fsynced as
        // a unit, and the failing batch acked nothing — so after power
        // loss the recovered server matches the acked state EXACTLY (no
        // at-least-once window at all).
        DurableServer recovered(store::PosixVfs::instance(), cell_dir,
                                small_segments());
        SCOPED_TRACE("fail_at=" + std::to_string(fail_at));
        EXPECT_TRUE(same_state(recovered, shadow));
    }
}

TEST_F(GroupCommitDurabilityTest, ProcessCrashMidBatchKeepsLoggedPrefix) {
    std::uint64_t total_bytes = 0;
    {
        store::FaultInjectingVfs vfs(store::PosixVfs::instance());
        MieServer shadow;
        DurableServer durable(vfs, dir_ / "calibrate", small_segments());
        drive_batched(durable, shadow, 4);
        total_bytes = vfs.bytes_appended();
    }
    for (int step = 1; step <= 4; ++step) {
        const std::uint64_t fail_at = total_bytes * step / 5;
        const fs::path cell_dir = dir_ / ("crash_" + std::to_string(step));
        MieServer shadow;
        std::vector<Bytes> failed_batch;
        {
            store::FaultInjectingVfs vfs(store::PosixVfs::instance());
            DurableServer durable(vfs, cell_dir, small_segments());
            vfs.fail_after_bytes(fail_at, 7);
            failed_batch = drive_batched(durable, shadow, 4);
            ASSERT_FALSE(failed_batch.empty());
            EXPECT_TRUE(vfs.crashed());
        }
        // Process crash (no power loss): the failing batch's records form
        // a torn tail — recovery keeps some PREFIX of them. None were
        // acked, so any prefix is the documented at-least-once window;
        // the state must match the acked shadow plus exactly that prefix.
        DurableServer recovered(store::PosixVfs::instance(), cell_dir,
                                small_segments());
        SCOPED_TRACE("fail_at=" + std::to_string(fail_at));
        bool matched = same_state(recovered, shadow);
        for (std::size_t k = 0; !matched && k < failed_batch.size(); ++k) {
            shadow.handle(failed_batch[k]);
            matched = same_state(recovered, shadow);
        }
        EXPECT_TRUE(matched)
            << "recovered state is not shadow + any prefix of the torn "
               "batch";
    }
}

// ---------------------------------------------------------------------------
// End to end: the full MIE stack over the reactor with group commit.
// ---------------------------------------------------------------------------

TEST_F(GroupCommitDurabilityTest, FullMieStackOverReactorWithGroupCommit) {
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    GroupCommitter committer(durable);
    ReactorServer server(durable, &committer, is_mutating_request);
    server.start();

    net::TcpTransport transport("127.0.0.1", server.port());
    auto key = RepositoryKey::generate(to_bytes("reactor"), 64, 64,
                                       0.7978845608);
    MieClient client(transport, kRepo, key, to_bytes("u"));
    client.train_params.tree_branch = 5;
    client.train_params.tree_depth = 2;
    sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
        .num_classes = 3, .image_size = 48, .seed = 2});
    client.create_repository();
    for (const auto& object : generator.make_batch(0, 8)) {
        client.update(object);
    }
    client.train();

    const auto results = client.search(generator.make(4), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.front().object_id, 4u);
    const auto decrypted = client.decrypt_result(results.front());
    EXPECT_EQ(decrypted.text, generator.make(4).text);

    server.stop();
    committer.stop();
    // Every mutation went through the committer (create + 8 updates +
    // train), searches did not.
    EXPECT_EQ(committer.stats().submitted, 10u);
    EXPECT_EQ(committer.stats().errors, 0u);
    EXPECT_EQ(durable.durability().records_logged, 10u);
    EXPECT_GE(durable.durability().batches_committed, 1u);
}

TEST_F(GroupCommitDurabilityTest, RetriedMutationOverReactorIsExactlyOnce) {
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    GroupCommitter committer(durable);
    ReactorServer server(durable, &committer, is_mutating_request);
    server.start();

    net::TcpTransport transport("127.0.0.1", server.port());
    const auto& requests = workload();
    std::vector<Bytes> responses;
    for (const Bytes& request : requests) {
        responses.push_back(transport.call(request));
    }
    // "Retry" the final (enveloped) update as a client whose ack was
    // lost would: the response must be byte-identical and the mutation
    // must not re-apply.
    const Bytes replayed = transport.call(requests.back());
    EXPECT_EQ(replayed, responses.back());

    server.stop();
    committer.stop();
    EXPECT_EQ(durable.durability().replays_suppressed, 1u);
    EXPECT_EQ(durable.durability().records_logged, requests.size());

    // Recovery sees exactly the acknowledged operations.
    MieServer shadow;
    for (const Bytes& request : requests) shadow.handle(request);
    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());
    EXPECT_TRUE(same_state(recovered, shadow));
}

TEST_F(GroupCommitDurabilityTest, ConcurrentClientsOverReactorConverge) {
    // Several clients hammer mutations through the group-commit path at
    // once; afterwards a recovery replay must reproduce the final state.
    DurableServer durable(store::PosixVfs::instance(), dir_,
                          small_segments());
    GroupCommitter committer(durable);
    ReactorServer server(durable, &committer, is_mutating_request);
    server.start();

    // Shared repository, per-client disjoint object ids.
    {
        net::TcpTransport transport("127.0.0.1", server.port());
        auto key = RepositoryKey::generate(to_bytes("reactor"), 64, 64,
                                           0.7978845608);
        MieClient client(transport, kRepo, key, to_bytes("u"));
        client.create_repository();
    }
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            try {
                net::TcpTransport transport("127.0.0.1", server.port());
                auto key = RepositoryKey::generate(to_bytes("reactor"), 64,
                                                   64, 0.7978845608);
                MieClient client(transport, kRepo, key,
                                 to_bytes("u" + std::to_string(c)));
                sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
                    .num_classes = 3, .image_size = 48, .seed = 2});
                for (int i = 0; i < 6; ++i) {
                    auto object = generator.make(
                        static_cast<std::uint64_t>(c) * 1000 + i);
                    client.update(object);
                }
            } catch (...) {
                ++failures;
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    server.stop();
    committer.stop();

    const auto stats = durable.durability();
    EXPECT_EQ(stats.records_logged, 25u);  // 1 create + 4*6 updates
    const auto expected = listing_of(durable);
    EXPECT_EQ(expected.size(), 24u);

    DurableServer recovered(store::PosixVfs::instance(), dir_,
                            small_segments());
    EXPECT_EQ(listing_of(recovered), expected);
}

}  // namespace
}  // namespace mie::reactor
