// mielint's own test suite: golden fixtures (each violating exactly one
// rule), suppression comments, config parsing, glob semantics, and the
// JSON report shape. The fixtures live under tests/lint/fixtures/ and are
// linted in-process through mielint_core — the same pipeline main.cpp
// drives — so assertions see structured Findings, not scraped output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config.hpp"
#include "engine.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace {

using mielint::Config;
using mielint::Finding;

// Mirrors tools/mielint/mielint.conf's R5 policy so fixtures are judged
// under the same type rules as the real tree.
Config test_config() {
    return Config::parse(
        "secret-safe-type SecretBytes\n"
        "secret-safe-type Zeroizing\n"
        "secret-safe-type SecretBigUint\n"
        "public-biguint-member n\n"
        "public-biguint-member e\n"
        "public-biguint-member n_squared\n");
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const Config& config = test_config()) {
    const std::string root = MIELINT_FIXTURE_DIR;
    return mielint::lint_paths({root + "/" + name}, root, config);
}

// ------------------------------------------------ golden fixtures ----

struct GoldenCase {
    const char* fixture;
    const char* rule;
    int line;
};

class GoldenFixture : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenFixture, TriggersExactlyItsRule) {
    const GoldenCase& expected = GetParam();
    const std::vector<Finding> findings = lint_fixture(expected.fixture);
    ASSERT_EQ(findings.size(), 1u) << "fixture " << expected.fixture;
    EXPECT_EQ(findings[0].rule, expected.rule);
    EXPECT_EQ(findings[0].file, expected.fixture);
    EXPECT_EQ(findings[0].line, expected.line);
    EXPECT_FALSE(findings[0].message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, GoldenFixture,
    ::testing::Values(
        GoldenCase{"r1_nondeterminism.cpp", "R1", 5},
        GoldenCase{"r1_time_seed.cpp", "R1", 5},
        GoldenCase{"r2_memcmp.cpp", "R2", 5},
        GoldenCase{"r2_secret_eq.cpp", "R2", 7},
        GoldenCase{"r3_snapshot_writer.cpp", "R3", 12},
        GoldenCase{"r3_unordered_iter.cpp", "R3", 10},
        GoldenCase{"r4_missing_pragma.hpp", "R4", 1},
        GoldenCase{"r4_using_namespace.hpp", "R4", 6},
        GoldenCase{"r5_bytes_key.hpp", "R5", 9},
        GoldenCase{"r5_biguint.hpp", "R5", 9},
        GoldenCase{"r6_blocking.cpp", "R6", 10},
        GoldenCase{"r7_lock_cycle.cpp", "R7", 10},
        GoldenCase{"r8_unguarded.cpp", "R8", 11}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
        std::string name = info.param.fixture;
        for (char& c : name) {
            if (c == '.' || c == '/') c = '_';
        }
        return name;
    });

TEST(MielintFixtures, CleanFileHasNoFindings) {
    EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(MielintFixtures, InlineAllowSuppressesR3) {
    EXPECT_TRUE(lint_fixture("r3_allowed.cpp").empty());
}

TEST(MielintFixtures, SemanticCleanFixtureHasNoFindings) {
    // Locked entry + acquires()-annotated helper + guarded member: the
    // whole R6-R8 machinery runs and finds nothing.
    EXPECT_TRUE(lint_fixture("semantic_clean.cpp").empty());
}

TEST(MielintFixtures, InlineAllowSuppressesR6) {
    EXPECT_TRUE(lint_fixture("r6_allowed.cpp").empty());
}

TEST(MielintFixtures, WholeDirectoryFindingsAreSortedAndComplete) {
    const std::string root = MIELINT_FIXTURE_DIR;
    std::vector<std::string> paths;
    const char* names[] = {
        "clean.cpp",          "r1_nondeterminism.cpp", "r1_time_seed.cpp",
        "r2_memcmp.cpp",      "r2_secret_eq.cpp",      "r3_allowed.cpp",
        "r3_snapshot_writer.cpp", "r3_unordered_iter.cpp",
        "r4_missing_pragma.hpp",
        "r4_using_namespace.hpp", "r5_bytes_key.hpp",  "r5_biguint.hpp",
        "r6_blocking.cpp",    "r6_allowed.cpp",        "r7_lock_cycle.cpp",
        "r8_unguarded.cpp",   "semantic_clean.cpp"};
    for (const char* name : names) paths.push_back(root + "/" + name);
    const std::vector<Finding> findings =
        mielint::lint_paths(paths, root, test_config());
    ASSERT_EQ(findings.size(), 13u);
    for (std::size_t i = 1; i < findings.size(); ++i) {
        EXPECT_LE(findings[i - 1].file, findings[i].file);
    }
}

// --------------------------------------------------- suppressions ----

TEST(MielintSuppression, AllowCommentCoversSameAndNextLineOnly) {
    const mielint::LexedFile file = mielint::lex(
        "mem.cpp", "mem.cpp",
        "// mielint: allow(R2): precomputed public value\n"
        "int x;\n"
        "int y;\n");
    EXPECT_TRUE(file.allowed("R2", 1));
    EXPECT_TRUE(file.allowed("R2", 2));
    EXPECT_FALSE(file.allowed("R2", 3));
    EXPECT_FALSE(file.allowed("R3", 2));
}

TEST(MielintSuppression, AllowListsMultipleRules) {
    const mielint::LexedFile file = mielint::lex(
        "mem.cpp", "mem.cpp", "// mielint: allow(R1, R3): test shim\n");
    EXPECT_TRUE(file.allowed("R1", 1));
    EXPECT_TRUE(file.allowed("R3", 1));
    EXPECT_FALSE(file.allowed("R2", 1));
}

TEST(MielintSuppression, PathAllowlistDropsFindings) {
    Config config = test_config();
    config.path_allows["R5"].push_back("r5_*.hpp");
    EXPECT_TRUE(lint_fixture("r5_bytes_key.hpp", config).empty());
    EXPECT_TRUE(lint_fixture("r5_biguint.hpp", config).empty());
    // Unrelated rules stay live.
    EXPECT_EQ(lint_fixture("r1_nondeterminism.cpp", config).size(), 1u);
}

// -------------------------------------------------------- config -----

TEST(MielintConfig, ParsesDirectivesAndComments) {
    const Config config = Config::parse(
        "# policy\n"
        "allow R1 src/crypto/entropy.cpp\n"
        "secret-safe-type SecretBytes  # trailing comment\n"
        "public-biguint-member n\n"
        "\n");
    EXPECT_TRUE(config.path_allowed("R1", "src/crypto/entropy.cpp"));
    EXPECT_FALSE(config.path_allowed("R1", "src/crypto/aes.cpp"));
    EXPECT_EQ(config.secret_safe_types.count("SecretBytes"), 1u);
    EXPECT_EQ(config.public_biguint_members.count("n"), 1u);
}

TEST(MielintConfig, RejectsMalformedInput) {
    EXPECT_THROW(Config::parse("frobnicate R1\n"), std::runtime_error);
    EXPECT_THROW(Config::parse("allow R1\n"), std::runtime_error);
    EXPECT_THROW(Config::parse("allow R1 a/b extra\n"), std::runtime_error);
}

TEST(MielintConfig, GlobSemantics) {
    EXPECT_TRUE(mielint::glob_match("src/*.cpp", "src/a.cpp"));
    EXPECT_FALSE(mielint::glob_match("src/*.cpp", "src/sub/a.cpp"));
    EXPECT_TRUE(mielint::glob_match("src/**/*.cpp", "src/sub/deep/a.cpp"));
    EXPECT_TRUE(mielint::glob_match("**/entropy.cpp",
                                    "src/crypto/entropy.cpp"));
    EXPECT_TRUE(mielint::glob_match("src/?.cpp", "src/a.cpp"));
    EXPECT_FALSE(mielint::glob_match("src/?.cpp", "src/ab.cpp"));
    EXPECT_FALSE(mielint::glob_match("src/?.cpp", "src//.cpp"));
}

// ------------------------------------------------------- reports -----

TEST(MielintReport, JsonShapeAndEscaping) {
    const std::vector<Finding> findings = {
        Finding{"R2", "src/a \"quoted\".cpp", 7, "line1\nline2"}};
    const std::string json = mielint::to_json(findings, 3);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"mielint\""), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_NE(json.find("\"total\": 1"), std::string::npos);
}

TEST(MielintReport, JsonEmptyFindings) {
    const std::string json = mielint::to_json({}, 5);
    EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
    EXPECT_NE(json.find("\"total\": 0"), std::string::npos);
}

TEST(MielintReport, HumanFormat) {
    const std::vector<Finding> findings = {
        Finding{"R1", "src/a.cpp", 12, "bad entropy"}};
    const std::string text = mielint::to_human(findings, 2);
    EXPECT_NE(text.find("src/a.cpp:12: R1: bad entropy"), std::string::npos);
    EXPECT_NE(text.find("1 finding in 2 files"), std::string::npos);
}

// ----------------------------------------- regression tripwires ------
// The invariants the lint gate exists for: if someone reverts key
// structs to raw Bytes or swaps ct_equal for memcmp, the rules fire.

TEST(MielintTripwire, RawBytesKeyMemberIsCaught) {
    const mielint::LexedFile file = mielint::lex(
        "keys.hpp", "keys.hpp",
        "#pragma once\n"
        "struct DenseDpeKey {\n"
        "    Bytes seed;\n"
        "};\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R5");
    EXPECT_EQ(findings[0].line, 3);
}

TEST(MielintTripwire, SecretBytesKeyMemberIsClean) {
    const mielint::LexedFile file = mielint::lex(
        "keys.hpp", "keys.hpp",
        "#pragma once\n"
        "struct DenseDpeKey {\n"
        "    crypto::SecretBytes seed;\n"
        "};\n");
    EXPECT_TRUE(mielint::run_rules({file}, test_config()).empty());
}

TEST(MielintTripwire, MemcmpOnMacIsCaughtCtEqualIsNot) {
    const mielint::LexedFile bad = mielint::lex(
        "verify.cpp", "verify.cpp",
        "bool ok(BytesView mac, BytesView got) {\n"
        "    return memcmp(mac.data(), got.data(), mac.size()) == 0;\n"
        "}\n");
    const std::vector<Finding> findings =
        mielint::run_rules({bad}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R2");

    const mielint::LexedFile good = mielint::lex(
        "verify.cpp", "verify.cpp",
        "bool ok(BytesView mac, BytesView got) {\n"
        "    return util::ct_equal(mac, got);\n"
        "}\n");
    EXPECT_TRUE(mielint::run_rules({good}, test_config()).empty());
}

TEST(MielintTripwire, MemberAccessComparisonIsNotASecretCompare) {
    // key_.input_dims compares a dimension, not the key bytes.
    const mielint::LexedFile file = mielint::lex(
        "dpe.cpp", "dpe.cpp",
        "void check(std::size_t n) {\n"
        "    if (n != key_.input_dims) throw 1;\n"
        "}\n");
    EXPECT_TRUE(mielint::run_rules({file}, test_config()).empty());
}

TEST(MielintTripwire, EnumClassIsNotAnAggregate) {
    const mielint::LexedFile file = mielint::lex(
        "grants.hpp", "grants.hpp",
        "#pragma once\n"
        "enum class KeyGrant { kRepository = 1, kDataKey = 2 };\n");
    EXPECT_TRUE(mielint::run_rules({file}, test_config()).empty());
}

// R3 name scoping: an unordered_map member in an included header taints
// same-named iteration there, but not an unrelated file that never
// includes it.
TEST(MielintTripwire, UnorderedNamesScopeToIncludeClosure) {
    mielint::LexedFile header = mielint::lex(
        "srv/server.hpp", "srv/server.hpp",
        "#pragma once\n"
        "struct Repo { std::unordered_map<int, Obj> objects; };\n");
    mielint::LexedFile includer = mielint::lex(
        "srv/server.cpp", "srv/server.cpp",
        "#include \"srv/server.hpp\"\n"
        "void dump(Repo& r) { for (auto& o : r.objects) { use(o); } }\n");
    mielint::LexedFile unrelated = mielint::lex(
        "other.cpp", "other.cpp",
        "void run(std::vector<int> objects) {\n"
        "    for (int o : objects) { use(o); }\n"
        "}\n");
    const std::vector<Finding> findings = mielint::run_rules(
        {header, includer, unrelated}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R3");
    EXPECT_EQ(findings[0].file, "srv/server.cpp");
}

// ----------------------------------------------------- call graph ----

// A receiver the symbol table cannot type (a local) falls back to
// virtual dispatch: an edge to every visible class with that method.
TEST(MielintCallGraph, UntypedReceiverFallsBackToVisibleClasses) {
    const mielint::LexedFile sink = mielint::lex(
        "cg/sink.hpp", "cg/sink.hpp",
        "#pragma once\n"
        "struct FsyncSink {\n"
        "    void handle() { ::fsync(0); }\n"
        "};\n");
    const mielint::LexedFile loop = mielint::lex(
        "cg/loop.cpp", "cg/loop.cpp",
        "#include \"cg/sink.hpp\"\n"
        "// mielint: nonblocking\n"
        "void pump(void* opaque) {\n"
        "    auto* sink = unwrap(opaque);\n"
        "    sink->handle();\n"
        "}\n");
    const std::vector<Finding> findings =
        mielint::run_rules({sink, loop}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R6");
    EXPECT_EQ(findings[0].file, "cg/sink.hpp");
    EXPECT_EQ(findings[0].line, 3);
}

// The fallback is scoped to the include closure: the same blocking
// handler in a file pump() never includes contributes no edge.
TEST(MielintCallGraph, VirtualFallbackScopesToIncludeClosure) {
    const mielint::LexedFile sink = mielint::lex(
        "cg/sink.hpp", "cg/sink.hpp",
        "#pragma once\n"
        "struct FsyncSink {\n"
        "    void handle() { ::fsync(0); }\n"
        "};\n");
    const mielint::LexedFile loop = mielint::lex(
        "cg/loop.cpp", "cg/loop.cpp",
        "// mielint: nonblocking\n"
        "void pump(void* opaque) {\n"
        "    auto* sink = unwrap(opaque);\n"
        "    sink->handle();\n"
        "}\n");
    EXPECT_TRUE(mielint::run_rules({sink, loop}, test_config()).empty());
}

// ------------------------------------------------ receiver typing ----

// `inner_.mutex` is Inner's mutex, not Outer's: acquiring it must not
// satisfy a guarded_by(mutex) on an Outer member.
TEST(MielintLockTyping, WrongObjectsMutexDoesNotCoverGuardedMember) {
    const mielint::LexedFile file = mielint::lex(
        "lt/outer.hpp", "lt/outer.hpp",
        "#pragma once\n"
        "#include <mutex>\n"
        "struct Inner { std::mutex mutex; };\n"
        "struct Outer {\n"
        "    Inner inner_;\n"
        "    std::mutex mutex;\n"
        "    // mielint: guarded_by(mutex)\n"
        "    int count_ = 0;\n"
        "    void bump() {\n"
        "        const std::scoped_lock lock(inner_.mutex);\n"
        "        ++count_;\n"
        "    }\n"
        "};\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R8");
    EXPECT_EQ(findings[0].line, 11);
}

// Receiver typing looks through containers and smart pointers:
// `queues_[0]->mutex` is WorkerQueue::mutex even though queues_ is a
// vector of unique_ptrs — so it does not cover Pool's guarded member.
TEST(MielintLockTyping, LooksThroughContainersAndSmartPointers) {
    const mielint::LexedFile file = mielint::lex(
        "lt/pool.hpp", "lt/pool.hpp",
        "#pragma once\n"
        "#include <memory>\n"
        "#include <mutex>\n"
        "#include <vector>\n"
        "struct WorkerQueue { std::mutex mutex; };\n"
        "struct Pool {\n"
        "    std::vector<std::unique_ptr<WorkerQueue>> queues_;\n"
        "    std::mutex mutex;\n"
        "    // mielint: guarded_by(mutex)\n"
        "    int jobs_ = 0;\n"
        "    void push() {\n"
        "        const std::scoped_lock lock(queues_[0]->mutex);\n"
        "        ++jobs_;\n"
        "    }\n"
        "};\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R8");
    EXPECT_EQ(findings[0].line, 13);
}

// Same-named mutexes of different classes reached through typed
// parameters stay distinct — without parameter typing, state.mutex and
// other.mutex would merge into one bare-name node and fabricate an
// Api::mx -> mutex -> Api::mx lock-order cycle.
TEST(MielintLockTyping, ParameterTypesKeepSameNamedMutexesApart) {
    const mielint::LexedFile file = mielint::lex(
        "lt/drain.cpp", "lt/drain.cpp",
        "#include <mutex>\n"
        "struct State { std::mutex mutex; };\n"
        "struct Other { std::mutex mutex; };\n"
        "struct Api { std::mutex mx; };\n"
        "void f(State& state, Api& api) {\n"
        "    const std::scoped_lock a(api.mx);\n"
        "    const std::scoped_lock b(state.mutex);\n"
        "}\n"
        "void g(Other& other, Api& api) {\n"
        "    const std::scoped_lock a(other.mutex);\n"
        "    const std::scoped_lock b(api.mx);\n"
        "}\n");
    EXPECT_TRUE(mielint::run_rules({file}, test_config()).empty());
}

// ------------------------------------------------ annotations --------

TEST(MielintAnnotations, NonblockingAttachesFromPreviousLine) {
    const mielint::LexedFile file = mielint::lex(
        "an/a.cpp", "an/a.cpp",
        "// mielint: nonblocking\n"
        "void tick() { ::fsync(0); }\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R6");
    EXPECT_EQ(findings[0].line, 2);
}

TEST(MielintAnnotations, NonblockingAttachesFromDeclarationLine) {
    const mielint::LexedFile file = mielint::lex(
        "an/b.cpp", "an/b.cpp",
        "void tock() {  // mielint: nonblocking\n"
        "    ::fsync(0);\n"
        "}\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R6");
    EXPECT_EQ(findings[0].line, 2);
}

// config `blocking-call <name>` extends R6's primitive set.
TEST(MielintConfig, BlockingCallDirectiveExtendsR6) {
    const mielint::LexedFile file = mielint::lex(
        "an/rpc.cpp", "an/rpc.cpp",
        "// mielint: nonblocking\n"
        "void heartbeat() { slow_rpc(); }\n");
    EXPECT_TRUE(mielint::run_rules({file}, test_config()).empty());
    const Config config = Config::parse("blocking-call slow_rpc\n");
    const std::vector<Finding> findings =
        mielint::run_rules({file}, config);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R6");
    EXPECT_EQ(findings[0].line, 2);
}

// The invariant the R8 gate exists for: delete the lock acquisition in
// front of a guarded access and the lint fails.
TEST(MielintTripwire, RemovingGuardedLockAcquisitionFailsLint) {
    const mielint::LexedFile locked = mielint::lex(
        "tw/ledger.hpp", "tw/ledger.hpp",
        "#pragma once\n"
        "#include <mutex>\n"
        "struct Ledger {\n"
        "    void credit() {\n"
        "        const std::scoped_lock lock(mu_);\n"
        "        ++balance_;\n"
        "    }\n"
        "    std::mutex mu_;\n"
        "    // mielint: guarded_by(mu_)\n"
        "    long balance_ = 0;\n"
        "};\n");
    EXPECT_TRUE(mielint::run_rules({locked}, test_config()).empty());

    const mielint::LexedFile unlocked = mielint::lex(
        "tw/ledger.hpp", "tw/ledger.hpp",
        "#pragma once\n"
        "#include <mutex>\n"
        "struct Ledger {\n"
        "    void credit() {\n"
        "        ++balance_;\n"
        "    }\n"
        "    std::mutex mu_;\n"
        "    // mielint: guarded_by(mu_)\n"
        "    long balance_ = 0;\n"
        "};\n");
    const std::vector<Finding> findings =
        mielint::run_rules({unlocked}, test_config());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R8");
    EXPECT_EQ(findings[0].line, 5);
}

// ---------------------------------------------------------- SARIF ----

TEST(MielintReport, SarifShapeAndEscaping) {
    const std::vector<Finding> findings = {
        Finding{"R6", "src/reactor/reactor.cpp", 165,
                "blocking \"call\" reachable"}};
    const std::string sarif = mielint::to_sarif(findings);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"R6\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 165"), std::string::npos);
    EXPECT_NE(sarif.find("src/reactor/reactor.cpp"), std::string::npos);
    EXPECT_NE(sarif.find("\\\"call\\\""), std::string::npos);
    // The full rule catalog rides along as tool.driver.rules.
    for (const auto& rule : mielint::rule_catalog()) {
        EXPECT_NE(sarif.find("{\"id\": \"" + rule.id + "\""),
                  std::string::npos);
    }
}

TEST(MielintReport, SarifEmptyFindingsIsStillARun) {
    const std::string sarif = mielint::to_sarif({});
    EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"mielint\""), std::string::npos);
}

}  // namespace
