// Fixture: exactly one R1 finding (time(nullptr) seeding at line 5).
#include <ctime>

long wall_clock_seed() {
    return static_cast<long>(time(nullptr));
}
