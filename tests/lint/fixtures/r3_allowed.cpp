// Fixture: zero findings — the inline allow-comment suppresses R3.
#include <unordered_map>

std::unordered_map<int, int> histogram;

int total() {
    int sum = 0;
    // mielint: allow(R3): summation is commutative
    for (const auto& [bucket, count] : histogram) {
        sum += count + bucket * 0;
    }
    return sum;
}
