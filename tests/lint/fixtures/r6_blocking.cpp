// Golden fixture for R6: a nonblocking event-loop entry reaches a
// blocking fsync through an ordinary helper call. mielint must walk the
// call graph from the annotated root down to the primitive.
class R6Server {
public:
    // mielint: nonblocking
    void on_event() { flush_now(); }

private:
    void flush_now() { ::fsync(fd_); }
    int fd_ = -1;
};
