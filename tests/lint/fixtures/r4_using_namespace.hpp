// Fixture: exactly one R4 finding ('using namespace' at line 6).
#pragma once

#include <string>

using namespace std;

inline string shout(const string& s) { return s + "!"; }
