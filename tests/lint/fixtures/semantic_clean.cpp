// Clean semantic fixture: guarded state, a locked public entry, and a
// private helper documenting its caller-holds-the-lock contract with
// `// mielint: acquires(mu_)`. None of R6-R8 may fire.
#include <mutex>

class CleanGauge {
public:
    void add(long delta) {
        const std::scoped_lock lock(mu_);
        add_locked(delta);
    }

private:
    // mielint: acquires(mu_)
    void add_locked(long delta) { total_ += delta; }
    std::mutex mu_;
    // mielint: guarded_by(mu_)
    long total_ = 0;
};
