// Golden fixture for R7: two methods acquire the same pair of mutexes
// in opposite orders — the classic ABBA deadlock. The lock-order graph
// gains ma_ -> mb_ and mb_ -> ma_, and the cycle fails the lint.
#include <mutex>

class R7Pair {
public:
    void ab() {
        const std::scoped_lock first(ma_);
        const std::scoped_lock second(mb_);
    }
    void ba() {
        const std::scoped_lock first(mb_);
        const std::scoped_lock second(ma_);
    }

private:
    std::mutex ma_;
    std::mutex mb_;
};
