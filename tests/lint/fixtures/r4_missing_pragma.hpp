// Fixture: exactly one R4 finding (no include guard; reported at line 1).
inline int answer() { return 42; }
