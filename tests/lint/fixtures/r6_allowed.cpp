// Companion to r6_blocking.cpp: the same reachable fsync, pinned with a
// justified inline allow on the blocking line. Must lint clean.
class R6Pinned {
public:
    // mielint: nonblocking
    void on_event() { flush_now(); }

private:
    void flush_now() {
        // mielint: allow(R6): checkpoint fsync is the sanctioned stall
        ::fsync(fd_);
    }
    int fd_ = -1;
};
