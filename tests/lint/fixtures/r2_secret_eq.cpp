// Fixture: exactly one R2 finding (operator== on tag buffers at line 7).
#include <vector>

using Buffer = std::vector<unsigned char>;

bool same_tag(const Buffer& expected_tag, const Buffer& actual) {
    return expected_tag == actual;
}
