// Fixture: exactly one R5 finding (BigUint private exponent at line 9;
// `n` is listed as public-biguint-member by the test's config).
#pragma once

struct BigUint {};

struct TestPrivateKey {
    BigUint n;
    BigUint d;
};
