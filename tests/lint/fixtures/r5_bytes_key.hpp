// Fixture: exactly one R5 finding (raw-typed master_key at line 9).
#pragma once

#include <vector>

using Bytes = std::vector<unsigned char>;

struct KeyBundle {
    Bytes master_key;
    Bytes public_salt_material;
};
