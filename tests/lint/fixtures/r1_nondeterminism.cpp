// Fixture: exactly one R1 finding (std::random_device at line 5).
#include <random>

unsigned fresh_entropy() {
    std::random_device device;
    return device();
}
