// Fixture: exactly one R3 finding (range-for over an unordered_map at
// line 10).
#include <cstdio>
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> table;

void dump() {
    for (const auto& [name, count] : table) {
        std::printf("%s %d\n", name.c_str(), count);
    }
}
