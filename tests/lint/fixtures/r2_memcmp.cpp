// Fixture: exactly one R2 finding (memcmp on MAC buffers at line 5).
#include <cstring>

bool verify(const unsigned char* expected_mac, const unsigned char* got) {
    return std::memcmp(expected_mac, got, 32) == 0;
}
