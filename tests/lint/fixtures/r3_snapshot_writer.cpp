// Fixture: exactly one R3 finding (line 12) — a snapshot writer that
// serializes an unordered_map by direct iteration. On-disk bytes would
// depend on hash-table order; the real writers sort ids/terms first
// (see index/snapshot.hpp and MieServer::serialize_repository).
#include <cstdint>
#include <unordered_map>
#include <vector>

std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> objects;

void write_snapshot(std::vector<std::uint8_t>& out) {
    for (const auto& [id, blob] : objects) {
        out.push_back(static_cast<std::uint8_t>(id));
        out.insert(out.end(), blob.begin(), blob.end());
    }
}
