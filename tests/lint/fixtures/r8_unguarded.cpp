// Golden fixture for R8: hits_ is guarded by mu_, and snapshot() reads
// it without holding the lock (and without an acquires() contract).
#include <mutex>

class R8Counter {
public:
    void hit() {
        const std::scoped_lock lock(mu_);
        ++hits_;
    }
    long snapshot() const { return hits_; }

private:
    mutable std::mutex mu_;
    // mielint: guarded_by(mu_)
    long hits_ = 0;
};
