// Fixture: zero findings. Exercises constructs adjacent to every rule's
// trigger without crossing any of them:
//  - ordered containers iterate freely (R3)
//  - kMagic does not match R2's name heuristic ("mac" split on '_')
//  - `random_device` inside this comment and the string below are ignored
//  - a scalar seed member is public by design (R5 skips scalar types)
#include <cstring>
#include <cstdint>
#include <map>
#include <string>

struct TrainParams {
    std::uint64_t kmeans_seed = 7;
};

const char* banner() { return "not a std::random_device in a string"; }

bool magic_ok(const unsigned char* header) {
    static const unsigned char kMagic[4] = {'M', 'I', 'E', '1'};
    return std::memcmp(header, kMagic, sizeof(kMagic)) == 0;
}

int sum(const std::map<std::string, int>& scores) {
    int total = 0;
    for (const auto& [name, value] : scores) total += value + name.empty();
    return total;
}
