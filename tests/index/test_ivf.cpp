// IVF coarse-quantized query path (index/ivf.hpp).
//
// The load-bearing contracts: (a) probes == 0, probes >= the cell count,
// and an unbuilt quantizer all reproduce the exact bovw_histogram
// BITWISE; (b) probed histograms are subsets of the exact histogram
// (pruning never invents terms); (c) everything is deterministic at any
// thread count, because the vote aggregation and cell selection are
// serial integer code.
#include <gtest/gtest.h>

#include <vector>

#include "dpe/bitcode.hpp"
#include "exec/exec.hpp"
#include "index/bovw.hpp"
#include "index/ivf.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "util/rng.hpp"

namespace mie::index {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct WidthGuard {
    ~WidthGuard() { exec::set_max_threads(0); }
};

std::vector<dpe::BitCode> hamming_points(std::size_t count,
                                         std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<dpe::BitCode> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        dpe::BitCode code(128);
        for (std::size_t b = 0; b < 128; ++b) {
            code.set(b, rng.next_double() < 0.5);
        }
        points.push_back(std::move(code));
    }
    return points;
}

std::vector<features::FeatureVec> euclidean_points(std::size_t count,
                                                   std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<features::FeatureVec> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        features::FeatureVec v(16);
        for (auto& x : v) x = static_cast<float>(rng.next_double() * 10.0);
        points.push_back(std::move(v));
    }
    return points;
}

template <typename Space>
VocabTree<Space> build_tree(const std::vector<typename Space::Point>& pts) {
    typename VocabTree<Space>::Params params;
    params.branch = 5;
    params.depth = 2;
    params.kmeans_iterations = 6;
    return VocabTree<Space>::build(pts, params, 2017);
}

TEST(Ivf, ZeroProbesReproducesExactHistogramBitwise) {
    const auto training = hamming_points(400, 7);
    const auto tree = build_tree<HammingSpace>(training);
    const auto ivf = IvfQuantizer<HammingSpace>::build(tree);
    ASSERT_GT(ivf.num_cells(), 1u);

    const auto query = hamming_points(50, 99);
    const QueryHistogram exact = bovw_histogram(tree, query);
    EXPECT_EQ(ivf_histogram(tree, ivf, query, 0), exact);
    EXPECT_EQ(ivf_histogram(tree, ivf, query, ivf.num_cells()), exact);
    EXPECT_EQ(ivf_histogram(tree, ivf, query, ivf.num_cells() + 3), exact);
    // Unbuilt quantizer: also exact.
    EXPECT_EQ(ivf_histogram(tree, IvfQuantizer<HammingSpace>{}, query, 2),
              exact);
}

TEST(Ivf, ProbedHistogramIsSubsetOfExact) {
    const auto training = hamming_points(400, 7);
    const auto tree = build_tree<HammingSpace>(training);
    const auto ivf = IvfQuantizer<HammingSpace>::build(tree);
    const auto query = hamming_points(60, 31);
    const QueryHistogram exact = bovw_histogram(tree, query);

    for (std::size_t probes = 1; probes < ivf.num_cells(); ++probes) {
        IvfStats stats;
        const QueryHistogram probed =
            ivf_histogram(tree, ivf, query, probes, &stats);
        std::uint64_t kept = 0;
        for (const auto& [term, freq] : probed) {
            const auto it = exact.find(term);
            ASSERT_NE(it, exact.end()) << "probed invented a term";
            // A probed descriptor descends from the same cell the exact
            // walk's first step picks, so per-term counts can only drop.
            EXPECT_LE(freq, it->second);
            kept += freq;
        }
        EXPECT_EQ(stats.query_descriptors, query.size());
        EXPECT_EQ(stats.descriptors_kept, kept);
        EXPECT_LE(stats.cells_probed, probes);
        EXPECT_EQ(stats.cells_total, ivf.num_cells());
        EXPECT_GT(kept, 0u);  // the most-voted cell always keeps some
    }
}

TEST(Ivf, EuclideanSpaceSubsetAndExactFallback) {
    const auto training = euclidean_points(400, 5);
    const auto tree = build_tree<EuclideanSpace>(training);
    const auto ivf = IvfQuantizer<EuclideanSpace>::build(tree);
    ASSERT_GT(ivf.num_cells(), 1u);
    const auto query = euclidean_points(40, 77);
    const QueryHistogram exact = bovw_histogram(tree, query);
    EXPECT_EQ(ivf_histogram(tree, ivf, query, ivf.num_cells()), exact);
    const QueryHistogram probed = ivf_histogram(tree, ivf, query, 1);
    for (const auto& [term, freq] : probed) {
        const auto it = exact.find(term);
        ASSERT_NE(it, exact.end());
        EXPECT_LE(freq, it->second);
    }
}

TEST(Ivf, DeterministicAtEveryThreadCount) {
    const WidthGuard guard;
    const auto training = hamming_points(400, 7);
    exec::set_max_threads(1);
    const auto tree = build_tree<HammingSpace>(training);
    const auto ivf = IvfQuantizer<HammingSpace>::build(tree);
    const auto query = hamming_points(80, 13);

    for (std::size_t probes : {std::size_t{1}, std::size_t{2},
                               ivf.num_cells()}) {
        IvfStats reference_stats;
        const QueryHistogram reference =
            ivf_histogram(tree, ivf, query, probes, &reference_stats);
        for (const std::size_t threads : kThreadCounts) {
            exec::set_max_threads(threads);
            IvfStats stats;
            EXPECT_EQ(ivf_histogram(tree, ivf, query, probes, &stats),
                      reference)
                << "probes=" << probes << " threads=" << threads;
            EXPECT_EQ(stats.descriptors_kept,
                      reference_stats.descriptors_kept);
            EXPECT_EQ(stats.cells_probed, reference_stats.cells_probed);
        }
        exec::set_max_threads(1);
    }
}

TEST(Ivf, EmptyQueryYieldsEmptyHistogram) {
    const auto training = hamming_points(300, 3);
    const auto tree = build_tree<HammingSpace>(training);
    const auto ivf = IvfQuantizer<HammingSpace>::build(tree);
    EXPECT_TRUE(ivf_histogram(tree, ivf, {}, 2).empty());
    EXPECT_TRUE(ivf_histogram(tree, ivf, {}, 0).empty());
}

}  // namespace
}  // namespace mie::index
