// The exec runtime's load-bearing contract, exercised through the real
// training pipeline: k-means and vocabulary-tree training from a fixed
// seed must produce bitwise-identical centroids, assignments, node layout
// and leaf numbering at every thread count (1, 2, 8). This is what keeps
// the paper-reproduction numbers (Tables 2-3) stable across machines.
#include <gtest/gtest.h>

#include <vector>

#include "dpe/dense_dpe.hpp"
#include "exec/exec.hpp"
#include "index/bovw.hpp"
#include "index/kmeans.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "util/rng.hpp"

namespace mie::index {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the default width even when an assertion throws.
struct WidthGuard {
    ~WidthGuard() { exec::set_max_threads(0); }
};

std::vector<features::FeatureVec> euclidean_points(std::size_t count,
                                                   std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<features::FeatureVec> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        features::FeatureVec v(16);
        for (auto& x : v) {
            x = static_cast<float>(rng.next_double() * 10.0);
        }
        points.push_back(std::move(v));
    }
    return points;
}

/// DPE-encoded descriptors — the exact point type the MIE cloud trains on.
std::vector<dpe::BitCode> hamming_points(std::size_t count,
                                         std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<dpe::BitCode> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        dpe::BitCode code(128);
        for (std::size_t b = 0; b < 128; ++b) {
            code.set(b, rng.next_double() < 0.5);
        }
        points.push_back(std::move(code));
    }
    return points;
}

TEST(TrainDeterminism, KMeansEuclideanIdenticalAtEveryThreadCount) {
    const WidthGuard guard;
    const auto points = euclidean_points(600, 11);
    exec::set_max_threads(1);
    const auto reference = kmeans<EuclideanSpace>(points, 12, 10, 42);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        const auto run = kmeans<EuclideanSpace>(points, 12, 10, 42);
        EXPECT_EQ(run.centroids, reference.centroids) << threads;
        EXPECT_EQ(run.assignment, reference.assignment) << threads;
        EXPECT_EQ(run.inertia, reference.inertia) << threads;
        EXPECT_EQ(run.iterations, reference.iterations) << threads;
    }
}

TEST(TrainDeterminism, KMeansHammingIdenticalAtEveryThreadCount) {
    const WidthGuard guard;
    const auto points = hamming_points(600, 23);
    exec::set_max_threads(1);
    const auto reference = kmeans<HammingSpace>(points, 10, 8, 2017);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        const auto run = kmeans<HammingSpace>(points, 10, 8, 2017);
        EXPECT_EQ(run.centroids, reference.centroids) << threads;
        EXPECT_EQ(run.assignment, reference.assignment) << threads;
        EXPECT_EQ(run.inertia, reference.inertia) << threads;
    }
}

TEST(TrainDeterminism, VocabTreeIdenticalAtEveryThreadCount) {
    const WidthGuard guard;
    // Enough points that sibling subtrees cross the task-spawn threshold,
    // so the parallel build path is actually exercised.
    const auto points = hamming_points(4000, 7);
    const VocabTree<HammingSpace>::Params params{
        .branch = 5, .depth = 3, .kmeans_iterations = 6};
    exec::set_max_threads(1);
    const auto reference =
        VocabTree<HammingSpace>::build(points, params, 2017);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        const auto tree =
            VocabTree<HammingSpace>::build(points, params, 2017);
        // Bitwise structural equality: centroids, layout, leaf numbering.
        EXPECT_TRUE(tree == reference) << threads << " threads";
        EXPECT_EQ(tree.num_leaves(), reference.num_leaves()) << threads;
    }
}

TEST(TrainDeterminism, EuclideanVocabTreeIdenticalAtEveryThreadCount) {
    const WidthGuard guard;
    const auto points = euclidean_points(2500, 31);
    const VocabTree<EuclideanSpace>::Params params{
        .branch = 4, .depth = 3, .kmeans_iterations = 5};
    exec::set_max_threads(1);
    const auto reference =
        VocabTree<EuclideanSpace>::build(points, params, 99);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        const auto tree =
            VocabTree<EuclideanSpace>::build(points, params, 99);
        EXPECT_TRUE(tree == reference) << threads << " threads";
    }
}

TEST(TrainDeterminism, QuantizationIdenticalAtEveryThreadCount) {
    const WidthGuard guard;
    const auto points = hamming_points(1500, 13);
    exec::set_max_threads(1);
    const auto tree = VocabTree<HammingSpace>::build(
        points, {.branch = 6, .depth = 2, .kmeans_iterations = 5}, 5);
    const auto reference = quantize_all(tree, points);
    const auto reference_histogram = bovw_histogram(tree, points);
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        EXPECT_EQ(quantize_all(tree, points), reference) << threads;
        EXPECT_EQ(bovw_histogram(tree, points), reference_histogram)
            << threads;
    }
}

TEST(TrainDeterminism, DpeBatchEncodeMatchesSingleEncodes) {
    const WidthGuard guard;
    const auto key = dpe::DenseDpe::keygen(to_bytes("determinism"), 16, 64,
                                           0.7978845608);
    const dpe::DenseDpe dense(key);
    const auto vectors = euclidean_points(300, 17);
    std::vector<dpe::BitCode> reference;
    reference.reserve(vectors.size());
    for (const auto& v : vectors) reference.push_back(dense.encode(v));
    for (const std::size_t threads : kThreadCounts) {
        exec::set_max_threads(threads);
        EXPECT_EQ(dense.encode_batch(vectors), reference) << threads;
    }
}

}  // namespace
}  // namespace mie::index
