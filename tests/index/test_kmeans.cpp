// k-means / vocabulary tree / BOVW tests in both metric spaces.
#include <gtest/gtest.h>

#include "dpe/dense_dpe.hpp"
#include "index/bovw.hpp"
#include "index/kmeans.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "util/rng.hpp"

namespace mie::index {
namespace {

using features::FeatureVec;

/// Three well-separated 2-D clusters.
std::vector<FeatureVec> three_euclidean_clusters(std::size_t per_cluster,
                                                 std::uint64_t seed) {
    SplitMix64 rng(seed);
    const float centers[3][2] = {{0.0f, 0.0f}, {10.0f, 0.0f}, {0.0f, 10.0f}};
    std::vector<FeatureVec> points;
    for (int c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per_cluster; ++i) {
            points.push_back(FeatureVec{
                centers[c][0] + static_cast<float>(rng.next_double()) - 0.5f,
                centers[c][1] + static_cast<float>(rng.next_double()) -
                    0.5f});
        }
    }
    return points;
}

TEST(KMeansEuclidean, RecoversWellSeparatedClusters) {
    const auto points = three_euclidean_clusters(30, 5);
    const auto result = kmeans<EuclideanSpace>(points, 3, 20, 42);
    ASSERT_EQ(result.centroids.size(), 3u);
    // All members of a ground-truth cluster share an assignment.
    for (int c = 0; c < 3; ++c) {
        const std::uint32_t expected = result.assignment[c * 30];
        for (int i = 0; i < 30; ++i) {
            EXPECT_EQ(result.assignment[c * 30 + i], expected) << c;
        }
    }
    // Inertia is small relative to the cluster separation.
    EXPECT_LT(result.inertia / points.size(), 1.0);
}

TEST(KMeansEuclidean, DeterministicForFixedSeed) {
    const auto points = three_euclidean_clusters(10, 6);
    const auto a = kmeans<EuclideanSpace>(points, 3, 10, 7);
    const auto b = kmeans<EuclideanSpace>(points, 3, 10, 7);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansEuclidean, KGreaterThanPointsMakesSingletons) {
    const std::vector<FeatureVec> points = {{0.0f}, {1.0f}};
    const auto result = kmeans<EuclideanSpace>(points, 5, 10, 1);
    EXPECT_EQ(result.centroids.size(), 2u);
    EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansEuclidean, RejectsEmptyInput) {
    EXPECT_THROW(kmeans<EuclideanSpace>({}, 3, 10, 1), std::invalid_argument);
    const std::vector<FeatureVec> points = {{0.0f}};
    EXPECT_THROW(kmeans<EuclideanSpace>(points, 0, 10, 1),
                 std::invalid_argument);
}

TEST(KMeansEuclidean, InertiaDecreasesWithMoreClusters) {
    const auto points = three_euclidean_clusters(20, 8);
    const double inertia1 =
        kmeans<EuclideanSpace>(points, 1, 15, 3).inertia;
    const double inertia3 =
        kmeans<EuclideanSpace>(points, 3, 15, 3).inertia;
    EXPECT_LT(inertia3, inertia1 * 0.2);
}

std::vector<dpe::BitCode> hamming_clusters(std::size_t per_cluster,
                                           std::uint64_t seed) {
    // Three prototype codes far apart, members flip a few bits.
    SplitMix64 rng(seed);
    std::vector<dpe::BitCode> points;
    for (int c = 0; c < 3; ++c) {
        dpe::BitCode prototype(96);
        for (std::size_t b = 0; b < 32; ++b) {
            prototype.set(static_cast<std::size_t>(c) * 32 + b, true);
        }
        for (std::size_t i = 0; i < per_cluster; ++i) {
            dpe::BitCode member = prototype;
            for (int flips = 0; flips < 3; ++flips) {
                const std::size_t bit = rng.next_below(96);
                member.set(bit, !member.get(bit));
            }
            points.push_back(member);
        }
    }
    return points;
}

TEST(KMeansHamming, RecoversBitClusters) {
    const auto points = hamming_clusters(20, 9);
    const auto result = kmeans<HammingSpace>(points, 3, 15, 11);
    for (int c = 0; c < 3; ++c) {
        const std::uint32_t expected = result.assignment[c * 20];
        for (int i = 0; i < 20; ++i) {
            EXPECT_EQ(result.assignment[c * 20 + i], expected) << c;
        }
    }
}

TEST(HammingSpace, MajorityVoteCentroid) {
    dpe::BitCode a(4), b(4), c(4);
    a.set(0, true);
    b.set(0, true);
    c.set(1, true);
    const dpe::BitCode* members[] = {&a, &b, &c};
    const auto centroid = HammingSpace::centroid(
        std::span<const dpe::BitCode* const>(members, 3));
    EXPECT_TRUE(centroid.get(0));   // 2 of 3
    EXPECT_FALSE(centroid.get(1));  // 1 of 3
}

TEST(EuclideanSpace, MeanCentroid) {
    const FeatureVec a = {0.0f, 2.0f};
    const FeatureVec b = {2.0f, 4.0f};
    const FeatureVec* members[] = {&a, &b};
    const auto centroid = EuclideanSpace::centroid(
        std::span<const FeatureVec* const>(members, 2));
    EXPECT_FLOAT_EQ(centroid[0], 1.0f);
    EXPECT_FLOAT_EQ(centroid[1], 3.0f);
}

TEST(VocabTree, QuantizesConsistently) {
    const auto points = three_euclidean_clusters(30, 12);
    const auto tree = VocabTree<EuclideanSpace>::build(
        points, {.branch = 3, .depth = 2, .kmeans_iterations = 10}, 99);
    EXPECT_GT(tree.num_leaves(), 1u);
    // Same input -> same leaf; nearby inputs -> same leaf.
    for (const auto& p : points) {
        EXPECT_EQ(tree.quantize(p), tree.quantize(p));
        EXPECT_LT(tree.quantize(p), tree.num_leaves());
    }
    // With a single level the tree is plain k-means: members of a tight
    // cluster map to one leaf. (Deeper trees intentionally split clusters
    // into finer visual words, so this property only holds at depth 1.)
    const auto flat = VocabTree<EuclideanSpace>::build(
        points, {.branch = 3, .depth = 1, .kmeans_iterations = 10}, 99);
    int agree = 0;
    for (int i = 1; i < 30; ++i) {
        if (flat.quantize(points[0]) == flat.quantize(points[i])) ++agree;
    }
    EXPECT_GT(agree, 25);
}

TEST(VocabTree, LeafCountBoundedByBranchPowDepth) {
    const auto points = three_euclidean_clusters(40, 13);
    const auto tree = VocabTree<EuclideanSpace>::build(
        points, {.branch = 4, .depth = 2, .kmeans_iterations = 5}, 5);
    EXPECT_LE(tree.num_leaves(), 16u);
}

TEST(VocabTree, HammingSpaceBuilds) {
    const auto points = hamming_clusters(15, 14);
    const auto tree = VocabTree<HammingSpace>::build(
        points, {.branch = 3, .depth = 2, .kmeans_iterations = 8}, 6);
    EXPECT_GT(tree.num_leaves(), 1u);
    for (const auto& p : points) {
        EXPECT_LT(tree.quantize(p), tree.num_leaves());
    }
}

TEST(VocabTree, EmptyAndUnbuiltErrors) {
    EXPECT_THROW(VocabTree<EuclideanSpace>::build({}, {}, 1),
                 std::invalid_argument);
    VocabTree<EuclideanSpace> unbuilt;
    EXPECT_TRUE(unbuilt.empty());
    EXPECT_THROW(unbuilt.quantize(FeatureVec{1.0f}), std::logic_error);
}

TEST(Bovw, HistogramCountsQuantizedWords) {
    const auto points = three_euclidean_clusters(20, 15);
    const auto tree = VocabTree<EuclideanSpace>::build(
        points, {.branch = 3, .depth = 1, .kmeans_iterations = 10}, 3);
    const auto histogram = bovw_histogram(tree, points);
    std::uint32_t total = 0;
    for (const auto& [term, freq] : histogram) {
        EXPECT_TRUE(term.starts_with("vw:"));
        total += freq;
    }
    EXPECT_EQ(total, points.size());
}

}  // namespace
}  // namespace mie::index
