// Snapshot v1 format tests (index/snapshot.hpp): writer/cursor mirror
// discipline, vocab-tree and inverted-index round trips in both metric
// spaces, mmap open + lazy section CRC, every rejection path (truncated /
// corrupted / version-bumped files fail with a clean SnapshotError), and
// the committed golden fixture that pins on-disk compatibility.
//
// Regenerating the golden fixture (only after a DELIBERATE format bump —
// bump kSnapshotVersion first):
//   MIE_WRITE_GOLDEN_SNAPSHOT=1 ./test_snapshot --gtest_filter='*Golden*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dpe/bitcode.hpp"
#include "index/bovw.hpp"
#include "index/inverted_index.hpp"
#include "index/snapshot.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "util/bytes.hpp"
#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace mie::index {
namespace {

namespace fs = std::filesystem;

std::vector<dpe::BitCode> hamming_points(std::size_t count,
                                         std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<dpe::BitCode> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        dpe::BitCode code(128);
        for (std::size_t b = 0; b < 128; ++b) {
            code.set(b, rng.next_double() < 0.5);
        }
        points.push_back(std::move(code));
    }
    return points;
}

std::vector<features::FeatureVec> euclidean_points(std::size_t count,
                                                   std::uint64_t seed) {
    SplitMix64 rng(seed);
    std::vector<features::FeatureVec> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        features::FeatureVec v(8);
        for (auto& x : v) x = static_cast<float>(rng.next_double() * 4.0);
        points.push_back(std::move(v));
    }
    return points;
}

template <typename Space>
VocabTree<Space> build_tree(const std::vector<typename Space::Point>& pts) {
    typename VocabTree<Space>::Params params;
    params.branch = 4;
    params.depth = 2;
    params.kmeans_iterations = 5;
    return VocabTree<Space>::build(pts, params, 42);
}

InvertedIndex sample_index() {
    InvertedIndex index;
    index.add(visual_word_term(3), 7, 2);
    index.add(visual_word_term(3), 9, 1);
    index.add(visual_word_term(1), 9, 4);
    index.add(visual_word_term(12), 2, 1);
    return index;
}

/// The golden snapshot: one section per metric space, deterministic in
/// every bit (tree training is thread-count- and kernel-level-invariant).
Bytes build_golden_snapshot() {
    SnapshotFileBuilder builder;
    {
        SnapshotWriter writer;
        write_vocab_tree(writer, build_tree<HammingSpace>(
                                     hamming_points(120, 17)));
        write_inverted_index(writer, sample_index());
        builder.add_section("hamming", writer.take());
    }
    {
        SnapshotWriter writer;
        write_vocab_tree(writer, build_tree<EuclideanSpace>(
                                     euclidean_points(120, 23)));
        builder.add_section("euclidean", writer.take());
    }
    return builder.finish();
}

fs::path write_temp_snapshot(const Bytes& bytes, const std::string& name) {
    const fs::path path = fs::path(::testing::TempDir()) / name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    return path;
}

/// Re-stamps the header CRC after a deliberate header patch, so the
/// targeted validation error fires instead of the checksum error.
void fix_header_crc(Bytes& file) {
    const std::uint32_t crc =
        crc32c(BytesView(file.data(), kSnapshotHeaderSize - 4));
    Bytes le;
    append_le(le, crc);
    std::copy(le.begin(), le.end(),
              file.begin() + kSnapshotHeaderSize - 4);
}

TEST(SnapshotWriterCursor, ScalarsAndBytesRoundTripWithAlignment) {
    SnapshotWriter writer;
    writer.write_u32(7);
    writer.write_u64(0x1122334455667788ull);  // forces 8-alignment pad
    writer.write_bytes(to_bytes("abc"));      // 3 bytes + 1 pad
    writer.write_u32(9);
    writer.write_f32(1.5f);
    writer.write_string("hello");
    const Bytes bytes = writer.take();
    EXPECT_EQ(bytes.size() % 4, 0u);

    SnapshotCursor cursor{BytesView(bytes)};
    EXPECT_EQ(cursor.read_u32(), 7u);
    EXPECT_EQ(cursor.read_u64(), 0x1122334455667788ull);
    EXPECT_EQ(cursor.read_bytes(), to_bytes("abc"));
    EXPECT_EQ(cursor.read_u32(), 9u);
    EXPECT_EQ(cursor.read_f32(), 1.5f);
    EXPECT_EQ(cursor.read_string(), "hello");
    EXPECT_TRUE(cursor.at_end());
}

TEST(SnapshotWriterCursor, TruncatedReadThrows) {
    SnapshotWriter writer;
    writer.write_u32(4);
    const Bytes bytes = writer.take();
    SnapshotCursor cursor{BytesView(bytes)};
    EXPECT_EQ(cursor.read_u32(), 4u);
    EXPECT_THROW(cursor.read_u64(), SnapshotError);
    SnapshotCursor bad_len{BytesView(bytes)};
    EXPECT_THROW(bad_len.read_bytes(), SnapshotError);  // len 4 > remaining
}

TEST(SnapshotTree, HammingRoundTripBitwise) {
    const auto tree = build_tree<HammingSpace>(hamming_points(150, 5));
    SnapshotWriter writer;
    write_vocab_tree(writer, tree);
    const Bytes first = writer.take();

    SnapshotCursor cursor{BytesView(first)};
    const auto restored = read_vocab_tree<HammingSpace>(cursor);
    EXPECT_TRUE(cursor.at_end());
    EXPECT_EQ(restored, tree);

    SnapshotWriter rewriter;
    write_vocab_tree(rewriter, restored);
    EXPECT_EQ(rewriter.take(), first);  // bitwise-stable re-serialization
}

TEST(SnapshotTree, EuclideanRoundTripBitwise) {
    const auto tree = build_tree<EuclideanSpace>(euclidean_points(150, 9));
    SnapshotWriter writer;
    write_vocab_tree(writer, tree);
    const Bytes first = writer.take();
    SnapshotCursor cursor{BytesView(first)};
    const auto restored = read_vocab_tree<EuclideanSpace>(cursor);
    EXPECT_EQ(restored, tree);
    SnapshotWriter rewriter;
    write_vocab_tree(rewriter, restored);
    EXPECT_EQ(rewriter.take(), first);
}

TEST(SnapshotTree, WrongMetricSpaceRejected) {
    const auto tree = build_tree<HammingSpace>(hamming_points(100, 5));
    SnapshotWriter writer;
    write_vocab_tree(writer, tree);
    const Bytes bytes = writer.take();
    SnapshotCursor cursor{BytesView(bytes)};
    EXPECT_THROW(read_vocab_tree<EuclideanSpace>(cursor), SnapshotError);
}

TEST(SnapshotIndex, RoundTripBitwise) {
    const InvertedIndex index = sample_index();
    SnapshotWriter writer;
    write_inverted_index(writer, index);
    const Bytes first = writer.take();

    SnapshotCursor cursor{BytesView(first)};
    const InvertedIndex restored = read_inverted_index(cursor);
    EXPECT_EQ(restored.num_terms(), index.num_terms());
    EXPECT_EQ(restored.num_postings(), index.num_postings());
    SnapshotWriter rewriter;
    write_inverted_index(rewriter, restored);
    EXPECT_EQ(rewriter.take(), first);
}

TEST(SnapshotFile, BuildOpenAndReadSections) {
    const Bytes file = build_golden_snapshot();
    const auto snapshot = MappedSnapshot::from_bytes(Bytes(file));
    ASSERT_EQ(snapshot->num_sections(), 2u);
    EXPECT_EQ(snapshot->section_name(0), "hamming");
    EXPECT_EQ(snapshot->section_name(1), "euclidean");
    EXPECT_EQ(snapshot->file_size(), file.size());

    SnapshotCursor hamming{snapshot->section(0)};
    const auto tree = read_vocab_tree<HammingSpace>(hamming);
    EXPECT_EQ(tree, build_tree<HammingSpace>(hamming_points(120, 17)));
    const InvertedIndex index = read_inverted_index(hamming);
    EXPECT_TRUE(hamming.at_end());
    EXPECT_EQ(index.num_postings(), sample_index().num_postings());

    SnapshotCursor euclidean{snapshot->section(1)};
    EXPECT_EQ(read_vocab_tree<EuclideanSpace>(euclidean),
              build_tree<EuclideanSpace>(euclidean_points(120, 23)));
}

TEST(SnapshotFile, MmapOpenReadsIdenticalSections) {
    const Bytes file = build_golden_snapshot();
    const fs::path path = write_temp_snapshot(file, "snap-open.misnap");
    const auto mapped = MappedSnapshot::open(path);
    const auto in_memory = MappedSnapshot::from_bytes(Bytes(file));
    ASSERT_EQ(mapped->num_sections(), in_memory->num_sections());
    for (std::size_t i = 0; i < mapped->num_sections(); ++i) {
        const BytesView a = mapped->section(i);
        const BytesView b = in_memory->section(i);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
    fs::remove(path);
}

TEST(SnapshotFile, RejectsTruncationAndHeaderCorruption) {
    const Bytes file = build_golden_snapshot();

    Bytes short_header(file.begin(), file.begin() + 16);
    EXPECT_THROW(MappedSnapshot::from_bytes(std::move(short_header)),
                 SnapshotError);

    Bytes bad_magic = file;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(MappedSnapshot::from_bytes(std::move(bad_magic)),
                 SnapshotError);

    Bytes flipped_header = file;
    flipped_header[20] ^= 0x01;  // inside file_size; header CRC catches it
    EXPECT_THROW(MappedSnapshot::from_bytes(std::move(flipped_header)),
                 SnapshotError);

    Bytes truncated(file.begin(), file.end() - 8);  // file_size mismatch
    EXPECT_THROW(MappedSnapshot::from_bytes(std::move(truncated)),
                 SnapshotError);
}

TEST(SnapshotFile, RejectsFutureVersionWithCleanError) {
    Bytes file = build_golden_snapshot();
    Bytes version;
    append_le(version, kSnapshotVersion + 1);
    std::copy(version.begin(), version.end(), file.begin() + 8);
    fix_header_crc(file);
    try {
        MappedSnapshot::from_bytes(std::move(file));
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError& error) {
        EXPECT_NE(std::string(error.what()).find("unsupported version"),
                  std::string::npos);
    }
}

TEST(SnapshotFile, SectionCorruptionIsCaughtLazilyAndEagerly) {
    Bytes file = build_golden_snapshot();
    const auto clean = MappedSnapshot::from_bytes(Bytes(file));
    // Flip one byte inside section 0's body (bodies start at offset 40).
    file[kSnapshotHeaderSize + 4] ^= 0x01;
    const auto corrupt = MappedSnapshot::from_bytes(Bytes(file));
    // open/from_bytes stays O(#sections): the corruption is NOT noticed...
    ASSERT_EQ(corrupt->num_sections(), clean->num_sections());
    // ...until the section is touched, or verify_all_sections() runs.
    EXPECT_THROW(corrupt->section(0), SnapshotError);
    EXPECT_THROW(corrupt->verify_all_sections(), SnapshotError);
    // Untouched sections remain readable (independent CRCs).
    EXPECT_NO_THROW(corrupt->section(1));
}

TEST(SnapshotFile, GoldenFixtureStillReadable) {
    const fs::path path =
        fs::path(SNAPSHOT_FIXTURE_DIR) / "golden-v1.misnap";
    const Bytes expected = build_golden_snapshot();
    if (std::getenv("MIE_WRITE_GOLDEN_SNAPSHOT") != nullptr) {
        write_temp_snapshot(expected, "unused");  // exercise the writer
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(expected.data()),
                  static_cast<std::streamsize>(expected.size()));
        GTEST_SKIP() << "golden fixture regenerated at " << path;
    }
    ASSERT_TRUE(fs::exists(path))
        << "missing committed fixture " << path
        << " (regenerate with MIE_WRITE_GOLDEN_SNAPSHOT=1)";

    // Byte-compatibility both ways: today's writer still produces the
    // committed bytes, and today's reader parses them.
    const auto mapped = MappedSnapshot::open(path);
    EXPECT_EQ(mapped->file_size(), expected.size());
    mapped->verify_all_sections();
    std::ifstream in(path, std::ios::binary);
    const Bytes on_disk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(on_disk, expected);

    SnapshotCursor hamming{mapped->section(0)};
    EXPECT_EQ(read_vocab_tree<HammingSpace>(hamming),
              build_tree<HammingSpace>(hamming_points(120, 17)));
    EXPECT_EQ(read_inverted_index(hamming).num_postings(),
              sample_index().num_postings());
}

}  // namespace
}  // namespace mie::index
