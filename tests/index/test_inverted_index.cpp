// Inverted index, TF-IDF/BM25 scoring, and champion-list tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "index/champion.hpp"
#include "index/inverted_index.hpp"
#include "index/scoring.hpp"

namespace mie::index {
namespace {

TEST(InvertedIndex, AddAndLookup) {
    InvertedIndex idx;
    idx.add("cat", 1, 2);
    idx.add("cat", 2, 1);
    idx.add("dog", 1, 5);
    EXPECT_EQ(idx.num_terms(), 2u);
    EXPECT_EQ(idx.num_documents(), 2u);
    EXPECT_EQ(idx.num_postings(), 3u);
    EXPECT_EQ(idx.document_frequency("cat"), 2u);
    EXPECT_EQ(idx.document_frequency("missing"), 0u);
    ASSERT_NE(idx.postings("dog"), nullptr);
    EXPECT_EQ(idx.postings("dog")->front().frequency, 5u);
    EXPECT_EQ(idx.postings("missing"), nullptr);
}

TEST(InvertedIndex, AddAccumulatesFrequency) {
    InvertedIndex idx;
    idx.add("cat", 1, 2);
    idx.add("cat", 1, 3);
    ASSERT_EQ(idx.postings("cat")->size(), 1u);
    EXPECT_EQ(idx.postings("cat")->front().frequency, 5u);
    EXPECT_EQ(idx.num_postings(), 1u);
}

TEST(InvertedIndex, ZeroFrequencyIsIgnored) {
    InvertedIndex idx;
    idx.add("cat", 1, 0);
    EXPECT_EQ(idx.num_terms(), 0u);
}

TEST(InvertedIndex, RemoveDocumentPurgesAllPostings) {
    InvertedIndex idx;
    idx.add("cat", 1);
    idx.add("dog", 1);
    idx.add("cat", 2);
    idx.remove_document(1);
    EXPECT_FALSE(idx.contains_document(1));
    EXPECT_EQ(idx.document_frequency("cat"), 1u);
    EXPECT_EQ(idx.postings("dog"), nullptr);  // emptied term disappears
    EXPECT_EQ(idx.num_postings(), 1u);
    idx.remove_document(42);  // unknown doc is a no-op
    EXPECT_EQ(idx.num_postings(), 1u);
}

TEST(InvertedIndex, TermsOfDocument) {
    InvertedIndex idx;
    idx.add("a", 7);
    idx.add("b", 7);
    const auto terms = idx.terms_of(7);
    EXPECT_EQ(terms.size(), 2u);
    EXPECT_TRUE(idx.terms_of(8).empty());
}

TEST(InvertedIndex, ClearResets) {
    InvertedIndex idx;
    idx.add("a", 1);
    idx.clear();
    EXPECT_EQ(idx.num_terms(), 0u);
    EXPECT_EQ(idx.num_documents(), 0u);
    EXPECT_EQ(idx.num_postings(), 0u);
}

TEST(TfIdf, RanksByRelevance) {
    InvertedIndex idx;
    // doc 1 heavy in "rare"; "common" is in 9 of 10 docs (low idf).
    idx.add("rare", 1, 5);
    for (DocId d = 1; d <= 9; ++d) idx.add("common", d, 1);
    const auto ranked = rank_tfidf(idx, {{"rare", 1}, {"common", 1}}, 10, 5);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().doc, 1u);
    EXPECT_EQ(ranked.size(), 5u);
}

TEST(TfIdf, UbiquitousTermsScoreZero) {
    InvertedIndex idx;
    for (DocId d = 0; d < 4; ++d) idx.add("everywhere", d, 1);
    // idf = log(4/4) = 0 -> nothing to rank.
    EXPECT_TRUE(rank_tfidf(idx, {{"everywhere", 1}}, 4, 3).empty());
}

TEST(TfIdf, QueryFrequencyWeights) {
    InvertedIndex idx;
    idx.add("a", 1, 1);
    idx.add("b", 2, 1);
    // With 10 documents both terms have equal idf; doubling the query
    // frequency of "a" must rank doc 1 first.
    const auto ranked = rank_tfidf(idx, {{"a", 2}, {"b", 1}}, 10, 2);
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked.front().doc, 1u);
    EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(TfIdf, EmptyCases) {
    InvertedIndex idx;
    EXPECT_TRUE(rank_tfidf(idx, {{"a", 1}}, 0, 5).empty());
    idx.add("a", 1, 1);
    EXPECT_TRUE(rank_tfidf(idx, {}, 10, 5).empty());
    EXPECT_TRUE(rank_tfidf(idx, {{"missing", 1}}, 10, 5).empty());
}

TEST(Bm25, RanksAndSaturates) {
    InvertedIndex idx;
    idx.add("term", 1, 100);  // huge tf
    idx.add("term", 2, 2);
    idx.add("other", 2, 1);
    const auto ranked = rank_bm25(idx, {{"term", 1}}, 10, 2);
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked.front().doc, 1u);
    // BM25 saturation: doc1's 50x tf advantage yields < 5x score.
    EXPECT_LT(ranked[0].score, ranked[1].score * 5.0);
}

TEST(TopKOf, SortsAndBreaksTies) {
    std::map<DocId, double> scores = {{3, 1.0}, {1, 2.0}, {2, 1.0}};
    const auto top = top_k_of(std::move(scores), 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].doc, 1u);
    EXPECT_EQ(top[1].doc, 2u);  // tie broken by ascending id
}

class ChampionIndexTest : public ::testing::Test {
protected:
    ChampionIndexTest()
        // Keyed by test name + pid: ctest runs each case as its own
        // process in parallel, so a shared path would collide.
        : path_(std::filesystem::temp_directory_path() /
                ("mie_champion_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()) +
                 "_" + std::to_string(::getpid()) + ".log")) {}

    ~ChampionIndexTest() override {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    std::filesystem::path path_;
};

TEST_F(ChampionIndexTest, KeepsTopPostingsHot) {
    ChampionIndex idx(path_, {.champion_size = 2, .buffer_budget = 100});
    idx.add("t", 1, 10);
    idx.add("t", 2, 30);
    idx.add("t", 3, 20);
    const auto* hot = idx.champions("t");
    ASSERT_NE(hot, nullptr);
    ASSERT_EQ(hot->size(), 2u);
    EXPECT_EQ(hot->at(0).doc, 2u);  // freq 30
    EXPECT_EQ(hot->at(1).doc, 3u);  // freq 20
    EXPECT_EQ(idx.buffered_postings(), 1u);  // doc 1 demoted
}

TEST_F(ChampionIndexTest, SpillsToFullIndexOnDisk) {
    ChampionIndex idx(path_, {.champion_size = 1, .buffer_budget = 2});
    for (std::uint64_t d = 0; d < 6; ++d) {
        idx.add("t", d, static_cast<std::uint32_t>(d + 1));
    }
    EXPECT_GT(idx.spilled_postings(), 0u);
    const auto full = idx.full_postings("t");
    ASSERT_EQ(full.size(), 6u);
    EXPECT_EQ(full.front().doc, 5u);  // highest freq overall
    // Every posting is recoverable with its exact frequency.
    for (const auto& posting : full) {
        EXPECT_EQ(posting.frequency, posting.doc + 1);
    }
}

TEST_F(ChampionIndexTest, AccumulatesFrequencyInHotSet) {
    ChampionIndex idx(path_, {.champion_size = 4, .buffer_budget = 100});
    idx.add("t", 1, 1);
    idx.add("t", 1, 4);
    const auto* hot = idx.champions("t");
    ASSERT_EQ(hot->size(), 1u);
    EXPECT_EQ(hot->front().frequency, 5u);
}

TEST_F(ChampionIndexTest, RejectsZeroChampionSize) {
    EXPECT_THROW(
        ChampionIndex(path_, {.champion_size = 0, .buffer_budget = 1}),
        std::invalid_argument);
}

TEST_F(ChampionIndexTest, UnknownTermBehaviour) {
    ChampionIndex idx(path_, {});
    EXPECT_EQ(idx.champions("none"), nullptr);
    EXPECT_TRUE(idx.full_postings("none").empty());
}

}  // namespace
}  // namespace mie::index
