// Rank fusion tests: logISR (the paper's merger), RRF, CombSUM.
#include <gtest/gtest.h>

#include <array>

#include "fusion/rank_fusion.hpp"

namespace mie::fusion {
namespace {

using index::ScoredDoc;

RankedList list(std::initializer_list<std::uint64_t> docs) {
    RankedList out;
    double score = static_cast<double>(docs.size());
    for (auto doc : docs) out.push_back(ScoredDoc{doc, score--});
    return out;
}

TEST(LogIsr, DocInBothModalitiesBeatsSingleModality) {
    const std::array<RankedList, 2> lists = {list({1, 2, 3}), list({1, 4})};
    const auto fused = log_isr_fusion(lists, 10);
    ASSERT_FALSE(fused.empty());
    EXPECT_EQ(fused.front().doc, 1u);  // rank 1 in both lists
}

TEST(LogIsr, HigherRankWins) {
    const std::array<RankedList, 1> lists = {list({5, 6, 7})};
    const auto fused = log_isr_fusion(lists, 3);
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(fused[0].doc, 5u);
    EXPECT_EQ(fused[1].doc, 6u);
    EXPECT_EQ(fused[2].doc, 7u);
    EXPECT_GT(fused[0].score, fused[1].score);
}

TEST(LogIsr, InverseSquareDecay) {
    const std::array<RankedList, 1> lists = {list({1, 2})};
    const auto fused = log_isr_fusion(lists, 2);
    // score ratio = (1/1) / (1/4) = 4 (log factor identical: both appear
    // in one list).
    EXPECT_NEAR(fused[0].score / fused[1].score, 4.0, 1e-9);
}

TEST(LogIsr, TruncatesToTopK) {
    const std::array<RankedList, 1> lists = {list({1, 2, 3, 4, 5})};
    EXPECT_EQ(log_isr_fusion(lists, 2).size(), 2u);
}

TEST(LogIsr, EmptyInputs) {
    EXPECT_TRUE(log_isr_fusion(std::span<const RankedList>{}, 5).empty());
    const std::array<RankedList, 2> empties = {RankedList{}, RankedList{}};
    EXPECT_TRUE(log_isr_fusion(empties, 5).empty());
}

TEST(ReciprocalRank, AgreementWins) {
    const std::array<RankedList, 2> lists = {list({1, 2}), list({2, 1})};
    const auto fused = reciprocal_rank_fusion(lists, 2);
    ASSERT_EQ(fused.size(), 2u);
    // Symmetric ranks -> tie broken by doc id.
    EXPECT_EQ(fused[0].doc, 1u);
    EXPECT_NEAR(fused[0].score, fused[1].score, 1e-12);
}

TEST(ReciprocalRank, K0DampensRankGap) {
    const std::array<RankedList, 1> lists = {list({1, 2})};
    const auto steep = reciprocal_rank_fusion(lists, 2, 1.0);
    const auto flat = reciprocal_rank_fusion(lists, 2, 1000.0);
    EXPECT_GT(steep[0].score / steep[1].score,
              flat[0].score / flat[1].score);
}

TEST(CombSum, NormalizesScoreScales) {
    // Modality A has huge raw scores, modality B tiny; min-max
    // normalization must stop A from dominating by scale alone.
    RankedList a = {{1, 1000.0}, {2, 999.0}};
    RankedList b = {{2, 0.002}, {1, 0.001}};
    const std::array<RankedList, 2> lists = {a, b};
    const auto fused = comb_sum_fusion(lists, 2);
    ASSERT_EQ(fused.size(), 2u);
    // Both docs get 1.0 + 0.0 after normalization -> tie on doc id.
    EXPECT_NEAR(fused[0].score, fused[1].score, 1e-12);
}

TEST(CombSum, ConstantListContributesEqually) {
    RankedList constant = {{1, 5.0}, {2, 5.0}};
    const std::array<RankedList, 1> lists = {constant};
    const auto fused = comb_sum_fusion(lists, 2);
    ASSERT_EQ(fused.size(), 2u);
    EXPECT_NEAR(fused[0].score, 1.0, 1e-12);
    EXPECT_NEAR(fused[1].score, 1.0, 1e-12);
}

}  // namespace
}  // namespace mie::fusion
