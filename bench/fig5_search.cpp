// Figure 5: search latency on a loaded repository (paper: 1000 objects)
// for desktop and mobile clients across the three schemes, broken into
// Encrypt / Network / Index sub-operations (Network includes server
// processing — search is synchronous).
//
// Expected shape: MIE wins on both devices; MSSE pays extra Index
// (client-side clustering + label expansion); Hom-MSSE pays Network +
// Encrypt (all scores come back encrypted and the client decrypts them).
//
// --probes switches to the ANN sweep: the MIE coarse-quantized search
// path (index/ivf.hpp) at P in {exact, 1, 2, 4, 8} probed cells,
// reporting recall@k and mAP against the exact search, the candidate-
// scoring reduction (postings scored per query), and server latency.
// CI commits its JSON as BENCH_ann.json; the acceptance bar is a >= 3x
// scoring reduction at recall >= 0.95.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common.hpp"

namespace {

using namespace mie;
using namespace mie::bench;

int run_ann_sweep(int argc, char** argv) {
    // Near-duplicate regime: each query has group_size-1 = top_k true
    // neighbors that score well above the noise floor — the workload ANN
    // pruning is built for (cf. SIFT1M-style evals, where the true
    // nearest neighbors are well separated). Probing drops descriptors
    // from unprobed coarse cells; the group members keep enough shared
    // visual words to hold the top-k, so recall stays high while the
    // scored-postings volume shrinks with P.
    const std::size_t top_k = 10;
    const sim::HolidaysLikeGenerator holidays(sim::HolidaysLikeParams{
        .num_groups = scaled(static_cast<std::size_t>(
            parse_double_flag(argc, argv, "--groups", 64))),
        .group_size = static_cast<std::size_t>(
            parse_double_flag(argc, argv, "--gsize", 11)),
        .image_size = 64,
        .intra_group_jitter = parse_double_flag(argc, argv, "--jitter", 0.05),
        .seed = 401});
    auto dataset = holidays.generate();
    // Shared background: the top half of every image carries one of a few
    // global textures (chosen by group, so a query's true neighbors share
    // its variant) — the sky/wall mass real photo collections carry. Each
    // background word then appears in exactly N/K documents: long posting
    // lists the exact path walks for a near-uniform score contribution,
    // while the squared-IDF probe order drops those cells first. The
    // textures are noiseless so quantization is stable and df stays at
    // N/K rather than fragmenting into rare high-IDF words.
    const std::size_t background_variants = 4;
    // mielint: allow(R3): sim::Dataset::objects is a std::vector
    for (auto& object : dataset.objects) {
        features::Image& image = object.image;
        const double phase =
            1.7 * static_cast<double>(object.label % background_variants);
        const int band = image.height() / 2;
        for (int y = 0; y < band; ++y) {
            for (int x = 0; x < image.width(); ++x) {
                image.at(x, y) = static_cast<float>(
                    0.5 + 0.25 * std::sin(0.37 * x + 0.21 * y + phase) +
                    0.15 * std::sin(0.11 * x - 0.29 * y + 0.5 * phase));
            }
        }
    }
    // Image-only queries: the probe knob prunes the dense (image) path,
    // so the sweep isolates it — text terms would both anchor the fused
    // ranking and add posting volume probing cannot touch.
    for (const std::size_t query_index : dataset.query_indices) {
        dataset.objects[query_index].text.clear();
    }

    MieServer server;
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient client(transport, "ann",
                     RepositoryKey::generate(to_bytes("ann"), 64, 64,
                                             0.7978845608),
                     to_bytes("u"));
    client.train_params.tree_branch = static_cast<std::size_t>(
        parse_double_flag(argc, argv, "--branch", 32));
    client.train_params.tree_depth = 2;
    client.create_repository();
    // mielint: allow(R3): sim::Dataset::objects is a std::vector
    for (const auto& object : dataset.objects) client.update(object);
    client.train();

    std::cout << "=== Figure 5 (ANN sweep): IVF-probed search vs exact ===\n"
              << dataset.objects.size() << " objects, "
              << dataset.query_indices.size()
              << " queries, top-" << top_k << "\n";

    // Exact baseline: per-query result ids for recall, plus the exact
    // mAP and scoring volume.
    client.search_probes = 0;
    std::vector<std::unordered_set<std::uint64_t>> exact_ids;
    for (const std::size_t query_index : dataset.query_indices) {
        const auto results =
            client.search(dataset.objects[query_index], top_k);
        std::unordered_set<std::uint64_t> ids;
        for (const auto& r : results) ids.insert(r.object_id);
        exact_ids.push_back(std::move(ids));
    }
    const double exact_map = 100.0 * scheme_map(client, dataset, top_k);

    struct Row {
        std::size_t probes = 0;
        double recall = 0.0;
        double map_pct = 0.0;
        double postings = 0.0;
        double latency_ms = 0.0;
    };
    std::vector<Row> rows;
    for (const std::size_t probes :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}, std::size_t{16}}) {
        client.search_probes = probes;
        Row row;
        row.probes = probes;
        double overlap = 0.0, postings = 0.0;
        const double server_before = transport.server_seconds();
        for (std::size_t q = 0; q < dataset.query_indices.size(); ++q) {
            const auto results = client.search(
                dataset.objects[dataset.query_indices[q]], top_k);
            std::size_t hit = 0;
            for (const auto& r : results) {
                if (exact_ids[q].count(r.object_id) != 0) ++hit;
            }
            overlap += exact_ids[q].empty()
                           ? 1.0
                           : static_cast<double>(hit) /
                                 static_cast<double>(exact_ids[q].size());
            postings += static_cast<double>(
                client.last_search_work().postings_scored);
        }
        const double queries =
            static_cast<double>(dataset.query_indices.size());
        row.recall = overlap / queries;
        row.postings = postings / queries;
        row.latency_ms =
            (transport.server_seconds() - server_before) / queries * 1e3;
        row.map_pct = 100.0 * scheme_map(client, dataset, top_k);
        rows.push_back(row);
        std::printf("  P=%zu%-6s recall@%zu %.4f  mAP %.2f%% (Δ %+0.2f)  "
                    "postings/query %.0f  server %.3f ms\n",
                    probes, probes == 0 ? " (exact)" : "", top_k, row.recall,
                    row.map_pct, row.map_pct - exact_map, row.postings,
                    row.latency_ms);
    }

    // Headline: the deepest reduction that still clears recall 0.95.
    const double exact_postings = rows.front().postings;
    double best_reduction = 1.0;
    std::size_t best_probes = 0;
    for (const Row& row : rows) {
        if (row.probes == 0 || row.recall < 0.95 || row.postings <= 0.0) {
            continue;
        }
        const double reduction = exact_postings / row.postings;
        if (reduction > best_reduction) {
            best_reduction = reduction;
            best_probes = row.probes;
        }
    }
    // The bar is only enforced at full scale — below that the dataset
    // degenerates to a couple of groups and both recall and reduction
    // lose meaning.
    const bool ok = best_reduction >= 3.0;
    const bool enforced = bench_scale() >= 1.0;
    std::printf("\n  best reduction at recall >= 0.95: %.1fx (P=%zu) — "
                ">= 3x: %s%s\n",
                best_reduction, best_probes, ok ? "yes" : "NO",
                enforced ? "" : " (not enforced below scale 1.0)");

    std::ostringstream json;
    json << json_header("fig5_search_ann")
         << ",\"objects\":" << dataset.objects.size()
         << ",\"queries\":" << dataset.query_indices.size()
         << ",\"top_k\":" << top_k << ",\"exact_map_pct\":" << exact_map
         << ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        if (i != 0) json << ",";
        json << "{\"probes\":" << row.probes << ",\"recall\":" << row.recall
             << ",\"map_pct\":" << row.map_pct
             << ",\"map_delta_pct\":" << row.map_pct - exact_map
             << ",\"postings_scored\":" << row.postings
             << ",\"reduction_vs_exact\":"
             << (row.postings > 0.0 ? exact_postings / row.postings : 0.0)
             << ",\"server_latency_ms\":" << row.latency_ms << "}";
    }
    json << "],\"best\":{\"probes\":" << best_probes
         << ",\"reduction\":" << best_reduction
         << ",\"recall_bar\":0.95},\"reduction_ge_3x_at_recall_95\":"
         << (ok ? "true" : "false") << "}";
    emit_json(argc, argv, json.str());
    return (ok || !enforced) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--probes") {
            return run_ann_sweep(argc, argv);
        }
    }

    const std::size_t repo_size = scaled(120);
    const std::size_t num_queries = 10;
    const auto generator = default_generator();

    std::cout << "=== Figure 5: search performance (repository of "
              << repo_size << " objects, mean of " << num_queries
              << " multimodal queries) ===\n";

    std::ostringstream rows_json;
    for (const auto& device :
         {sim::DeviceProfile::desktop(), sim::DeviceProfile::mobile()}) {
        std::vector<std::string> labels;
        std::vector<CostBreakdown> rows;
        std::vector<double> totals;
        for (const Scheme scheme : kAllSchemes) {
            SchemeBundle bundle = make_bundle(scheme, device, 7);
            run_load_workload(bundle, generator, repo_size);

            const auto before = CostBreakdown::of(bundle.client->meter());
            for (std::size_t q = 0; q < num_queries; ++q) {
                const auto results =
                    bundle.client->search(generator.make(q * 7), 10);
                if (results.empty()) {
                    std::cout << "WARNING: empty result set for "
                              << scheme_name(scheme) << "\n";
                }
            }
            auto delta =
                CostBreakdown::of(bundle.client->meter()).minus(before);
            delta.encrypt /= num_queries;
            delta.network /= num_queries;
            delta.index /= num_queries;
            delta.train /= num_queries;
            rows.push_back(delta);
            labels.push_back(scheme_name(scheme));
            totals.push_back(delta.total());
            if (rows_json.tellp() > 0) rows_json << ",";
            rows_json << "{\"device\":\"" << json_escape(device.name)
                      << "\",\"scheme\":\"" << scheme_name(scheme)
                      << "\",\"per_query_seconds\":" << delta.to_json()
                      << "}";
        }
        print_cost_table("Device: " + device.name + " (per query)", labels,
                         rows);
        std::printf("  shape: MIE fastest? %s (MIE %.3f s, MSSE %.3f s, "
                    "Hom-MSSE %.3f s)\n",
                    (totals[2] < totals[0] && totals[2] < totals[1]) ? "yes"
                                                                     : "NO",
                    totals[2], totals[0], totals[1]);
    }

    std::ostringstream json;
    json << json_header("fig5_search") << ",\"repo_objects\":" << repo_size
         << ",\"queries\":" << num_queries << ",\"rows\":["
         << rows_json.str() << "]}";
    emit_json(argc, argv, json.str());
    return 0;
}
