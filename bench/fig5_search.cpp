// Figure 5: search latency on a loaded repository (paper: 1000 objects)
// for desktop and mobile clients across the three schemes, broken into
// Encrypt / Network / Index sub-operations (Network includes server
// processing — search is synchronous).
//
// Expected shape: MIE wins on both devices; MSSE pays extra Index
// (client-side clustering + label expansion); Hom-MSSE pays Network +
// Encrypt (all scores come back encrypted and the client decrypts them).
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const std::size_t repo_size = scaled(120);
    const std::size_t num_queries = 10;
    const auto generator = default_generator();

    std::cout << "=== Figure 5: search performance (repository of "
              << repo_size << " objects, mean of " << num_queries
              << " multimodal queries) ===\n";

    for (const auto& device :
         {sim::DeviceProfile::desktop(), sim::DeviceProfile::mobile()}) {
        std::vector<std::string> labels;
        std::vector<CostBreakdown> rows;
        std::vector<double> totals;
        for (const Scheme scheme : kAllSchemes) {
            SchemeBundle bundle = make_bundle(scheme, device, 7);
            run_load_workload(bundle, generator, repo_size);

            const auto before = CostBreakdown::of(bundle.client->meter());
            for (std::size_t q = 0; q < num_queries; ++q) {
                const auto results =
                    bundle.client->search(generator.make(q * 7), 10);
                if (results.empty()) {
                    std::cout << "WARNING: empty result set for "
                              << scheme_name(scheme) << "\n";
                }
            }
            auto delta =
                CostBreakdown::of(bundle.client->meter()).minus(before);
            delta.encrypt /= num_queries;
            delta.network /= num_queries;
            delta.index /= num_queries;
            delta.train /= num_queries;
            rows.push_back(delta);
            labels.push_back(scheme_name(scheme));
            totals.push_back(delta.total());
        }
        print_cost_table("Device: " + device.name + " (per query)", labels,
                         rows);
        std::printf("  shape: MIE fastest? %s (MIE %.3f s, MSSE %.3f s, "
                    "Hom-MSSE %.3f s)\n",
                    (totals[2] < totals[0] && totals[2] < totals[1]) ? "yes"
                                                                     : "NO",
                    totals[2], totals[0], totals[1]);
    }
    return 0;
}
