// Figure 2: performance of the update operation (repository initialization
// + bulk load + training where applicable) on the MOBILE device, broken
// into Encrypt / Network / Index / Train sub-operations, for MSSE,
// Hom-MSSE, and MIE at three dataset sizes.
//
// Expected shape (paper §VII-A): MIE spends nothing on Train and the least
// on Index, but the most on Network (it uploads encoded feature vectors);
// Hom-MSSE's Encrypt dominates everything (Paillier); totals order
// MIE < MSSE < Hom-MSSE.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;
    std::ostringstream rows;

    const auto device = sim::DeviceProfile::mobile();
    const auto generator = default_generator();
    const std::array<std::size_t, 3> sizes = {scaled(60), scaled(120),
                                              scaled(180)};

    std::cout << "=== Figure 2: update/load performance, mobile client ("
              << device.name << ") ===\n"
              << "(paper workload 1000/2000/3000 MIR-Flickr objects; here "
              << sizes[0] << "/" << sizes[1] << "/" << sizes[2]
              << " synthetic objects — see EXPERIMENTS.md for the scale)\n";

    for (const Scheme scheme : kAllSchemes) {
        std::vector<std::string> labels;
        std::vector<CostBreakdown> costs;
        for (const std::size_t size : sizes) {
            SchemeBundle bundle = make_bundle(scheme, device, 7);
            costs.push_back(run_load_workload(bundle, generator, size));
            labels.push_back(std::to_string(size) + " objects");
            if (rows.tellp() > 0) rows << ",";
            rows << "{\"scheme\":\"" << scheme_name(scheme)
                 << "\",\"objects\":" << size
                 << ",\"seconds\":" << costs.back().to_json() << "}";
        }
        print_cost_table("Scheme: " + scheme_name(scheme), labels, costs);
    }

    std::cout << "\nShape checks (smallest size, fresh runs):\n";
    // Re-derive the headline comparisons from fresh runs at the mid size.
    std::array<CostBreakdown, 3> costs;
    for (std::size_t i = 0; i < kAllSchemes.size(); ++i) {
        SchemeBundle bundle = make_bundle(kAllSchemes[i], device, 7);
        costs[i] = run_load_workload(bundle, generator, sizes[0]);
    }
    const auto& msse = costs[0];
    const auto& hom = costs[1];
    const auto& mie_cost = costs[2];
    std::printf("  MIE train == 0:                 %s\n",
                mie_cost.train == 0.0 ? "yes" : "NO");
    std::printf("  MIE index < MSSE index:         %s (%.2f vs %.2f s)\n",
                mie_cost.index < msse.index ? "yes" : "NO", mie_cost.index,
                msse.index);
    std::printf("  MIE network > MSSE network:     %s (%.2f vs %.2f s)\n",
                mie_cost.network > msse.network ? "yes" : "NO",
                mie_cost.network, msse.network);
    std::printf("  Hom-MSSE encrypt dominates:     %s (%.2f s encrypt)\n",
                hom.encrypt > hom.index + hom.train ? "yes" : "NO",
                hom.encrypt);
    std::printf("  Total: MIE < MSSE < Hom-MSSE:   %s (%.2f < %.2f < %.2f)\n",
                (mie_cost.total() < msse.total() &&
                 msse.total() < hom.total())
                    ? "yes"
                    : "NO",
                mie_cost.total(), msse.total(), hom.total());

    std::ostringstream json;
    json << json_header("fig2_update_mobile") << ",\"device\":\""
         << json_escape(device.name) << "\",\"rows\":[" << rows.str()
         << "],\"shape\":{\"mie_train_zero\":"
         << (mie_cost.train == 0.0 ? "true" : "false")
         << ",\"mie_index_lt_msse\":"
         << (mie_cost.index < msse.index ? "true" : "false")
         << ",\"total_order_mie_msse_hom\":"
         << ((mie_cost.total() < msse.total() && msse.total() < hom.total())
                 ? "true"
                 : "false")
         << "}}";
    emit_json(argc, argv, json.str());
    return 0;
}
