// Ablation: server-side indexing and fusion design choices.
//  (a) Vocabulary size (tree branch^depth) vs retrieval precision.
//  (b) Rank-fusion function comparison (logISR — the paper's choice — vs
//      reciprocal-rank and CombSUM) on the same per-modality rankings.
//  (c) Champion-list depth vs memory footprint (the §VI scalability
//      technique).
#include <array>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include <unordered_set>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "fusion/rank_fusion.hpp"
#include "index/champion.hpp"
#include "util/table.hpp"

namespace {

using namespace mie;
using namespace mie::bench;

sim::HolidaysLikeGenerator::Dataset make_dataset(std::uint64_t seed) {
    const sim::HolidaysLikeGenerator holidays(sim::HolidaysLikeParams{
        .num_groups = scaled(40),
        .group_size = 3,
        .image_size = 64,
        .intra_group_jitter = 0.45,
        .seed = seed});
    return holidays.generate();
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    std::ostringstream vocab_json, fusion_json, ranking_json, champion_json;
    std::cout << "=== Ablation C: vocabulary size vs precision (MIE) ===\n";
    {
        const auto dataset = make_dataset(301);
        TextTable table({"branch^depth", "visual words (max)", "mAP (%)"});
        const std::array<std::pair<std::size_t, std::size_t>, 4> shapes = {
            {{4, 2}, {10, 2}, {10, 3}, {16, 2}}};
        for (const auto& [branch, depth] : shapes) {
            MieServer server;
            net::MeteredTransport transport(server,
                                            net::LinkProfile::loopback());
            MieClient client(transport, "repo",
                             RepositoryKey::generate(to_bytes("vw"), 64, 64,
                                                     0.7978845608),
                             to_bytes("u"));
            client.train_params.tree_branch = branch;
            client.train_params.tree_depth = depth;
            client.create_repository();
            // mielint: allow(R3): sim::Dataset::objects is a std::vector
            for (const auto& object : dataset.objects) client.update(object);
            client.train();
            const double map = 100.0 * scheme_map(client, dataset, 16);
            std::size_t max_words = 1;
            for (std::size_t d = 0; d < depth; ++d) max_words *= branch;
            table.add_row({std::to_string(branch) + "^" +
                               std::to_string(depth),
                           std::to_string(max_words), fmt_double(map, 2)});
            if (vocab_json.tellp() > 0) vocab_json << ",";
            vocab_json << "{\"branch\":" << branch << ",\"depth\":" << depth
                       << ",\"max_words\":" << max_words
                       << ",\"map_pct\":" << map << "}";
        }
        table.print(std::cout);
        std::cout << "Shape: too few visual words blur objects together; "
                     "precision recovers with a finer vocabulary.\n";
    }

    std::cout << "\n=== Ablation D: rank-fusion function vs precision ===\n";
    {
        // One plaintext pipeline; identical per-modality ranked lists are
        // merged with each fusion function and scored by mAP.
        const auto dataset = make_dataset(302);
        PlaintextRetrieval plaintext;
        // mielint: allow(R3): sim::Dataset::objects is a std::vector
        for (const auto& object : dataset.objects) plaintext.add(object);
        plaintext.train();

        const std::size_t top_k = 16;
        using Fuser = std::vector<index::ScoredDoc> (*)(
            std::span<const fusion::RankedList>, std::size_t);
        const std::array<std::pair<const char*, Fuser>, 3> fusers = {{
            {"logISR (paper's choice)",
             +[](std::span<const fusion::RankedList> lists, std::size_t k) {
                 return fusion::log_isr_fusion(lists, k);
             }},
            {"Reciprocal rank (k0=60)",
             +[](std::span<const fusion::RankedList> lists, std::size_t k) {
                 return fusion::reciprocal_rank_fusion(lists, k);
             }},
            {"CombSUM (min-max)",
             +[](std::span<const fusion::RankedList> lists, std::size_t k) {
                 return fusion::comb_sum_fusion(lists, k);
             }},
        }};

        TextTable table({"Fusion", "mAP (%)"});
        for (const auto& [name, fuse] : fusers) {
            std::vector<std::vector<std::uint64_t>> ranked_lists;
            std::vector<std::unordered_set<std::uint64_t>> relevant_sets;
            for (const std::size_t query_index : dataset.query_indices) {
                const auto& query = dataset.objects[query_index];
                std::unordered_set<std::uint64_t> relevant;
                // mielint: allow(R3): sim::Dataset::objects is a std::vector
                for (const auto& object : dataset.objects) {
                    if (object.label == query.label &&
                        object.id != query.id) {
                        relevant.insert(object.id);
                    }
                }
                const auto lists =
                    plaintext.search_modalities(query, top_k * 4);
                std::vector<std::uint64_t> ranked;
                for (const auto& item : fuse(lists, top_k)) {
                    if (item.doc != query.id) ranked.push_back(item.doc);
                }
                ranked_lists.push_back(std::move(ranked));
                relevant_sets.push_back(std::move(relevant));
            }
            const double map = 100.0 * eval::mean_average_precision(
                                           ranked_lists, relevant_sets);
            table.add_row({name, fmt_double(map, 2)});
            if (fusion_json.tellp() > 0) fusion_json << ",";
            fusion_json << "{\"fusion\":\"" << json_escape(name)
                        << "\",\"map_pct\":" << map << "}";
        }
        table.print(std::cout);
        std::cout << "Shape: all three fusers land within a few mAP points; "
                     "logISR favors cross-modality consensus.\n";
    }

    std::cout << "\n=== Ablation G: ranking function (server-side) ===\n";
    {
        // Identical MIE deployments, TF-IDF vs BM25 scorer.
        const auto dataset = make_dataset(303);
        TextTable table({"Ranking", "mAP (%)"});
        for (const auto ranking :
             {TrainParams::Ranking::kTfIdf, TrainParams::Ranking::kBm25}) {
            MieServer server;
            net::MeteredTransport transport(server,
                                            net::LinkProfile::loopback());
            MieClient client(transport, "repo",
                             RepositoryKey::generate(to_bytes("rk"), 64, 64,
                                                     0.7978845608),
                             to_bytes("u"));
            client.train_params.tree_branch = 10;
            client.train_params.tree_depth = 2;
            client.train_params.ranking = ranking;
            client.create_repository();
            // mielint: allow(R3): sim::Dataset::objects is a std::vector
            for (const auto& object : dataset.objects) client.update(object);
            client.train();
            const double map = 100.0 * scheme_map(client, dataset, 16);
            table.add_row({ranking == TrainParams::Ranking::kTfIdf
                               ? "TF-IDF (paper default)"
                               : "BM25",
                           fmt_double(map, 2)});
            if (ranking_json.tellp() > 0) ranking_json << ",";
            ranking_json << "{\"ranking\":\""
                         << (ranking == TrainParams::Ranking::kTfIdf
                                 ? "tfidf"
                                 : "bm25")
                         << "\",\"map_pct\":" << map << "}";
        }
        table.print(std::cout);
        std::cout << "Shape: BM25 (the 'more complex function' the paper's §VI "
                     "mentions) is drop-in on the encrypted index — the "
                     "server never needed plaintext to swap scorers.\n";
    }

    std::cout << "\n=== Ablation E: champion-list depth vs memory ===\n";
    {
        // Index a Zipf-ish posting stream; measure hot postings kept in
        // memory vs spilled to disk at different champion depths.
        TextTable table({"champion size R", "hot postings", "spilled",
                         "hot fraction"});
        for (const std::size_t champion_size : {4u, 16u, 64u, 256u}) {
            index::ChampionIndex champ(
                std::filesystem::temp_directory_path() /
                    ("mie_ablation_champ_" + std::to_string(champion_size)),
                {.champion_size = champion_size, .buffer_budget = 1u << 30});
            SplitMix64 rng(13);
            std::size_t total = 0;
            for (int term = 0; term < 50; ++term) {
                const std::size_t postings = 10 + rng.next_below(500);
                for (std::size_t d = 0; d < postings; ++d) {
                    champ.add("t" + std::to_string(term), d,
                              1 + static_cast<std::uint32_t>(
                                      rng.next_below(20)));
                    ++total;
                }
            }
            champ.spill();
            const std::size_t hot = total - champ.spilled_postings();
            table.add_row({std::to_string(champion_size),
                           std::to_string(hot),
                           std::to_string(champ.spilled_postings()),
                           fmt_double(static_cast<double>(hot) / total, 3)});
            if (champion_json.tellp() > 0) champion_json << ",";
            champion_json << "{\"champion_size\":" << champion_size
                          << ",\"hot_postings\":" << hot
                          << ",\"spilled\":" << champ.spilled_postings()
                          << ",\"hot_fraction\":"
                          << static_cast<double>(hot) / total << "}";
        }
        table.print(std::cout);
        std::cout << "Shape: memory residency is bounded by R per term "
                     "regardless of collection growth — the §VI technique "
                     "that keeps the cloud index in RAM.\n";
    }

    std::ostringstream json;
    json << json_header("ablation_index") << ",\"vocabulary_sweep\":["
         << vocab_json.str() << "],\"fusion_sweep\":[" << fusion_json.str()
         << "],\"ranking_sweep\":[" << ranking_json.str()
         << "],\"champion_sweep\":[" << champion_json.str() << "]}";
    emit_json(argc, argv, json.str());
    return 0;
}
