// Micro-benchmark: server-side update throughput with and without the
// durable storage engine (src/store write-ahead log).
//
// Pre-records a batch of UPDATE requests as raw wire bytes, then replays
// the identical bytes against:
//   1. a plain in-memory MieServer           (unlogged baseline)
//   2. DurableServer, default options        (WAL, sync-on-rotate)
//   3. DurableServer, SyncPolicy::kEveryRecord (fsync per record)
//
// The headline number is the logged-vs-unlogged overhead at the default
// segment size/sync policy; the acceptance bar for the storage engine is
// <= 25%. kEveryRecord is reported for context — it pays one fdatasync
// per update (~100 µs+ on typical ext4), which is the price of power-loss
// durability rather than process-crash durability.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "mie/durable_server.hpp"
#include "store/file.hpp"
#include "store/wal.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mie;
using namespace mie::bench;

/// Forwards to a handler while keeping a copy of every request.
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        requests.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> requests;

private:
    net::RequestHandler& handler_;
};

/// Replays the seed prefix (create + initial load + train) untimed, then
/// times the remaining UPDATE requests. Best of `rounds` fresh passes;
/// each pass gets a fresh server from the factory.
template <typename MakeServer>
double measure(const std::vector<Bytes>& requests, std::size_t seed_count,
               MakeServer make_server, int rounds) {
    double best = 0.0;
    for (int round = 0; round < rounds; ++round) {
        auto server = make_server();
        for (std::size_t i = 0; i < seed_count; ++i) {
            server->handle(requests[i]);
        }
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = seed_count; i < requests.size(); ++i) {
            server->handle(requests[i]);
        }
        const auto elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double rate =
            static_cast<double>(requests.size() - seed_count) / elapsed;
        if (rate > best) best = rate;
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    const std::size_t num_seed = scaled(60);
    const std::size_t num_updates = scaled(240);
    const int rounds = 3;

    std::cout << "=== micro_store: logged vs unlogged update throughput ==="
              << "\n(" << num_seed << " seed objects + train, then "
              << num_updates << " timed pre-encoded UPDATE requests into "
              << "the trained index; best of " << rounds << " rounds)\n";

    // Record the wire bytes once: create + seed load + train + N updates.
    // The timed updates hit a trained repository — the steady-state
    // server-side update path (decode + tree quantization + posting
    // insertion), the same work the paper's update figures measure.
    std::vector<Bytes> requests;
    {
        MieServer scratch;
        RecordingTransport transport(scratch);
        auto key = RepositoryKey::generate(to_bytes("bench-store"), 64, 64,
                                           0.7978845608);
        MieClient client(transport, "bench", key, to_bytes("user"));
        auto generator = default_generator();
        client.create_repository();
        for (const auto& object : generator.make_batch(0, num_seed)) {
            client.update(object);
        }
        client.train();
        for (const auto& object :
             generator.make_batch(num_seed, num_updates)) {
            client.update(object);
        }
        requests = std::move(transport.requests);
    }
    const std::size_t seed_count = num_seed + 2;  // create + seeds + train

    const fs::path dir =
        fs::temp_directory_path() /
        ("mie_micro_store_" +
         std::to_string(
             std::chrono::steady_clock::now().time_since_epoch().count()));
    int cell = 0;
    const auto fresh_dir = [&] {
        const fs::path d = dir / std::to_string(cell++);
        fs::remove_all(d);
        return d;
    };

    const double unlogged = measure(
        requests, seed_count, [] { return std::make_unique<MieServer>(); },
        rounds);

    const double logged_default = measure(
        requests, seed_count,
        [&] {
            return std::make_unique<DurableServer>(
                store::PosixVfs::instance(), fresh_dir());
        },
        rounds);

    const double logged_every = measure(
        requests, seed_count,
        [&] {
            DurableServer::Options options;
            options.wal.sync_policy = store::SyncPolicy::kEveryRecord;
            return std::make_unique<DurableServer>(
                store::PosixVfs::instance(), fresh_dir(), options);
        },
        rounds);

    fs::remove_all(dir);

    const auto overhead = [&](double logged) {
        return (unlogged / logged - 1.0) * 100.0;
    };
    std::printf("\n  %-34s %10.0f updates/s\n", "in-memory MieServer:",
                unlogged);
    std::printf("  %-34s %10.0f updates/s  (overhead %+.1f%%)\n",
                "DurableServer (default, on-rotate):", logged_default,
                overhead(logged_default));
    std::printf("  %-34s %10.0f updates/s  (overhead %+.1f%%)\n",
                "DurableServer (fsync every record):", logged_every,
                overhead(logged_every));

    const bool ok = overhead(logged_default) <= 25.0;
    std::printf("\n  default-policy overhead <= 25%%:    %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
