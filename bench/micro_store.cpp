// Micro-benchmark: server-side update throughput with and without the
// durable storage engine (src/store write-ahead log).
//
// Pre-records a batch of UPDATE requests as raw wire bytes, then replays
// the identical bytes against:
//   1. a plain in-memory MieServer           (unlogged baseline)
//   2. DurableServer, default options        (WAL, sync-on-rotate)
//   3. DurableServer, SyncPolicy::kEveryRecord (fsync per record)
//
// The headline number is the logged-vs-unlogged overhead at the default
// segment size/sync policy; the acceptance bar for the storage engine is
// <= 25%. kEveryRecord is reported for context — it pays one fdatasync
// per update (~100 µs+ on typical ext4), which is the price of power-loss
// durability rather than process-crash durability.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "mie/durable_server.hpp"
#include "store/file.hpp"
#include "store/wal.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mie;
using namespace mie::bench;

/// Forwards to a handler while keeping a copy of every request.
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        requests.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> requests;

private:
    net::RequestHandler& handler_;
};

/// Replays the seed prefix (create + initial load + train) untimed, then
/// times the remaining UPDATE requests. Best of `rounds` fresh passes;
/// each pass gets a fresh server from the factory.
template <typename MakeServer>
double measure(const std::vector<Bytes>& requests, std::size_t seed_count,
               MakeServer make_server, int rounds) {
    double best = 0.0;
    for (int round = 0; round < rounds; ++round) {
        auto server = make_server();
        for (std::size_t i = 0; i < seed_count; ++i) {
            server->handle(requests[i]);
        }
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = seed_count; i < requests.size(); ++i) {
            server->handle(requests[i]);
        }
        const auto elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double rate =
            static_cast<double>(requests.size() - seed_count) / elapsed;
        if (rate > best) best = rate;
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    const std::size_t num_seed = scaled(60);
    const std::size_t num_updates = scaled(240);
    const int rounds = 3;

    std::cout << "=== micro_store: logged vs unlogged update throughput ==="
              << "\n(" << num_seed << " seed objects + train, then "
              << num_updates << " timed pre-encoded UPDATE requests into "
              << "the trained index; best of " << rounds << " rounds)\n";

    // Record the wire bytes once: create + seed load + train + N updates.
    // The timed updates hit a trained repository — the steady-state
    // server-side update path (decode + tree quantization + posting
    // insertion), the same work the paper's update figures measure.
    std::vector<Bytes> requests;
    {
        MieServer scratch;
        RecordingTransport transport(scratch);
        auto key = RepositoryKey::generate(to_bytes("bench-store"), 64, 64,
                                           0.7978845608);
        MieClient client(transport, "bench", key, to_bytes("user"));
        auto generator = default_generator();
        client.create_repository();
        for (const auto& object : generator.make_batch(0, num_seed)) {
            client.update(object);
        }
        client.train();
        for (const auto& object :
             generator.make_batch(num_seed, num_updates)) {
            client.update(object);
        }
        requests = std::move(transport.requests);
    }
    const std::size_t seed_count = num_seed + 2;  // create + seeds + train

    const fs::path dir =
        fs::temp_directory_path() /
        ("mie_micro_store_" +
         std::to_string(
             std::chrono::steady_clock::now().time_since_epoch().count()));
    int cell = 0;
    const auto fresh_dir = [&] {
        const fs::path d = dir / std::to_string(cell++);
        fs::remove_all(d);
        return d;
    };

    const double unlogged = measure(
        requests, seed_count, [] { return std::make_unique<MieServer>(); },
        rounds);

    const double logged_default = measure(
        requests, seed_count,
        [&] {
            return std::make_unique<DurableServer>(
                store::PosixVfs::instance(), fresh_dir());
        },
        rounds);

    const double logged_every = measure(
        requests, seed_count,
        [&] {
            DurableServer::Options options;
            options.wal.sync_policy = store::SyncPolicy::kEveryRecord;
            return std::make_unique<DurableServer>(
                store::PosixVfs::instance(), fresh_dir(), options);
        },
        rounds);

    // --- restart cost: reopen the same directory after shutdown ----------
    // Loads the full recorded workload into a DurableServer, optionally
    // checkpoints, destroys it, then times construction (= recovery) of a
    // fresh server over the same directory. Three variants:
    //   mmap snapshot (default)  — recovery maps the snapshot file and
    //                              validates header + TOC only, so open
    //                              cost is O(1) in the indexed state;
    //   legacy inline checkpoint — deserializes objects and RETRAINS;
    //   pure WAL replay          — re-applies every logged request.
    struct Restart {
        double open_s = std::numeric_limits<double>::infinity();
        std::size_t snapshot_bytes = 0;
        bool from_checkpoint = false;
        std::size_t replayed = 0;
    };
    const auto measure_restart = [&](bool mmap, bool checkpoint) {
        DurableServer::Options options;
        options.mmap_checkpoints = mmap;
        const fs::path d = fresh_dir();
        {
            DurableServer server(store::PosixVfs::instance(), d, options);
            for (const auto& request : requests) server.handle(request);
            if (checkpoint) server.checkpoint_now();
        }
        Restart r;
        for (int round = 0; round < rounds; ++round) {
            const auto start = std::chrono::steady_clock::now();
            DurableServer server(store::PosixVfs::instance(), d, options);
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            r.open_s = std::min(r.open_s, elapsed);
            const auto stats = server.durability();
            r.from_checkpoint = stats.recovered_from_checkpoint;
            r.replayed = stats.recovered_records;
        }
        const fs::path snapshots = d / "snapshots";
        if (fs::exists(snapshots)) {
            for (const auto& entry : fs::directory_iterator(snapshots)) {
                r.snapshot_bytes += fs::file_size(entry.path());
            }
        }
        return r;
    };
    const Restart restart_mmap = measure_restart(true, true);
    const Restart restart_legacy = measure_restart(false, true);
    const Restart restart_replay = measure_restart(true, false);

    fs::remove_all(dir);

    const auto overhead = [&](double logged) {
        return (unlogged / logged - 1.0) * 100.0;
    };
    std::printf("\n  %-34s %10.0f updates/s\n", "in-memory MieServer:",
                unlogged);
    std::printf("  %-34s %10.0f updates/s  (overhead %+.1f%%)\n",
                "DurableServer (default, on-rotate):", logged_default,
                overhead(logged_default));
    std::printf("  %-34s %10.0f updates/s  (overhead %+.1f%%)\n",
                "DurableServer (fsync every record):", logged_every,
                overhead(logged_every));

    std::printf("\n  restart after clean shutdown (best of %d):\n", rounds);
    std::printf("    %-34s %8.2f ms  (snapshot %zu bytes, %zu records "
                "replayed)\n",
                "mmap snapshot (default):", restart_mmap.open_s * 1e3,
                restart_mmap.snapshot_bytes, restart_mmap.replayed);
    std::printf("    %-34s %8.2f ms\n",
                "legacy inline checkpoint:", restart_legacy.open_s * 1e3);
    std::printf("    %-34s %8.2f ms  (%zu records replayed)\n",
                "pure WAL replay (no checkpoint):",
                restart_replay.open_s * 1e3, restart_replay.replayed);

    const bool ok = overhead(logged_default) <= 25.0;
    std::printf("\n  default-policy overhead <= 25%%:    %s\n",
                ok ? "yes" : "NO");

    const auto bool_str = [](bool b) { return b ? "true" : "false"; };
    std::ostringstream json;
    json << json_header("micro_store") << ",\"seed_objects\":" << num_seed
         << ",\"timed_updates\":" << num_updates
         << ",\"updates_per_s\":{\"unlogged\":" << unlogged
         << ",\"logged_default\":" << logged_default
         << ",\"logged_every_record\":" << logged_every
         << "},\"overhead_pct\":{\"logged_default\":"
         << overhead(logged_default) << ",\"logged_every_record\":"
         << overhead(logged_every) << "},\"restart\":{\"mmap_snapshot\":{"
         << "\"open_s\":" << restart_mmap.open_s << ",\"from_checkpoint\":"
         << bool_str(restart_mmap.from_checkpoint)
         << ",\"wal_records_replayed\":" << restart_mmap.replayed
         << ",\"snapshot_bytes\":" << restart_mmap.snapshot_bytes
         << "},\"legacy_checkpoint\":{\"open_s\":" << restart_legacy.open_s
         << ",\"from_checkpoint\":"
         << bool_str(restart_legacy.from_checkpoint)
         << "},\"wal_replay\":{\"open_s\":" << restart_replay.open_s
         << ",\"wal_records_replayed\":" << restart_replay.replayed
         << "},\"mmap_speedup_vs_wal_replay\":"
         << (restart_mmap.open_s > 0.0
                 ? restart_replay.open_s / restart_mmap.open_s
                 : 0.0)
         << ",\"mmap_speedup_vs_legacy\":"
         << (restart_mmap.open_s > 0.0
                 ? restart_legacy.open_s / restart_mmap.open_s
                 : 0.0)
         << "},\"overhead_le_25pct\":" << bool_str(ok) << "}";
    emit_json(argc, argv, json.str());
    return ok ? 0 : 1;
}
