// Microbenchmarks (google-benchmark) of the cryptographic and encoding
// primitives whose relative costs drive every figure in the paper:
// AES-CTR vs DPE vs Paillier is exactly the Encrypt-bar story of
// Figs. 2-3, and quantization/popcount costs drive server-side training.
#include <benchmark/benchmark.h>

#include <numbers>
#include <sstream>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "crypto/ctr.hpp"
#include "crypto/hmac.hpp"
#include "crypto/paillier.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "dpe/dense_dpe.hpp"
#include "dpe/sparse_dpe.hpp"
#include "features/surf.hpp"
#include "index/kmeans.hpp"
#include "index/space.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace {

using namespace mie;

void BM_Sha256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_HmacSha1(benchmark::State& state) {
    const Bytes key(20, 0x0b);
    const Bytes data(64, 0xcd);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Hmac<crypto::Sha1>::mac(key, data));
    }
}
BENCHMARK(BM_HmacSha1);

void BM_AesCtr(benchmark::State& state) {
    const crypto::AesCtr ctr(Bytes(16, 0x42));
    const Bytes nonce(16, 7);
    Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
    for (auto _ : state) {
        ctr.transform(nonce, std::span(data));
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096);

void BM_DenseDpeEncode(benchmark::State& state) {
    const auto key = dpe::DenseDpe::keygen(
        to_bytes("bm"), 64, static_cast<std::size_t>(state.range(0)),
        std::sqrt(2.0 / std::numbers::pi));
    const dpe::DenseDpe dense(key);
    SplitMix64 rng(1);
    features::FeatureVec v(64);
    for (auto& x : v) x = static_cast<float>(rng.next_double());
    for (auto _ : state) {
        benchmark::DoNotOptimize(dense.encode(v));
    }
}
BENCHMARK(BM_DenseDpeEncode)->Arg(64)->Arg(256);

void BM_SparseDpeEncode(benchmark::State& state) {
    const dpe::SparseDpe sparse(dpe::SparseDpe::keygen(to_bytes("bm")));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sparse.encode("multimodal"));
    }
}
BENCHMARK(BM_SparseDpeEncode);

void BM_BitCodeHamming(benchmark::State& state) {
    dpe::BitCode a(4096), b(4096);
    for (std::size_t i = 0; i < 4096; i += 3) a.set(i, true);
    for (std::size_t i = 0; i < 4096; i += 5) b.set(i, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.hamming_distance(b));
    }
}
BENCHMARK(BM_BitCodeHamming);

void BM_PaillierEncrypt(benchmark::State& state) {
    crypto::CtrDrbg drbg(to_bytes("bm-paillier"));
    const auto scheme = crypto::Paillier::generate(
        drbg, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme.encrypt(crypto::BigUint(42), drbg));
    }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(256)->Arg(384)->Arg(512);

void BM_PaillierDecrypt(benchmark::State& state) {
    crypto::CtrDrbg drbg(to_bytes("bm-paillier-dec"));
    const auto scheme = crypto::Paillier::generate(
        drbg, static_cast<std::size_t>(state.range(0)));
    const auto c = scheme.encrypt(crypto::BigUint(42), drbg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme.decrypt(c));
    }
}
BENCHMARK(BM_PaillierDecrypt)->Arg(256)->Arg(384);

void BM_PaillierAdd(benchmark::State& state) {
    crypto::CtrDrbg drbg(to_bytes("bm-paillier-add"));
    const auto scheme = crypto::Paillier::generate(drbg, 384);
    const auto a = scheme.encrypt(crypto::BigUint(1), drbg);
    const auto b = scheme.encrypt(crypto::BigUint(2), drbg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheme.add(a, b));
    }
}
BENCHMARK(BM_PaillierAdd);

void BM_SurfExtract(benchmark::State& state) {
    const sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.image_size = 64, .seed = 3});
    const auto object = gen.make(0);
    const features::SurfExtractor surf;
    for (auto _ : state) {
        benchmark::DoNotOptimize(surf.extract(object.image));
    }
}
BENCHMARK(BM_SurfExtract);

void BM_KMeansHammingIteration(benchmark::State& state) {
    SplitMix64 rng(5);
    std::vector<dpe::BitCode> points;
    for (int i = 0; i < 500; ++i) {
        dpe::BitCode code(64);
        for (std::size_t b = 0; b < 64; ++b) {
            code.set(b, rng.next_double() < 0.5);
        }
        points.push_back(code);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            index::kmeans<index::HammingSpace>(points, 10, 1, 7));
    }
}
BENCHMARK(BM_KMeansHammingIteration);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): runs the suite through a
// JSONReporter captured in memory, then wraps the raw report in the
// repo-wide `schema_version` envelope and honors `--json PATH` like every
// other bench. The `--json` flag is stripped before benchmark::Initialize
// so google-benchmark's flag parser never sees it.
int main(int argc, char** argv) {
    std::vector<char*> bench_args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            ++i;
            continue;
        }
        bench_args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
        return 1;
    }

    std::ostringstream raw;
    benchmark::JSONReporter reporter;
    reporter.SetOutputStream(&raw);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const std::string json = mie::bench::json_header("micro_primitives") +
                             ",\"google_benchmark\":" + raw.str() + "}";
    mie::bench::emit_json(argc, argv, json);
    return 0;
}
