// micro_exec: serial-vs-parallel speedup of the exec-runtime hot paths.
//
// Times the three workloads the runtime parallelizes — vocabulary-tree
// training over DPE encodings, dense U-SURF extraction, and batched DPE
// encoding — once with the pool capped at 1 thread and once at the
// configured width (--threads N, default all hardware threads), and emits
// the measurements as JSON on stdout so CI can track the speedup curve.
// Determinism is asserted on the way: the parallel tree must equal the
// serial one bitwise.
#include <chrono>
#include <limits>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "dpe/dense_dpe.hpp"
#include "exec/exec.hpp"
#include "features/surf.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace {

using namespace mie;

double seconds_of(const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-`rounds` wall time with the exec pool capped at `threads`.
double timed_at(std::size_t threads, int rounds, const auto& fn) {
    exec::set_max_threads(threads);
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < rounds; ++r) best = std::min(best, seconds_of(fn));
    return best;
}

void emit(std::ostringstream& json, const char* name, double serial,
          double parallel, std::size_t threads, bool first) {
    if (!first) json << ",";
    json << "{\"workload\":\"" << name << "\",\"threads\":" << threads
         << ",\"serial_s\":" << serial << ",\"parallel_s\":" << parallel
         << ",\"speedup\":" << (parallel > 0.0 ? serial / parallel : 0.0)
         << "}";
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t threads = mie::bench::configure_threads(argc, argv);
    constexpr int kRounds = 3;

    // Workload 1: vocabulary-tree training over 128-bit DPE encodings —
    // the cloud-side TRAIN operation (§VI).
    SplitMix64 rng(2017);
    std::vector<dpe::BitCode> codes;
    const std::size_t num_codes =
        static_cast<std::size_t>(6000 * mie::bench::bench_scale());
    codes.reserve(num_codes);
    for (std::size_t i = 0; i < num_codes; ++i) {
        dpe::BitCode code(128);
        for (std::size_t b = 0; b < 128; ++b) {
            code.set(b, rng.next_double() < 0.5);
        }
        codes.push_back(std::move(code));
    }
    const index::VocabTree<index::HammingSpace>::Params tree_params{
        .branch = 8, .depth = 3, .kmeans_iterations = 6};
    index::VocabTree<index::HammingSpace> serial_tree, parallel_tree;
    const double train_serial = timed_at(1, kRounds, [&] {
        serial_tree = index::VocabTree<index::HammingSpace>::build(
            codes, tree_params, 42);
    });
    const double train_parallel = timed_at(threads, kRounds, [&] {
        parallel_tree = index::VocabTree<index::HammingSpace>::build(
            codes, tree_params, 42);
    });
    if (!(serial_tree == parallel_tree)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: parallel tree != serial tree\n");
        return 1;
    }

    // Workload 2: dense U-SURF extraction (client-side Index bar).
    const sim::FlickrLikeGenerator gen(
        sim::FlickrLikeParams{.image_size = 128, .seed = 7});
    const auto object = gen.make(0);
    const features::SurfExtractor surf;
    features::DensePyramidParams pyramid;
    pyramid.base_stride = 2;
    const double surf_serial =
        timed_at(1, kRounds, [&] { surf.extract(object.image, pyramid); });
    const double surf_parallel = timed_at(
        threads, kRounds, [&] { surf.extract(object.image, pyramid); });

    // Workload 3: batched DPE encoding (client-side Encrypt bar).
    const auto key =
        dpe::DenseDpe::keygen(to_bytes("micro-exec"), 64, 128, 0.7978845608);
    const dpe::DenseDpe dense(key);
    std::vector<features::FeatureVec> vectors(
        static_cast<std::size_t>(4000 * mie::bench::bench_scale()));
    for (auto& v : vectors) {
        v.resize(64);
        for (auto& x : v) x = static_cast<float>(rng.next_double());
    }
    const double dpe_serial =
        timed_at(1, kRounds, [&] { dense.encode_batch(vectors); });
    const double dpe_parallel =
        timed_at(threads, kRounds, [&] { dense.encode_batch(vectors); });

    exec::set_max_threads(0);

    std::ostringstream json;
    json << mie::bench::json_header("micro_exec") << ",\"workloads\":[";
    emit(json, "vocab_tree_train", train_serial, train_parallel, threads,
         true);
    emit(json, "surf_extract", surf_serial, surf_parallel, threads, false);
    emit(json, "dpe_encode_batch", dpe_serial, dpe_parallel, threads,
         false);
    json << "]}";
    mie::bench::emit_json(argc, argv, json.str());
    return 0;
}
