// Table III: mean average precision (mAP) on the Holidays-like dataset for
// Plaintext retrieval, MSSE, Hom-MSSE, and MIE.
//
// Paper values (INRIA Holidays, 1491 photos, 500 queries, mean of 10 runs):
// 57.938 / 57.965 / 57.881 / 57.562 % — i.e. all four systems retrieve
// with the SAME precision: neither Dense-DPE nor Paillier meaningfully
// hurts ranking. That equality-across-schemes (within ~1 point) is the
// shape this bench reproduces on the synthetic Holidays stand-in.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const std::size_t num_groups = scaled(60);
    const std::size_t group_size = 3;
    const std::size_t top_k = 16;
    const int runs = 2;

    std::cout << "=== Table III: retrieval precision (mAP) ===\n"
              << "Holidays-like dataset: " << num_groups << " groups x "
              << group_size << " near-duplicates, " << num_groups
              << " queries, mean of " << runs << " runs\n"
              << "(paper: 1491 photos / 500 queries on INRIA Holidays)\n";

    std::array<double, 4> map_sum{};
    for (int run = 0; run < runs; ++run) {
        const sim::HolidaysLikeGenerator holidays(sim::HolidaysLikeParams{
            .num_groups = num_groups,
            .group_size = group_size,
            .image_size = 64,
            .intra_group_jitter = 0.45,
            .seed = 100 + static_cast<std::uint64_t>(run)});
        const auto dataset = holidays.generate();

        // Plaintext reference.
        {
            PlaintextRetrieval plaintext;
            // mielint: allow(R3): sim::Dataset::objects is a std::vector
            for (const auto& object : dataset.objects) plaintext.add(object);
            plaintext.train();
            map_sum[0] += plaintext_map(plaintext, dataset, top_k);
        }
        // Encrypted schemes (Hom-MSSE with a small Paillier key: precision
        // is independent of key size).
        const std::array<Scheme, 3> schemes = {Scheme::kMsse,
                                               Scheme::kHomMsse, Scheme::kMie};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            SchemeBundle bundle =
                make_bundle(schemes[s], sim::DeviceProfile::desktop(),
                            55 + static_cast<std::uint64_t>(run),
                            /*paillier_bits=*/256);
            bundle.client->create_repository();
            // mielint: allow(R3): sim::Dataset::objects is a std::vector
            for (const auto& object : dataset.objects) {
                bundle.client->update(object);
            }
            bundle.client->train();
            map_sum[s + 1] += scheme_map(*bundle.client, dataset, top_k);
        }
    }

    TextTable table({"System", "mAP (%)"});
    const std::array<std::string, 4> names = {"Plaintext", "MSSE", "Hom-MSSE",
                                              "MIE"};
    std::array<double, 4> map_pct{};
    for (std::size_t s = 0; s < 4; ++s) {
        map_pct[s] = 100.0 * map_sum[s] / runs;
        table.add_row({names[s], fmt_double(map_pct[s], 3)});
    }
    table.print(std::cout);

    const double reference = map_pct[0];
    double worst_gap = 0.0;
    for (std::size_t s = 1; s < 4; ++s) {
        worst_gap = std::max(worst_gap, std::abs(map_pct[s] - reference));
    }
    std::printf("\nShape: all schemes within %.2f mAP points of plaintext "
                "(paper: all within ~0.4 points): %s\n",
                worst_gap, worst_gap < 5.0 ? "yes" : "NO");

    std::ostringstream json;
    json << json_header("table3_precision")
         << ",\"groups\":" << num_groups << ",\"runs\":" << runs
         << ",\"map_pct\":{";
    for (std::size_t s = 0; s < 4; ++s) {
        if (s != 0) json << ",";
        json << "\"" << names[s] << "\":" << map_pct[s];
    }
    json << "},\"worst_gap_vs_plaintext\":" << worst_gap << "}";
    emit_json(argc, argv, json.str());
    return 0;
}
