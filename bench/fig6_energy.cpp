// Figure 6: mobile battery drain (mAh) for loading 1000/2000/3000 objects
// and for the training operation, per scheme, against the Nexus 7's
// measured 3448 mAh battery.
//
// Flow per the paper: the "Add N (no training)" bars cover repository
// loading (bootstrap + trained adds); the "Train" bar is the machine-
// learning pass over the full collection's features, invoked and metered
// separately. The paper's Train bars for MSSE and Hom-MSSE are nearly
// equal (2572 vs 2773 mAh) — pure k-means dominates — while MIE's is zero.
//
// Scale: our workload is smaller than the paper's both in object count
// (x16.7) and in per-object work (fewer keypoints per image, smaller
// vocabulary, toy-size Paillier). The "@paper scale" columns extrapolate
// by object count x a documented per-object work factor (see
// EXPERIMENTS.md); under that extrapolation the paper's qualitative
// battery findings reappear: Hom-MSSE exceeds the battery at the >= 2000-
// object workloads, MSSE and MIE never do.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const auto device = sim::DeviceProfile::mobile();
    const auto generator = default_generator();
    const std::array<std::size_t, 3> sizes = {scaled(60), scaled(120),
                                              scaled(180)};
    constexpr double kPerObjectWorkScale = 5.0;
    const double paper_scale =
        (1000.0 / static_cast<double>(sizes[0])) * kPerObjectWorkScale;

    std::cout << "=== Figure 6: mobile energy consumption ===\n"
              << "Battery capacity: " << device.battery_mah << " mAh; "
              << "paper-scale extrapolation: x"
              << 1000.0 / static_cast<double>(sizes[0]) << " objects x "
              << kPerObjectWorkScale << " per-object work = x" << paper_scale
              << "\n";

    TextTable table({"Scheme", "Workload", "Add mAh", "Train mAh",
                     "@paper Add", "@paper Train", "Exceeds 3448 mAh"});

    std::array<double, 3> add_energy{};
    std::array<double, 3> train_energy{};
    std::ostringstream rows_json;
    for (std::size_t s = 0; s < kAllSchemes.size(); ++s) {
        const Scheme scheme = kAllSchemes[s];
        for (const std::size_t size : sizes) {
            SchemeBundle bundle = make_bundle(scheme, device, 7);
            sim::CostMeter& meter = bundle.client->meter();

            // "Add N (no training)": the full load workload, minus the
            // training passes which are metered separately below.
            const std::size_t bootstrap =
                std::max<std::size_t>(8, (size * 3) / 10);
            bundle.client->create_repository();
            for (const auto& object : generator.make_batch(0, bootstrap)) {
                bundle.client->update(object);
            }
            double add_mah = sim::energy_of(meter, device).total_mah();
            meter.reset();
            bundle.client->train();  // bootstrap codebook (not reported)
            meter.reset();
            for (const auto& object :
                 generator.make_batch(bootstrap, size - bootstrap)) {
                bundle.client->update(object);
            }
            add_mah += sim::energy_of(meter, device).total_mah();

            // "Train": the machine-learning pass over the full collection.
            meter.reset();
            bundle.client->train();
            const double train_mah =
                sim::energy_of(meter, device).total_mah();

            const double paper_add = add_mah * paper_scale;
            const double paper_train = train_mah * paper_scale;
            // The paper's exceedance is per experiment run: the device
            // died during the Hom-MSSE ADD runs, so the add bar alone is
            // compared against capacity.
            table.add_row(
                {scheme_name(scheme), "add " + std::to_string(size),
                 fmt_double(add_mah), fmt_double(train_mah),
                 fmt_double(paper_add, 0), fmt_double(paper_train, 0),
                 paper_add > device.battery_mah ? "YES" : "no"});
            if (size == sizes.back()) {
                add_energy[s] = add_mah;
                train_energy[s] = train_mah;
            }
            if (rows_json.tellp() > 0) rows_json << ",";
            rows_json << "{\"scheme\":\"" << scheme_name(scheme)
                      << "\",\"objects\":" << size
                      << ",\"add_mah\":" << add_mah
                      << ",\"train_mah\":" << train_mah
                      << ",\"paper_add_mah\":" << paper_add
                      << ",\"paper_train_mah\":" << paper_train
                      << ",\"exceeds_battery\":"
                      << (paper_add > device.battery_mah ? "true" : "false")
                      << "}";
        }
    }
    table.print(std::cout);

    std::cout << "\nShape checks (largest workload):\n";
    const double msse_total = add_energy[0] + train_energy[0];
    const double hom_total = add_energy[1] + train_energy[1];
    const double mie_total = add_energy[2] + train_energy[2];
    std::printf("  MIE total energy lowest:     %s (MIE %.2f vs MSSE %.2f, "
                "Hom-MSSE %.2f mAh)\n",
                (mie_total < msse_total && mie_total < hom_total) ? "yes"
                                                                  : "NO",
                mie_total, msse_total, hom_total);
    std::printf("  MIE train energy == 0:       %s (%.4f mAh)\n",
                train_energy[2] < 1e-3 ? "yes" : "NO", train_energy[2]);
    std::printf("  Hom-MSSE most expensive:     %s\n",
                hom_total > msse_total ? "yes" : "NO");
    std::printf("  Baseline train bars similar: %s (MSSE %.2f vs Hom-MSSE "
                "%.2f mAh; paper 2572 vs 2773)\n",
                (train_energy[1] < 3.0 * train_energy[0]) ? "yes" : "NO",
                train_energy[0], train_energy[1]);

    std::ostringstream json;
    json << json_header("fig6_energy")
         << ",\"battery_mah\":" << device.battery_mah
         << ",\"paper_scale\":" << paper_scale << ",\"rows\":["
         << rows_json.str() << "],\"shape\":{\"mie_total_lowest\":"
         << ((mie_total < msse_total && mie_total < hom_total) ? "true"
                                                               : "false")
         << ",\"mie_train_zero\":"
         << (train_energy[2] < 1e-3 ? "true" : "false")
         << ",\"hom_most_expensive\":"
         << (hom_total > msse_total ? "true" : "false") << "}}";
    emit_json(argc, argv, json.str());
    return 0;
}
