// Ablation: Dense-DPE design choices.
//  (a) Threshold delta sweep: the security/utility dial — smaller delta
//      (lower threshold t) leaks less distance information but degrades
//      retrieval precision; larger delta preserves more distances.
//  (b) Output size M sweep: more encoding bits reduce quantization noise
//      (better precision) at the cost of larger encodings on the wire.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>
#include <sstream>

#include "common.hpp"
#include "eval/leakage.hpp"
#include "util/table.hpp"

namespace {

using namespace mie;
using namespace mie::bench;

/// mAP of an MIE deployment whose Dense-DPE uses (delta, bits).
double map_with_dpe(double delta, std::size_t bits, std::uint64_t seed) {
    const sim::HolidaysLikeGenerator holidays(sim::HolidaysLikeParams{
        .num_groups = scaled(40),
        .group_size = 3,
        .image_size = 64,
        .intra_group_jitter = 0.45,
        .seed = seed});
    const auto dataset = holidays.generate();

    MieServer server;
    net::MeteredTransport transport(server, net::LinkProfile::loopback());
    MieClient client(transport, "ablation",
                     RepositoryKey::generate(to_bytes("ablation"), 64, bits,
                                             delta),
                     to_bytes("user"));
    client.train_params.tree_branch = 10;
    client.train_params.tree_depth = 2;
    client.create_repository();
    // mielint: allow(R3): sim::Dataset::objects is a std::vector
    for (const auto& object : dataset.objects) client.update(object);
    client.train();
    return 100.0 * scheme_map(client, dataset, 16);
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    const double unit_delta = std::sqrt(2.0 / std::numbers::pi);

    std::cout << "=== Ablation A: Dense-DPE threshold (delta -> t) vs "
                 "retrieval precision ===\n"
              << "t = 0.5 * delta * sqrt(pi/2); the paper's prototype uses "
                 "t = 0.5\n";
    mie::TextTable threshold_table({"delta", "threshold t", "mAP (%)"});
    std::ostringstream threshold_json;
    for (const double factor : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
        const double delta = unit_delta * factor;
        const double t = 0.5 * delta * std::sqrt(std::numbers::pi / 2.0);
        const double map = map_with_dpe(delta, 64, 77);
        threshold_table.add_row({mie::fmt_double(delta, 3),
                                 mie::fmt_double(t, 3),
                                 mie::fmt_double(map, 2)});
        if (threshold_json.tellp() > 0) threshold_json << ",";
        threshold_json << "{\"delta\":" << delta << ",\"t\":" << t
                       << ",\"map_pct\":" << map << "}";
    }
    threshold_table.print(std::cout);
    std::cout << "Shape: precision collapses when t is far below the "
                 "typical descriptor distance (over-aggressive hiding) and "
                 "plateaus once t covers the nearest-neighbor range.\n";

    std::ostringstream attack_json;
    std::cout << "\n=== Ablation F: the security side of the threshold "
                 "dial ===\n"
              << "Honest-but-curious server clusters the stored encodings "
                 "(Hamming k-means)\nand tries to recover the objects' "
                 "semantic classes (chance = 12.5%).\n";
    {
        // 8 classes x 12 objects; per-object encodings under each delta.
        constexpr std::size_t kClasses = 8;
        constexpr std::size_t kPerClass = 12;
        const sim::FlickrLikeGenerator gen(sim::FlickrLikeParams{
            .num_classes = kClasses, .image_size = 64, .seed = 99});
        mie::TextTable table(
            {"delta", "threshold t", "attack accuracy (%)", "mAP (%)"});
        for (const double factor : {0.125, 0.5, 1.0, 4.0}) {
            const double delta = unit_delta * factor;
            const auto key = mie::dpe::DenseDpe::keygen(
                mie::to_bytes("leak"), 64, 256, delta);
            const mie::dpe::DenseDpe dpe(key);
            std::vector<std::vector<mie::dpe::BitCode>> encodings;
            std::vector<std::uint32_t> labels;
            for (std::size_t i = 0; i < kClasses * kPerClass; ++i) {
                const auto object = gen.make(i);
                const auto features = mie::extract_features(object);
                std::vector<mie::dpe::BitCode> codes;
                for (const auto& d : features.descriptors) {
                    codes.push_back(dpe.encode(d));
                }
                encodings.push_back(std::move(codes));
                labels.push_back(object.label);
            }
            const double attack = 100.0 * mie::eval::dpe_clustering_attack(
                                              encodings, labels, 7);
            const double t =
                0.5 * delta * std::sqrt(std::numbers::pi / 2.0);
            const double map = map_with_dpe(delta, 64, 77);
            table.add_row({mie::fmt_double(delta, 3), mie::fmt_double(t, 3),
                           mie::fmt_double(attack, 1),
                           mie::fmt_double(map, 1)});
            if (attack_json.tellp() > 0) attack_json << ",";
            attack_json << "{\"delta\":" << delta << ",\"t\":" << t
                        << ",\"attack_accuracy_pct\":" << attack
                        << ",\"map_pct\":" << map << "}";
        }
        table.print(std::cout);
        std::cout << "Shape: the threshold is a genuine dial — raising t "
                     "buys retrieval precision by revealing more distance "
                     "structure, which the same curve shows the adversary "
                     "exploiting.\n";
    }

    std::cout << "\n=== Ablation B: Dense-DPE output size M vs precision "
                 "and encoding bytes ===\n";
    mie::TextTable size_table({"M (bits)", "mAP (%)", "bytes/descriptor"});
    std::ostringstream size_json;
    for (const std::size_t bits : {16u, 32u, 64u, 128u, 256u}) {
        const double map = map_with_dpe(unit_delta, bits, 78);
        const std::size_t bytes = 8 + ((bits + 63) / 64) * 8;
        size_table.add_row({std::to_string(bits), mie::fmt_double(map, 2),
                            std::to_string(bytes)});
        if (size_json.tellp() > 0) size_json << ",";
        size_json << "{\"bits\":" << bits << ",\"map_pct\":" << map
                  << ",\"bytes_per_descriptor\":" << bytes << "}";
    }
    size_table.print(std::cout);
    std::cout << "Shape: precision saturates once M reaches the input "
                 "dimensionality (the paper uses M = N = 64); smaller M "
                 "trades precision for bandwidth.\n";

    std::ostringstream json;
    json << json_header("ablation_dpe") << ",\"threshold_sweep\":["
         << threshold_json.str() << "],\"attack_sweep\":["
         << attack_json.str() << "],\"output_size_sweep\":["
         << size_json.str() << "]}";
    emit_json(argc, argv, json.str());
    return 0;
}
