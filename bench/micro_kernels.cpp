// micro_kernels: scalar-vs-dispatched throughput of the src/kernels hot
// paths — AES-CTR keystream MB/s, squared-L2 distances/s, CRC-32C MB/s —
// emitted as JSON so CI can track the speedup the dispatch ladder buys on
// the host CPU. Bitwise equivalence between the scalar and dispatched
// outputs is asserted on the way (the determinism contract, DESIGN.md
// §10); a mismatch fails the bench.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace mie;

double seconds_of(const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

double best_of(int rounds, const auto& fn) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < rounds; ++r) best = std::min(best, seconds_of(fn));
    return best;
}

void emit(std::ostringstream& json, const char* kernel, const char* unit,
          double scalar_rate, double dispatched_rate, bool first) {
    if (!first) json << ",";
    json << "{\"kernel\":\"" << kernel << "\",\"unit\":\"" << unit
         << "\",\"scalar\":" << scalar_rate
         << ",\"dispatched\":" << dispatched_rate << ",\"speedup\":"
         << (scalar_rate > 0.0 ? dispatched_rate / scalar_rate : 0.0)
         << "}";
}

}  // namespace

int main(int argc, char** argv) {
    constexpr int kRounds = 5;
    const double scale = mie::bench::bench_scale();
    const auto& scalar = kernels::table_for(kernels::Level::kScalar);
    const auto& dispatched = kernels::table();
    SplitMix64 rng(4242);

    // --- AES-CTR keystream over a 1 MiB buffer ---------------------------
    const std::size_t ctr_bytes =
        static_cast<std::size_t>(1024.0 * 1024.0 * scale);
    std::vector<std::uint8_t> schedule(16 * 11);
    for (auto& b : schedule) b = static_cast<std::uint8_t>(rng());
    std::vector<std::uint8_t> buf_scalar(ctr_bytes, 0);
    std::vector<std::uint8_t> buf_dispatched(ctr_bytes, 0);
    std::uint8_t counter[16];

    std::memset(counter, 0, 16);
    const double ctr_scalar_s = best_of(kRounds, [&] {
        scalar.aes_ctr64_xor(schedule.data(), 10, counter,
                             buf_scalar.data(), ctr_bytes);
    });
    std::memset(counter, 0, 16);
    const double ctr_dispatched_s = best_of(kRounds, [&] {
        dispatched.aes_ctr64_xor(schedule.data(), 10, counter,
                                 buf_dispatched.data(), ctr_bytes);
    });
    // best_of ran both paths kRounds times from per-path counters, so the
    // cumulative XOR streams must agree bytewise.
    if (buf_scalar != buf_dispatched) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: AES-CTR scalar != "
                             "dispatched\n");
        return 1;
    }
    const double mb = static_cast<double>(ctr_bytes) / (1024.0 * 1024.0);

    // --- squared-L2 over 64-dim descriptors ------------------------------
    const std::size_t kDims = 64;
    const std::size_t num_pairs =
        static_cast<std::size_t>(200000.0 * scale);
    std::vector<float> va(kDims * num_pairs), vb(kDims * num_pairs);
    for (auto& x : va) x = static_cast<float>(rng.next_double() - 0.5);
    for (auto& x : vb) x = static_cast<float>(rng.next_double() - 0.5);
    double l2_sum_scalar = 0.0, l2_sum_dispatched = 0.0;
    const double l2_scalar_s = best_of(kRounds, [&] {
        double sum = 0.0;
        for (std::size_t i = 0; i < num_pairs; ++i) {
            sum += scalar.l2_squared(va.data() + i * kDims,
                                     vb.data() + i * kDims, kDims);
        }
        l2_sum_scalar = sum;
    });
    const double l2_dispatched_s = best_of(kRounds, [&] {
        double sum = 0.0;
        for (std::size_t i = 0; i < num_pairs; ++i) {
            sum += dispatched.l2_squared(va.data() + i * kDims,
                                         vb.data() + i * kDims, kDims);
        }
        l2_sum_dispatched = sum;
    });
    if (std::memcmp(&l2_sum_scalar, &l2_sum_dispatched, sizeof(double)) !=
        0) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: L2 scalar != "
                             "dispatched\n");
        return 1;
    }

    // --- CRC-32C over a 1 MiB buffer -------------------------------------
    const std::size_t crc_bytes = ctr_bytes;
    std::vector<std::uint8_t> crc_data(crc_bytes);
    for (auto& b : crc_data) b = static_cast<std::uint8_t>(rng());
    std::uint32_t crc_scalar = 0, crc_dispatched = 0;
    const double crc_scalar_s = best_of(kRounds, [&] {
        crc_scalar =
            scalar.crc32c_update(0xFFFFFFFFu, crc_data.data(), crc_bytes);
    });
    const double crc_dispatched_s = best_of(kRounds, [&] {
        crc_dispatched = dispatched.crc32c_update(0xFFFFFFFFu,
                                                  crc_data.data(),
                                                  crc_bytes);
    });
    if (crc_scalar != crc_dispatched) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: CRC-32C scalar != "
                             "dispatched\n");
        return 1;
    }

    const auto& cpu = kernels::cpu_features();
    std::ostringstream json;
    json << mie::bench::json_header("micro_kernels")
         << ",\"active_level\":\""
         << kernels::level_name(kernels::active_level())
         << "\",\"max_level\":\""
         << kernels::level_name(kernels::max_level())
         << "\",\"cpu\":{\"sse2\":" << (cpu.sse2 ? 1 : 0)
         << ",\"sse42\":" << (cpu.sse42 ? 1 : 0)
         << ",\"avx2\":" << (cpu.avx2 ? 1 : 0)
         << ",\"fma\":" << (cpu.fma ? 1 : 0)
         << ",\"aesni\":" << (cpu.aesni ? 1 : 0)
         << ",\"pclmul\":" << (cpu.pclmul ? 1 : 0) << "},\"kernels\":[";
    emit(json, "aes_ctr", "MB/s", mb / ctr_scalar_s, mb / ctr_dispatched_s,
         true);
    emit(json, "l2_squared_64d", "dist/s",
         static_cast<double>(num_pairs) / l2_scalar_s,
         static_cast<double>(num_pairs) / l2_dispatched_s, false);
    emit(json, "crc32c", "MB/s", mb / crc_scalar_s, mb / crc_dispatched_s,
         false);
    json << "]}";
    mie::bench::emit_json(argc, argv, json.str());
    return 0;
}
