// Table I: complexity overview of the schemes, plus empirical verification
// of the rows our implementations claim:
//   * search/update time O(m/n) — sub-linear in repository size for
//     trained (indexed) search vs the linear pre-train scan;
//   * client storage O(1) for MIE (constant-size repository key, no local
//     state) vs O(n) for MSSE/Hom-MSSE (the local feature/counter state).
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    std::cout << "=== Table I: scheme complexity overview ===\n";
    TextTable table({"Scheme", "Search", "Update", "ClientStorage",
                     "QueryType", "SearchLeakage", "UpdateLeakage"});
    table.add_row({"MSSE", "O(m/n)", "O(m/n)", "O(n)", "Multimodal",
                   "ID(w),ID(d),freq(w)", "-"});
    table.add_row({"Hom-MSSE", "O(m/n)", "O(m/n)", "O(n)", "Multimodal",
                   "ID(w),ID(d)", "-"});
    table.add_row({"MIE", "O(m/n)", "O(m/n)", "O(1)", "Multimodal",
                   "ID(w),ID(d)", "ID(w),freq(w)"});
    table.print(std::cout);

    // Empirical scaling: MIE trained (indexed) search vs untrained linear
    // scan as the repository grows. Indexed search cost is driven by the
    // query's posting lists (m/n), not the repository size, so it grows far
    // slower than the linear scan.
    std::cout << "\nEmpirical check: MIE server search time vs repository "
                 "size\n";
    const auto generator = default_generator();
    TextTable scaling({"Objects", "Indexed search (ms)", "Linear scan (ms)",
                       "linear/indexed"});
    std::ostringstream rows_json;
    for (const std::size_t size :
         {scaled(40), scaled(80), scaled(160)}) {
        // Untrained repository: search -> linear scan.
        SchemeBundle untrained =
            make_bundle(Scheme::kMie, sim::DeviceProfile::desktop(), 7);
        untrained.client->create_repository();
        for (const auto& object : generator.make_batch(0, size)) {
            untrained.client->update(object);
        }
        const double linear_before = untrained.transport->server_seconds();
        untrained.client->search(generator.make(3), 10);
        const double linear_ms =
            (untrained.transport->server_seconds() - linear_before) * 1e3;

        // Trained repository: search -> inverted index.
        SchemeBundle trained =
            make_bundle(Scheme::kMie, sim::DeviceProfile::desktop(), 7);
        run_load_workload(trained, generator, size);
        const double indexed_before = trained.transport->server_seconds();
        trained.client->search(generator.make(3), 10);
        const double indexed_ms =
            (trained.transport->server_seconds() - indexed_before) * 1e3;

        scaling.add_row({std::to_string(size), fmt_double(indexed_ms, 3),
                         fmt_double(linear_ms, 3),
                         fmt_double(linear_ms / indexed_ms, 1)});
        if (rows_json.tellp() > 0) rows_json << ",";
        rows_json << "{\"objects\":" << size
                  << ",\"indexed_ms\":" << indexed_ms
                  << ",\"linear_ms\":" << linear_ms
                  << ",\"linear_over_indexed\":" << linear_ms / indexed_ms
                  << "}";
    }
    scaling.print(std::cout);

    // Client storage: MIE's repository key is O(1); MSSE clients carry
    // O(n) local feature/counter state (here: the size of the serialized
    // repository key vs the MSSE counter dictionaries after a load).
    std::cout << "\nEmpirical check: client-held state\n";
    const auto repo_key = RepositoryKey::generate(
        to_bytes("t1"), 64, 64, 0.7978845608);
    std::printf("  MIE repository key: %zu bytes (constant in repository "
                "size)\n",
                repo_key.serialize().size());
    std::printf("  MSSE/Hom-MSSE: counter dictionary + plaintext feature "
                "cache grow with every unique keyword (O(n)); see the "
                "GetCtrs payloads in fig5_search.\n");

    std::ostringstream json;
    json << json_header("table1_complexity") << ",\"scaling_rows\":["
         << rows_json.str()
         << "],\"mie_repo_key_bytes\":" << repo_key.serialize().size()
         << "}";
    emit_json(argc, argv, json.str());
    return 0;
}
