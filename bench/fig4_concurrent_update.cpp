// Figure 4, server edition: N closed-loop clients concurrently updating
// one shared repository over real sockets, against two durable server
// stacks built from the SAME DurableServer (WAL, fsync-per-commit,
// replay dedup):
//
//   blocking  net::TcpServer, thread per connection, every mutating
//             request pays its own WAL append + fsync;
//   reactor   reactor::ReactorServer (epoll loop) funneling mutating
//             requests into reactor::GroupCommitter — pending requests
//             from all connections commit as one WAL batch with ONE
//             fsync, each acked only after its batch is durable.
//
// Request streams are recorded once per client (real MieClient update
// RPCs, idempotency envelopes included) and replayed verbatim against a
// fresh server per scenario, so both stacks serve byte-identical
// workloads. The closed loop reports mutating-opcode throughput and
// p50/p95/p99 latency at 1, 8 and 64 clients; group commit should win
// once concurrency offers batches to amortize the fsync (>= 8 clients).
//
// --fault-rate R (default 0) wraps every client link in deterministic
// fault injection + bounded retries; servers dedupe enveloped replays,
// so each scenario must still end with exactly clients*ops objects.
// --json PATH additionally writes the machine-readable summary to PATH.
//
// --shards N switches to the cluster experiment instead: shard counts
// 1,2,4,... up to N, each shard a cluster::Node primary on its own
// reactor + group committer, with every client writing its own
// repository through a cluster::ClusterClient (HKDF routing). The WAL
// fsync stream — the single-node bottleneck above — is split across
// shards, so throughput should scale until clients stop queueing.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "common.hpp"
#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/keys.hpp"
#include "mie/wire.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "reactor/group_commit.hpp"
#include "reactor/reactor.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mie;
using namespace mie::bench;

/// Captures every request a recording client sends while still serving
/// it from a live in-process server (streams must be valid RPCs: the
/// scratch server answers creates/updates during recording).
class RecordingTransport final : public net::Transport {
public:
    explicit RecordingTransport(net::RequestHandler& handler)
        : handler_(handler) {}

    Bytes call(BytesView request) override {
        recorded.emplace_back(request.begin(), request.end());
        return handler_.handle(request);
    }

    std::vector<Bytes> recorded;

private:
    net::RequestHandler& handler_;
};

Bytes create_repo_request() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kCreateRepository));
    writer.write_string("bench-repo");
    return writer.take();
}

/// Nearest-rank percentile of an ascending sample vector, in ms.
double percentile_ms(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto last = sorted.size() - 1;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(last) +
                                              0.5);
    return sorted[std::min(idx, last)] * 1e3;
}

struct ScenarioResult {
    std::string mode;
    std::size_t clients = 0;
    std::size_t ops = 0;
    double wall_seconds = 0.0;
    double throughput = 0.0;  ///< mutating ops per second
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    std::size_t records_logged = 0;
    std::size_t batches_committed = 0;
    std::size_t max_batch_records = 0;
    std::size_t replays_suppressed = 0;
    std::uint64_t retries = 0;
    std::uint64_t faults_injected = 0;
    std::size_t objects = 0;
    std::size_t expected_objects = 0;

    bool objects_ok() const { return objects == expected_objects; }
};

ScenarioResult run_scenario(const std::string& mode, std::size_t clients,
                            const std::vector<std::vector<Bytes>>& streams,
                            double fault_rate) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("mie-fig4-" + mode + "-" + std::to_string(clients) + "-" +
         std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir);

    ScenarioResult out;
    out.mode = mode;
    out.clients = clients;
    {
        DurableServer durable(
            store::PosixVfs::instance(), dir,
            {{.wal = {.sync_policy = store::SyncPolicy::kEveryRecord}}});
        durable.handle(create_repo_request());

        std::unique_ptr<net::TcpServer> blocking;
        std::unique_ptr<reactor::GroupCommitter> committer;
        std::unique_ptr<reactor::ReactorServer> epoll;
        std::uint16_t port = 0;
        if (mode == "blocking") {
            blocking = std::make_unique<net::TcpServer>(durable);
            blocking->start();
            port = blocking->port();
        } else {
            committer = std::make_unique<reactor::GroupCommitter>(durable);
            epoll = std::make_unique<reactor::ReactorServer>(
                durable, committer.get(),
                [](BytesView request) {
                    return is_mutating_request(request);
                });
            epoll->start();
            port = epoll->port();
        }

        // Closed loop: each client thread replays its recorded stream,
        // one outstanding request at a time, timing every call.
        std::vector<std::vector<double>> latencies(clients);
        std::vector<std::exception_ptr> failures(clients);
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> faults{0};
        Stopwatch wall;
        {
            std::vector<std::thread> threads;
            threads.reserve(clients);
            for (std::size_t c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    try {
                        net::TcpTransport tcp("127.0.0.1", port);
                        std::unique_ptr<net::FaultyTransport> faulty;
                        std::unique_ptr<net::RetryingTransport> retry;
                        net::Transport* link = &tcp;
                        if (fault_rate > 0.0) {
                            faulty = std::make_unique<net::FaultyTransport>(
                                tcp, net::FaultPlan{.rate = fault_rate,
                                                    .seed = 9000 + c});
                            retry = std::make_unique<net::RetryingTransport>(
                                *faulty,
                                net::RetryPolicy{.max_attempts = 6,
                                                 .jitter_seed = 100 + c});
                            // Backoff stays modeled: the loopback link is
                            // not congested, sleeping only slows the bench.
                            retry->set_sleeper([](double) {});
                            link = retry.get();
                        }
                        auto& samples = latencies[c];
                        samples.reserve(streams[c].size());
                        for (const Bytes& request : streams[c]) {
                            Stopwatch op;
                            link->call(request);
                            samples.push_back(op.elapsed_seconds());
                        }
                        if (retry) {
                            retries += retry->stats().retries;
                            faults += faulty->stats().faults_injected;
                        }
                    } catch (...) {
                        failures[c] = std::current_exception();
                    }
                });
            }
            for (auto& thread : threads) thread.join();
        }
        out.wall_seconds = wall.elapsed_seconds();
        for (const auto& failure : failures) {
            if (failure) std::rethrow_exception(failure);
        }

        if (epoll) {
            epoll->stop();
            committer->stop();
        }
        if (blocking) blocking->stop();

        std::vector<double> merged;
        for (const auto& samples : latencies) {
            merged.insert(merged.end(), samples.begin(), samples.end());
        }
        std::sort(merged.begin(), merged.end());
        out.ops = merged.size();
        out.throughput = out.wall_seconds > 0.0
                             ? static_cast<double>(out.ops) / out.wall_seconds
                             : 0.0;
        out.p50_ms = percentile_ms(merged, 0.50);
        out.p95_ms = percentile_ms(merged, 0.95);
        out.p99_ms = percentile_ms(merged, 0.99);

        const auto durability = durable.durability();
        out.records_logged = durability.records_logged;
        out.batches_committed = durability.batches_committed;
        out.max_batch_records = durability.max_batch_records;
        out.replays_suppressed = durability.replays_suppressed;
        out.retries = retries.load();
        out.faults_injected = faults.load();
        out.objects = durable.server().stats("bench-repo").num_objects;
        std::size_t expected = 0;
        for (std::size_t c = 0; c < clients; ++c) {
            expected += streams[c].size();
        }
        out.expected_objects = expected;
    }
    std::filesystem::remove_all(dir);
    return out;
}

std::string to_json(const std::vector<ScenarioResult>& results,
                    double fault_rate, std::size_t ops_per_client) {
    std::ostringstream json;
    json << "{\"schema_version\":1,"
         << "\"bench\":\"fig4_concurrent_update\",\"fault_rate\":"
         << fault_rate << ",\"threads\":" << bench_threads()
         << ",\"ops_per_client\":" << ops_per_client << ",\"scenarios\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (i != 0) json << ",";
        json << "{\"mode\":\"" << r.mode << "\",\"clients\":" << r.clients
             << ",\"ops\":" << r.ops << ",\"wall_seconds\":" << r.wall_seconds
             << ",\"throughput_ops_per_s\":" << r.throughput
             << ",\"p50_ms\":" << r.p50_ms << ",\"p95_ms\":" << r.p95_ms
             << ",\"p99_ms\":" << r.p99_ms
             << ",\"records_logged\":" << r.records_logged
             << ",\"batches_committed\":" << r.batches_committed
             << ",\"max_batch_records\":" << r.max_batch_records
             << ",\"replays_suppressed\":" << r.replays_suppressed
             << ",\"retries\":" << r.retries
             << ",\"faults_injected\":" << r.faults_injected
             << ",\"objects\":" << r.objects
             << ",\"objects_ok\":" << (r.objects_ok() ? "true" : "false")
             << "}";
    }
    json << "],\"reactor_speedup\":{";
    bool first = true;
    for (const auto& r : results) {
        if (r.mode != "reactor") continue;
        for (const auto& b : results) {
            if (b.mode == "blocking" && b.clients == r.clients &&
                b.throughput > 0.0) {
                if (!first) json << ",";
                first = false;
                json << "\"" << r.clients
                     << "\":" << r.throughput / b.throughput;
            }
        }
    }
    json << "}}";
    return json.str();
}

// ---------------------------------------------------------------------------
// --shards mode: the same closed-loop update workload against a sharded
// cluster, one repository per client routed by the HKDF router.
// ---------------------------------------------------------------------------

struct ClusterScenarioResult {
    std::size_t shards = 0;
    std::size_t clients = 0;
    std::size_t ops = 0;
    double wall_seconds = 0.0;
    double throughput = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    std::size_t records_logged = 0;
    bool objects_ok = false;
};

ClusterScenarioResult run_cluster_scenario(
    std::size_t shards, const std::vector<std::string>& repos,
    const std::vector<std::vector<Bytes>>& streams,
    std::size_t ops_per_client) {
    namespace fs = std::filesystem;
    const std::size_t clients = streams.size();
    const fs::path dir =
        fs::temp_directory_path() /
        ("mie-fig4-cluster-" + std::to_string(shards) + "-" +
         std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir);

    ClusterScenarioResult out;
    out.shards = shards;
    out.clients = clients;
    {
        // One primary node per shard, each on its own reactor + group
        // committer, fsync per commit — the same durability contract as
        // the single-node scenarios above.
        struct Shard {
            Shard(const fs::path& shard_dir)
                : node(store::PosixVfs::instance(), shard_dir,
                       cluster::NodeOptions{
                           .storage = {{.wal = {.sync_policy = store::
                                                    SyncPolicy::kEveryRecord}}}}),
                  committer(node),
                  server(node, &committer, [](BytesView request) {
                      return is_mutating_request(request);
                  }) {
                server.start();
            }
            cluster::Node node;
            reactor::GroupCommitter committer;
            reactor::ReactorServer server;
        };
        std::vector<std::unique_ptr<Shard>> cluster;
        for (std::size_t s = 0; s < shards; ++s) {
            cluster.push_back(std::make_unique<Shard>(
                dir / ("shard" + std::to_string(s))));
        }

        std::vector<std::vector<double>> latencies(clients);
        std::vector<std::exception_ptr> failures(clients);
        Stopwatch wall;
        {
            std::vector<std::thread> threads;
            threads.reserve(clients);
            for (std::size_t c = 0; c < clients; ++c) {
                threads.emplace_back([&, c] {
                    try {
                        // Each client owns one connection per shard,
                        // matching one TLS session per endpoint.
                        std::vector<std::unique_ptr<net::TcpTransport>> links;
                        std::vector<cluster::ShardEndpoints> endpoints;
                        for (const auto& shard : cluster) {
                            links.push_back(
                                std::make_unique<net::TcpTransport>(
                                    "127.0.0.1", shard->server.port()));
                            endpoints.push_back({links.back().get(), nullptr});
                        }
                        cluster::ClusterClient router(std::move(endpoints));
                        auto& samples = latencies[c];
                        samples.reserve(streams[c].size());
                        for (const Bytes& request : streams[c]) {
                            Stopwatch op;
                            router.call(request);
                            samples.push_back(op.elapsed_seconds());
                        }
                    } catch (...) {
                        failures[c] = std::current_exception();
                    }
                });
            }
            for (auto& thread : threads) thread.join();
        }
        out.wall_seconds = wall.elapsed_seconds();
        for (const auto& failure : failures) {
            if (failure) std::rethrow_exception(failure);
        }
        for (auto& shard : cluster) {
            shard->server.stop();
            shard->committer.stop();
        }

        std::vector<double> merged;
        for (const auto& samples : latencies) {
            merged.insert(merged.end(), samples.begin(), samples.end());
        }
        std::sort(merged.begin(), merged.end());
        out.ops = merged.size();
        out.throughput = out.wall_seconds > 0.0
                             ? static_cast<double>(out.ops) / out.wall_seconds
                             : 0.0;
        out.p50_ms = percentile_ms(merged, 0.50);
        out.p95_ms = percentile_ms(merged, 0.95);
        out.p99_ms = percentile_ms(merged, 0.99);

        const cluster::Router placement(
            static_cast<std::uint32_t>(shards));
        out.objects_ok = true;
        for (std::size_t c = 0; c < clients; ++c) {
            const auto& owner = cluster[placement.shard_of(repos[c])]->node;
            out.objects_ok =
                out.objects_ok &&
                owner.durable().server().stats(repos[c]).num_objects ==
                    ops_per_client;
        }
        for (const auto& shard : cluster) {
            out.records_logged += shard->node.durable().durability()
                                      .records_logged;
        }
    }
    fs::remove_all(dir);
    return out;
}

int run_cluster_bench(std::size_t max_shards, const std::string& json_path) {
    const std::size_t clients = 16;
    const std::size_t ops_per_client = scaled(24);
    std::cout << "=== Figure 4, cluster edition: " << clients
              << " closed-loop writers over 1.." << max_shards
              << " shards (HKDF routing, one repository per writer) ===\n\n"
              << "Recording per-client request streams...\n";

    // Per-client streams: create + updates for the client's own
    // repository, recorded once and replayed against every shard count
    // (routing is deterministic in the repository id, so the identical
    // bytes exercise every placement).
    std::vector<std::string> repos;
    std::vector<std::vector<Bytes>> streams(clients);
    MieServer scratch;
    for (std::size_t c = 0; c < clients; ++c) {
        repos.push_back("bench-repo-" + std::to_string(c));
        RecordingTransport recorder(scratch);
        MieClient client(recorder, repos[c],
                         RepositoryKey::generate(to_bytes("fig4-" + repos[c]),
                                                 64, 64, 0.7978845608),
                         to_bytes("writer" + std::to_string(c)));
        client.create_repository();
        const sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
            .num_classes = 8, .image_size = 48, .seed = 300 + c});
        for (std::size_t i = 0; i < ops_per_client; ++i) {
            client.update(generator.make(c * 100000 + i));
        }
        streams[c] = std::move(recorder.recorded);
    }

    std::vector<ClusterScenarioResult> results;
    for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
        results.push_back(
            run_cluster_scenario(shards, repos, streams, ops_per_client));
        const auto& r = results.back();
        std::printf(
            "  %2zu shard%s: %6zu ops in %6.3fs  %8.1f ops/s  "
            "p50 %6.2fms  p95 %6.2fms  p99 %6.2fms%s\n",
            r.shards, r.shards == 1 ? " " : "s", r.ops, r.wall_seconds,
            r.throughput, r.p50_ms, r.p95_ms, r.p99_ms,
            r.objects_ok ? "" : "  OBJECT-COUNT MISMATCH");
    }

    bool all_ok = true;
    std::ostringstream json;
    json << "{\"schema_version\":1,"
         << "\"bench\":\"fig4_cluster\",\"clients\":" << clients
         << ",\"ops_per_client\":" << ops_per_client
         << ",\"threads\":" << bench_threads() << ",\"scenarios\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        all_ok = all_ok && r.objects_ok;
        if (i != 0) json << ",";
        json << "{\"shards\":" << r.shards << ",\"ops\":" << r.ops
             << ",\"wall_seconds\":" << r.wall_seconds
             << ",\"throughput_ops_per_s\":" << r.throughput
             << ",\"p50_ms\":" << r.p50_ms << ",\"p95_ms\":" << r.p95_ms
             << ",\"p99_ms\":" << r.p99_ms
             << ",\"records_logged\":" << r.records_logged
             << ",\"objects_ok\":" << (r.objects_ok ? "true" : "false")
             << "}";
    }
    json << "],\"scaling_vs_1_shard\":{";
    for (std::size_t i = 1; i < results.size(); ++i) {
        if (i != 1) json << ",";
        json << "\"" << results[i].shards << "\":"
             << (results[0].throughput > 0.0
                     ? results[i].throughput / results[0].throughput
                     : 0.0);
    }
    json << "}}";

    std::printf("\nExactly-once integrity: %s (every repository ended with "
                "exactly its writer's %zu objects)\n",
                all_ok ? "ok" : "VIOLATED", ops_per_client);
    std::cout << "\n" << json.str() << "\n";
    if (!json_path.empty()) {
        std::ofstream file(json_path);
        file << json.str() << "\n";
    }
    return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const double fault_rate =
        parse_double_flag(argc, argv, "--fault-rate", 0.0);
    const std::string json_path =
        parse_string_flag(argc, argv, "--json", "");
    const auto max_shards = static_cast<std::size_t>(
        parse_double_flag(argc, argv, "--shards", 0.0));
    if (max_shards > 0) return run_cluster_bench(max_shards, json_path);
    const std::vector<std::size_t> client_counts = {1, 8, 64};
    const std::size_t max_clients = client_counts.back();
    const std::size_t ops_per_client = scaled(24);

    std::cout << "=== Figure 4: concurrent update over TCP — blocking "
                 "thread-per-connection vs epoll reactor + group commit ===\n"
              << "(" << ops_per_client << " updates per client at 1/8/64 "
              << "clients; WAL fsync per commit; fault rate " << fault_rate
              << ")\n\nRecording per-client request streams (real MieClient "
                 "update RPCs, envelopes included)...\n";

    // Record once, replay everywhere: client c's stream is its enveloped
    // update RPCs for objects c*100000+i, captured against a scratch
    // in-memory server. Replaying the identical bytes against each
    // scenario's fresh DurableServer keeps the comparison exact.
    const auto device = scaled_bench_device(sim::DeviceProfile::desktop());
    MieServer scratch;
    std::vector<std::vector<Bytes>> streams(max_clients);
    {
        const Bytes create = create_repo_request();
        scratch.handle(create);
        for (std::size_t c = 0; c < max_clients; ++c) {
            RecordingTransport recorder(scratch);
            auto client = join_mie_client(device, recorder, 500 + c,
                                          "writer" + std::to_string(c));
            const sim::FlickrLikeGenerator generator(sim::FlickrLikeParams{
                .num_classes = 8, .image_size = 48, .seed = 300 + c});
            for (std::size_t i = 0; i < ops_per_client; ++i) {
                client->update(generator.make(c * 100000 + i));
            }
            streams[c] = std::move(recorder.recorded);
        }
    }

    std::vector<ScenarioResult> results;
    for (const std::size_t clients : client_counts) {
        for (const std::string mode : {"blocking", "reactor"}) {
            results.push_back(
                run_scenario(mode, clients, streams, fault_rate));
            const auto& r = results.back();
            std::printf(
                "  %-8s %3zu clients: %6zu ops in %6.3fs  "
                "%8.1f ops/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms%s\n",
                r.mode.c_str(), r.clients, r.ops, r.wall_seconds,
                r.throughput, r.p50_ms, r.p95_ms, r.p99_ms,
                r.objects_ok() ? "" : "  OBJECT-COUNT MISMATCH");
        }
    }

    std::printf("\n%-8s %8s %14s %10s %10s %10s %8s %9s\n", "mode",
                "clients", "throughput/s", "p50 ms", "p95 ms", "p99 ms",
                "batches", "maxbatch");
    for (const auto& r : results) {
        std::printf("%-8s %8zu %14.1f %10.2f %10.2f %10.2f %8zu %9zu\n",
                    r.mode.c_str(), r.clients, r.throughput, r.p50_ms,
                    r.p95_ms, r.p99_ms, r.batches_committed,
                    r.max_batch_records);
    }

    bool all_ok = true;
    for (const auto& r : results) all_ok = all_ok && r.objects_ok();
    std::printf(
        "\nExactly-once integrity: %s (every scenario ended with "
        "clients*ops objects%s)\n",
        all_ok ? "ok" : "VIOLATED",
        fault_rate > 0.0 ? ", with injected faults forcing retries" : "");

    for (const std::size_t clients : client_counts) {
        const ScenarioResult* blocking = nullptr;
        const ScenarioResult* epoll = nullptr;
        for (const auto& r : results) {
            if (r.clients != clients) continue;
            (r.mode == "blocking" ? blocking : epoll) = &r;
        }
        if (blocking && epoll && blocking->throughput > 0.0) {
            std::printf(
                "  %2zu clients: reactor/blocking throughput = %.2fx\n",
                clients, epoll->throughput / blocking->throughput);
        }
    }

    const std::string json = to_json(results, fault_rate, ops_per_client);
    std::cout << "\n" << json << "\n";
    if (!json_path.empty()) {
        std::ofstream file(json_path);
        file << json << "\n";
    }
    return all_ok ? 0 : 1;
}
