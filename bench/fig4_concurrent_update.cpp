// Figure 4: two clients (one mobile, one desktop) concurrently adding
// objects to a SINGLE shared repository. Only MIE runs this experiment:
// it needs no client state and no counter locks, so both writers make
// independent progress. The bench also demonstrates why the baselines
// cannot: MSSE's counter lock rejects a concurrent trained writer.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "exec/exec.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const auto mobile = sim::DeviceProfile::mobile();
    const auto desktop = sim::DeviceProfile::desktop();
    const std::size_t per_client = scaled(60);

    std::cout << "=== Figure 4: concurrent update, 1 mobile + 1 desktop "
                 "client, shared MIE repository ===\n"
              << "(paper: 1000 objects per client; here " << per_client
              << " per client)\n";

    // Shared MIE server; each client has its own transport/link.
    SchemeBundle mobile_bundle = make_bundle(Scheme::kMie, mobile, 7);
    net::MeteredTransport desktop_transport(
        *mobile_bundle.server, desktop.link);
    auto desktop_client =
        join_mie_client(desktop, desktop_transport, 7);

    mobile_bundle.client->create_repository();

    const auto mobile_gen = default_generator(101);
    const auto desktop_gen = default_generator(202);

    // Both clients write concurrently (the MIE server serializes internally
    // but neither blocks on client-side shared state). The writers run as
    // exec::TaskGroup tasks; wait() also propagates any client exception
    // instead of std::thread's terminate-on-escape.
    {
        exec::TaskGroup writers;
        writers.run([&] {
            for (std::size_t i = 0; i < per_client; ++i) {
                mobile_bundle.client->update(mobile_gen.make(i));
            }
        });
        writers.run([&] {
            for (std::size_t i = 0; i < per_client; ++i) {
                desktop_client->update(desktop_gen.make(100000 + i));
            }
        });
        writers.wait();
    }

    const auto mobile_cost =
        CostBreakdown::of(mobile_bundle.client->meter());
    const auto desktop_cost = CostBreakdown::of(desktop_client->meter());
    print_cost_table("Per-client cost (each uploaded " +
                         std::to_string(per_client) + " objects)",
                     {"Mobile client", "Desktop client"},
                     {mobile_cost, desktop_cost});

    // Integrity: the shared repository holds every object from both.
    auto* server = dynamic_cast<MieServer*>(mobile_bundle.server.get());
    const auto stats = server->stats("bench-repo");
    std::printf("\nRepository now holds %zu objects (expected %zu): %s\n",
                stats.num_objects, 2 * per_client,
                stats.num_objects == 2 * per_client ? "ok" : "MISMATCH");

    // Contrast: MSSE's trained-update path cannot overlap writers.
    std::cout << "\nContrast: MSSE concurrent trained writers\n";
    SchemeBundle msse = make_bundle(Scheme::kMsse, desktop, 9);
    const auto gen = default_generator(5);
    msse.client->create_repository();
    for (std::size_t i = 0; i < 8; ++i) msse.client->update(gen.make(i));
    msse.client->train();
    // Writer A takes the counter lock mid-update (simulated by the raw
    // GetCtrs RPC); writer B's lock request is refused.
    net::MessageWriter lock_req;
    lock_req.write_u8(
        static_cast<std::uint8_t>(baseline::MsseOp::kGetCtrs));
    lock_req.write_string("bench-repo");
    lock_req.write_u8(1);
    msse.transport->call(lock_req.take());
    net::MessageWriter second;
    second.write_u8(static_cast<std::uint8_t>(baseline::MsseOp::kGetCtrs));
    second.write_string("bench-repo");
    second.write_u8(1);
    try {
        msse.transport->call(second.take());
        std::cout << "  second writer acquired the lock (UNEXPECTED)\n";
    } catch (const baseline::CounterLockedError&) {
        std::cout << "  second writer blocked on the counter lock, as "
                     "designed — MSSE updates serialize; MIE's do not\n";
    }
    return 0;
}
