// Figure 4: two clients (one mobile, one desktop) concurrently adding
// objects to a SINGLE shared repository. Only MIE runs this experiment:
// it needs no client state and no counter locks, so both writers make
// independent progress. The bench also demonstrates why the baselines
// cannot: MSSE's counter lock rejects a concurrent trained writer.
//
// --fault-rate R (default 0) injects deterministic network faults into
// both clients' links at per-I/O-op probability R. Each client sits on a
// full fault-tolerant stack (RetryingTransport over FaultyTransport over
// the metered link) and the shared server dedupes enveloped replays, so
// the repository must end with exactly 2*N objects regardless of R.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "exec/exec.hpp"
#include "net/envelope.hpp"
#include "net/faulty.hpp"
#include "net/retry.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const double fault_rate =
        parse_double_flag(argc, argv, "--fault-rate", 0.0);
    const auto desktop_raw = sim::DeviceProfile::desktop();
    const auto mobile = scaled_bench_device(sim::DeviceProfile::mobile());
    const auto desktop = scaled_bench_device(desktop_raw);
    const std::size_t per_client = scaled(60);

    std::cout << "=== Figure 4: concurrent update, 1 mobile + 1 desktop "
                 "client, shared MIE repository ===\n"
              << "(paper: 1000 objects per client; here " << per_client
              << " per client; fault rate " << fault_rate << ")\n";

    // Shared MIE server behind a replay-dedup handler; each client gets
    // its own metered link wrapped in fault-injection + bounded retries.
    MieServer server;
    net::DedupHandler dedup(server);

    net::MeteredTransport mobile_wire(dedup, mobile.link);
    net::FaultyTransport mobile_faulty(
        mobile_wire, net::FaultPlan{.rate = fault_rate, .seed = 71});
    net::RetryingTransport mobile_link(
        mobile_faulty, net::RetryPolicy{.max_attempts = 6,
                                        .jitter_seed = 71});
    mobile_link.set_sleeper([](double) {});  // backoff stays modeled time

    net::MeteredTransport desktop_wire(dedup, desktop.link);
    net::FaultyTransport desktop_faulty(
        desktop_wire, net::FaultPlan{.rate = fault_rate, .seed = 72});
    net::RetryingTransport desktop_link(
        desktop_faulty, net::RetryPolicy{.max_attempts = 6,
                                         .jitter_seed = 72});
    desktop_link.set_sleeper([](double) {});

    auto mobile_client = join_mie_client(mobile, mobile_link, 7, "user");
    auto desktop_client = join_mie_client(desktop, desktop_link, 7);

    mobile_client->create_repository();

    const auto mobile_gen = default_generator(101);
    const auto desktop_gen = default_generator(202);

    // Both clients write concurrently (the MIE server serializes internally
    // but neither blocks on client-side shared state). The writers run as
    // exec::TaskGroup tasks; wait() also propagates any client exception
    // instead of std::thread's terminate-on-escape.
    {
        exec::TaskGroup writers;
        writers.run([&] {
            for (std::size_t i = 0; i < per_client; ++i) {
                mobile_client->update(mobile_gen.make(i));
            }
        });
        writers.run([&] {
            for (std::size_t i = 0; i < per_client; ++i) {
                desktop_client->update(desktop_gen.make(100000 + i));
            }
        });
        writers.wait();
    }

    const auto mobile_cost = CostBreakdown::of(mobile_client->meter());
    const auto desktop_cost = CostBreakdown::of(desktop_client->meter());
    print_cost_table("Per-client cost (each uploaded " +
                         std::to_string(per_client) + " objects)",
                     {"Mobile client", "Desktop client"},
                     {mobile_cost, desktop_cost});

    // Integrity: the shared repository holds every object from both —
    // exactly once, even when faults forced retries of applied updates.
    const auto stats = server.stats("bench-repo");
    std::printf("\nRepository now holds %zu objects (expected %zu): %s\n",
                stats.num_objects, 2 * per_client,
                stats.num_objects == 2 * per_client ? "ok" : "MISMATCH");

    const auto& mr = mobile_link.stats();
    const auto& dr = desktop_link.stats();
    const auto& mf = mobile_faulty.stats();
    const auto& df = desktop_faulty.stats();
    std::printf(
        "{\"bench\":\"fig4_concurrent_update\",\"fault_rate\":%g,"
        "\"objects\":%zu,\"expected\":%zu,"
        "\"replays_suppressed\":%llu,"
        "\"mobile\":{\"calls\":%llu,\"attempts\":%llu,\"retries\":%llu,"
        "\"reconnects\":%llu,\"timeouts\":%llu,\"faults_injected\":%llu},"
        "\"desktop\":{\"calls\":%llu,\"attempts\":%llu,\"retries\":%llu,"
        "\"reconnects\":%llu,\"timeouts\":%llu,\"faults_injected\":%llu}}\n",
        fault_rate, stats.num_objects, 2 * per_client,
        static_cast<unsigned long long>(dedup.replays_suppressed()),
        static_cast<unsigned long long>(mr.calls),
        static_cast<unsigned long long>(mr.attempts),
        static_cast<unsigned long long>(mr.retries),
        static_cast<unsigned long long>(mr.reconnects),
        static_cast<unsigned long long>(mr.timeouts),
        static_cast<unsigned long long>(mf.faults_injected),
        static_cast<unsigned long long>(dr.calls),
        static_cast<unsigned long long>(dr.attempts),
        static_cast<unsigned long long>(dr.retries),
        static_cast<unsigned long long>(dr.reconnects),
        static_cast<unsigned long long>(dr.timeouts),
        static_cast<unsigned long long>(df.faults_injected));

    // Contrast: MSSE's trained-update path cannot overlap writers.
    std::cout << "\nContrast: MSSE concurrent trained writers\n";
    SchemeBundle msse = make_bundle(Scheme::kMsse, desktop_raw, 9);
    const auto gen = default_generator(5);
    msse.client->create_repository();
    for (std::size_t i = 0; i < 8; ++i) msse.client->update(gen.make(i));
    msse.client->train();
    // Writer A takes the counter lock mid-update (simulated by the raw
    // GetCtrs RPC); writer B's lock request is refused.
    net::MessageWriter lock_req;
    lock_req.write_u8(
        static_cast<std::uint8_t>(baseline::MsseOp::kGetCtrs));
    lock_req.write_string("bench-repo");
    lock_req.write_u8(1);
    msse.transport->call(lock_req.take());
    net::MessageWriter second;
    second.write_u8(static_cast<std::uint8_t>(baseline::MsseOp::kGetCtrs));
    second.write_string("bench-repo");
    second.write_u8(1);
    try {
        msse.transport->call(second.take());
        std::cout << "  second writer acquired the lock (UNEXPECTED)\n";
    } catch (const baseline::CounterLockedError&) {
        std::cout << "  second writer blocked on the counter lock, as "
                     "designed — MSSE updates serialize; MIE's do not\n";
    }
    return 0;
}
