// Shared benchmark harness: scheme factories, workload runners, and the
// plaintext retrieval baseline used by Table III.
//
// Workload scale: the paper loads 1000/2000/3000 MIR-Flickr objects from
// real devices. This harness defaults to a 1:16.7 scale (60/120/180
// synthetic objects, 64x64 images) so the whole suite reruns in minutes on
// one core; set MIE_BENCH_SCALE (e.g. 2.0) to scale the object counts up.
// Per-object work is the real algorithms end to end, so sub-operation
// ratios — the shape the paper's figures report — are preserved.
#pragma once

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/hom_msse_client.hpp"
#include "baseline/hom_msse_server.hpp"
#include "baseline/msse_client.hpp"
#include "baseline/msse_server.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"
#include "sim/device.hpp"
#include "sim/energy.hpp"

namespace mie::bench {

enum class Scheme { kMsse, kHomMsse, kMie };

constexpr std::array<Scheme, 3> kAllSchemes = {Scheme::kMsse,
                                               Scheme::kHomMsse, Scheme::kMie};

std::string scheme_name(Scheme scheme);

/// Parses `--threads N` from argv and applies it to the exec runtime via
/// exec::set_max_threads. Defaults to std::thread::hardware_concurrency()
/// when absent. Returns the applied width; bench_threads() reports it
/// later so tables and JSON can record the configuration.
std::size_t configure_threads(int argc, char** argv);

/// Width applied by configure_threads (hardware default until called).
std::size_t bench_threads();

/// Parses `--name V` / `--name=V` from argv; `fallback` when absent.
double parse_double_flag(int argc, char** argv, std::string_view name,
                         double fallback);

/// Same for string-valued flags (e.g. `--json PATH`).
std::string parse_string_flag(int argc, char** argv, std::string_view name,
                              std::string_view fallback);

/// JSON string escaping for the bench summaries.
std::string json_escape(std::string_view s);

/// Opens the machine-readable summary every bench main emits:
/// `{"schema_version":1,"bench":"<name>","threads":N,"scale":S` — callers
/// append their own fields and the closing brace.
std::string json_header(std::string_view bench);

/// Prints `json` to stdout and, when `--json PATH` was passed, writes it
/// (newline-terminated) to PATH as well.
void emit_json(int argc, char** argv, const std::string& json);

/// Device profile with the bench link scaling applied (the same
/// adjustment make_bundle performs internally) — for benches that build
/// their own transport stacks.
sim::DeviceProfile scaled_bench_device(const sim::DeviceProfile& device);

/// Multiplier from MIE_BENCH_SCALE (default 1.0, clamped to [0.1, 100]).
double bench_scale();

/// Scaled object count helper.
std::size_t scaled(std::size_t base_count);

/// A scheme instance wired to its own fresh server and metered transport.
struct SchemeBundle {
    std::shared_ptr<net::RequestHandler> server;
    std::unique_ptr<net::MeteredTransport> transport;
    std::unique_ptr<SearchableScheme> client;
};

/// Builds a bundle for `scheme` on `device`. Training parameters are the
/// harness defaults (branch 10, depth 2 vocabulary tree; 384-bit Paillier
/// for Hom-MSSE unless overridden).
SchemeBundle make_bundle(Scheme scheme, const sim::DeviceProfile& device,
                         std::uint64_t seed,
                         std::size_t paillier_bits = 256);

/// Creates an MIE client bound to an existing server's repository (used
/// by the Fig. 4 concurrent-writers experiment); `transport` must
/// already reach that server — possibly through fault-injection and
/// retry decorators. `user` keeps concurrent writers' secrets distinct.
std::unique_ptr<SearchableScheme> join_mie_client(
    const sim::DeviceProfile& device, net::Transport& transport,
    std::uint64_t seed, const std::string& user = "user2");

/// Default generator matching the MIR-Flickr stand-in.
sim::FlickrLikeGenerator default_generator(std::uint64_t seed = 2017);

/// Per-sub-operation cost snapshot of a client meter.
struct CostBreakdown {
    double encrypt = 0.0;
    double network = 0.0;
    double index = 0.0;
    double train = 0.0;

    double total() const { return encrypt + network + index + train; }
    static CostBreakdown of(const sim::CostMeter& meter);
    CostBreakdown minus(const CostBreakdown& other) const;
    /// `{"encrypt":..,"network":..,"index":..,"train":..,"total":..}`.
    std::string to_json() const;
};

/// Runs the repository-load workload (create + N updates + train) and
/// returns the client cost breakdown.
CostBreakdown run_load_workload(SchemeBundle& bundle,
                                const sim::FlickrLikeGenerator& generator,
                                std::size_t num_objects);

/// Prints one figure-style cost table row set.
void print_cost_table(const std::string& title,
                      const std::vector<std::string>& row_labels,
                      const std::vector<CostBreakdown>& rows);

// ---------------------------------------------------------------------------
// Plaintext retrieval baseline (Table III reference system): the same
// SURF + BOVW + TF-IDF + logISR pipeline with no encryption anywhere.
// ---------------------------------------------------------------------------
class PlaintextRetrieval {
public:
    struct Params {
        std::size_t tree_branch = 10;
        std::size_t tree_depth = 2;
        int kmeans_iterations = 8;
        std::size_t max_training_samples = 20000;
        std::uint64_t seed = 2017;
    };

    PlaintextRetrieval();  // default params; defined out of line
    explicit PlaintextRetrieval(Params params) : params_(params) {}

    void add(const sim::MultimodalObject& object);
    void train();
    std::vector<std::uint64_t> search(const sim::MultimodalObject& query,
                                      std::size_t top_k) const;

    /// Per-modality ranked lists before fusion (image, text) — lets the
    /// fusion ablation swap merging functions on identical inputs.
    std::array<std::vector<index::ScoredDoc>, 2> search_modalities(
        const sim::MultimodalObject& query, std::size_t pool) const;

private:
    Params params_;
    bool trained_ = false;
    index::VocabTree<index::EuclideanSpace> tree_;
    index::InvertedIndex image_index_;
    index::InvertedIndex text_index_;
    std::vector<std::pair<std::uint64_t, ExtractedFeatures>> pending_;
    std::size_t num_objects_ = 0;
};

/// Mean average precision of a SearchableScheme over a Holidays-like
/// dataset (query = first member of each group; relevant = other members).
double scheme_map(SearchableScheme& scheme,
                  const sim::HolidaysLikeGenerator::Dataset& dataset,
                  std::size_t top_k);

/// Same for the plaintext baseline.
double plaintext_map(PlaintextRetrieval& system,
                     const sim::HolidaysLikeGenerator::Dataset& dataset,
                     std::size_t top_k);

}  // namespace mie::bench
