// Figure 3: the Figure-2 workload on the DESKTOP client. The paper finds
// the same scheme ordering as on mobile, with CPU-bound sub-operations
// roughly one order of magnitude faster.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
    mie::bench::configure_threads(argc, argv);
    using namespace mie;
    using namespace mie::bench;

    const auto desktop = sim::DeviceProfile::desktop();
    const auto mobile = sim::DeviceProfile::mobile();
    const auto generator = default_generator();
    const std::array<std::size_t, 3> sizes = {scaled(60), scaled(120),
                                              scaled(180)};

    std::cout << "=== Figure 3: update/load performance, desktop client ("
              << desktop.name << ") ===\n";

    std::ostringstream rows_json;
    for (const Scheme scheme : kAllSchemes) {
        std::vector<std::string> labels;
        std::vector<CostBreakdown> rows;
        for (const std::size_t size : sizes) {
            SchemeBundle bundle = make_bundle(scheme, desktop, 7);
            rows.push_back(run_load_workload(bundle, generator, size));
            labels.push_back(std::to_string(size) + " objects");
            if (rows_json.tellp() > 0) rows_json << ",";
            rows_json << "{\"scheme\":\"" << scheme_name(scheme)
                      << "\",\"objects\":" << size
                      << ",\"seconds\":" << rows.back().to_json() << "}";
        }
        print_cost_table("Scheme: " + scheme_name(scheme), labels, rows);
    }

    // Cross-device check: desktop CPU-bound cost ~10x below mobile.
    std::cout << "\nShape check: desktop vs mobile CPU cost (MIE, "
              << sizes[0] << " objects)\n";
    SchemeBundle on_desktop = make_bundle(Scheme::kMie, desktop, 7);
    const auto desktop_cost =
        run_load_workload(on_desktop, generator, sizes[0]);
    SchemeBundle on_mobile = make_bundle(Scheme::kMie, mobile, 7);
    const auto mobile_cost = run_load_workload(on_mobile, generator, sizes[0]);
    const double desktop_cpu =
        desktop_cost.encrypt + desktop_cost.index + desktop_cost.train;
    const double mobile_cpu =
        mobile_cost.encrypt + mobile_cost.index + mobile_cost.train;
    std::printf("  mobile/desktop CPU ratio: %.1fx (expected ~10x)\n",
                mobile_cpu / desktop_cpu);

    std::ostringstream json;
    json << json_header("fig3_update_desktop") << ",\"device\":\""
         << json_escape(desktop.name) << "\",\"rows\":[" << rows_json.str()
         << "],\"mobile_over_desktop_cpu\":" << mobile_cpu / desktop_cpu
         << "}";
    emit_json(argc, argv, json.str());
    return 0;
}
