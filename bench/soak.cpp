// Fleet-scale chaos soak against the sharded reactor cluster.
//
// Replays a seeded Zipf fleet workload (mixed add/search/update/remove,
// session churn, mobile/desktop device mix) through a ClusterClient
// against reactor-hosted shard replicas over real TCP, with fault
// injection on every client link plus one follower power-loss and one
// primary kill per run. Every epoch ends with the four soak oracles
// (exactly-once shadow equality, scatter/gather vs single-node union,
// monotone replication offsets, secret hygiene); the process exits
// non-zero if any oracle ever goes red.
//
// Scale: events per epoch honours MIE_BENCH_SCALE like the other
// benches. Flags:
//   --seed N        master seed (workload + faults + chaos points)
//   --shards N      shard count (default 2)
//   --epochs N      chaos epochs (default 2)
//   --events N      base events per epoch before scaling (default 48)
//   --fault-rate R  per-I/O-op fault probability (default 0.015)
//   --json PATH     also write the schema-versioned report to PATH
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common.hpp"
#include "soak/harness.hpp"

int main(int argc, char** argv) {
    using namespace mie;
    namespace fs = std::filesystem;
    bench::configure_threads(argc, argv);

    soak::SoakOptions options;
    options.seed = static_cast<std::uint64_t>(
        bench::parse_double_flag(argc, argv, "--seed", 2026.0));
    options.num_shards = static_cast<std::uint32_t>(
        bench::parse_double_flag(argc, argv, "--shards", 2.0));
    options.epochs = static_cast<std::size_t>(
        bench::parse_double_flag(argc, argv, "--epochs", 2.0));
    const auto base_events = static_cast<std::size_t>(
        bench::parse_double_flag(argc, argv, "--events", 48.0));
    options.fault_rate =
        bench::parse_double_flag(argc, argv, "--fault-rate", 0.015);
    const std::string json_path =
        bench::parse_string_flag(argc, argv, "--json", "");

    options.fleet.num_events = bench::scaled(base_events);
    options.fleet.num_repositories = 6;
    options.fleet.active_sessions = 32;
    options.fleet.setup_objects_per_repo = 4;
    options.root_dir =
        fs::temp_directory_path() /
        ("mie_bench_soak_" + std::to_string(::getpid()));

    std::printf(
        "=== Soak: fleet workload + chaos against the sharded reactor "
        "cluster ===\n(seed %llu, %u shards, %zu epochs x %zu events, "
        "fault rate %.3f, kill-primary + follower power-loss on)\n\n",
        static_cast<unsigned long long>(options.seed), options.num_shards,
        options.epochs, options.fleet.num_events, options.fault_rate);

    int exit_code = 0;
    try {
        const soak::SoakReport report = soak::run_soak(options);
        for (const soak::EpochReport& epoch : report.epochs) {
            std::printf(
                "epoch %zu: %4zu ops  retries %3llu  failovers %llu  "
                "recoveries %llu  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  "
                "oracles[1x=%d scatter=%d offsets=%d secrets=%d]\n",
                epoch.epoch, epoch.operations,
                static_cast<unsigned long long>(epoch.retries),
                static_cast<unsigned long long>(epoch.failovers),
                static_cast<unsigned long long>(epoch.recoveries),
                epoch.p50_ms, epoch.p95_ms, epoch.p99_ms,
                epoch.oracles.exactly_once ? 1 : 0,
                epoch.oracles.scatter_gather ? 1 : 0,
                epoch.oracles.offsets_monotone ? 1 : 0,
                epoch.oracles.secrets_redacted ? 1 : 0);
        }
        std::printf(
            "\ntotal: %zu ops in %.3fs  %.1f ops/s  faults %llu  "
            "retries %llu  failovers %llu  recoveries %llu  "
            "replays_suppressed %llu\nstate digest 0x%08x  mobile fleet "
            "energy %.4f mAh\noracles: %s\n",
            report.operations, report.elapsed_seconds,
            report.throughput_ops_per_sec,
            static_cast<unsigned long long>(report.faults_injected),
            static_cast<unsigned long long>(report.retries),
            static_cast<unsigned long long>(report.failovers),
            static_cast<unsigned long long>(report.recoveries),
            static_cast<unsigned long long>(report.replays_suppressed),
            report.state_digest, report.mobile_energy_mah,
            report.all_oracles_green() ? "ALL GREEN" : "RED");

        const std::string json = report.to_json();
        std::cout << "\n" << json;
        if (!json_path.empty()) {
            std::ofstream file(json_path);
            file << json;
        }
        exit_code = report.all_oracles_green() ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "soak: fatal: %s\n", error.what());
        exit_code = 2;
    }

    std::error_code ec;
    fs::remove_all(options.root_dir, ec);
    return exit_code;
}
