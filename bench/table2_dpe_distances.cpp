// Table II: encoded distances between DPE encodings and their plaintext
// counterparts, at plaintext (Euclidean) distances dp in {0, 0.3, 0.7, 1}.
//
// Paper values (Dense-DPE, t = 0.5): 0.0, 0.3085, 0.59375, 0.5585 — i.e.
// distances below the threshold are preserved, distances above saturate
// near 1/2 (with the overshoot hump just past t). Sparse-DPE (t = 0):
// 0 for equality, the constant 1 otherwise.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>
#include <sstream>

#include "common.hpp"
#include "dpe/dense_dpe.hpp"
#include "dpe/sparse_dpe.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using mie::dpe::DenseDpe;
using mie::features::FeatureVec;

FeatureVec random_unit_vector(mie::SplitMix64& rng, std::size_t dims) {
    FeatureVec v(dims);
    double norm_sq = 0.0;
    for (auto& x : v) {
        double g = 0.0;
        for (int i = 0; i < 12; ++i) g += rng.next_double();
        x = static_cast<float>(g - 6.0);
        norm_sq += static_cast<double>(x) * x;
    }
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& x : v) x = static_cast<float>(x * inv);
    return v;
}

FeatureVec at_distance(mie::SplitMix64& rng, const FeatureVec& p, double d) {
    const FeatureVec direction = random_unit_vector(rng, p.size());
    FeatureVec q = p;
    for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] += static_cast<float>(d * direction[i]);
    }
    return q;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mie;
    std::array<double, 4> single_sample{};
    std::array<double, 4> mean_of_200{};

    constexpr std::size_t kDims = 64;
    const double delta = std::sqrt(2.0 / std::numbers::pi);  // t = 0.5
    const std::array<double, 4> plaintext_distances = {0.0, 0.3, 0.7, 1.0};

    std::cout << "=== Table II: DPE encoded vs plaintext distances ===\n"
              << "Dense-DPE threshold t = 0.5 (delta = sqrt(2/pi)); paper "
                 "row: 0.0 / 0.3085 / 0.59375 / 0.5585\n";

    TextTable table({"Scheme", "dp=0", "dp=0.3", "dp=0.7", "dp=1.0"});

    // Single-sample row with the paper's prototype size M = 64 (output size
    // equal to the 64-dim SURF input).
    {
        const auto key =
            DenseDpe::keygen(to_bytes("table2"), kDims, 64, delta);
        const dpe::DenseDpe dense(key);
        SplitMix64 rng(42);
        const FeatureVec p = random_unit_vector(rng, kDims);
        const auto ep = dense.encode(p);
        std::vector<std::string> row = {"Dense-DPE (M=64, 1 sample)"};
        for (std::size_t i = 0; i < plaintext_distances.size(); ++i) {
            const auto eq =
                dense.encode(at_distance(rng, p, plaintext_distances[i]));
            single_sample[i] = DenseDpe::distance(ep, eq);
            row.push_back(fmt_double(single_sample[i], 4));
        }
        table.add_row(row);
    }

    // Mean over 200 trials with M = 4096 (low estimator variance): the
    // underlying expectation the single sample fluctuates around.
    {
        const auto key =
            DenseDpe::keygen(to_bytes("table2-mean"), kDims, 4096, delta);
        const dpe::DenseDpe dense(key);
        SplitMix64 rng(43);
        std::vector<std::string> row = {"Dense-DPE (mean of 200)"};
        for (std::size_t i = 0; i < plaintext_distances.size(); ++i) {
            double total = 0.0;
            for (int trial = 0; trial < 200; ++trial) {
                const FeatureVec p = random_unit_vector(rng, kDims);
                total += DenseDpe::distance(
                    dense.encode(p),
                    dense.encode(
                        at_distance(rng, p, plaintext_distances[i])));
            }
            mean_of_200[i] = total / 200.0;
            row.push_back(fmt_double(mean_of_200[i], 4));
        }
        table.add_row(row);
    }

    // Sparse-DPE: equality-only (t = 0). dp=0 models the same keyword;
    // any dp>0 models different keywords.
    {
        const dpe::SparseDpe sparse(
            dpe::SparseDpe::keygen(to_bytes("table2-sparse")));
        const auto same = sparse.encode("keyword");
        std::vector<std::string> row = {"Sparse-DPE (t=0)"};
        row.push_back(
            fmt_double(dpe::SparseDpe::distance(same, sparse.encode("keyword")),
                       1));
        for (const char* other : {"keywore", "keywore", "different"}) {
            row.push_back(fmt_double(
                dpe::SparseDpe::distance(same, sparse.encode(other)), 1));
        }
        table.add_row(row);
    }

    table.print(std::cout);

    std::cout << "\nShape: encoded ~= plaintext distance for dp < t; "
                 "saturation (~0.5-0.6) beyond t; Sparse-DPE reveals "
                 "equality only.\n";

    std::ostringstream json;
    json << bench::json_header("table2_dpe_distances")
         << ",\"plaintext_distances\":[0,0.3,0.7,1],\"rows\":[";
    const auto emit_row = [&](const char* name,
                              const std::array<double, 4>& values,
                              bool first) {
        if (!first) json << ",";
        json << "{\"row\":\"" << name << "\",\"encoded\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i != 0) json << ",";
            json << values[i];
        }
        json << "]}";
    };
    emit_row("dense_single_sample", single_sample, true);
    emit_row("dense_mean_200", mean_of_200, false);
    json << "]}";
    bench::emit_json(argc, argv, json.str());
    return 0;
}
