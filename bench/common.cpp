#include "common.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "eval/metrics.hpp"
#include "exec/exec.hpp"
#include "fusion/rank_fusion.hpp"
#include "index/bovw.hpp"
#include "util/table.hpp"

namespace mie::bench {

std::string scheme_name(Scheme scheme) {
    switch (scheme) {
        case Scheme::kMsse: return "MSSE";
        case Scheme::kHomMsse: return "Hom-MSSE";
        case Scheme::kMie: return "MIE";
    }
    return "?";
}

namespace {
std::size_t g_bench_threads = 0;  // 0 = configure_threads not called yet
}  // namespace

std::size_t configure_threads(int argc, char** argv) {
    std::size_t threads = exec::hardware_threads();
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::atoll(argv[i + 1])));
            ++i;
        } else if (arg.starts_with("--threads=")) {
            threads = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::atoll(arg.substr(10).data())));
        }
    }
    exec::set_max_threads(threads);
    g_bench_threads = threads;
    return threads;
}

std::size_t bench_threads() {
    return g_bench_threads != 0 ? g_bench_threads : exec::hardware_threads();
}

double parse_double_flag(int argc, char** argv, std::string_view name,
                         double fallback) {
    const std::string eq = std::string(name) + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == name && i + 1 < argc) return std::atof(argv[i + 1]);
        if (arg.starts_with(eq)) {
            return std::atof(arg.substr(eq.size()).data());
        }
    }
    return fallback;
}

std::string parse_string_flag(int argc, char** argv, std::string_view name,
                              std::string_view fallback) {
    const std::string eq = std::string(name) + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == name && i + 1 < argc) return argv[i + 1];
        if (arg.starts_with(eq)) return std::string(arg.substr(eq.size()));
    }
    return std::string(fallback);
}

double bench_scale() {
    if (const char* env = std::getenv("MIE_BENCH_SCALE")) {
        const double value = std::atof(env);
        if (value > 0.0) return std::clamp(value, 0.1, 100.0);
    }
    return 1.0;
}

std::size_t scaled(std::size_t base_count) {
    return std::max<std::size_t>(
        4, static_cast<std::size_t>(
               static_cast<double>(base_count) * bench_scale()));
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

std::string json_header(std::string_view bench) {
    std::ostringstream json;
    json << "{\"schema_version\":1,\"bench\":\"" << json_escape(bench)
         << "\",\"threads\":" << bench_threads()
         << ",\"scale\":" << bench_scale();
    return json.str();
}

void emit_json(int argc, char** argv, const std::string& json) {
    std::cout << "\n" << json << "\n";
    const std::string path = parse_string_flag(argc, argv, "--json", "");
    if (!path.empty()) {
        std::ofstream file(path);
        file << json << "\n";
        std::cout << "JSON summary written to " << path << "\n";
    }
}

namespace {
// The synthetic objects are ~16x smaller than the paper's photos (fewer
// descriptors per object). To preserve the paper's RTT-to-payload balance
// on the modeled WAN, the RTT is scaled by the same factor.
constexpr double kPayloadScale = 16.0;

sim::DeviceProfile scaled_device(sim::DeviceProfile device) {
    device.link.rtt_seconds /= kPayloadScale;
    return device;
}

constexpr std::size_t kSurfDims = 64;
// 128-bit encodings: per-keypoint payloads that, multiplied by the dense
// pyramid's keypoint count, exceed MSSE's per-unique-word index entries —
// the reason MIE's update traffic is the largest in Figs. 2-3.
constexpr std::size_t kDpeBits = 128;
constexpr double kUnitSlopeDelta = 0.7978845608028654;  // sqrt(2/pi), t=0.5
}  // namespace

sim::DeviceProfile scaled_bench_device(const sim::DeviceProfile& device) {
    return scaled_device(device);
}

SchemeBundle make_bundle(Scheme scheme, const sim::DeviceProfile& raw_device,
                         std::uint64_t seed, std::size_t paillier_bits) {
    const sim::DeviceProfile device = scaled_device(raw_device);
    SchemeBundle bundle;
    const Bytes entropy = to_bytes("bench-entropy-" + std::to_string(seed));
    const Bytes user_secret = to_bytes("bench-user-" + std::to_string(seed));
    switch (scheme) {
        case Scheme::kMie: {
            auto server = std::make_shared<MieServer>();
            bundle.transport = std::make_unique<net::MeteredTransport>(
                *server, device.link);
            auto client = std::make_unique<MieClient>(
                *bundle.transport, "bench-repo",
                RepositoryKey::generate(entropy, kSurfDims, kDpeBits,
                                        kUnitSlopeDelta),
                user_secret, device.cpu_scale);
            // Cloud-side hierarchical vocabulary (17^2 ~= 290 words,
            // the paper's 1000-word vocabulary scaled with the dataset).
            client->train_params.tree_branch = 17;
            client->train_params.tree_depth = 2;
            client->train_params.kmeans_iterations = 8;
            client->train_params.max_training_samples = 100000;
            client->extraction.pyramid.base_stride = 4;
            bundle.server = std::move(server);
            bundle.client = std::move(client);
            break;
        }
        case Scheme::kMsse: {
            auto server = std::make_shared<baseline::MsseServer>();
            bundle.transport = std::make_unique<net::MeteredTransport>(
                *server, device.link);
            auto client = std::make_unique<baseline::MsseClient>(
                *bundle.transport, "bench-repo", entropy, user_secret,
                device.cpu_scale);
            // Client-side FLAT 300-word codebook (depth-1 tree == plain
            // k-means), matching the paper's linear visual-word matching
            // on the client.
            client->train_params.tree_branch = 300;
            client->train_params.tree_depth = 1;
            client->train_params.kmeans_iterations = 8;
            client->train_params.max_training_samples = 100000;
            client->extraction.pyramid.base_stride = 4;
            // Single-user configuration: features live in the client's
            // O(n) local state, not on the cloud.
            client->store_features_in_cloud = false;
            bundle.server = std::move(server);
            bundle.client = std::move(client);
            break;
        }
        case Scheme::kHomMsse: {
            auto server = std::make_shared<baseline::HomMsseServer>();
            bundle.transport = std::make_unique<net::MeteredTransport>(
                *server, device.link);
            baseline::HomMsseParams params;
            params.tree_branch = 300;  // flat client-side codebook
            params.tree_depth = 1;
            params.kmeans_iterations = 8;
            params.max_training_samples = 100000;
            params.paillier_bits = paillier_bits;
            auto client = std::make_unique<baseline::HomMsseClient>(
                *bundle.transport, "bench-repo", entropy, user_secret,
                params, device.cpu_scale);
            client->extraction.pyramid.base_stride = 4;
            client->store_features_in_cloud = false;  // single-user config
            bundle.server = std::move(server);
            bundle.client = std::move(client);
            break;
        }
    }
    return bundle;
}

std::unique_ptr<SearchableScheme> join_mie_client(
    const sim::DeviceProfile& device, net::Transport& transport,
    std::uint64_t seed, const std::string& user) {
    const Bytes entropy =
        to_bytes("bench-entropy-" + std::to_string(seed));
    auto client = std::make_unique<MieClient>(
        transport, "bench-repo",
        RepositoryKey::generate(entropy, kSurfDims, kDpeBits,
                                kUnitSlopeDelta),
        to_bytes("bench-" + user + "-" + std::to_string(seed)),
        device.cpu_scale);
    client->train_params.tree_branch = 17;
    client->train_params.tree_depth = 2;
    client->extraction.pyramid.base_stride = 4;
    return client;
}

sim::FlickrLikeGenerator default_generator(std::uint64_t seed) {
    return sim::FlickrLikeGenerator(sim::FlickrLikeParams{
        .num_classes = 20, .image_size = 96, .seed = seed});
}

CostBreakdown CostBreakdown::of(const sim::CostMeter& meter) {
    return CostBreakdown{
        .encrypt = meter.seconds(sim::SubOp::kEncrypt),
        .network = meter.seconds(sim::SubOp::kNetwork),
        .index = meter.seconds(sim::SubOp::kIndex),
        .train = meter.seconds(sim::SubOp::kTrain),
    };
}

CostBreakdown CostBreakdown::minus(const CostBreakdown& other) const {
    return CostBreakdown{
        .encrypt = encrypt - other.encrypt,
        .network = network - other.network,
        .index = index - other.index,
        .train = train - other.train,
    };
}

std::string CostBreakdown::to_json() const {
    std::ostringstream json;
    json << "{\"encrypt\":" << encrypt << ",\"network\":" << network
         << ",\"index\":" << index << ",\"train\":" << train
         << ",\"total\":" << total() << "}";
    return json.str();
}

CostBreakdown run_load_workload(SchemeBundle& bundle,
                                const sim::FlickrLikeGenerator& generator,
                                std::size_t num_objects) {
    // Paper workload (§VII-A): a small bootstrap load, one training pass,
    // then the bulk of the adds through the trained path — which is where
    // MSSE/Hom-MSSE pay client-side clustering + index encryption per add.
    const CostBreakdown before = CostBreakdown::of(bundle.client->meter());
    // Clamp: at tiny MIE_BENCH_SCALE values the whole load can be smaller
    // than the 8-object bootstrap floor (the subtraction below would wrap).
    const std::size_t bootstrap = std::min(
        num_objects, std::max<std::size_t>(8, (num_objects * 3) / 10));
    bundle.client->create_repository();
    for (const auto& object : generator.make_batch(0, bootstrap)) {
        bundle.client->update(object);
    }
    bundle.client->train();
    for (const auto& object :
         generator.make_batch(bootstrap, num_objects - bootstrap)) {
        bundle.client->update(object);
    }
    return CostBreakdown::of(bundle.client->meter()).minus(before);
}

void print_cost_table(const std::string& title,
                      const std::vector<std::string>& row_labels,
                      const std::vector<CostBreakdown>& rows) {
    std::cout << "\n" << title << " [threads=" << bench_threads() << "]\n";
    TextTable table({"Workload", "Encrypt(s)", "Network(s)", "Index(s)",
                     "Train(s)", "Total(s)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.add_row({row_labels[i], fmt_double(rows[i].encrypt),
                       fmt_double(rows[i].network), fmt_double(rows[i].index),
                       fmt_double(rows[i].train),
                       fmt_double(rows[i].total())});
    }
    table.print(std::cout);
}

// ---------------------------------------------------------------------------
// Plaintext baseline
// ---------------------------------------------------------------------------

PlaintextRetrieval::PlaintextRetrieval() : PlaintextRetrieval(Params{}) {}

void PlaintextRetrieval::add(const sim::MultimodalObject& object) {
    ExtractedFeatures features = extract_features(object);
    ++num_objects_;
    if (!trained_) {
        pending_.emplace_back(object.id, std::move(features));
        return;
    }
    for (const auto& descriptor : features.descriptors) {
        image_index_.add(index::visual_word_term(tree_.quantize(descriptor)),
                         object.id, 1);
    }
    for (const auto& [term, freq] : features.terms) {
        text_index_.add(term, object.id, freq);
    }
}

void PlaintextRetrieval::train() {
    std::vector<features::FeatureVec> training;
    for (const auto& [id, features] : pending_) {
        for (const auto& descriptor : features.descriptors) {
            training.push_back(descriptor);
        }
    }
    if (training.size() > params_.max_training_samples) {
        training.resize(params_.max_training_samples);
    }
    if (!training.empty()) {
        tree_ = index::VocabTree<index::EuclideanSpace>::build(
            training,
            {.branch = params_.tree_branch,
             .depth = params_.tree_depth,
             .kmeans_iterations = params_.kmeans_iterations},
            params_.seed);
    }
    trained_ = true;
    const auto pending = std::move(pending_);
    num_objects_ -= pending.size();
    for (const auto& [id, features] : pending) {
        ++num_objects_;
        for (const auto& descriptor : features.descriptors) {
            image_index_.add(
                index::visual_word_term(tree_.quantize(descriptor)), id, 1);
        }
        for (const auto& [term, freq] : features.terms) {
            text_index_.add(term, id, freq);
        }
    }
}

std::array<std::vector<index::ScoredDoc>, 2>
PlaintextRetrieval::search_modalities(const sim::MultimodalObject& query,
                                      std::size_t pool) const {
    const ExtractedFeatures features = extract_features(query);
    std::array<fusion::RankedList, 2> lists;
    if (trained_ && !tree_.empty()) {
        const auto histogram =
            index::bovw_histogram(tree_, features.descriptors);
        lists[0] = index::rank_tfidf(image_index_, histogram, num_objects_,
                                     pool);
    }
    index::QueryHistogram text_query(features.terms.begin(),
                                     features.terms.end());
    lists[1] = index::rank_tfidf(text_index_, text_query, num_objects_, pool);
    return lists;
}

std::vector<std::uint64_t> PlaintextRetrieval::search(
    const sim::MultimodalObject& query, std::size_t top_k) const {
    const auto lists =
        search_modalities(query, std::max<std::size_t>(top_k * 4, 32));
    const auto fused = fusion::log_isr_fusion(lists, top_k);
    std::vector<std::uint64_t> ids;
    ids.reserve(fused.size());
    for (const auto& item : fused) ids.push_back(item.doc);
    return ids;
}

double scheme_map(SearchableScheme& scheme,
                  const sim::HolidaysLikeGenerator::Dataset& dataset,
                  std::size_t top_k) {
    std::vector<std::vector<std::uint64_t>> ranked_lists;
    std::vector<std::unordered_set<std::uint64_t>> relevant_sets;
    for (const std::size_t query_index : dataset.query_indices) {
        const auto& query = dataset.objects[query_index];
        std::unordered_set<std::uint64_t> relevant;
        // mielint: allow(R3): sim::Dataset::objects is a std::vector
        for (const auto& object : dataset.objects) {
            if (object.label == query.label && object.id != query.id) {
                relevant.insert(object.id);
            }
        }
        std::vector<std::uint64_t> ranked;
        for (const auto& result : scheme.search(query, top_k)) {
            if (result.object_id == query.id) continue;  // Holidays rule
            ranked.push_back(result.object_id);
        }
        ranked_lists.push_back(std::move(ranked));
        relevant_sets.push_back(std::move(relevant));
    }
    return eval::mean_average_precision(ranked_lists, relevant_sets);
}

double plaintext_map(PlaintextRetrieval& system,
                     const sim::HolidaysLikeGenerator::Dataset& dataset,
                     std::size_t top_k) {
    std::vector<std::vector<std::uint64_t>> ranked_lists;
    std::vector<std::unordered_set<std::uint64_t>> relevant_sets;
    for (const std::size_t query_index : dataset.query_indices) {
        const auto& query = dataset.objects[query_index];
        std::unordered_set<std::uint64_t> relevant;
        // mielint: allow(R3): sim::Dataset::objects is a std::vector
        for (const auto& object : dataset.objects) {
            if (object.label == query.label && object.id != query.id) {
                relevant.insert(object.id);
            }
        }
        std::vector<std::uint64_t> ranked;
        for (const std::uint64_t id : system.search(query, top_k)) {
            if (id == query.id) continue;
            ranked.push_back(id);
        }
        ranked_lists.push_back(std::move(ranked));
        relevant_sets.push_back(std::move(relevant));
    }
    return eval::mean_average_precision(ranked_lists, relevant_sets);
}

}  // namespace mie::bench
