// MIE console: the "simple desktop application which exercises all
// operations provided by MIE" (§VI), as a scriptable REPL.
//
// Commands (one per line on stdin):
//   create                      create/reset the repository
//   add <id>                    add synthetic object <id>
//   addbatch <first> <count>    add a range of objects
//   train                       trigger cloud-side training
//   search <id> [k]             query-by-example with object <id>
//   probes <P>                  IVF probe count for search (0 = exact)
//   remove <id>                 remove object <id>
//   stats                       server-side repository statistics
//   costs                       client sub-operation cost summary
//   save <path> / load <path>   snapshot / restore the cloud state
//   help, quit
//
// Usage: mie_console [--durable <dir>] [--threads <n>]
//
// With --durable the cloud side runs behind the write-ahead-logged
// DurableServer: every acknowledged mutation survives `kill -9`, and
// relaunching with the same directory recovers the repository before
// the first prompt.
//
// --threads caps the exec runtime's width for client extraction/encoding
// and cloud training/search (default: all hardware threads).
//
// Try:  printf 'create\naddbatch 0 10\ntrain\nsearch 3\nquit\n' | ./mie_console
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "crypto/drbg.hpp"
#include "exec/exec.hpp"
#include "mie/client.hpp"
#include "mie/durable_server.hpp"
#include "mie/persistence.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace {

void print_help() {
    std::cout <<
        "commands: create | add <id> | addbatch <first> <count> | train\n"
        "          search <id> [k] | probes <P> | remove <id> | stats\n"
        "          costs | save <path> | load <path> | help | quit\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mie;

    std::optional<DurableServer> durable;
    MieServer in_memory;
    std::string durable_dir;
    std::size_t threads = exec::hardware_threads();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--durable" && i + 1 < argc) {
            durable_dir = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::atoll(argv[++i])));
        } else {
            std::cerr << "usage: mie_console [--durable <dir>]"
                         " [--threads <n>]\n";
            return 2;
        }
    }
    exec::set_max_threads(threads);
    if (!durable_dir.empty()) {
        try {
            durable.emplace(store::PosixVfs::instance(), durable_dir);
        } catch (const std::exception& error) {
            std::cerr << "cannot open durable state in '" << durable_dir
                      << "': " << error.what() << "\n";
            return 1;
        }
        const auto stats = durable->durability();
        std::cout << "durable mode: " << durable_dir << " (recovered "
                  << stats.recovered_records << " log records"
                  << (stats.recovered_from_checkpoint ? " + checkpoint"
                                                      : "")
                  << ")\n";
        if (stats.tail_truncated) {
            std::cout << "warning: discarded a torn or corrupt log tail; "
                         "state reflects the last intact record\n";
        }
    }
    MieServer& cloud = durable ? durable->server() : in_memory;
    net::RequestHandler& handler =
        durable ? static_cast<net::RequestHandler&>(*durable) : in_memory;
    net::MeteredTransport transport(handler, net::LinkProfile::mobile());
    MieClient client(transport, "console-repo",
                     RepositoryKey::generate(to_bytes("console-demo-key"),
                                             64, 128, 0.7978845608),
                     to_bytes("console-user"));
    client.train_params.tree_branch = 8;
    client.train_params.tree_depth = 2;

    const sim::FlickrLikeGenerator camera(sim::FlickrLikeParams{
        .num_classes = 6, .image_size = 64, .seed = 2017});

    std::cout << "MIE console — type 'help' for commands.\n";
    std::string line;
    while (std::cout << "mie> " << std::flush, std::getline(std::cin, line)) {
        std::istringstream args(line);
        std::string command;
        if (!(args >> command)) continue;
        try {
            if (command == "quit" || command == "exit") {
                break;
            } else if (command == "help") {
                print_help();
            } else if (command == "create") {
                client.create_repository();
                std::cout << "repository created\n";
            } else if (command == "add") {
                std::uint64_t id;
                if (!(args >> id)) throw std::invalid_argument("add <id>");
                client.update(camera.make(id));
                std::cout << "added object " << id << "\n";
            } else if (command == "addbatch") {
                std::uint64_t first, count;
                if (!(args >> first >> count)) {
                    throw std::invalid_argument("addbatch <first> <count>");
                }
                for (const auto& object : camera.make_batch(first, count)) {
                    client.update(object);
                }
                std::cout << "added " << count << " objects\n";
            } else if (command == "train") {
                client.train();
                std::cout << "training outsourced to the cloud; "
                          << cloud.stats("console-repo").visual_words
                          << " visual words built\n";
            } else if (command == "search") {
                std::uint64_t id;
                std::size_t top_k = 5;
                if (!(args >> id)) throw std::invalid_argument("search <id>");
                args >> top_k;
                const auto results = client.search(camera.make(id), top_k);
                for (const auto& result : results) {
                    const auto object = client.decrypt_result(result);
                    std::printf("  object %-6llu score %-8.3f tags: %s\n",
                                static_cast<unsigned long long>(
                                    result.object_id),
                                result.score, object.text.c_str());
                }
                if (results.empty()) std::cout << "  (no results)\n";
                const auto work = client.last_search_work();
                if (work.query_descriptors > 0) {
                    std::printf(
                        "  (scored %llu postings; kept %llu/%llu query "
                        "descriptors)\n",
                        static_cast<unsigned long long>(
                            work.postings_scored),
                        static_cast<unsigned long long>(
                            work.descriptors_kept),
                        static_cast<unsigned long long>(
                            work.query_descriptors));
                }
            } else if (command == "probes") {
                std::size_t probes;
                if (!(args >> probes)) {
                    throw std::invalid_argument("probes <P>");
                }
                client.search_probes = probes;
                std::cout << "search probes set to " << probes
                          << (probes == 0 ? " (exact)" : "") << "\n";
            } else if (command == "remove") {
                std::uint64_t id;
                if (!(args >> id)) throw std::invalid_argument("remove <id>");
                client.remove(id);
                std::cout << "removed object " << id << "\n";
            } else if (command == "stats") {
                const auto stats = cloud.stats("console-repo");
                std::printf(
                    "  objects=%zu trained=%s visual_words=%zu "
                    "dense_terms=%zu sparse_terms=%zu\n",
                    stats.num_objects, stats.trained ? "yes" : "no",
                    stats.visual_words, stats.image_index_terms,
                    stats.text_index_terms);
            } else if (command == "costs") {
                const auto& meter = client.meter();
                std::printf(
                    "  encrypt=%.3fs network=%.3fs index=%.3fs train=%.3fs "
                    "(bytes up=%llu down=%llu)\n",
                    meter.seconds(sim::SubOp::kEncrypt),
                    meter.seconds(sim::SubOp::kNetwork),
                    meter.seconds(sim::SubOp::kIndex),
                    meter.seconds(sim::SubOp::kTrain),
                    static_cast<unsigned long long>(transport.bytes_up()),
                    static_cast<unsigned long long>(
                        transport.bytes_down()));
            } else if (command == "save") {
                std::string path;
                if (!(args >> path)) throw std::invalid_argument("save <path>");
                save_server_snapshot(cloud, path);
                std::cout << "cloud state saved to " << path << "\n";
            } else if (command == "load") {
                std::string path;
                if (!(args >> path)) throw std::invalid_argument("load <path>");
                load_server_snapshot(cloud, path);
                std::cout << "cloud state restored from " << path << "\n";
            } else {
                std::cout << "unknown command '" << command
                          << "' — type 'help'\n";
            }
        } catch (const std::exception& error) {
            std::cout << "error: " << error.what() << "\n";
        }
    }
    if (durable) durable->sync();  // clean shutdown: no replay next open
    return 0;
}
