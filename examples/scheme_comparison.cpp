// Scheme comparison walkthrough: the same workload driven through MIE,
// MSSE, and Hom-MSSE via the common SearchableScheme interface, printing
// where each scheme spends its client's time. A miniature, annotated
// version of the paper's evaluation.
//
//   ./scheme_comparison
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "baseline/hom_msse_client.hpp"
#include "baseline/hom_msse_server.hpp"
#include "baseline/msse_client.hpp"
#include "baseline/msse_server.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

int main() {
    using namespace mie;

    const sim::FlickrLikeGenerator camera(sim::FlickrLikeParams{
        .num_classes = 4, .image_size = 64, .seed = 5});
    constexpr std::size_t kNumObjects = 16;
    const Bytes entropy = to_bytes("comparison-entropy");

    struct Deployment {
        std::string name;
        std::shared_ptr<net::RequestHandler> server;
        std::unique_ptr<net::MeteredTransport> transport;
        std::unique_ptr<SearchableScheme> client;
    };
    std::vector<Deployment> deployments;

    {
        auto server = std::make_shared<MieServer>();
        auto transport = std::make_unique<net::MeteredTransport>(
            *server, net::LinkProfile::mobile());
        auto client = std::make_unique<MieClient>(
            *transport, "demo", RepositoryKey::generate(entropy, 64, 128,
                                                        0.7978845608),
            to_bytes("user"));
        deployments.push_back({"MIE", server, std::move(transport),
                               std::move(client)});
    }
    {
        auto server = std::make_shared<baseline::MsseServer>();
        auto transport = std::make_unique<net::MeteredTransport>(
            *server, net::LinkProfile::mobile());
        auto client = std::make_unique<baseline::MsseClient>(
            *transport, "demo", entropy, to_bytes("user"));
        deployments.push_back({"MSSE", server, std::move(transport),
                               std::move(client)});
    }
    {
        auto server = std::make_shared<baseline::HomMsseServer>();
        auto transport = std::make_unique<net::MeteredTransport>(
            *server, net::LinkProfile::mobile());
        baseline::HomMsseParams params;
        params.paillier_bits = 256;
        auto client = std::make_unique<baseline::HomMsseClient>(
            *transport, "demo", entropy, to_bytes("user"), params);
        deployments.push_back({"Hom-MSSE", server, std::move(transport),
                               std::move(client)});
    }

    for (auto& deployment : deployments) {
        SearchableScheme& scheme = *deployment.client;
        scheme.create_repository();
        for (const auto& object : camera.make_batch(0, kNumObjects)) {
            scheme.update(object);
        }
        scheme.train();
        const auto results = scheme.search(camera.make(3), 3);

        const auto& meter = scheme.meter();
        std::printf(
            "%-9s top-1=%llu | encrypt %7.3fs  network %7.3fs  "
            "index %7.3fs  train %7.3fs | bytes up %8llu\n",
            deployment.name.c_str(),
            results.empty()
                ? 0ULL
                : static_cast<unsigned long long>(results[0].object_id),
            meter.seconds(sim::SubOp::kEncrypt),
            meter.seconds(sim::SubOp::kNetwork),
            meter.seconds(sim::SubOp::kIndex),
            meter.seconds(sim::SubOp::kTrain),
            static_cast<unsigned long long>(
                deployment.transport->bytes_up()));
    }

    std::cout << "\nReading the rows:\n"
                 "  * MIE's train column is zero — clustering and indexing "
                 "ran on the cloud over DPE encodings.\n"
                 "  * MSSE pays for training and per-update clustering on "
                 "the device.\n"
                 "  * Hom-MSSE additionally pays Paillier for every index "
                 "entry (the encrypt column).\n";
    return 0;
}
