// Cluster quickstart: two shards, each a primary + follower pair of
// cluster::Node replicas served over real TCP by the epoll reactor.
// Repositories are routed to shards by the HKDF router, each primary's
// write-ahead log is shipped to its follower, a cross-repository ranked
// search scatter/gathers over both shards, and killing one primary
// mid-session fails over to its promoted follower without losing an
// acknowledged write (DESIGN.md §13).
//
//   ./cluster_quickstart
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/node.hpp"
#include "cluster/replication.hpp"
#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "mie/wire.hpp"
#include "net/tcp.hpp"
#include "reactor/reactor.hpp"
#include "sim/dataset.hpp"
#include "store/file.hpp"

namespace {

using namespace mie;

/// One replica: a cluster node on its own reactor + group committer.
struct Replica {
    Replica(const std::filesystem::path& dir, cluster::Role role)
        : node(store::PosixVfs::instance(), dir,
               cluster::NodeOptions{.role = role}),
          committer(node),
          server(node, &committer, is_mutating_request) {
        server.start();
    }
    ~Replica() {
        server.stop();
        committer.stop();
    }

    cluster::Node node;
    reactor::GroupCommitter committer;
    reactor::ReactorServer server;
};

/// Remembers the last request it forwarded — used below to hand the
/// clients' encoded search RPCs to the scatter/gather merge.
struct LastRequestTap final : net::Transport {
    explicit LastRequestTap(net::Transport& inner) : inner(inner) {}
    Bytes call(BytesView request) override {
        last.assign(request.begin(), request.end());
        return inner.call(request);
    }
    net::Transport& inner;
    Bytes last;
};

}  // namespace

int main() {
    const auto root = std::filesystem::temp_directory_path() /
                      ("mie-cluster-quickstart-" + std::to_string(::getpid()));
    std::filesystem::remove_all(root);

    // --- Spin up 2 shards x (primary, follower), four nodes total. -------
    auto p0 = std::make_unique<Replica>(root / "s0-primary",
                                        cluster::Role::kPrimary);
    auto p1 = std::make_unique<Replica>(root / "s1-primary",
                                        cluster::Role::kPrimary);
    Replica f0(root / "s0-follower", cluster::Role::kFollower);
    Replica f1(root / "s1-follower", cluster::Role::kFollower);
    std::printf("shard 0: primary :%u follower :%u\n", p0->server.port(),
                f0.server.port());
    std::printf("shard 1: primary :%u follower :%u\n", p1->server.port(),
                f1.server.port());

    // Followers pull their primary's WAL over their own connections.
    net::TcpTransport feed0("127.0.0.1", p0->server.port());
    net::TcpTransport feed1("127.0.0.1", p1->server.port());
    cluster::Replicator pump0(f0.node, feed0);
    cluster::Replicator pump1(f1.node, feed1);

    // --- One ClusterClient routes every repository to its shard. ---------
    net::TcpTransport to_p0("127.0.0.1", p0->server.port());
    net::TcpTransport to_p1("127.0.0.1", p1->server.port());
    net::TcpTransport to_f0("127.0.0.1", f0.server.port());
    net::TcpTransport to_f1("127.0.0.1", f1.server.port());
    cluster::ClusterClient cluster(
        {{&to_p0, &to_f0}, {&to_p1, &to_f1}});

    // These two happen to route to different shards — shard placement is
    // a deterministic function of the repository id alone.
    const std::vector<std::string> repos = {"alice-photos", "carol-notes"};
    std::vector<std::unique_ptr<LastRequestTap>> taps;
    std::vector<std::unique_ptr<MieClient>> users;
    for (const auto& repo : repos) {
        std::printf("repository %-12s -> shard %u\n", repo.c_str(),
                    cluster.shard_of(repo));
        taps.push_back(std::make_unique<LastRequestTap>(cluster));
        auto user = std::make_unique<MieClient>(
            *taps.back(), repo,
            RepositoryKey::generate(to_bytes("demo-" + repo), 64, 64,
                                    0.7978845608),
            to_bytes("secret-" + repo));
        user->train_params.tree_branch = 4;
        user->train_params.tree_depth = 2;
        users.push_back(std::move(user));
    }

    // --- Load and train both repositories through the cluster. -----------
    for (std::size_t u = 0; u < users.size(); ++u) {
        const sim::FlickrLikeGenerator media(sim::FlickrLikeParams{
            .num_classes = 2, .image_size = 48, .seed = 7 + u});
        users[u]->create_repository();
        for (const auto& object : media.make_batch(0, 6)) {
            users[u]->update(object);
        }
        users[u]->train();
        cluster::Replicator& pump =
            cluster.shard_of(repos[u]) == 0 ? pump0 : pump1;
        std::printf("%s: loaded 6 objects, replicated %zu WAL records\n",
                    repos[u].c_str(), pump.sync());
    }

    // --- Cross-repository ranked search: scatter, gather, k-way merge. ---
    const sim::FlickrLikeGenerator probe(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 48, .seed = 7});
    std::vector<cluster::RepoSearch> scatter;
    for (std::size_t u = 0; u < users.size(); ++u) {
        users[u]->search(probe.make(2), 3);  // encodes + routes the query
        scatter.push_back({repos[u], taps[u]->last});
    }
    const auto merged = cluster.search_union(scatter, 4);
    std::printf("\ncross-repo search, top %zu of both shards:\n",
                merged.size());
    for (const auto& hit : merged) {
        std::printf("  %-12s object %3llu  score %.4f\n",
                    hit.repo_id.c_str(),
                    static_cast<unsigned long long>(hit.object_id),
                    hit.score);
    }

    // --- Failover: kill alice's primary mid-session. ----------------------
    const std::uint32_t hit_shard = cluster.shard_of(repos[0]);
    std::printf("\nstopping shard %u's primary...\n", hit_shard);
    (hit_shard == 0 ? p0 : p1).reset();

    const sim::FlickrLikeGenerator more(
        sim::FlickrLikeParams{.num_classes = 2, .image_size = 48, .seed = 7});
    users[0]->update(more.make(100));  // retries, promotes, replays
    std::printf("update survived: failovers=%llu, shard %u now served by "
                "its promoted follower\n",
                static_cast<unsigned long long>(cluster.stats().failovers),
                hit_shard);

    const auto after = users[0]->search(more.make(100), 1);
    std::printf("search after failover: object %llu (score %.4f)\n",
                static_cast<unsigned long long>(after.front().object_id),
                after.front().score);

    std::filesystem::remove_all(root);
    return 0;
}
