// Quickstart: the smallest end-to-end MIE program.
//
// Creates an encrypted multimodal repository in a (simulated) cloud,
// uploads a handful of image+text objects, outsources training, and runs
// a multimodal query-by-example — all through the public MIE API.
//
//   ./quickstart
#include <cstdio>
#include <iostream>

#include "crypto/drbg.hpp"
#include "crypto/entropy.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

int main() {
    using namespace mie;

    // --- Cloud side -------------------------------------------------------
    // In production this runs in the provider's infrastructure; here it is
    // in-process behind a metered transport that models the WAN (EC2-like
    // 52 ms RTT over WiFi).
    MieServer cloud;
    net::MeteredTransport transport(cloud, net::LinkProfile::mobile());

    // --- Client side ------------------------------------------------------
    // The repository key bundles the Dense-DPE key (images) and Sparse-DPE
    // key (text); share it with the users you trust. The user secret seeds
    // per-object data keys.
    const RepositoryKey repo_key = RepositoryKey::generate(
        crypto::entropy::os_random(32), /*input_dims=*/64, /*output_bits=*/128,
        /*delta=*/0.7978845608);  // delta -> distance threshold t = 0.5
    MieClient client(transport, "my-photos", repo_key,
                     to_bytes("alice-master-secret"));

    client.create_repository();

    // Some multimodal objects (synthetic stand-ins for photos with tags).
    sim::FlickrLikeGenerator camera(
        sim::FlickrLikeParams{.num_classes = 4, .image_size = 64, .seed = 1});
    for (const auto& photo : camera.make_batch(0, 12)) {
        client.update(photo);  // extract -> DPE-encode -> encrypt -> upload
    }

    // Outsource the heavy lifting: the CLOUD clusters the encoded features
    // and builds the searchable index. The client just sends one message.
    client.train();

    // Query by example: any multimodal object works as a query.
    const auto query = camera.make(5);
    const auto results = client.search(query, /*top_k=*/3);

    std::cout << "Top results for query object " << query.id << ":\n";
    for (const auto& result : results) {
        const auto object = client.decrypt_result(result);
        std::printf("  object %llu  score %.3f  tags: %s\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score, object.text.c_str());
    }

    std::printf(
        "\nClient cost: encrypt %.3fs, network %.3fs, index %.3fs, "
        "train %.3fs (training was outsourced)\n",
        client.meter().seconds(sim::SubOp::kEncrypt),
        client.meter().seconds(sim::SubOp::kNetwork),
        client.meter().seconds(sim::SubOp::kIndex),
        client.meter().seconds(sim::SubOp::kTrain));
    return 0;
}
