// Three-modality repository: photos with text tags AND voice annotations.
//
// Shows the framework's open-ended multimodality (the paper's design
// supports "text, image, audio, and/or video"): the audio modality is a
// first-class dense modality with its own cloud-side vocabulary and index,
// fused with image and text results at query time. Queries can use any
// subset of modalities — including humming-style audio-only search.
//
//   ./voice_tagged_photos
#include <cstdio>
#include <iostream>

#include "crypto/drbg.hpp"
#include "crypto/entropy.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

int main() {
    using namespace mie;

    MieServer cloud;
    net::MeteredTransport transport(cloud, net::LinkProfile::mobile());
    MieClient client(transport, "voice-album",
                     RepositoryKey::generate(crypto::entropy::os_random(32), 64, 128,
                                             0.7978845608),
                     to_bytes("user-secret"));
    client.create_repository();

    // Objects carry an image, tags, and a short voice memo.
    sim::FlickrLikeGenerator camera(sim::FlickrLikeParams{
        .num_classes = 5,
        .image_size = 64,
        .with_audio = true,
        .audio_samples = 4096,
        .seed = 42});
    for (const auto& memo : camera.make_batch(0, 15)) {
        client.update(memo);
    }
    client.train();

    const auto stats = cloud.stats("voice-album");
    std::printf(
        "Cloud indexes %zu dense modalities (image + audio) and %zu sparse "
        "(text); %zu visual words total.\n",
        stats.dense_modalities, stats.sparse_modalities,
        stats.visual_words);

    // Full multimodal query.
    const auto query = camera.make(7);
    auto results = client.search(query, 3);
    std::cout << "\nFull multimodal query (image+text+audio):\n";
    for (const auto& result : results) {
        std::printf("  object %llu  score %.3f\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score);
    }

    // Audio-only query: "find photos whose voice memo sounds like this".
    auto audio_query = camera.make(8);
    audio_query.image = features::Image(16, 16);  // no image features
    audio_query.text.clear();                     // no text features
    results = client.search(audio_query, 3);
    std::cout << "\nAudio-only query:\n";
    for (const auto& result : results) {
        const auto object = client.decrypt_result(result);
        std::printf("  object %llu  score %.3f  (class %llu, query class "
                    "%u)\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score,
                    static_cast<unsigned long long>(object.id % 5),
                    audio_query.label);
    }
    std::cout << "\nThe cloud matched voice memos without ever hearing "
                 "them: audio descriptors travel as Dense-DPE encodings.\n";
    return 0;
}
