// Shared photo album: multiple users writing to one encrypted repository.
//
// Demonstrates the multi-writer capability that motivates MIE's design
// (Fig. 1 of the paper): the album creator generates and shares the
// repository key; every key holder can add photos and search the whole
// album, each with their own device and data keys. The cloud trains and
// indexes without seeing a single plaintext pixel or tag.
//
//   ./photo_sharing
#include <cstdio>
#include <iostream>

#include "crypto/drbg.hpp"
#include "crypto/entropy.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"
#include "sim/device.hpp"

int main() {
    using namespace mie;

    MieServer cloud;

    // Alice creates the album from her phone and shares the repository key
    // with Bob out of band (e.g. via a key-sharing protocol, §III-A).
    const RepositoryKey album_key = RepositoryKey::generate(
        crypto::entropy::os_random(32), 64, 128, 0.7978845608);

    const auto phone = sim::DeviceProfile::mobile();
    const auto laptop = sim::DeviceProfile::desktop();

    net::MeteredTransport alice_link(cloud, phone.link);
    MieClient alice(alice_link, "family-album", album_key,
                    to_bytes("alice-secret"), phone.cpu_scale);

    net::MeteredTransport bob_link(cloud, laptop.link);
    MieClient bob(bob_link, "family-album", album_key,
                  to_bytes("bob-secret"), laptop.cpu_scale);

    alice.create_repository();

    // Both users upload photos; no coordination needed between them.
    sim::FlickrLikeGenerator alices_camera(sim::FlickrLikeParams{
        .num_classes = 3, .image_size = 64, .seed = 10});
    sim::FlickrLikeGenerator bobs_camera(sim::FlickrLikeParams{
        .num_classes = 3, .image_size = 64, .seed = 20});

    for (const auto& photo : alices_camera.make_batch(0, 8)) {
        alice.update(photo);
    }
    for (const auto& photo : bobs_camera.make_batch(100, 8)) {
        bob.update(photo);
    }

    // Anyone with the key may trigger (cloud-side) training.
    bob.train();

    // Alice can find Bob's photos...
    const auto bobs_photo = bobs_camera.make(103);
    auto results = alice.search(bobs_photo, 3);
    std::cout << "Alice searches with one of Bob's photos:\n";
    for (const auto& result : results) {
        std::printf("  matched object %llu (score %.3f)\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score);
    }
    // ...but to open the full photo she needs the data key dkp, which Bob
    // grants per object (fine-grained access control). Here Bob decrypts
    // on her behalf:
    if (!results.empty() && results.front().object_id >= 100) {
        const auto photo = bob.decrypt_result(results.front());
        std::printf("Bob shares the decrypted photo: id=%llu tags=\"%s\"\n",
                    static_cast<unsigned long long>(photo.id),
                    photo.text.c_str());
    }

    // Dynamic maintenance: Bob removes a photo; it disappears for everyone.
    bob.remove(103);
    results = alice.search(bobs_photo, 3);
    bool still_there = false;
    for (const auto& result : results) {
        if (result.object_id == 103) still_there = true;
    }
    std::printf("After Bob removes object 103 it %s in Alice's results.\n",
                still_there ? "STILL APPEARS (bug!)" : "no longer appears");

    const auto stats = cloud.stats("family-album");
    std::printf(
        "\nCloud view: %zu encrypted objects, %zu visual words, trained=%s "
        "— and zero plaintext.\n",
        stats.num_objects, stats.visual_words,
        stats.trained ? "yes" : "no");
    return 0;
}
