// Remote deployment: the MIE cloud served over real TCP sockets, with the
// repository key distributed through the signed key-sharing protocol —
// the closest this repository gets to the paper's production picture
// (Fig. 1) on one machine.
//
//   ./remote_cloud
#include <cstdio>
#include <iostream>

#include "crypto/drbg.hpp"
#include "crypto/entropy.hpp"
#include "mie/client.hpp"
#include "mie/key_sharing.hpp"
#include "mie/persistence.hpp"
#include "mie/server.hpp"
#include "net/tcp.hpp"
#include "sim/dataset.hpp"

int main() {
    using namespace mie;

    // --- The provider boots the cloud service on a TCP port. -------------
    MieServer cloud;
    net::TcpServer service(cloud);  // ephemeral loopback port
    service.start();
    std::printf("Cloud service listening on 127.0.0.1:%u\n",
                service.port());

    // --- Alice creates a repository and invites Bob. ----------------------
    crypto::CtrDrbg alice_rng(crypto::entropy::os_random(32));
    const auto alice_id = crypto::RsaKeyPair::generate(alice_rng, 1024);
    crypto::CtrDrbg bob_rng(crypto::entropy::os_random(32));
    const auto bob_id = crypto::RsaKeyPair::generate(bob_rng, 1024);

    const RepositoryKey repo_key = RepositoryKey::generate(
        crypto::entropy::os_random(32), 64, 128, 0.7978845608);

    net::TcpTransport alice_link("127.0.0.1", service.port());
    MieClient alice(alice_link, "shared", repo_key,
                    to_bytes("alice-secret"));
    alice.create_repository();

    sim::FlickrLikeGenerator camera(
        sim::FlickrLikeParams{.num_classes = 4, .image_size = 64, .seed = 8});
    for (const auto& photo : camera.make_batch(0, 10)) {
        alice.update(photo);
    }
    alice.train();

    // The invitation travels out of band as a signed, encrypted envelope.
    const KeyEnvelope invitation = share_repository_key(
        repo_key, "shared", bob_id.public_key(), alice_id.private_key(),
        alice_rng);
    const Bytes wire_envelope = invitation.serialize();
    std::printf("Alice sends Bob a %zu-byte signed key envelope.\n",
                wire_envelope.size());

    // --- Bob verifies, unwraps, connects, and searches. ------------------
    const auto received = open_repository_key(
        KeyEnvelope::deserialize(wire_envelope), bob_id.private_key(),
        alice_id.public_key());
    if (!received) {
        std::cout << "Envelope signature failed — aborting.\n";
        return 1;
    }
    net::TcpTransport bob_link("127.0.0.1", service.port());
    MieClient bob(bob_link, "shared", *received, to_bytes("bob-secret"));

    const auto results = bob.search(camera.make(3), 3);
    std::cout << "Bob searches over TCP and gets:\n";
    for (const auto& result : results) {
        std::printf("  object %llu  score %.3f\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score);
    }
    std::printf("Bob's measured round-trip time so far: %.1f ms\n",
                bob_link.network_seconds() * 1e3);

    // --- The provider snapshots state and "restarts". --------------------
    const auto snapshot_path =
        std::filesystem::temp_directory_path() / "mie_remote_cloud.snap";
    save_server_snapshot(cloud, snapshot_path);
    service.stop();
    std::cout << "\nCloud restarts from its snapshot...\n";

    MieServer restarted;
    load_server_snapshot(restarted, snapshot_path);
    net::TcpServer service2(restarted);
    service2.start();

    net::TcpTransport bob_link2("127.0.0.1", service2.port());
    MieClient bob_again(bob_link2, "shared", *received,
                        to_bytes("bob-secret"));
    const auto after = bob_again.search(camera.make(3), 1);
    std::printf("After the restart Bob still finds object %llu.\n",
                after.empty() ? 0ULL
                              : static_cast<unsigned long long>(
                                    after.front().object_id));
    std::filesystem::remove(snapshot_path);
    return 0;
}
