// Personal Health Records (PHR): the paper's §III-C application use case.
//
// Medical centers share a specialty-based repository: doctors upload
// multimodal records (a scan image + clinical notes) for their patients
// and search for similar cases across institutions. Repository keys are
// shared between cooperating doctors; data keys stay with each record's
// owner, so finding a similar case and reading its full contents are
// separate privileges.
//
//   ./health_records
#include <cstdio>
#include <iostream>
#include <map>

#include "crypto/drbg.hpp"
#include "crypto/entropy.hpp"
#include "mie/client.hpp"
#include "mie/server.hpp"
#include "sim/dataset.hpp"

namespace {

/// Clinical vocabulary per (synthetic) condition class, standing in for
/// the text modality of a PHR.
std::string notes_for_condition(std::uint32_t condition, std::uint64_t id) {
    static const char* kConditions[] = {
        "chronic hypertension elevated systolic pressure medication",
        "type two diabetes insulin glucose monitoring metformin",
        "asthma bronchial wheezing inhaler corticosteroid",
        "arrhythmia palpitations irregular heartbeat monitoring",
    };
    return std::string(kConditions[condition % 4]) + " patient case " +
           std::to_string(id);
}

}  // namespace

int main() {
    using namespace mie;

    MieServer cloud;  // the PHR provider's backend

    // The cardiology alliance shares one repository key between doctors.
    const RepositoryKey alliance_key = RepositoryKey::generate(
        crypto::entropy::os_random(32), 64, 128, 0.7978845608);

    net::MeteredTransport dr_chen_link(cloud, net::LinkProfile::mobile());
    MieClient dr_chen(dr_chen_link, "cardiology-alliance", alliance_key,
                      to_bytes("dr-chen-keyring"));

    net::MeteredTransport dr_costa_link(cloud, net::LinkProfile::desktop());
    MieClient dr_costa(dr_costa_link, "cardiology-alliance", alliance_key,
                       to_bytes("dr-costa-keyring"));

    dr_chen.create_repository();

    // Each record: a scan (image modality, synthesized per condition) and
    // clinical notes (text modality).
    sim::FlickrLikeGenerator scans(sim::FlickrLikeParams{
        .num_classes = 4, .image_size = 64, .tags_per_object = 0, .seed = 3});
    std::map<std::uint64_t, std::uint32_t> ground_truth;

    std::uint64_t record_id = 0;
    for (int i = 0; i < 10; ++i) {  // Dr. Chen's patients
        auto record = scans.make(record_id);
        record.text = notes_for_condition(record.label, record.id);
        ground_truth[record.id] = record.label;
        dr_chen.update(record);
        ++record_id;
    }
    for (int i = 0; i < 10; ++i) {  // Dr. Costa's patients
        auto record = scans.make(record_id);
        record.text = notes_for_condition(record.label, record.id);
        ground_truth[record.id] = record.label;
        dr_costa.update(record);
        ++record_id;
    }

    // The provider's cloud performs the clustering/indexing work.
    dr_chen.train();

    // Dr. Chen has a new patient and looks for similar prior cases — the
    // query is itself a multimodal record (scan + draft notes).
    auto new_case = scans.make(500);
    new_case.text = notes_for_condition(new_case.label, 500);
    std::printf("New patient presents with condition class %u.\n",
                new_case.label);

    const auto similar = dr_chen.search(new_case, 5);
    std::cout << "Similar prior cases in the alliance repository:\n";
    int same_condition = 0;
    for (const auto& result : similar) {
        const std::uint32_t condition = ground_truth.at(result.object_id);
        std::printf("  record %llu  score %.3f  condition class %u%s\n",
                    static_cast<unsigned long long>(result.object_id),
                    result.score, condition,
                    condition == new_case.label ? "  <-- same condition"
                                                : "");
        if (condition == new_case.label) ++same_condition;
    }
    std::printf("%d of %zu retrieved cases share the condition.\n",
                same_condition, similar.size());

    // Reading a matched record's full contents requires its data key —
    // Dr. Costa (the record owner / patient's proxy) decrypts on request.
    for (const auto& result : similar) {
        if (result.object_id >= 10) {  // one of Dr. Costa's records
            const auto record = dr_costa.decrypt_result(result);
            std::printf(
                "With the owner's data key, record %llu opens: \"%s\"\n",
                static_cast<unsigned long long>(record.id),
                record.text.c_str());
            break;
        }
    }

    std::cout << "\nThe provider stored and indexed everything without "
                 "seeing a single diagnosis.\n";
    return 0;
}
