// Versioned, checksummed, mmap-able on-disk index snapshot format (v1).
//
// The format follows the fwrite/fread discipline of the mife-style
// serializers (SNIPPETS.md): every scalar is written little-endian at an
// explicit offset, every variable-length field is length-prefixed, and
// writer/reader pad to the field's natural alignment so a mapped file can
// be parsed with aligned loads. The file is immutable once written
// (store::atomic_write_file publishes it), so readers mmap it read-only
// and validate lazily:
//
//   open()            validates the fixed header and the table of
//                     contents only — O(#sections), independent of index
//                     size. This is what makes server restart O(1).
//   section(i)        validates that section's CRC-32C (kernel-dispatched)
//                     on first access, then hands out a zero-copy view.
//
// File layout (all offsets 8-aligned, little-endian):
//
//   offset  size  field
//   0       8     magic "MIESNAP\n"
//   8       4     version (= kSnapshotVersion)
//   12      4     section_count
//   16      8     file_size (must equal the actual size)
//   24      8     toc_offset
//   32      4     toc_crc      CRC-32C of [toc_offset, file_size)
//   36      4     header_crc   CRC-32C of bytes [0, 36)
//   40      ...   section bodies, each starting 8-aligned, zero-padded
//   toc_offset    per section: u64 offset | u64 size | u32 crc | name
//
// Section names and bodies are the caller's contract; MieServer stores
// one section per repository (name = repository id) — see server.cpp for
// the body layout. This header also provides the serializers for the two
// index structures every section embeds: the vocabulary tree (either
// metric space) and the inverted index, both emitted in sorted order so
// bytes are a pure function of logical state (lint rule R3).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dpe/bitcode.hpp"
#include "features/feature.hpp"
#include "index/inverted_index.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "util/bytes.hpp"

namespace mie::index {

/// Thrown on any malformed snapshot: bad magic, unsupported version,
/// truncation, CRC mismatch, or inconsistent structure. DurableServer
/// treats it as "checkpoint unusable" and falls back to WAL replay.
class SnapshotError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderSize = 40;
inline constexpr char kSnapshotMagic[8] = {'M', 'I', 'E', 'S',
                                           'N', 'A', 'P', '\n'};

/// Little-endian, alignment-padded serializer for one section body.
/// u64/f64 fields align to 8, u32/f32 to 4; byte strings are u32-length-
/// prefixed and padded back to 4. The section builder places bodies at
/// 8-aligned file offsets, so in-buffer alignment equals in-file
/// alignment.
class SnapshotWriter {
public:
    void write_u32(std::uint32_t v) {
        align(4);
        append_le(buffer_, v);
    }
    void write_u64(std::uint64_t v) {
        align(8);
        append_le(buffer_, v);
    }
    void write_f32(float v) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        write_u32(bits);
    }
    void write_bytes(BytesView data) {
        write_u32(static_cast<std::uint32_t>(data.size()));
        buffer_.insert(buffer_.end(), data.begin(), data.end());
        align(4);
    }
    void write_string(std::string_view s) {
        write_bytes(BytesView(
            reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    }

    std::size_t size() const { return buffer_.size(); }
    Bytes take() { return std::move(buffer_); }

private:
    void align(std::size_t boundary) {
        while (buffer_.size() % boundary != 0) buffer_.push_back(0);
    }

    Bytes buffer_;
};

/// Mirror-image reader over a (mapped) section body. Every read checks
/// bounds and throws SnapshotError on truncation, so a corrupt length
/// field cannot walk off the mapping.
class SnapshotCursor {
public:
    explicit SnapshotCursor(BytesView data) : data_(data) {}

    std::uint32_t read_u32() {
        align(4);
        const std::uint32_t v = read_scalar<std::uint32_t>();
        return v;
    }
    std::uint64_t read_u64() {
        align(8);
        return read_scalar<std::uint64_t>();
    }
    float read_f32() {
        const std::uint32_t bits = read_u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    /// Zero-copy view of a length-prefixed byte string.
    BytesView read_bytes_view() {
        const std::uint32_t len = read_u32();
        require(len);
        const BytesView view = data_.subspan(offset_, len);
        offset_ += len;
        align(4);
        return view;
    }
    Bytes read_bytes() {
        const BytesView view = read_bytes_view();
        return Bytes(view.begin(), view.end());
    }
    std::string read_string() {
        const BytesView view = read_bytes_view();
        return std::string(view.begin(), view.end());
    }

    bool at_end() const { return offset_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - offset_; }

private:
    template <typename T>
    T read_scalar() {
        require(sizeof(T));
        const T v = read_le<T>(data_, offset_);
        offset_ += sizeof(T);
        return v;
    }
    void align(std::size_t boundary) {
        while (offset_ % boundary != 0) {
            require(1);
            ++offset_;
        }
    }
    void require(std::size_t n) const {
        if (offset_ + n > data_.size()) {
            throw SnapshotError("snapshot: truncated section");
        }
    }

    BytesView data_;
    std::size_t offset_ = 0;
};

/// Assembles header | sections | TOC into a complete snapshot file image.
/// Callers persist the result with store::atomic_write_file so readers
/// only ever see complete files.
class SnapshotFileBuilder {
public:
    void add_section(std::string name, Bytes body);
    Bytes finish() const;

private:
    struct Section {
        std::string name;
        Bytes body;
    };
    std::vector<Section> sections_;
};

/// A read-only snapshot, either mmap'ed from disk or adopted from an
/// in-memory buffer. open() cost is O(#sections); section bodies are CRC-
/// validated on first access. Instances are shared (shared_ptr) because
/// lazily-materialized server repositories keep the mapping alive until
/// every section they reference has been parsed.
class MappedSnapshot {
public:
    /// Maps `path` read-only and validates header + TOC. Throws
    /// SnapshotError on any malformation, store::IoError-compatible
    /// SnapshotError on I/O failure.
    static std::shared_ptr<MappedSnapshot> open(
        const std::filesystem::path& path);

    /// Adopts an in-memory file image (tests, corruption harnesses).
    static std::shared_ptr<MappedSnapshot> from_bytes(Bytes data);

    ~MappedSnapshot();
    MappedSnapshot(const MappedSnapshot&) = delete;
    MappedSnapshot& operator=(const MappedSnapshot&) = delete;

    std::size_t num_sections() const { return sections_.size(); }
    const std::string& section_name(std::size_t i) const {
        return sections_.at(i).name;
    }
    std::uint64_t file_size() const { return size_; }

    /// The section body. First access pays one CRC-32C pass over the
    /// body (kernel-dispatched) and throws SnapshotError on mismatch;
    /// later accesses are free. Thread-safe for distinct sections.
    BytesView section(std::size_t i) const;

    /// Eagerly CRC-checks every section (one SIMD pass over the file, no
    /// deserialization). Durable recovery calls this before attaching the
    /// snapshot, so ANY corruption surfaces while WAL-replay fallback is
    /// still possible — not later, inside a request that lazily
    /// materializes a repository.
    void verify_all_sections() const {
        for (std::size_t i = 0; i < sections_.size(); ++i) section(i);
    }

private:
    MappedSnapshot() = default;

    struct SectionEntry {
        std::string name;
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
        std::uint32_t crc = 0;
    };

    /// Parses and validates header + TOC over data_/size_.
    void validate_layout();

    const std::uint8_t* data_ = nullptr;
    std::uint64_t size_ = 0;
    Bytes owned_;        ///< from_bytes storage (empty when mapped)
    void* mapping_ = nullptr;  ///< mmap base (nullptr when owned)
    std::vector<SectionEntry> sections_;
    /// Lazily-set per-section "CRC verified" flags; atomic because
    /// different repositories materialize concurrently.
    mutable std::unique_ptr<std::atomic<bool>[]> verified_;
};

// ---- Index-structure serializers ------------------------------------

/// Space tags pin the metric space into the bytes so a snapshot written
/// for one space cannot be misread as the other.
template <typename Space>
struct SnapshotSpaceTag;
template <>
struct SnapshotSpaceTag<HammingSpace> {
    static constexpr std::uint32_t value = 1;
};
template <>
struct SnapshotSpaceTag<EuclideanSpace> {
    static constexpr std::uint32_t value = 2;
};

inline void write_point(SnapshotWriter& writer, const dpe::BitCode& point) {
    writer.write_bytes(point.serialize());
}
inline void read_point(SnapshotCursor& cursor, dpe::BitCode& point) {
    point = dpe::BitCode::deserialize(cursor.read_bytes_view());
}
inline void write_point(SnapshotWriter& writer,
                        const features::FeatureVec& point) {
    writer.write_u32(static_cast<std::uint32_t>(point.size()));
    for (const float v : point) writer.write_f32(v);
}
inline void read_point(SnapshotCursor& cursor, features::FeatureVec& point) {
    const std::uint32_t dims = cursor.read_u32();
    point.clear();
    point.reserve(dims);
    for (std::uint32_t i = 0; i < dims; ++i) {
        point.push_back(cursor.read_f32());
    }
}

/// Serializes a vocabulary tree via its flattened image.
template <typename Space>
void write_vocab_tree(SnapshotWriter& writer, const VocabTree<Space>& tree) {
    const typename VocabTree<Space>::Flat flat = tree.flatten();
    writer.write_u32(SnapshotSpaceTag<Space>::value);
    writer.write_u32(flat.num_leaves);
    writer.write_u64(flat.params.branch);
    writer.write_u64(flat.params.depth);
    writer.write_u32(static_cast<std::uint32_t>(flat.params.kmeans_iterations));
    writer.write_u64(flat.params.min_node_size);
    writer.write_u64(flat.centroids.size());
    for (const auto& centroid : flat.centroids) write_point(writer, centroid);
    for (const std::uint32_t leaf : flat.leaf_ids) writer.write_u32(leaf);
    writer.write_u64(flat.child_offset.size());
    for (const std::uint32_t off : flat.child_offset) writer.write_u32(off);
    writer.write_u64(flat.child_index.size());
    for (const std::uint32_t child : flat.child_index) {
        writer.write_u32(child);
    }
}

/// Reads a tree back; VocabTree::assemble re-validates the structure, so
/// corruption that survives the CRC still fails cleanly.
template <typename Space>
VocabTree<Space> read_vocab_tree(SnapshotCursor& cursor) {
    if (cursor.read_u32() != SnapshotSpaceTag<Space>::value) {
        throw SnapshotError("snapshot: vocab tree has wrong metric space");
    }
    typename VocabTree<Space>::Flat flat;
    flat.num_leaves = cursor.read_u32();
    flat.params.branch = cursor.read_u64();
    flat.params.depth = cursor.read_u64();
    flat.params.kmeans_iterations = static_cast<int>(cursor.read_u32());
    flat.params.min_node_size = cursor.read_u64();
    const std::uint64_t num_nodes = cursor.read_u64();
    // Every node costs >= 4 bytes downstream; bound counts by the bytes
    // actually present so a corrupt length cannot trigger a huge resize.
    if (num_nodes > cursor.remaining()) {
        throw SnapshotError("snapshot: vocab tree node count too large");
    }
    flat.centroids.resize(num_nodes);
    for (auto& centroid : flat.centroids) read_point(cursor, centroid);
    flat.leaf_ids.resize(num_nodes);
    for (auto& leaf : flat.leaf_ids) leaf = cursor.read_u32();
    const std::uint64_t num_offsets = cursor.read_u64();
    if (num_offsets > cursor.remaining()) {
        throw SnapshotError("snapshot: vocab tree offset count too large");
    }
    flat.child_offset.resize(num_offsets);
    for (auto& off : flat.child_offset) off = cursor.read_u32();
    const std::uint64_t num_children = cursor.read_u64();
    if (num_children > cursor.remaining()) {
        throw SnapshotError("snapshot: vocab tree child count too large");
    }
    flat.child_index.resize(num_children);
    for (auto& child : flat.child_index) child = cursor.read_u32();
    try {
        return VocabTree<Space>::assemble(flat);
    } catch (const std::invalid_argument& error) {
        throw SnapshotError(std::string("snapshot: ") + error.what());
    }
}

/// Serializes an inverted index: terms sorted, postings doc-sorted, so
/// the bytes depend only on logical content (R3 discipline) and a round-
/// trip re-serializes to identical bytes.
void write_inverted_index(SnapshotWriter& writer, const InvertedIndex& index);
InvertedIndex read_inverted_index(SnapshotCursor& cursor);

}  // namespace mie::index
