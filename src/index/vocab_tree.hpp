// Hierarchical k-means vocabulary tree (Nistér & Stewénius, CVPR'06).
//
// The paper builds "a tree-like structure ... over all visual words,
// through hierarchical k-means" with height 3 and width 10 (§VI), giving
// 1000 visual words at the leaves while keeping quantization cost
// O(height * width) per descriptor. Generic over the metric-space policy so
// the cloud can build it over DPE encodings.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "index/kmeans.hpp"

namespace mie::index {

template <typename Space>
class VocabTree {
public:
    using Point = typename Space::Point;

    struct Params {
        std::size_t branch = 10;  ///< width: children per internal node
        std::size_t depth = 3;    ///< height: levels of k-means splits
        int kmeans_iterations = 10;
        std::size_t min_node_size = 2;  ///< don't split smaller nodes
    };

    VocabTree() = default;

    /// Builds the tree over training points. Deterministic given `seed`.
    static VocabTree build(const std::vector<Point>& points,
                           const Params& params, std::uint64_t seed) {
        if (points.empty()) {
            throw std::invalid_argument("VocabTree: no training points");
        }
        VocabTree tree;
        tree.params_ = params;
        tree.build_node(points, params.depth, seed);
        return tree;
    }

    /// Quantizes a point to a leaf id in [0, num_leaves()).
    std::uint32_t quantize(const Point& point) const {
        if (nodes_.empty()) {
            throw std::logic_error("VocabTree: not built");
        }
        std::size_t node = 0;
        while (!nodes_[node].children.empty()) {
            const Node& n = nodes_[node];
            std::uint32_t best = 0;
            double best_distance = std::numeric_limits<double>::infinity();
            for (std::uint32_t c = 0; c < n.children.size(); ++c) {
                const double d =
                    Space::distance(point, nodes_[n.children[c]].centroid);
                if (d < best_distance) {
                    best_distance = d;
                    best = c;
                }
            }
            node = n.children[best];
        }
        return nodes_[node].leaf_id;
    }

    std::size_t num_leaves() const { return num_leaves_; }
    bool empty() const { return nodes_.empty(); }

private:
    struct Node {
        Point centroid{};
        std::vector<std::size_t> children;  ///< indices into nodes_
        std::uint32_t leaf_id = 0;          ///< valid when children empty
    };

    // Recursively builds the subtree for `points`, returning its node index.
    std::size_t build_node(const std::vector<Point>& points,
                           std::size_t levels_left, std::uint64_t seed) {
        const std::size_t index = nodes_.size();
        nodes_.push_back(Node{});
        if (levels_left == 0 || points.size() < params_.min_node_size ||
            points.size() <= params_.branch) {
            // Leaf: represent all points by their centroid.
            std::vector<const Point*> all;
            all.reserve(points.size());
            for (const Point& p : points) all.push_back(&p);
            nodes_[index].centroid =
                Space::centroid(std::span<const Point* const>(all));
            nodes_[index].leaf_id = num_leaves_++;
            return index;
        }

        const auto clusters = kmeans<Space>(points, params_.branch,
                                            params_.kmeans_iterations, seed);
        nodes_[index].centroid = clusters.centroids[0];  // unused at root
        std::vector<std::vector<Point>> split(params_.branch);
        for (std::size_t i = 0; i < points.size(); ++i) {
            split[clusters.assignment[i]].push_back(points[i]);
        }
        for (std::size_t c = 0; c < params_.branch; ++c) {
            if (split[c].empty()) continue;
            const std::size_t child =
                build_node(split[c], levels_left - 1, seed + c + 1);
            // Child keeps the k-means centroid for routing.
            nodes_[child].centroid = clusters.centroids[c];
            nodes_[index].children.push_back(child);
        }
        return index;
    }

    Params params_;
    std::vector<Node> nodes_;
    std::uint32_t num_leaves_ = 0;
};

}  // namespace mie::index
