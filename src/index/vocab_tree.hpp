// Hierarchical k-means vocabulary tree (Nistér & Stewénius, CVPR'06).
//
// The paper builds "a tree-like structure ... over all visual words,
// through hierarchical k-means" with height 3 and width 10 (§VI), giving
// 1000 visual words at the leaves while keeping quantization cost
// O(height * width) per descriptor. Generic over the metric-space policy so
// the cloud can build it over DPE encodings.
//
// Construction is parallel on two axes: each node's k-means fans out
// internally (see kmeans.hpp), and sibling subtrees build concurrently as
// exec::TaskGroup tasks. Determinism is preserved structurally: every
// subtree is built into its own node fragment (leaf ids local to the
// fragment), and the parent splices fragments in child order with index /
// leaf-id offsets — reproducing the exact DFS-preorder layout and leaf
// numbering of a single-threaded build regardless of which task finishes
// first.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "index/kmeans.hpp"

namespace mie::index {

template <typename Space>
class VocabTree {
public:
    using Point = typename Space::Point;

    struct Params {
        std::size_t branch = 10;  ///< width: children per internal node
        std::size_t depth = 3;    ///< height: levels of k-means splits
        int kmeans_iterations = 10;
        std::size_t min_node_size = 2;  ///< don't split smaller nodes

        bool operator==(const Params& other) const = default;
    };

    VocabTree() = default;

    /// Builds the tree over training points. Deterministic given `seed`,
    /// at any thread count.
    static VocabTree build(const std::vector<Point>& points,
                           const Params& params, std::uint64_t seed) {
        if (points.empty()) {
            throw std::invalid_argument("VocabTree: no training points");
        }
        VocabTree tree;
        tree.params_ = params;
        Fragment root = tree.build_subtree(points, params.depth, seed);
        tree.nodes_ = std::move(root.nodes);
        tree.num_leaves_ = root.num_leaves;
        return tree;
    }

    /// Quantizes a point to a leaf id in [0, num_leaves()).
    std::uint32_t quantize(const Point& point) const {
        if (nodes_.empty()) {
            throw std::logic_error("VocabTree: not built");
        }
        return quantize_from(0, point);
    }

    /// Greedy descent starting at `node` (an index into the DFS-preorder
    /// node array); node 0 is the full exact walk. The IVF path descends
    /// from a coarse cell's subtree root instead — identical leaf, since
    /// the exact walk's first step is exactly the coarse-cell choice.
    std::uint32_t quantize_from(std::size_t node, const Point& point) const {
        while (!nodes_[node].children.empty()) {
            const Node& n = nodes_[node];
            std::uint32_t best = 0;
            double best_distance = std::numeric_limits<double>::infinity();
            for (std::uint32_t c = 0; c < n.children.size(); ++c) {
                const double d =
                    Space::distance(point, nodes_[n.children[c]].centroid);
                if (d < best_distance) {
                    best_distance = d;
                    best = c;
                }
            }
            node = n.children[best];
        }
        return nodes_[node].leaf_id;
    }

    /// The root's children in child order — the coarse cells the IVF
    /// query path probes. Empty for a single-leaf tree (too few training
    /// points to split), in which case there is nothing to probe.
    const std::vector<std::size_t>& root_children() const {
        if (nodes_.empty()) {
            throw std::logic_error("VocabTree: not built");
        }
        return nodes_[0].children;
    }

    /// Centroid of a node (coarse-cell routing reads subtree roots).
    const Point& centroid_of(std::size_t node) const {
        return nodes_.at(node).centroid;
    }

    std::size_t num_leaves() const { return num_leaves_; }
    std::size_t num_nodes() const { return nodes_.size(); }
    const Params& params() const { return params_; }
    bool empty() const { return nodes_.empty(); }

    /// Flattened structure-of-arrays image of the tree — the unit the
    /// snapshot format serializes. Node i's children are
    /// child_index[child_offset[i] .. child_offset[i + 1]).
    struct Flat {
        Params params;
        std::uint32_t num_leaves = 0;
        std::vector<Point> centroids;           ///< one per node
        std::vector<std::uint32_t> leaf_ids;    ///< 0 for internal nodes
        std::vector<std::uint32_t> child_offset;  ///< num_nodes + 1 entries
        std::vector<std::uint32_t> child_index;
    };

    Flat flatten() const {
        Flat flat;
        flat.params = params_;
        flat.num_leaves = num_leaves_;
        flat.centroids.reserve(nodes_.size());
        flat.leaf_ids.reserve(nodes_.size());
        flat.child_offset.reserve(nodes_.size() + 1);
        flat.child_offset.push_back(0);
        for (const Node& node : nodes_) {
            flat.centroids.push_back(node.centroid);
            flat.leaf_ids.push_back(node.children.empty() ? node.leaf_id : 0);
            for (const std::size_t child : node.children) {
                flat.child_index.push_back(static_cast<std::uint32_t>(child));
            }
            flat.child_offset.push_back(
                static_cast<std::uint32_t>(flat.child_index.size()));
        }
        return flat;
    }

    /// Rebuilds a tree from its flattened image, validating the structural
    /// invariants (DFS-preorder child indices, leaf numbering) so a
    /// corrupt snapshot fails cleanly instead of yielding a broken tree.
    /// assemble(flatten()) == *this, which the snapshot round-trip tests
    /// pin down for both metric spaces.
    static VocabTree assemble(const Flat& flat) {
        const std::size_t n = flat.centroids.size();
        if (flat.leaf_ids.size() != n || flat.child_offset.size() != n + 1 ||
            (n == 0 && (flat.child_index.size() != 0 ||
                        flat.num_leaves != 0))) {
            throw std::invalid_argument("VocabTree: inconsistent flat image");
        }
        VocabTree tree;
        tree.params_ = flat.params;
        if (n == 0) return tree;
        if (flat.child_offset.front() != 0 ||
            flat.child_offset.back() != flat.child_index.size()) {
            throw std::invalid_argument("VocabTree: bad child offsets");
        }
        std::uint32_t leaves = 0;
        tree.nodes_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (flat.child_offset[i] > flat.child_offset[i + 1]) {
                throw std::invalid_argument("VocabTree: bad child offsets");
            }
            Node& node = tree.nodes_[i];
            node.centroid = flat.centroids[i];
            for (std::uint32_t j = flat.child_offset[i];
                 j < flat.child_offset[i + 1]; ++j) {
                const std::uint32_t child = flat.child_index[j];
                // DFS preorder: every child strictly follows its parent.
                if (child <= i || child >= n) {
                    throw std::invalid_argument(
                        "VocabTree: child index out of preorder range");
                }
                node.children.push_back(child);
            }
            if (node.children.empty()) {
                node.leaf_id = flat.leaf_ids[i];
                if (node.leaf_id >= flat.num_leaves) {
                    throw std::invalid_argument(
                        "VocabTree: leaf id out of range");
                }
                ++leaves;
            }
        }
        if (leaves != flat.num_leaves) {
            throw std::invalid_argument("VocabTree: leaf count mismatch");
        }
        tree.num_leaves_ = flat.num_leaves;
        return tree;
    }

    /// Structural equality: same node layout, same centroids, same leaf
    /// numbering. The determinism tests assert this across thread counts.
    bool operator==(const VocabTree& other) const = default;

private:
    struct Node {
        Point centroid{};
        std::vector<std::size_t> children;  ///< indices into nodes_
        std::uint32_t leaf_id = 0;          ///< valid when children empty

        bool operator==(const Node& other) const = default;
    };

    /// A subtree built in isolation: node indices and leaf ids are local
    /// (root at 0, leaves numbered from 0 in DFS order).
    struct Fragment {
        std::vector<Node> nodes;
        std::uint32_t num_leaves = 0;
    };

    /// Sibling subtrees below this point count build inline rather than as
    /// pool tasks; the task-spawn overhead would outweigh the work.
    static constexpr std::size_t kSpawnThreshold = 768;

    // Builds the subtree for `points` as a self-contained fragment.
    Fragment build_subtree(const std::vector<Point>& points,
                           std::size_t levels_left,
                           std::uint64_t seed) const {
        Fragment fragment;
        if (levels_left == 0 || points.size() < params_.min_node_size ||
            points.size() <= params_.branch) {
            // Leaf: represent all points by their centroid.
            std::vector<const Point*> all;
            all.reserve(points.size());
            for (const Point& p : points) all.push_back(&p);
            Node leaf;
            leaf.centroid =
                Space::centroid(std::span<const Point* const>(all));
            leaf.leaf_id = 0;
            fragment.nodes.push_back(std::move(leaf));
            fragment.num_leaves = 1;
            return fragment;
        }

        const auto clusters = kmeans<Space>(points, params_.branch,
                                            params_.kmeans_iterations, seed);
        fragment.nodes.push_back(Node{});
        fragment.nodes[0].centroid = clusters.centroids[0];  // unused at root
        std::vector<std::vector<Point>> split(params_.branch);
        for (std::size_t i = 0; i < points.size(); ++i) {
            split[clusters.assignment[i]].push_back(points[i]);
        }

        // Children build concurrently, each into its own fragment. Seeds
        // are a function of (parent seed, child slot), exactly as in a
        // serial DFS.
        std::vector<Fragment> children(params_.branch);
        {
            exec::TaskGroup group;
            for (std::size_t c = 0; c < params_.branch; ++c) {
                if (split[c].empty()) continue;
                if (split[c].size() >= kSpawnThreshold) {
                    group.run([this, &children, &split, c, levels_left,
                               seed] {
                        children[c] = build_subtree(split[c],
                                                    levels_left - 1,
                                                    seed + c + 1);
                    });
                } else {
                    children[c] = build_subtree(split[c], levels_left - 1,
                                                seed + c + 1);
                }
            }
            group.wait();
        }

        // Splice fragments in child order: node indices shift by the
        // running node count, leaf ids by the running leaf count. This is
        // the DFS-preorder layout a recursive serial build produces.
        for (std::size_t c = 0; c < params_.branch; ++c) {
            if (children[c].nodes.empty()) continue;
            const std::size_t node_offset = fragment.nodes.size();
            const std::uint32_t leaf_offset = fragment.num_leaves;
            for (Node& node : children[c].nodes) {
                for (std::size_t& child_index : node.children) {
                    child_index += node_offset;
                }
                if (node.children.empty()) node.leaf_id += leaf_offset;
                fragment.nodes.push_back(std::move(node));
            }
            // Child root keeps the k-means centroid for routing.
            fragment.nodes[node_offset].centroid = clusters.centroids[c];
            fragment.nodes[0].children.push_back(node_offset);
            fragment.num_leaves += children[c].num_leaves;
        }
        return fragment;
    }

    Params params_;
    std::vector<Node> nodes_;
    std::uint32_t num_leaves_ = 0;
};

}  // namespace mie::index
