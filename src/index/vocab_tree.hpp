// Hierarchical k-means vocabulary tree (Nistér & Stewénius, CVPR'06).
//
// The paper builds "a tree-like structure ... over all visual words,
// through hierarchical k-means" with height 3 and width 10 (§VI), giving
// 1000 visual words at the leaves while keeping quantization cost
// O(height * width) per descriptor. Generic over the metric-space policy so
// the cloud can build it over DPE encodings.
//
// Construction is parallel on two axes: each node's k-means fans out
// internally (see kmeans.hpp), and sibling subtrees build concurrently as
// exec::TaskGroup tasks. Determinism is preserved structurally: every
// subtree is built into its own node fragment (leaf ids local to the
// fragment), and the parent splices fragments in child order with index /
// leaf-id offsets — reproducing the exact DFS-preorder layout and leaf
// numbering of a single-threaded build regardless of which task finishes
// first.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "index/kmeans.hpp"

namespace mie::index {

template <typename Space>
class VocabTree {
public:
    using Point = typename Space::Point;

    struct Params {
        std::size_t branch = 10;  ///< width: children per internal node
        std::size_t depth = 3;    ///< height: levels of k-means splits
        int kmeans_iterations = 10;
        std::size_t min_node_size = 2;  ///< don't split smaller nodes

        bool operator==(const Params& other) const = default;
    };

    VocabTree() = default;

    /// Builds the tree over training points. Deterministic given `seed`,
    /// at any thread count.
    static VocabTree build(const std::vector<Point>& points,
                           const Params& params, std::uint64_t seed) {
        if (points.empty()) {
            throw std::invalid_argument("VocabTree: no training points");
        }
        VocabTree tree;
        tree.params_ = params;
        Fragment root = tree.build_subtree(points, params.depth, seed);
        tree.nodes_ = std::move(root.nodes);
        tree.num_leaves_ = root.num_leaves;
        return tree;
    }

    /// Quantizes a point to a leaf id in [0, num_leaves()).
    std::uint32_t quantize(const Point& point) const {
        if (nodes_.empty()) {
            throw std::logic_error("VocabTree: not built");
        }
        std::size_t node = 0;
        while (!nodes_[node].children.empty()) {
            const Node& n = nodes_[node];
            std::uint32_t best = 0;
            double best_distance = std::numeric_limits<double>::infinity();
            for (std::uint32_t c = 0; c < n.children.size(); ++c) {
                const double d =
                    Space::distance(point, nodes_[n.children[c]].centroid);
                if (d < best_distance) {
                    best_distance = d;
                    best = c;
                }
            }
            node = n.children[best];
        }
        return nodes_[node].leaf_id;
    }

    std::size_t num_leaves() const { return num_leaves_; }
    bool empty() const { return nodes_.empty(); }

    /// Structural equality: same node layout, same centroids, same leaf
    /// numbering. The determinism tests assert this across thread counts.
    bool operator==(const VocabTree& other) const = default;

private:
    struct Node {
        Point centroid{};
        std::vector<std::size_t> children;  ///< indices into nodes_
        std::uint32_t leaf_id = 0;          ///< valid when children empty

        bool operator==(const Node& other) const = default;
    };

    /// A subtree built in isolation: node indices and leaf ids are local
    /// (root at 0, leaves numbered from 0 in DFS order).
    struct Fragment {
        std::vector<Node> nodes;
        std::uint32_t num_leaves = 0;
    };

    /// Sibling subtrees below this point count build inline rather than as
    /// pool tasks; the task-spawn overhead would outweigh the work.
    static constexpr std::size_t kSpawnThreshold = 768;

    // Builds the subtree for `points` as a self-contained fragment.
    Fragment build_subtree(const std::vector<Point>& points,
                           std::size_t levels_left,
                           std::uint64_t seed) const {
        Fragment fragment;
        if (levels_left == 0 || points.size() < params_.min_node_size ||
            points.size() <= params_.branch) {
            // Leaf: represent all points by their centroid.
            std::vector<const Point*> all;
            all.reserve(points.size());
            for (const Point& p : points) all.push_back(&p);
            Node leaf;
            leaf.centroid =
                Space::centroid(std::span<const Point* const>(all));
            leaf.leaf_id = 0;
            fragment.nodes.push_back(std::move(leaf));
            fragment.num_leaves = 1;
            return fragment;
        }

        const auto clusters = kmeans<Space>(points, params_.branch,
                                            params_.kmeans_iterations, seed);
        fragment.nodes.push_back(Node{});
        fragment.nodes[0].centroid = clusters.centroids[0];  // unused at root
        std::vector<std::vector<Point>> split(params_.branch);
        for (std::size_t i = 0; i < points.size(); ++i) {
            split[clusters.assignment[i]].push_back(points[i]);
        }

        // Children build concurrently, each into its own fragment. Seeds
        // are a function of (parent seed, child slot), exactly as in a
        // serial DFS.
        std::vector<Fragment> children(params_.branch);
        {
            exec::TaskGroup group;
            for (std::size_t c = 0; c < params_.branch; ++c) {
                if (split[c].empty()) continue;
                if (split[c].size() >= kSpawnThreshold) {
                    group.run([this, &children, &split, c, levels_left,
                               seed] {
                        children[c] = build_subtree(split[c],
                                                    levels_left - 1,
                                                    seed + c + 1);
                    });
                } else {
                    children[c] = build_subtree(split[c], levels_left - 1,
                                                seed + c + 1);
                }
            }
            group.wait();
        }

        // Splice fragments in child order: node indices shift by the
        // running node count, leaf ids by the running leaf count. This is
        // the DFS-preorder layout a recursive serial build produces.
        for (std::size_t c = 0; c < params_.branch; ++c) {
            if (children[c].nodes.empty()) continue;
            const std::size_t node_offset = fragment.nodes.size();
            const std::uint32_t leaf_offset = fragment.num_leaves;
            for (Node& node : children[c].nodes) {
                for (std::size_t& child_index : node.children) {
                    child_index += node_offset;
                }
                if (node.children.empty()) node.leaf_id += leaf_offset;
                fragment.nodes.push_back(std::move(node));
            }
            // Child root keeps the k-means centroid for routing.
            fragment.nodes[node_offset].centroid = clusters.centroids[c];
            fragment.nodes[0].children.push_back(node_offset);
            fragment.num_leaves += children[c].num_leaves;
        }
        return fragment;
    }

    Params params_;
    std::vector<Node> nodes_;
    std::uint32_t num_leaves_ = 0;
};

}  // namespace mie::index
