#include "index/scoring.hpp"

#include <algorithm>
#include <cmath>

namespace mie::index {

std::vector<ScoredDoc> top_k_of(std::map<DocId, double> scores,
                                std::size_t top_k) {
    std::vector<ScoredDoc> ranked;
    ranked.reserve(scores.size());
    for (const auto& [doc, score] : scores) {
        ranked.push_back(ScoredDoc{doc, score});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.doc < b.doc;
              });
    if (ranked.size() > top_k) ranked.resize(top_k);
    return ranked;
}

std::vector<ScoredDoc> rank_tfidf(const InvertedIndex& index,
                                  const QueryHistogram& query,
                                  std::size_t total_documents,
                                  std::size_t top_k, RankCounters* counters) {
    std::map<DocId, double> scores;
    if (total_documents == 0) return {};
    for (const auto& [term, query_freq] : query) {
        const auto* list = index.postings(term);
        if (list == nullptr || list->empty()) continue;
        const double idf = std::log(static_cast<double>(total_documents) /
                                    static_cast<double>(list->size()));
        if (idf <= 0.0) continue;
        if (counters != nullptr) {
            ++counters->terms_matched;
            counters->postings_scored += list->size();
        }
        for (const Posting& posting : *list) {
            scores[posting.doc] +=
                static_cast<double>(query_freq) * posting.frequency * idf;
        }
    }
    return top_k_of(std::move(scores), top_k);
}

std::vector<ScoredDoc> rank_bm25(const InvertedIndex& index,
                                 const QueryHistogram& query,
                                 std::size_t total_documents,
                                 std::size_t top_k, const Bm25Params& params,
                                 RankCounters* counters) {
    if (total_documents == 0) return {};
    const double avg_length =
        index.num_documents() == 0
            ? 1.0
            : static_cast<double>(index.num_postings()) /
                  static_cast<double>(index.num_documents());

    std::map<DocId, double> scores;
    for (const auto& [term, query_freq] : query) {
        const auto* list = index.postings(term);
        if (list == nullptr || list->empty()) continue;
        if (counters != nullptr) {
            ++counters->terms_matched;
            counters->postings_scored += list->size();
        }
        const double df = static_cast<double>(list->size());
        const double idf = std::log(
            1.0 + (static_cast<double>(total_documents) - df + 0.5) /
                      (df + 0.5));
        for (const Posting& posting : *list) {
            const double doc_length =
                static_cast<double>(index.terms_of(posting.doc).size());
            const double tf = posting.frequency;
            const double denom =
                tf + params.k1 * (1.0 - params.b +
                                  params.b * doc_length / avg_length);
            scores[posting.doc] += static_cast<double>(query_freq) * idf *
                                   (tf * (params.k1 + 1.0)) / denom;
        }
    }
    return top_k_of(std::move(scores), top_k);
}

}  // namespace mie::index
