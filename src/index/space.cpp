#include "index/space.hpp"

#include <stdexcept>

namespace mie::index {

EuclideanSpace::Point EuclideanSpace::centroid(
    std::span<const Point* const> members) {
    if (members.empty()) {
        throw std::invalid_argument("centroid: empty cluster");
    }
    Point mean(members.front()->size(), 0.0f);
    for (const Point* p : members) {
        for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += (*p)[i];
    }
    const float inv = 1.0f / static_cast<float>(members.size());
    for (float& x : mean) x *= inv;
    return mean;
}

HammingSpace::Point HammingSpace::centroid(
    std::span<const Point* const> members) {
    if (members.empty()) {
        throw std::invalid_argument("centroid: empty cluster");
    }
    const std::size_t bits = members.front()->size();
    std::vector<std::uint32_t> ones(bits, 0);
    for (const Point* p : members) {
        for (std::size_t i = 0; i < bits; ++i) {
            if (p->get(i)) ++ones[i];
        }
    }
    Point majority(bits);
    const std::uint32_t half =
        static_cast<std::uint32_t>(members.size() / 2);
    for (std::size_t i = 0; i < bits; ++i) {
        if (ones[i] > half) majority.set(i, true);
    }
    return majority;
}

}  // namespace mie::index
