#include "index/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32c.hpp"

namespace mie::index {

namespace {

void append_padding(Bytes& out, std::size_t boundary) {
    while (out.size() % boundary != 0) out.push_back(0);
}

}  // namespace

// ---- SnapshotFileBuilder --------------------------------------------

void SnapshotFileBuilder::add_section(std::string name, Bytes body) {
    sections_.push_back(Section{std::move(name), std::move(body)});
}

Bytes SnapshotFileBuilder::finish() const {
    // Header placeholder; the real fields land once offsets are known.
    Bytes file(kSnapshotHeaderSize, 0);

    struct Placed {
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
        std::uint32_t crc = 0;
    };
    std::vector<Placed> placed;
    placed.reserve(sections_.size());
    for (const Section& section : sections_) {
        append_padding(file, 8);
        Placed p;
        p.offset = file.size();
        p.size = section.body.size();
        p.crc = crc32c(section.body);
        file.insert(file.end(), section.body.begin(), section.body.end());
        placed.push_back(p);
    }
    append_padding(file, 8);
    const std::uint64_t toc_offset = file.size();

    // TOC: written with the same aligned-writer discipline as sections
    // (toc_offset is 8-aligned, so relative alignment is file alignment).
    SnapshotWriter toc;
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        toc.write_u64(placed[i].offset);
        toc.write_u64(placed[i].size);
        toc.write_u32(placed[i].crc);
        toc.write_string(sections_[i].name);
    }
    const Bytes toc_bytes = toc.take();
    file.insert(file.end(), toc_bytes.begin(), toc_bytes.end());

    // Header, last: every field is now known.
    std::memcpy(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
    Bytes scalar;
    append_le(scalar, kSnapshotVersion);
    append_le(scalar, static_cast<std::uint32_t>(sections_.size()));
    append_le(scalar, static_cast<std::uint64_t>(file.size()));
    append_le(scalar, toc_offset);
    append_le(scalar, crc32c(toc_bytes));
    std::memcpy(file.data() + 8, scalar.data(), scalar.size());
    const std::uint32_t header_crc =
        crc32c(BytesView(file.data(), kSnapshotHeaderSize - 4));
    Bytes crc_bytes;
    append_le(crc_bytes, header_crc);
    std::memcpy(file.data() + kSnapshotHeaderSize - 4, crc_bytes.data(), 4);
    return file;
}

// ---- MappedSnapshot -------------------------------------------------

void MappedSnapshot::validate_layout() {
    const BytesView file(data_, size_);
    if (size_ < kSnapshotHeaderSize) {
        throw SnapshotError("snapshot: file shorter than header");
    }
    if (std::memcmp(data_, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
        throw SnapshotError("snapshot: bad magic");
    }
    const std::uint32_t header_crc =
        read_le<std::uint32_t>(file, kSnapshotHeaderSize - 4);
    if (crc32c(BytesView(data_, kSnapshotHeaderSize - 4)) != header_crc) {
        throw SnapshotError("snapshot: header checksum mismatch");
    }
    const std::uint32_t version = read_le<std::uint32_t>(file, 8);
    if (version != kSnapshotVersion) {
        throw SnapshotError("snapshot: unsupported version " +
                            std::to_string(version));
    }
    const std::uint32_t section_count = read_le<std::uint32_t>(file, 12);
    const std::uint64_t file_size = read_le<std::uint64_t>(file, 16);
    const std::uint64_t toc_offset = read_le<std::uint64_t>(file, 24);
    const std::uint32_t toc_crc = read_le<std::uint32_t>(file, 32);
    if (file_size != size_) {
        throw SnapshotError("snapshot: truncated file");
    }
    if (toc_offset % 8 != 0 || toc_offset < kSnapshotHeaderSize ||
        toc_offset > size_) {
        throw SnapshotError("snapshot: bad TOC offset");
    }
    const BytesView toc_bytes = file.subspan(toc_offset);
    if (crc32c(toc_bytes) != toc_crc) {
        throw SnapshotError("snapshot: TOC checksum mismatch");
    }

    SnapshotCursor toc(toc_bytes);
    sections_.reserve(section_count);
    for (std::uint32_t i = 0; i < section_count; ++i) {
        SectionEntry entry;
        entry.offset = toc.read_u64();
        entry.size = toc.read_u64();
        entry.crc = toc.read_u32();
        entry.name = toc.read_string();
        if (entry.offset % 8 != 0 || entry.offset < kSnapshotHeaderSize ||
            entry.offset > toc_offset ||
            entry.size > toc_offset - entry.offset) {
            throw SnapshotError("snapshot: section outside file bounds");
        }
        sections_.push_back(std::move(entry));
    }
    verified_ = std::make_unique<std::atomic<bool>[]>(sections_.size());
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        verified_[i].store(false, std::memory_order_relaxed);
    }
}

std::shared_ptr<MappedSnapshot> MappedSnapshot::open(
    const std::filesystem::path& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        throw SnapshotError("snapshot: cannot open " + path.string() + ": " +
                            std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        throw SnapshotError("snapshot: cannot stat " + path.string() + ": " +
                            std::strerror(err));
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        throw SnapshotError("snapshot: empty file " + path.string());
    }
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping pins the inode; the fd is no longer needed (checkpoint
    // GC may unlink the file while older repositories still read it).
    ::close(fd);
    if (mapping == MAP_FAILED) {
        throw SnapshotError("snapshot: mmap failed for " + path.string() +
                            ": " + std::strerror(errno));
    }
    std::shared_ptr<MappedSnapshot> snapshot(new MappedSnapshot());
    snapshot->data_ = static_cast<const std::uint8_t*>(mapping);
    snapshot->size_ = size;
    snapshot->mapping_ = mapping;
    snapshot->validate_layout();  // dtor unmaps if this throws
    return snapshot;
}

std::shared_ptr<MappedSnapshot> MappedSnapshot::from_bytes(Bytes data) {
    std::shared_ptr<MappedSnapshot> snapshot(new MappedSnapshot());
    snapshot->owned_ = std::move(data);
    snapshot->data_ = snapshot->owned_.data();
    snapshot->size_ = snapshot->owned_.size();
    snapshot->validate_layout();
    return snapshot;
}

MappedSnapshot::~MappedSnapshot() {
    if (mapping_ != nullptr) {
        ::munmap(mapping_, size_);
    }
}

BytesView MappedSnapshot::section(std::size_t i) const {
    const SectionEntry& entry = sections_.at(i);
    const BytesView body(data_ + entry.offset, entry.size);
    if (!verified_[i].load(std::memory_order_acquire)) {
        if (crc32c(body) != entry.crc) {
            throw SnapshotError("snapshot: section '" + entry.name +
                                "' checksum mismatch");
        }
        verified_[i].store(true, std::memory_order_release);
    }
    return body;
}

// ---- Inverted-index serializer --------------------------------------

void write_inverted_index(SnapshotWriter& writer, const InvertedIndex& index) {
    const std::vector<Term> terms = index.sorted_terms();
    writer.write_u64(terms.size());
    for (const Term& term : terms) {
        const std::vector<Posting>* list = index.postings(term);
        std::vector<Posting> sorted(list->begin(), list->end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const Posting& a, const Posting& b) {
                      return a.doc < b.doc;
                  });
        writer.write_string(term);
        writer.write_u32(static_cast<std::uint32_t>(sorted.size()));
        for (const Posting& posting : sorted) {
            writer.write_u64(posting.doc);
            writer.write_u32(posting.frequency);
        }
    }
}

InvertedIndex read_inverted_index(SnapshotCursor& cursor) {
    InvertedIndex index;
    const std::uint64_t num_terms = cursor.read_u64();
    for (std::uint64_t t = 0; t < num_terms; ++t) {
        const Term term = cursor.read_string();
        const std::uint32_t count = cursor.read_u32();
        std::vector<Posting> postings;
        postings.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            Posting posting;
            posting.doc = cursor.read_u64();
            posting.frequency = cursor.read_u32();
            postings.push_back(posting);
        }
        try {
            index.load_postings(term, std::move(postings));
        } catch (const std::invalid_argument& error) {
            throw SnapshotError(std::string("snapshot: ") + error.what());
        }
    }
    return index;
}

}  // namespace mie::index
