// Lloyd's k-means with k-means++ seeding, generic over a metric-space
// policy (see space.hpp).
//
// This is the "training task" of the paper (§III): clustering dense
// feature-vectors to find distinctive keypoints / visual words. MIE runs it
// on the cloud over DPE encodings (HammingSpace); the baselines run it on
// the client over plaintext descriptors (EuclideanSpace).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace mie::index {

template <typename Space>
struct KMeansResult {
    std::vector<typename Space::Point> centroids;
    std::vector<std::uint32_t> assignment;  ///< cluster of each input point
    double inertia = 0.0;  ///< sum of distances to assigned centroids
    int iterations = 0;
};

template <typename Space>
std::uint32_t nearest_centroid(
    const typename Space::Point& point,
    const std::vector<typename Space::Point>& centroids) {
    std::uint32_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < centroids.size(); ++c) {
        const double d = Space::distance(point, centroids[c]);
        if (d < best_distance) {
            best_distance = d;
            best = c;
        }
    }
    return best;
}

/// Runs k-means over `points`. If k >= points.size(), every point becomes
/// its own centroid. Deterministic given `seed`.
template <typename Space>
KMeansResult<Space> kmeans(
    const std::vector<typename Space::Point>& points, std::size_t k,
    int max_iterations, std::uint64_t seed) {
    using Point = typename Space::Point;
    if (points.empty() || k == 0) {
        throw std::invalid_argument("kmeans: empty input or k == 0");
    }
    KMeansResult<Space> result;
    if (k >= points.size()) {
        result.centroids = points;
        result.assignment.resize(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            result.assignment[i] = static_cast<std::uint32_t>(i);
        }
        return result;
    }

    SplitMix64 rng(seed);

    // k-means++ seeding: first centroid uniform, the rest proportional to
    // squared distance from the nearest chosen centroid.
    result.centroids.reserve(k);
    result.centroids.push_back(points[rng.next_below(points.size())]);
    std::vector<double> min_distance(points.size(),
                                     std::numeric_limits<double>::infinity());
    while (result.centroids.size() < k) {
        const Point& latest = result.centroids.back();
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            min_distance[i] =
                std::min(min_distance[i], Space::distance(points[i], latest));
            total += min_distance[i];
        }
        if (total == 0.0) {
            // All points coincide with centroids; pick any point.
            result.centroids.push_back(points[rng.next_below(points.size())]);
            continue;
        }
        double target = rng.next_double() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= min_distance[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        result.centroids.push_back(points[chosen]);
    }

    // Lloyd iterations.
    result.assignment.assign(points.size(), 0);
    for (int iteration = 0; iteration < max_iterations; ++iteration) {
        bool changed = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::uint32_t nearest =
                nearest_centroid<Space>(points[i], result.centroids);
            if (nearest != result.assignment[i]) {
                result.assignment[i] = nearest;
                changed = true;
            }
        }
        result.iterations = iteration + 1;
        if (!changed && iteration > 0) break;

        // Recompute centroids; empty clusters are reseeded from the point
        // farthest from its centroid.
        std::vector<std::vector<const Point*>> members(k);
        for (std::size_t i = 0; i < points.size(); ++i) {
            members[result.assignment[i]].push_back(&points[i]);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (members[c].empty()) {
                result.centroids[c] = points[rng.next_below(points.size())];
            } else {
                result.centroids[c] = Space::centroid(
                    std::span<const Point* const>(members[c]));
            }
        }
        if (!changed) break;
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        result.inertia +=
            Space::distance(points[i], result.centroids[result.assignment[i]]);
    }
    return result;
}

}  // namespace mie::index
