// Lloyd's k-means with k-means++ seeding, generic over a metric-space
// policy (see space.hpp).
//
// This is the "training task" of the paper (§III): clustering dense
// feature-vectors to find distinctive keypoints / visual words. MIE runs it
// on the cloud over DPE encodings (HammingSpace); the baselines run it on
// the client over plaintext descriptors (EuclideanSpace).
//
// The hot loops (k-means++ distance updates, Lloyd assignment, centroid
// recomputation, inertia) run on the exec runtime. Results are
// bitwise-identical at any thread count: reductions use exec's fixed
// chunk-order combination, per-point writes are disjoint, and every RNG
// draw happens serially in the same order as a single-threaded run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace mie::index {

namespace detail {
/// Chunk grains for the parallel loops. Fixed constants: reduction chunk
/// boundaries are part of the deterministic-output contract, so they must
/// not depend on the machine. Sized so a chunk is several microseconds of
/// work at the paper's dimensions (64-dim floats / 128-bit codes).
inline constexpr std::size_t kSeedGrain = 512;
inline constexpr std::size_t kAssignGrain = 64;
inline constexpr std::size_t kInertiaGrain = 512;
}  // namespace detail

template <typename Space>
struct KMeansResult {
    std::vector<typename Space::Point> centroids;
    std::vector<std::uint32_t> assignment;  ///< cluster of each input point
    double inertia = 0.0;  ///< sum of distances to assigned centroids
    int iterations = 0;
};

template <typename Space>
std::uint32_t nearest_centroid(
    const typename Space::Point& point,
    const std::vector<typename Space::Point>& centroids) {
    std::uint32_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < centroids.size(); ++c) {
        const double d = Space::distance(point, centroids[c]);
        if (d < best_distance) {
            best_distance = d;
            best = c;
        }
    }
    return best;
}

/// Runs k-means over `points`. If k >= points.size(), every point becomes
/// its own centroid. Deterministic given `seed`, at any thread count.
template <typename Space>
KMeansResult<Space> kmeans(
    const std::vector<typename Space::Point>& points, std::size_t k,
    int max_iterations, std::uint64_t seed) {
    using Point = typename Space::Point;
    if (points.empty() || k == 0) {
        throw std::invalid_argument("kmeans: empty input or k == 0");
    }
    KMeansResult<Space> result;
    if (k >= points.size()) {
        result.centroids = points;
        result.assignment.resize(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            result.assignment[i] = static_cast<std::uint32_t>(i);
        }
        return result;
    }

    SplitMix64 rng(seed);
    const std::size_t n = points.size();

    // k-means++ seeding: first centroid uniform, the rest proportional to
    // squared distance from the nearest chosen centroid. The per-point
    // min-distance refresh fans out; the probability scan that consumes
    // the RNG stays serial so the draw sequence matches a 1-thread run.
    result.centroids.reserve(k);
    result.centroids.push_back(points[rng.next_below(n)]);
    std::vector<double> min_distance(n,
                                     std::numeric_limits<double>::infinity());
    while (result.centroids.size() < k) {
        const Point& latest = result.centroids.back();
        const double total = exec::parallel_reduce(
            0, n, detail::kSeedGrain, 0.0,
            [&](std::size_t lo, std::size_t hi) {
                double partial = 0.0;
                for (std::size_t i = lo; i < hi; ++i) {
                    min_distance[i] = std::min(
                        min_distance[i], Space::distance(points[i], latest));
                    partial += min_distance[i];
                }
                return partial;
            },
            [](double a, double b) { return a + b; });
        if (total == 0.0) {
            // All points coincide with centroids; pick any point.
            result.centroids.push_back(points[rng.next_below(n)]);
            continue;
        }
        double target = rng.next_double() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= min_distance[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        result.centroids.push_back(points[chosen]);
    }

    // Lloyd iterations.
    result.assignment.assign(n, 0);
    for (int iteration = 0; iteration < max_iterations; ++iteration) {
        // Assignment step: per-point nearest centroid (disjoint writes);
        // the changed flag ORs per-chunk results, which is order-blind.
        const bool changed = exec::parallel_reduce(
            0, n, detail::kAssignGrain, false,
            [&](std::size_t lo, std::size_t hi) {
                bool chunk_changed = false;
                for (std::size_t i = lo; i < hi; ++i) {
                    const std::uint32_t nearest =
                        nearest_centroid<Space>(points[i], result.centroids);
                    if (nearest != result.assignment[i]) {
                        result.assignment[i] = nearest;
                        chunk_changed = true;
                    }
                }
                return chunk_changed;
            },
            [](bool a, bool b) { return a || b; });
        result.iterations = iteration + 1;
        if (!changed && iteration > 0) break;

        // Gather members serially (point-index order fixes the order each
        // centroid sees its members in — float means depend on it).
        std::vector<std::vector<const Point*>> members(k);
        for (std::size_t i = 0; i < n; ++i) {
            members[result.assignment[i]].push_back(&points[i]);
        }
        // Empty clusters reseed from the RNG, serially and in cluster
        // order, so the draw sequence stays thread-count-invariant.
        for (std::size_t c = 0; c < k; ++c) {
            if (members[c].empty()) {
                result.centroids[c] = points[rng.next_below(n)];
            }
        }
        // Each non-empty centroid is recomputed whole by one task.
        exec::parallel_for(0, k, 1, [&](std::size_t c) {
            if (!members[c].empty()) {
                result.centroids[c] = Space::centroid(
                    std::span<const Point* const>(members[c]));
            }
        });
        if (!changed) break;
    }

    result.inertia = exec::parallel_reduce(
        0, n, detail::kInertiaGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                partial += Space::distance(
                    points[i], result.centroids[result.assignment[i]]);
            }
            return partial;
        },
        [](double a, double b) { return a + b; });
    return result;
}

}  // namespace mie::index
