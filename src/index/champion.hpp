// Champion posting lists with a disk-resident full index.
//
// §VI: "if an index grows too large to fit in the cloud server's main
// memory, champion posting lists are used to ensure that only the top
// ranked data-objects for each index entry are kept in memory, while the
// full index is stored in disk and periodically merged with updated/newly
// added index entries."
//
// This class keeps, per term, the `champion_size` highest-frequency
// postings in memory; the complete posting stream is appended to a disk
// log that is compacted when the in-memory overflow buffer exceeds its
// budget. Search reads champions only, so retrieval cost is bounded while
// precision is preserved for top-k queries.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.hpp"

namespace mie::index {

class ChampionIndex {
public:
    struct Params {
        std::size_t champion_size = 16;   ///< postings kept hot per term
        std::size_t buffer_budget = 4096; ///< overflow postings before spill
    };

    /// `spill_path` is created/truncated on construction.
    ChampionIndex(std::filesystem::path spill_path, const Params& params);
    ~ChampionIndex();

    ChampionIndex(const ChampionIndex&) = delete;
    ChampionIndex& operator=(const ChampionIndex&) = delete;

    /// Adds `freq` occurrences of `term` in `doc`.
    void add(const Term& term, DocId doc, std::uint32_t freq = 1);

    /// In-memory champion postings of a term (nullptr if absent), sorted by
    /// descending frequency.
    const std::vector<Posting>* champions(const Term& term) const;

    /// Full posting list of a term, merging champions, the overflow buffer
    /// and the disk log. O(disk size); intended for maintenance paths.
    std::vector<Posting> full_postings(const Term& term) const;

    /// Forces the overflow buffer to disk.
    void spill();

    std::size_t num_terms() const { return champions_.size(); }
    std::size_t buffered_postings() const { return buffered_; }
    std::size_t spilled_postings() const { return spilled_; }
    const std::filesystem::path& spill_path() const { return path_; }

private:
    void append_to_log(const Term& term, const Posting& posting);

    std::filesystem::path path_;
    Params params_;
    std::unordered_map<Term, std::vector<Posting>> champions_;
    std::unordered_map<Term, std::vector<Posting>> overflow_;
    std::size_t buffered_ = 0;
    std::size_t spilled_ = 0;
};

}  // namespace mie::index
