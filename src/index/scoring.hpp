// Ranked retrieval over an inverted index: TF-IDF (the paper's default
// weighting, §VI) and BM25 (the "more complex function" it mentions).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "index/inverted_index.hpp"

namespace mie::index {

struct ScoredDoc {
    DocId doc = 0;
    double score = 0.0;
};

/// Query representation: term -> frequency in the query object.
using QueryHistogram = std::map<Term, std::uint32_t>;

struct Bm25Params {
    double k1 = 1.2;
    double b = 0.75;
};

/// Work accounting for one ranking pass (accumulates across calls when
/// the same struct is reused). `postings_scored` counts the
/// (term, posting) pairs the scorer visited — exactly the quantity the
/// IVF probe knob shrinks, and what bench/fig5_search --probes reports.
struct RankCounters {
    std::uint64_t terms_matched = 0;
    std::uint64_t postings_scored = 0;
};

/// TF-IDF ranking: score(d) = Σ_t qf(t) * tf(d,t) * ln(N / df(t)).
/// `total_documents` is the repository size N. Returns the top_k documents
/// sorted by descending score (ties by ascending doc id).
std::vector<ScoredDoc> rank_tfidf(const InvertedIndex& index,
                                  const QueryHistogram& query,
                                  std::size_t total_documents,
                                  std::size_t top_k,
                                  RankCounters* counters = nullptr);

/// BM25 ranking with document length = number of postings of the document.
std::vector<ScoredDoc> rank_bm25(const InvertedIndex& index,
                                 const QueryHistogram& query,
                                 std::size_t total_documents,
                                 std::size_t top_k,
                                 const Bm25Params& params = Bm25Params{},
                                 RankCounters* counters = nullptr);

/// Sorts scores descending and truncates to top_k (helper shared with the
/// schemes that accumulate scores themselves).
std::vector<ScoredDoc> top_k_of(std::map<DocId, double> scores,
                                std::size_t top_k);

}  // namespace mie::index
