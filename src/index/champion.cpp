#include "index/champion.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/bytes.hpp"

namespace mie::index {

namespace {
bool by_descending_frequency(const Posting& a, const Posting& b) {
    if (a.frequency != b.frequency) return a.frequency > b.frequency;
    return a.doc < b.doc;
}
}  // namespace

ChampionIndex::ChampionIndex(std::filesystem::path spill_path,
                             const Params& params)
    : path_(std::move(spill_path)), params_(params) {
    if (params_.champion_size == 0) {
        throw std::invalid_argument("ChampionIndex: champion_size == 0");
    }
    std::ofstream truncate(path_, std::ios::binary | std::ios::trunc);
    if (!truncate) {
        throw std::runtime_error("ChampionIndex: cannot open spill file");
    }
}

ChampionIndex::~ChampionIndex() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best-effort cleanup
}

void ChampionIndex::add(const Term& term, DocId doc, std::uint32_t freq) {
    if (freq == 0) return;
    auto& hot = champions_[term];
    const auto existing = std::find_if(
        hot.begin(), hot.end(),
        [doc](const Posting& p) { return p.doc == doc; });
    if (existing != hot.end()) {
        existing->frequency += freq;
        std::sort(hot.begin(), hot.end(), by_descending_frequency);
        return;
    }

    hot.push_back(Posting{doc, freq});
    std::sort(hot.begin(), hot.end(), by_descending_frequency);
    if (hot.size() > params_.champion_size) {
        // Demote the weakest posting to the overflow buffer.
        overflow_[term].push_back(hot.back());
        hot.pop_back();
        ++buffered_;
        if (buffered_ >= params_.buffer_budget) spill();
    }
}

const std::vector<Posting>* ChampionIndex::champions(const Term& term) const {
    const auto it = champions_.find(term);
    return it == champions_.end() ? nullptr : &it->second;
}

void ChampionIndex::spill() {
    // The on-disk log must not record hash-map iteration order (lint rule
    // R3): spill terms sorted so the log bytes are a pure function of the
    // spilled postings.
    std::vector<const Term*> terms;
    terms.reserve(overflow_.size());
    // mielint: allow(R3): terms are sorted on the next line
    for (const auto& [term, postings] : overflow_) terms.push_back(&term);
    std::sort(terms.begin(), terms.end(),
              [](const Term* a, const Term* b) { return *a < *b; });
    for (const Term* term : terms) {
        for (const Posting& posting : overflow_.at(*term)) {
            append_to_log(*term, posting);
            ++spilled_;
        }
    }
    overflow_.clear();
    buffered_ = 0;
}

void ChampionIndex::append_to_log(const Term& term, const Posting& posting) {
    std::ofstream log(path_, std::ios::binary | std::ios::app);
    Bytes record;
    append_le<std::uint32_t>(record, static_cast<std::uint32_t>(term.size()));
    record.insert(record.end(), term.begin(), term.end());
    append_le<std::uint64_t>(record, posting.doc);
    append_le<std::uint32_t>(record, posting.frequency);
    log.write(reinterpret_cast<const char*>(record.data()),
              static_cast<std::streamsize>(record.size()));
}

std::vector<Posting> ChampionIndex::full_postings(const Term& term) const {
    std::map<DocId, std::uint32_t> merged;
    if (const auto* hot = champions(term)) {
        for (const Posting& p : *hot) merged[p.doc] += p.frequency;
    }
    if (const auto it = overflow_.find(term); it != overflow_.end()) {
        for (const Posting& p : it->second) merged[p.doc] += p.frequency;
    }

    std::ifstream log(path_, std::ios::binary);
    while (log) {
        std::uint8_t len_buf[4];
        if (!log.read(reinterpret_cast<char*>(len_buf), 4)) break;
        const auto term_len = read_le<std::uint32_t>(BytesView(len_buf, 4), 0);
        std::string record_term(term_len, '\0');
        std::uint8_t body[12];
        if (!log.read(record_term.data(), term_len) ||
            !log.read(reinterpret_cast<char*>(body), 12)) {
            break;  // torn tail record
        }
        if (record_term != term) continue;
        const auto doc = read_le<std::uint64_t>(BytesView(body, 12), 0);
        const auto freq = read_le<std::uint32_t>(BytesView(body, 12), 8);
        merged[doc] += freq;
    }

    std::vector<Posting> out;
    out.reserve(merged.size());
    for (const auto& [doc, freq] : merged) out.push_back(Posting{doc, freq});
    std::sort(out.begin(), out.end(), by_descending_frequency);
    return out;
}

}  // namespace mie::index
