// Bag-of-Visual-Words quantization (§VI).
//
// Maps a set of descriptors (plaintext or DPE-encoded) to a visual-word
// frequency histogram via the vocabulary tree, "the same way as text":
// visual word ids become index terms.
#pragma once

#include <string>

#include "exec/exec.hpp"
#include "index/scoring.hpp"
#include "index/vocab_tree.hpp"

namespace mie::index {

/// Renders a visual word id as an index term key.
inline Term visual_word_term(std::uint32_t word) {
    return "vw:" + std::to_string(word);
}

/// Quantizes each descriptor to its visual-word leaf id, in input order.
/// Tree walks are independent, so this fans out across the pool.
template <typename Space>
std::vector<std::uint32_t> quantize_all(
    const VocabTree<Space>& tree,
    const std::vector<typename Space::Point>& descriptors) {
    std::vector<std::uint32_t> words(descriptors.size());
    exec::parallel_for(0, descriptors.size(), 64, [&](std::size_t i) {
        words[i] = tree.quantize(descriptors[i]);
    });
    return words;
}

/// Quantizes descriptors to a visual-word histogram. The histogram itself
/// accumulates serially from the ordered word list, so the result is
/// identical at any thread count.
template <typename Space>
QueryHistogram bovw_histogram(
    const VocabTree<Space>& tree,
    const std::vector<typename Space::Point>& descriptors) {
    QueryHistogram histogram;
    for (const std::uint32_t word : quantize_all(tree, descriptors)) {
        ++histogram[visual_word_term(word)];
    }
    return histogram;
}

}  // namespace mie::index
