// Bag-of-Visual-Words quantization (§VI).
//
// Maps a set of descriptors (plaintext or DPE-encoded) to a visual-word
// frequency histogram via the vocabulary tree, "the same way as text":
// visual word ids become index terms.
#pragma once

#include <string>

#include "index/scoring.hpp"
#include "index/vocab_tree.hpp"

namespace mie::index {

/// Renders a visual word id as an index term key.
inline Term visual_word_term(std::uint32_t word) {
    return "vw:" + std::to_string(word);
}

/// Quantizes descriptors to a visual-word histogram.
template <typename Space>
QueryHistogram bovw_histogram(
    const VocabTree<Space>& tree,
    const std::vector<typename Space::Point>& descriptors) {
    QueryHistogram histogram;
    for (const auto& descriptor : descriptors) {
        ++histogram[visual_word_term(tree.quantize(descriptor))];
    }
    return histogram;
}

}  // namespace mie::index
