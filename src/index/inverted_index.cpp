#include "index/inverted_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace mie::index {

void InvertedIndex::add(const Term& term, DocId doc, std::uint32_t freq) {
    if (freq == 0) return;
    auto& list = postings_[term];
    const auto it = std::find_if(list.begin(), list.end(),
                                 [doc](const Posting& p) { return p.doc == doc; });
    if (it != list.end()) {
        it->frequency += freq;
    } else {
        list.push_back(Posting{doc, freq});
        ++num_postings_;
    }
    doc_terms_[doc].insert(term);
}

void InvertedIndex::remove_document(DocId doc) {
    const auto it = doc_terms_.find(doc);
    if (it == doc_terms_.end()) return;
    for (const Term& term : it->second) {
        auto list_it = postings_.find(term);
        if (list_it == postings_.end()) continue;
        auto& list = list_it->second;
        const auto posting = std::find_if(
            list.begin(), list.end(),
            [doc](const Posting& p) { return p.doc == doc; });
        if (posting != list.end()) {
            *posting = list.back();
            list.pop_back();
            --num_postings_;
        }
        if (list.empty()) postings_.erase(list_it);
    }
    doc_terms_.erase(it);
}

const std::vector<Posting>* InvertedIndex::postings(const Term& term) const {
    const auto it = postings_.find(term);
    return it == postings_.end() ? nullptr : &it->second;
}

std::size_t InvertedIndex::document_frequency(const Term& term) const {
    const auto* list = postings(term);
    return list == nullptr ? 0 : list->size();
}

std::vector<Term> InvertedIndex::terms_of(DocId doc) const {
    const auto it = doc_terms_.find(doc);
    if (it == doc_terms_.end()) return {};
    return std::vector<Term>(it->second.begin(), it->second.end());
}

std::vector<Term> InvertedIndex::sorted_terms() const {
    std::vector<Term> terms;
    terms.reserve(postings_.size());
    // mielint: allow(R3): terms are sorted on the next line
    for (const auto& [term, list] : postings_) terms.push_back(term);
    std::sort(terms.begin(), terms.end());
    return terms;
}

void InvertedIndex::load_postings(const Term& term,
                                  std::vector<Posting> postings) {
    if (postings.empty()) return;
    if (postings_.contains(term)) {
        throw std::invalid_argument(
            "InvertedIndex: load_postings over an existing term");
    }
    for (std::size_t i = 0; i < postings.size(); ++i) {
        if (i > 0 && postings[i].doc <= postings[i - 1].doc) {
            throw std::invalid_argument(
                "InvertedIndex: load_postings doc ids not ascending");
        }
        doc_terms_[postings[i].doc].insert(term);
    }
    num_postings_ += postings.size();
    postings_.emplace(term, std::move(postings));
}

void InvertedIndex::clear() {
    postings_.clear();
    doc_terms_.clear();
    num_postings_ = 0;
}

}  // namespace mie::index
