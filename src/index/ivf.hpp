// Coarse-quantized (IVF-style) query path over the vocabulary tree.
//
// The root's children of a built vocab tree partition descriptor space
// into `branch` coarse cells; their centroids are exactly the first-level
// k-means centroids. The exact search path descends every query
// descriptor through the full tree and scores every matching posting; the
// ANN path assigns each descriptor to its nearest coarse cell (SIMD
// distance via the Space policy -> src/kernels), keeps only P cells, and
// contributes only the descriptors of surviving cells to the query
// histogram. The histogram is a subset of the exact query's terms, so
// posting-scoring work drops by the posting mass behind unprobed cells —
// the recall/speed knob ROADMAP item 3 calls for, measured in
// bench/fig5_search --probes.
//
// Cell selection is IDF-aware when the caller passes the inverted index:
// cells are ranked by Σ over their descriptors of ln²(N / df(word)) — the
// squared-IDF weighting of classic vocabulary-tree retrieval, which
// tracks how much a term separates candidates rather than how much raw
// score it adds. Multi-descriptor image queries concentrate many
// descriptors in "background" cells whose words occur in most documents:
// huge posting lists, IDF near zero, near-uniform score contribution.
// Value ordering drops those first and keeps the discriminative cells,
// which is what preserves recall while shedding most of the posting-
// scoring work. Without an index the ranking falls back to raw votes.
//
// Determinism contract (same as the rest of the search path): bitwise
// identical results at any thread count and any MIE_KERNEL_LEVEL. Cell
// assignment and word descent are per-descriptor independent
// (parallel_for into fixed slots); vote/cost aggregation and cell
// selection are serial over integers, ties broken by higher votes then
// lower cell id. probes == 0 (or >= the cell count, or an unbuilt
// quantizer) reproduces the exact path bitwise: descending from the
// nearest root child is precisely the exact greedy walk's first step.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "exec/exec.hpp"
#include "index/bovw.hpp"
#include "index/inverted_index.hpp"
#include "index/scoring.hpp"
#include "index/vocab_tree.hpp"

namespace mie::index {

/// Probe accounting for one quantization pass (accumulates when reused
/// across modalities; the server sums it into the search response).
struct IvfStats {
    std::uint64_t query_descriptors = 0;
    std::uint64_t descriptors_kept = 0;  ///< landed in a probed cell
    std::uint64_t cells_total = 0;
    std::uint64_t cells_probed = 0;
};

template <typename Space>
class IvfQuantizer {
public:
    using Point = typename Space::Point;

    IvfQuantizer() = default;

    /// Derives the coarse-cell table from a built tree. Cheap — it copies
    /// the root's child list — so the server rebuilds it whenever the
    /// tree is rebuilt (train, snapshot materialization) rather than
    /// serializing it.
    static IvfQuantizer build(const VocabTree<Space>& tree) {
        IvfQuantizer ivf;
        if (!tree.empty()) ivf.cells_ = tree.root_children();
        return ivf;
    }

    bool empty() const { return cells_.empty(); }
    std::size_t num_cells() const { return cells_.size(); }

    /// Subtree root node of cell `c` (index into the tree's node array).
    std::size_t cell_node(std::uint32_t c) const { return cells_[c]; }

    /// Nearest coarse cell of `point`, ties toward the lower cell index —
    /// the same comparison rule as the exact greedy descent, which is
    /// what makes probes >= num_cells() bitwise-equal to exact.
    std::uint32_t nearest_cell(const VocabTree<Space>& tree,
                               const Point& point) const {
        std::uint32_t best = 0;
        double best_distance = std::numeric_limits<double>::infinity();
        for (std::uint32_t c = 0; c < cells_.size(); ++c) {
            const double d =
                Space::distance(point, tree.centroid_of(cells_[c]));
            if (d < best_distance) {
                best_distance = d;
                best = c;
            }
        }
        return best;
    }

private:
    std::vector<std::size_t> cells_;  ///< tree node index per coarse cell
};

/// Quantizes query descriptors into a visual-word histogram, probing only
/// `probes` coarse cells; descriptors outside probed cells are dropped.
/// With `index` the P cells carrying the most IDF-weighted query mass are
/// kept; without it, the P most-voted. probes == 0, an unbuilt quantizer,
/// or probes >= the cell count all fall back to the exact bovw_histogram.
/// `tree` must be the tree `ivf` was built from; `index` (when given) the
/// posting index the histogram will be ranked against.
template <typename Space>
QueryHistogram ivf_histogram(
    const VocabTree<Space>& tree, const IvfQuantizer<Space>& ivf,
    const std::vector<typename Space::Point>& descriptors,
    std::size_t probes, IvfStats* stats = nullptr,
    const InvertedIndex* index = nullptr) {
    if (stats != nullptr) {
        stats->query_descriptors += descriptors.size();
        stats->cells_total += ivf.num_cells();
    }
    if (probes == 0 || ivf.empty() || probes >= ivf.num_cells()) {
        if (stats != nullptr) {
            stats->descriptors_kept += descriptors.size();
            stats->cells_probed += ivf.num_cells();
        }
        return bovw_histogram(tree, descriptors);
    }
    if (descriptors.empty()) return {};

    // Pass 1: per descriptor, nearest coarse cell and full descent to its
    // leaf word — independent fixed-slot writes, so the fan-out cannot
    // change results. The word equals the exact walk's, because the exact
    // walk's first step picks that same cell; tree descent is cheap next
    // to posting traversal, which is the work probing saves.
    std::vector<std::uint32_t> nearest(descriptors.size());
    std::vector<std::uint32_t> words(descriptors.size());
    exec::parallel_for(0, descriptors.size(), 64, [&](std::size_t i) {
        nearest[i] = ivf.nearest_cell(tree, descriptors[i]);
        words[i] = static_cast<std::uint32_t>(
            tree.quantize_from(ivf.cell_node(nearest[i]), descriptors[i]));
    });

    // Serial aggregation: integer votes per cell, plus (with an index)
    // each cell's discrimination mass — Σ over its descriptors of
    // ln²(N / df(word)). Serial accumulation in descriptor order keeps
    // the sums bitwise reproducible.
    std::vector<std::uint32_t> votes(ivf.num_cells(), 0);
    std::vector<double> value(ivf.num_cells(), 0.0);
    const double num_docs =
        index != nullptr ? static_cast<double>(index->num_documents()) : 0.0;
    for (std::size_t i = 0; i < descriptors.size(); ++i) {
        const std::uint32_t c = nearest[i];
        ++votes[c];
        if (index != nullptr) {
            const std::size_t df =
                index->document_frequency(visual_word_term(words[i]));
            if (df > 0) {
                const double idf =
                    std::log(num_docs / static_cast<double>(df));
                if (idf > 0.0) value[c] += idf * idf;
            }
        }
    }
    if (index == nullptr) {
        for (std::uint32_t c = 0; c < votes.size(); ++c) {
            value[c] = votes[c];
        }
    }

    // Cell selection: highest IDF-weighted mass first, ties toward higher
    // votes then the lower cell id — a pure function of the query and the
    // index. Cells no descriptor voted for carry no query terms, so they
    // are never worth a probe slot.
    std::vector<std::uint32_t> order(ivf.num_cells());
    for (std::uint32_t c = 0; c < order.size(); ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (value[a] != value[b]) return value[a] > value[b];
                  if (votes[a] != votes[b]) return votes[a] > votes[b];
                  return a < b;
              });
    std::vector<std::uint8_t> probed(ivf.num_cells(), 0);
    std::uint64_t cells_probed = 0;
    for (std::size_t r = 0; r < probes && r < order.size(); ++r) {
        if (votes[order[r]] == 0) break;
        probed[order[r]] = 1;
        ++cells_probed;
    }

    // Histogram accumulates serially from the ordered word list —
    // identical at any thread count (same discipline as bovw_histogram).
    QueryHistogram histogram;
    std::uint64_t kept = 0;
    for (std::size_t i = 0; i < descriptors.size(); ++i) {
        if (probed[nearest[i]] == 0) continue;
        ++kept;
        ++histogram[visual_word_term(words[i])];
    }
    if (stats != nullptr) {
        stats->descriptors_kept += kept;
        stats->cells_probed += cells_probed;
    }
    return histogram;
}

}  // namespace mie::index
