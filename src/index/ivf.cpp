#include "index/ivf.hpp"

#include "index/space.hpp"

namespace mie::index {

// The server quantizes Hamming-space DPE encodings; the plaintext
// pipeline and the snapshot round-trip tests exercise the Euclidean
// instantiation. Instantiating both here keeps every other translation
// unit from re-expanding the templates.
template class IvfQuantizer<HammingSpace>;
template class IvfQuantizer<EuclideanSpace>;

template QueryHistogram ivf_histogram<HammingSpace>(
    const VocabTree<HammingSpace>&, const IvfQuantizer<HammingSpace>&,
    const std::vector<HammingSpace::Point>&, std::size_t, IvfStats*,
    const InvertedIndex*);
template QueryHistogram ivf_histogram<EuclideanSpace>(
    const VocabTree<EuclideanSpace>&, const IvfQuantizer<EuclideanSpace>&,
    const std::vector<EuclideanSpace::Point>&, std::size_t, IvfStats*,
    const InvertedIndex*);

}  // namespace mie::index
