// Inverted index with per-document term frequencies.
//
// One instance per (repository, modality), as in the paper's server design
// (§VI): "each index key represents a distinct keyword and index values
// compose a list of all object identifiers containing the keyword", plus
// the frequency needed for TF-IDF ranking. Terms are opaque byte strings:
// Sparse-DPE tokens for text, visual-word ids for images.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mie::index {

using DocId = std::uint64_t;
using Term = std::string;  ///< opaque term key (token bytes / word id)

struct Posting {
    DocId doc = 0;
    std::uint32_t frequency = 0;
};

class InvertedIndex {
public:
    /// Adds `freq` occurrences of `term` in `doc` (accumulates).
    void add(const Term& term, DocId doc, std::uint32_t freq = 1);

    /// Removes every posting of `doc`; O(terms of doc) via the reverse map.
    void remove_document(DocId doc);

    /// Postings of a term (nullptr if absent). Order is unspecified.
    const std::vector<Posting>* postings(const Term& term) const;

    /// Number of documents containing the term.
    std::size_t document_frequency(const Term& term) const;

    std::size_t num_terms() const { return postings_.size(); }
    std::size_t num_documents() const { return doc_terms_.size(); }
    std::size_t num_postings() const { return num_postings_; }
    bool contains_document(DocId doc) const {
        return doc_terms_.contains(doc);
    }

    /// All terms of a document (empty if unknown).
    std::vector<Term> terms_of(DocId doc) const;

    /// Every term in sorted order — the iteration the snapshot writer
    /// uses, so serialized bytes never depend on hash-map layout (lint
    /// rule R3).
    std::vector<Term> sorted_terms() const;

    /// Bulk-loads a term's postings during snapshot materialization. The
    /// term must be new to the index and postings must carry unique,
    /// ascending doc ids (the snapshot writer emits them that way; a
    /// violation means the file is corrupt).
    void load_postings(const Term& term, std::vector<Posting> postings);

    void clear();

private:
    std::unordered_map<Term, std::vector<Posting>> postings_;
    std::unordered_map<DocId, std::unordered_set<Term>> doc_terms_;
    std::size_t num_postings_ = 0;
};

}  // namespace mie::index
