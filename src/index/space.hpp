// Metric-space policies for clustering and vocabulary trees.
//
// The same training code (k-means, hierarchical k-means) must run in two
// spaces: Euclidean over plaintext float descriptors (the MSSE/plaintext
// pipeline, which trains on the client) and normalized-Hamming over
// Dense-DPE bit encodings (the MIE cloud server, which trains on encodings —
// the "small modification" §VI describes). Each policy provides the point
// type, the distance, and the centroid rule (mean vs bit-majority vote).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dpe/bitcode.hpp"
#include "features/feature.hpp"

namespace mie::index {

struct EuclideanSpace {
    using Point = features::FeatureVec;

    static double distance(const Point& a, const Point& b) {
        // Squared distance preserves nearest-neighbor order and is cheaper.
        // Dispatches to the SIMD L2 kernel (src/kernels) — k-means assign/
        // update and vocab-tree builds inherit the speedup with bitwise-
        // identical results at every kernel level.
        return features::squared_distance(a, b);
    }

    /// Component-wise mean of the member points.
    static Point centroid(std::span<const Point* const> members);
};

struct HammingSpace {
    using Point = dpe::BitCode;

    static double distance(const Point& a, const Point& b) {
        return static_cast<double>(a.hamming_distance(b));
    }

    /// Bit-majority vote of the member points (ties resolve to 0).
    static Point centroid(std::span<const Point* const> members);
};

}  // namespace mie::index
