#include "mie/key_sharing.hpp"

#include <stdexcept>

#include "crypto/ctr.hpp"
#include "net/message.hpp"

namespace mie {

namespace {

/// The byte string the sender signs: everything an attacker might splice.
Bytes signing_material(const KeyEnvelope& envelope) {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(envelope.grant));
    writer.write_string(envelope.repo_id);
    writer.write_u64(envelope.object_id);
    writer.write_bytes(envelope.wrapped_aes_key);
    writer.write_bytes(envelope.sealed_payload);
    return writer.take();
}

KeyEnvelope make_envelope(KeyGrant grant, const std::string& repo_id,
                          std::uint64_t object_id, BytesView payload,
                          const crypto::RsaPublicKey& recipient,
                          const crypto::RsaPrivateKey& sender,
                          crypto::CtrDrbg& drbg) {
    KeyEnvelope envelope;
    envelope.grant = grant;
    envelope.repo_id = repo_id;
    envelope.object_id = object_id;

    const Bytes aes_key = drbg.generate(32);
    envelope.wrapped_aes_key =
        crypto::rsa_oaep_encrypt(recipient, aes_key, drbg);
    const crypto::AesCtr cipher(aes_key);
    envelope.sealed_payload =
        cipher.seal(drbg.generate(crypto::AesCtr::kNonceSize), payload);
    envelope.signature = crypto::rsa_sign(sender, signing_material(envelope));
    return envelope;
}

Bytes open_payload(const KeyEnvelope& envelope,
                   const crypto::RsaPrivateKey& recipient) {
    const Bytes aes_key =
        crypto::rsa_oaep_decrypt(recipient, envelope.wrapped_aes_key);
    return crypto::AesCtr(aes_key).open(envelope.sealed_payload);
}

}  // namespace

Bytes KeyEnvelope::serialize() const {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(grant));
    writer.write_string(repo_id);
    writer.write_u64(object_id);
    writer.write_bytes(wrapped_aes_key);
    writer.write_bytes(sealed_payload);
    writer.write_bytes(signature);
    return writer.take();
}

KeyEnvelope KeyEnvelope::deserialize(BytesView data) {
    net::MessageReader reader(data);
    KeyEnvelope envelope;
    envelope.grant = static_cast<KeyGrant>(reader.read_u8());
    envelope.repo_id = reader.read_string();
    envelope.object_id = reader.read_u64();
    envelope.wrapped_aes_key = reader.read_bytes();
    envelope.sealed_payload = reader.read_bytes();
    envelope.signature = reader.read_bytes();
    return envelope;
}

KeyEnvelope share_repository_key(const RepositoryKey& key,
                                 const std::string& repo_id,
                                 const crypto::RsaPublicKey& recipient,
                                 const crypto::RsaPrivateKey& sender,
                                 crypto::CtrDrbg& drbg) {
    return make_envelope(KeyGrant::kRepository, repo_id, 0, key.serialize(),
                         recipient, sender, drbg);
}

KeyEnvelope share_data_key(const DataKeyring& keyring,
                           std::uint64_t object_id,
                           const std::string& repo_id,
                           const crypto::RsaPublicKey& recipient,
                           const crypto::RsaPrivateKey& sender,
                           crypto::CtrDrbg& drbg) {
    return make_envelope(KeyGrant::kDataKey, repo_id, object_id,
                         keyring.data_key(object_id), recipient, sender,
                         drbg);
}

std::optional<RepositoryKey> open_repository_key(
    const KeyEnvelope& envelope, const crypto::RsaPrivateKey& recipient,
    const crypto::RsaPublicKey& sender) {
    if (envelope.grant != KeyGrant::kRepository) {
        throw std::invalid_argument("open_repository_key: wrong grant");
    }
    if (!crypto::rsa_verify(sender, signing_material(envelope),
                            envelope.signature)) {
        return std::nullopt;
    }
    return RepositoryKey::deserialize(open_payload(envelope, recipient));
}

std::optional<Bytes> open_data_key(const KeyEnvelope& envelope,
                                   const crypto::RsaPrivateKey& recipient,
                                   const crypto::RsaPublicKey& sender) {
    if (envelope.grant != KeyGrant::kDataKey) {
        throw std::invalid_argument("open_data_key: wrong grant");
    }
    if (!crypto::rsa_verify(sender, signing_material(envelope),
                            envelope.signature)) {
        return std::nullopt;
    }
    return open_payload(envelope, recipient);
}

}  // namespace mie
