// Repository- and data-key sharing (paper §III-A).
//
// "Key sharing interactions can be done asynchronously and out-of-band by
// resorting to ... a key-sharing protocol based on public-key
// authentication": this module implements that protocol as signed,
// hybrid-encrypted key envelopes.
//
//   envelope = RSA-OAEP_recipient(fresh AES key)
//           || AES-CTR(payload)
//           || RSA-SIGN_sender(ciphertext material)
//
// Envelopes carry either a repository key rkR (granting index/search
// rights) or a single data key dkp (granting access to one object's
// contents — the fine-grained control of §III-A). Recipients verify the
// sender's signature before trusting the key, giving the public-key
// authentication the adversary model (§III-B) calls for against
// malicious-user key injection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/rsa.hpp"
#include "mie/keys.hpp"
#include "util/bytes.hpp"

namespace mie {

/// What a key envelope grants.
enum class KeyGrant : std::uint8_t {
    kRepository = 1,  ///< carries a RepositoryKey (search + update rights)
    kDataKey = 2,     ///< carries one object's data key (read rights)
};

struct KeyEnvelope {
    KeyGrant grant = KeyGrant::kRepository;
    std::string repo_id;
    std::uint64_t object_id = 0;  ///< meaningful for kDataKey

    // mielint: allow(R5): OAEP ciphertext, not raw key material
    Bytes wrapped_aes_key;  ///< RSA-OAEP to the recipient
    Bytes sealed_payload;   ///< AES-CTR of the serialized key material
    Bytes signature;        ///< sender's signature over the above

    Bytes serialize() const;
    static KeyEnvelope deserialize(BytesView data);
};

/// Wraps a repository key for `recipient`, signed by `sender`.
KeyEnvelope share_repository_key(const RepositoryKey& key,
                                 const std::string& repo_id,
                                 const crypto::RsaPublicKey& recipient,
                                 const crypto::RsaPrivateKey& sender,
                                 crypto::CtrDrbg& drbg);

/// Wraps one object's data key (from the owner's keyring).
KeyEnvelope share_data_key(const DataKeyring& keyring,
                           std::uint64_t object_id,
                           const std::string& repo_id,
                           const crypto::RsaPublicKey& recipient,
                           const crypto::RsaPrivateKey& sender,
                           crypto::CtrDrbg& drbg);

/// Opens a repository-key envelope. Returns nullopt if the signature does
/// not verify against `sender`; throws std::invalid_argument on grant
/// mismatch or decryption failure (wrong recipient).
std::optional<RepositoryKey> open_repository_key(
    const KeyEnvelope& envelope, const crypto::RsaPrivateKey& recipient,
    const crypto::RsaPublicKey& sender);

/// Opens a data-key envelope (same failure contract).
std::optional<Bytes> open_data_key(const KeyEnvelope& envelope,
                                   const crypto::RsaPrivateKey& recipient,
                                   const crypto::RsaPublicKey& sender);

}  // namespace mie
