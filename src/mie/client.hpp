// MIE client component (paper §V, Algorithms 5-9, user side).
//
// The client's only heavy work per update/search is feature extraction;
// feature vectors are DPE-encoded (Encrypt) and shipped to the cloud, which
// performs training and indexing. This is what makes MIE suitable for
// mobile devices: there is no client-side Train sub-operation at all.
//
// Sub-operation attribution (for Figs. 2-6):
//   Index   = multimodal feature extraction
//   Encrypt = DPE encoding of feature vectors + AES-CTR of the data-object
//   Network = modeled WAN time (plus server processing for synchronous
//             operations, i.e. search)
//   Train   = always zero for MIE (outsourced)
#pragma once

#include <string>
#include <vector>

#include "mie/extract.hpp"
#include "mie/keys.hpp"
#include "mie/scheme.hpp"
#include "mie/server.hpp"
#include "net/transport.hpp"

namespace mie {

class MieClient final : public SearchableScheme {
public:
    /// `transport` must outlive the client. `user_secret` seeds the data
    /// keyring; users sharing a repository share `repo_key` but keep their
    /// own user secrets.
    MieClient(net::Transport& transport, std::string repo_id,
              const RepositoryKey& repo_key, Bytes user_secret,
              double device_cpu_scale = 1.0);

    std::string name() const override { return "MIE"; }

    void create_repository() override;
    void train() override;
    void update(const sim::MultimodalObject& object) override;
    void remove(std::uint64_t object_id) override;
    std::vector<SearchResult> search(const sim::MultimodalObject& query,
                                     std::size_t top_k) override;

    sim::CostMeter& meter() override { return meter_; }

    /// Decrypts a search result that belongs to this user.
    sim::MultimodalObject decrypt_result(const SearchResult& result) const;

    /// Server-side training parameters sent by train().
    TrainParams train_params;

    /// Feature-extraction parameters (client side).
    ExtractionParams extraction;

    /// IVF probe count sent with every search(): 0 (default) asks the
    /// server for the exact path; P > 0 probes only the P most-voted
    /// coarse cells per dense modality (see index/ivf.hpp). Purely a
    /// recall/latency knob — leakage is unchanged, the server sees the
    /// same encodings either way.
    std::size_t search_probes = 0;

    /// Server work accounting from the most recent search() reply
    /// (zeros when talking to a server that predates the tail fields).
    MieServer::SearchWork last_search_work() const { return last_work_; }

private:
    struct EncodedFeatures {
        std::map<ModalityId, std::vector<dpe::BitCode>> dense_codes;
        std::map<ModalityId, std::vector<std::pair<Bytes, std::uint32_t>>>
            sparse_tokens;
    };
    EncodedFeatures encode_features(const MultimodalFeatures& features) const;
    void write_modalities(net::MessageWriter& writer,
                          const EncodedFeatures& encoded) const;

    /// Issues the RPC, charging wire time (and server time when
    /// `synchronous`) to the Network bucket. Mutating requests are
    /// wrapped in an idempotency envelope (net/envelope.hpp) so a
    /// retrying transport can replay them without double-applying.
    Bytes call(BytesView request, bool synchronous);

    net::Transport& transport_;
    std::string repo_id_;
    RepositoryKey repo_key_;
    dpe::DenseDpe dense_dpe_;
    dpe::SparseDpe sparse_dpe_;
    DataKeyring keyring_;
    sim::CostMeter meter_;
    /// Idempotency-envelope identity: (client id, monotonic sequence).
    std::uint64_t op_client_id_ = 0;
    std::uint64_t op_seq_ = 0;
    MieServer::SearchWork last_work_;
};

}  // namespace mie
