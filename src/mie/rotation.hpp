// Repository-key rotation (§III-B: revocation is mitigated by "user access
// control enforcement and revocation mechanisms, complemented with
// public-key authentication and periodic key refreshment").
//
// Revoking a user means the old repository key must stop working: the
// owner generates a fresh key, downloads their ciphertext blobs, re-encodes
// everything under the new key, and rebuilds the repository. Holders of
// the old key can no longer produce matching search tokens or encodings.
//
// Multi-owner repositories rotate cooperatively: each owner re-uploads the
// objects only they can decrypt; this helper handles the calling owner's
// share and reports what it had to skip.
#pragma once

#include <cstdint>
#include <string>

#include "mie/client.hpp"
#include "mie/keys.hpp"
#include "net/transport.hpp"

namespace mie {

struct RotationReport {
    std::size_t objects_rotated = 0;
    /// Objects whose data key is not in the caller's keyring (other
    /// owners' objects) — they must be rotated by their owners.
    std::size_t objects_skipped = 0;
};

/// Rotates `repo_id` to `new_key`: downloads the caller's objects,
/// recreates the repository (wiping all old-key encodings), re-uploads
/// under the new key, and retrains. `keyring` must be the caller's data
/// keyring; `train_params`/`extraction` configure the rebuilt repository.
RotationReport rotate_repository_key(
    net::Transport& transport, const std::string& repo_id,
    const RepositoryKey& new_key, const DataKeyring& keyring,
    const Bytes& user_secret, const TrainParams& train_params = {},
    const ExtractionParams& extraction = {});

}  // namespace mie
