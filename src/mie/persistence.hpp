// Cloud-side repository persistence: one-shot snapshots.
//
// Repository state serializes to a snapshot: ciphertext blobs, DPE
// encodings, token lists, and training parameters. Vocabulary trees and
// inverted indexes are NOT serialized — training is deterministic in
// (data, seed), so load simply re-runs the server-side training/indexing
// pass, trading restart CPU for snapshot size and format stability.
//
// Snapshots are written crash-atomically (temp file + fdatasync + rename
// + directory fsync via store::atomic_write_file), so a crash or power
// failure mid-save leaves the previous snapshot intact.
//
// A snapshot alone loses everything since the last save. For continuous
// durability — every acknowledged mutation survives a crash — use
// mie::DurableServer (src/mie/durable_server.hpp), which write-ahead
// logs mutations and uses this same snapshot format for its checkpoints
// (see DESIGN.md §Durability).
#pragma once

#include <filesystem>
#include <iosfwd>

#include "mie/server.hpp"

namespace mie {

/// Writes every repository of `server` to `path` (atomic via temp+rename).
/// Throws std::runtime_error on I/O failure.
void save_server_snapshot(const MieServer& server,
                          const std::filesystem::path& path);

/// Restores `server` from a snapshot written by save_server_snapshot
/// (replacing its current state). Trained repositories are retrained
/// (deterministically) on load.
/// Throws std::runtime_error / std::out_of_range on corrupt input.
void load_server_snapshot(MieServer& server,
                          const std::filesystem::path& path);

}  // namespace mie
