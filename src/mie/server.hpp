// MIE cloud server component (paper §V, Algorithms 5-9, cloud side).
//
// The untrusted server stores encrypted data-objects alongside their
// DPE-encoded feature vectors, and — this is the paper's key move — runs
// the heavy training (hierarchical k-means over Dense-DPE encodings, using
// normalized Hamming distances) and indexing itself, so the mobile client
// never does. Searching is ranked TF-IDF per modality plus logISR fusion.
//
// The server handles any number of modalities per repository: each dense
// modality (images, audio, ...) gets its own vocabulary tree + inverted
// index; each sparse modality (text, ...) gets an inverted index over PRF
// tokens. Queries may carry any subset of modalities.
//
// The server sees only: deterministic ids, DPE encodings (which reveal
// pairwise distances up to the threshold t), token frequencies, and
// ciphertext blobs — exactly the leakage profile of F_MIE (Algorithm 4).
//
// Thread-safe with per-repository reader/writer locking: SEARCH, STATS
// and LIST_OBJECTS take a repository's lock shared, so any number of
// searchers proceed in parallel; UPDATE/REMOVE/TRAIN take it exclusive
// (Fig. 4's concurrent-writers experiment relies on this). A repository
// map lock (shared for lookup, exclusive for CREATE/restore) keeps
// repository lifetime safe without serializing traffic across
// repositories.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dpe/bitcode.hpp"
#include "index/inverted_index.hpp"
#include "index/ivf.hpp"
#include "index/scoring.hpp"
#include "index/snapshot.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "mie/modality.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace mie {

/// Server-side training parameters ({ID_mi, ip_mi} of TRAIN).
struct TrainParams {
    std::size_t tree_branch = 10;  ///< vocabulary-tree width (paper: 10)
    std::size_t tree_depth = 3;    ///< vocabulary-tree height (paper: 3)
    int kmeans_iterations = 8;
    std::size_t max_training_samples = 20000;  ///< descriptor subsample cap
    std::uint64_t seed = 2017;
    /// Ranking function used at search time.
    enum class Ranking : std::uint8_t { kTfIdf = 0, kBm25 = 1 };
    Ranking ranking = Ranking::kTfIdf;
};

class MieServer final : public net::RequestHandler {
public:
    /// Serialized RPC entry point (see wire.hpp for opcodes).
    Bytes handle(BytesView request) override;

    /// Introspection used by tests/benches (bypasses the wire).
    struct RepoStats {
        std::size_t num_objects = 0;
        bool trained = false;
        std::size_t visual_words = 0;        ///< total leaves, all dense
        std::size_t image_index_terms = 0;   ///< total dense index terms
        std::size_t text_index_terms = 0;    ///< total sparse index terms
        std::size_t dense_modalities = 0;
        std::size_t sparse_modalities = 0;
    };
    RepoStats stats(const std::string& repo_id) const;

    /// Serializes all repositories (blobs, encodings, tokens, training
    /// parameters). Indexes/trees are rebuilt on restore — training is
    /// deterministic in (data, seed).
    Bytes export_snapshot() const;

    /// Replaces this server's state with a snapshot from export_snapshot.
    void restore_snapshot(BytesView snapshot);

    /// Serializes the complete server state — objects AND trained
    /// structures (vocabulary trees, inverted indexes) — into the
    /// mmap-able snapshot v1 file format (index/snapshot.hpp), one
    /// section per repository. Unlike export_snapshot, restoring this
    /// needs no retraining.
    Bytes export_mapped_snapshot() const;

    /// O(1)-restart path: replaces server state with unmaterialized
    /// repositories backed by `snapshot`'s sections. Each repository
    /// parses its section (and pays its CRC check, unless the caller
    /// verified eagerly) on first touch; until then only the section
    /// name is read. The mapping stays alive until the last lazy
    /// repository has materialized.
    void attach_mapped_snapshot(
        std::shared_ptr<index::MappedSnapshot> snapshot);

    /// Per-search work accounting appended to the search response tail
    /// (bench/fig5_search --probes reads it to prove the ≥3× candidate-
    /// scoring reduction).
    struct SearchWork {
        std::uint64_t postings_scored = 0;
        std::uint64_t query_descriptors = 0;
        std::uint64_t descriptors_kept = 0;
    };

private:
    struct StoredObject {
        Bytes blob;  ///< AES-CTR ciphertext of the data-object
        std::map<ModalityId, std::vector<dpe::BitCode>> dense_codes;
        std::map<ModalityId,
                 std::vector<std::pair<index::Term, std::uint32_t>>>
            sparse_terms;
    };

    struct DenseModalityState {
        index::VocabTree<index::HammingSpace> tree;
        index::InvertedIndex index;
        /// Coarse cells over `tree`, rebuilt with it (train or snapshot
        /// materialization); derived data, never serialized.
        index::IvfQuantizer<index::HammingSpace> ivf;
    };

    struct Repository {
        std::unordered_map<std::uint64_t, StoredObject> objects;
        bool trained = false;
        TrainParams train_params;
        std::map<ModalityId, DenseModalityState> dense;
        std::map<ModalityId, index::InvertedIndex> sparse;
        /// Shared by readers (search/stats/list), exclusive for mutations.
        mutable std::shared_mutex mutex;
        /// Lazy mmap materialization: while false, this repository's
        /// contents still live in `source`'s section `source_section`;
        /// ensure_materialized() parses them on first touch under the
        /// repository mutex (double-checked through the atomic flag).
        std::atomic<bool> materialized{true};
        std::shared_ptr<index::MappedSnapshot> source;
        std::uint32_t source_section = 0;
    };

    Bytes handle_create(net::MessageReader& reader);
    Bytes handle_train(Repository& repo, net::MessageReader& reader);
    Bytes handle_update(Repository& repo, net::MessageReader& reader);
    Bytes handle_remove(Repository& repo, net::MessageReader& reader);
    Bytes handle_search(const Repository& repo, net::MessageReader& reader);
    Bytes handle_stats(const Repository& repo, net::MessageReader& reader);
    Bytes handle_list_objects(const Repository& repo,
                              net::MessageReader& reader);

    /// Looks a repository up; caller must hold map_mutex_ (any mode).
    Repository& require_repo(const std::string& repo_id) const;

    /// Core of TRAIN: builds per-modality vocabulary trees and re-indexes
    /// every stored object. Shared by handle_train and restore_snapshot.
    void train_repository(Repository& repo, const TrainParams& params);

    void index_object(Repository& repo, std::uint64_t id,
                      const StoredObject& object);
    void deindex_object(Repository& repo, std::uint64_t id);

    /// Ranks with the repository's configured ranking function.
    std::vector<index::ScoredDoc> rank(
        const Repository& repo, const index::InvertedIndex& index,
        const index::QueryHistogram& query, std::size_t top_k,
        index::RankCounters* counters = nullptr) const;

    /// Per-modality ranked lists for a trained repository. `probes` > 0
    /// routes dense modalities through the IVF coarse quantizer (probe
    /// the P most-voted sibling subtrees only); 0 is the exact path.
    /// `work`, when non-null, receives the scoring-work tally.
    std::vector<std::vector<index::ScoredDoc>> ranked_search(
        const Repository& repo,
        const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
        const std::map<ModalityId, index::QueryHistogram>& query_terms,
        std::size_t top_k, std::size_t probes = 0,
        SearchWork* work = nullptr) const;

    /// Linear-scan fallback for untrained repositories. There is no
    /// coarse structure before training, so `probes` is accepted for
    /// signature symmetry but ignored; `work` counts scanned candidates.
    std::vector<std::vector<index::ScoredDoc>> linear_search(
        const Repository& repo,
        const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
        const std::map<ModalityId, index::QueryHistogram>& query_terms,
        std::size_t top_k, std::size_t probes = 0,
        SearchWork* work = nullptr) const;

    /// Parses `repo`'s snapshot section if it is still lazily backed by
    /// a mapped file (no-op otherwise). Must be called before touching
    /// repository contents; callers must NOT hold the repository mutex.
    void ensure_materialized(Repository& repo) const;
    void materialize_locked(Repository& repo) const;

    /// Section-body (de)serialization for the mapped snapshot format.
    /// Caller holds the repository lock.
    static void serialize_repository(index::SnapshotWriter& writer,
                                     const Repository& repo);
    static void parse_repository(index::SnapshotCursor& cursor,
                                 Repository& repo);

    /// Guards the repository map itself; per-repository state is guarded
    /// by Repository::mutex. Lock order: map_mutex_ before any
    /// Repository::mutex.
    mutable std::shared_mutex map_mutex_;
    // mielint: guarded_by(map_mutex_)
    std::unordered_map<std::string, std::unique_ptr<Repository>>
        repositories_;
};

}  // namespace mie
