// MIE cloud server component (paper §V, Algorithms 5-9, cloud side).
//
// The untrusted server stores encrypted data-objects alongside their
// DPE-encoded feature vectors, and — this is the paper's key move — runs
// the heavy training (hierarchical k-means over Dense-DPE encodings, using
// normalized Hamming distances) and indexing itself, so the mobile client
// never does. Searching is ranked TF-IDF per modality plus logISR fusion.
//
// The server handles any number of modalities per repository: each dense
// modality (images, audio, ...) gets its own vocabulary tree + inverted
// index; each sparse modality (text, ...) gets an inverted index over PRF
// tokens. Queries may carry any subset of modalities.
//
// The server sees only: deterministic ids, DPE encodings (which reveal
// pairwise distances up to the threshold t), token frequencies, and
// ciphertext blobs — exactly the leakage profile of F_MIE (Algorithm 4).
//
// Thread-safe with per-repository reader/writer locking: SEARCH, STATS
// and LIST_OBJECTS take a repository's lock shared, so any number of
// searchers proceed in parallel; UPDATE/REMOVE/TRAIN take it exclusive
// (Fig. 4's concurrent-writers experiment relies on this). A repository
// map lock (shared for lookup, exclusive for CREATE/restore) keeps
// repository lifetime safe without serializing traffic across
// repositories.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dpe/bitcode.hpp"
#include "index/inverted_index.hpp"
#include "index/scoring.hpp"
#include "index/space.hpp"
#include "index/vocab_tree.hpp"
#include "mie/modality.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace mie {

/// Server-side training parameters ({ID_mi, ip_mi} of TRAIN).
struct TrainParams {
    std::size_t tree_branch = 10;  ///< vocabulary-tree width (paper: 10)
    std::size_t tree_depth = 3;    ///< vocabulary-tree height (paper: 3)
    int kmeans_iterations = 8;
    std::size_t max_training_samples = 20000;  ///< descriptor subsample cap
    std::uint64_t seed = 2017;
    /// Ranking function used at search time.
    enum class Ranking : std::uint8_t { kTfIdf = 0, kBm25 = 1 };
    Ranking ranking = Ranking::kTfIdf;
};

class MieServer final : public net::RequestHandler {
public:
    /// Serialized RPC entry point (see wire.hpp for opcodes).
    Bytes handle(BytesView request) override;

    /// Introspection used by tests/benches (bypasses the wire).
    struct RepoStats {
        std::size_t num_objects = 0;
        bool trained = false;
        std::size_t visual_words = 0;        ///< total leaves, all dense
        std::size_t image_index_terms = 0;   ///< total dense index terms
        std::size_t text_index_terms = 0;    ///< total sparse index terms
        std::size_t dense_modalities = 0;
        std::size_t sparse_modalities = 0;
    };
    RepoStats stats(const std::string& repo_id) const;

    /// Serializes all repositories (blobs, encodings, tokens, training
    /// parameters). Indexes/trees are rebuilt on restore — training is
    /// deterministic in (data, seed).
    Bytes export_snapshot() const;

    /// Replaces this server's state with a snapshot from export_snapshot.
    void restore_snapshot(BytesView snapshot);

private:
    struct StoredObject {
        Bytes blob;  ///< AES-CTR ciphertext of the data-object
        std::map<ModalityId, std::vector<dpe::BitCode>> dense_codes;
        std::map<ModalityId,
                 std::vector<std::pair<index::Term, std::uint32_t>>>
            sparse_terms;
    };

    struct DenseModalityState {
        index::VocabTree<index::HammingSpace> tree;
        index::InvertedIndex index;
    };

    struct Repository {
        std::unordered_map<std::uint64_t, StoredObject> objects;
        bool trained = false;
        TrainParams train_params;
        std::map<ModalityId, DenseModalityState> dense;
        std::map<ModalityId, index::InvertedIndex> sparse;
        /// Shared by readers (search/stats/list), exclusive for mutations.
        mutable std::shared_mutex mutex;
    };

    Bytes handle_create(net::MessageReader& reader);
    Bytes handle_train(Repository& repo, net::MessageReader& reader);
    Bytes handle_update(Repository& repo, net::MessageReader& reader);
    Bytes handle_remove(Repository& repo, net::MessageReader& reader);
    Bytes handle_search(const Repository& repo, net::MessageReader& reader);
    Bytes handle_stats(const Repository& repo, net::MessageReader& reader);
    Bytes handle_list_objects(const Repository& repo,
                              net::MessageReader& reader);

    /// Looks a repository up; caller must hold map_mutex_ (any mode).
    Repository& require_repo(const std::string& repo_id) const;

    /// Core of TRAIN: builds per-modality vocabulary trees and re-indexes
    /// every stored object. Shared by handle_train and restore_snapshot.
    void train_repository(Repository& repo, const TrainParams& params);

    void index_object(Repository& repo, std::uint64_t id,
                      const StoredObject& object);
    void deindex_object(Repository& repo, std::uint64_t id);

    /// Ranks with the repository's configured ranking function.
    std::vector<index::ScoredDoc> rank(const Repository& repo,
                                       const index::InvertedIndex& index,
                                       const index::QueryHistogram& query,
                                       std::size_t top_k) const;

    /// Per-modality ranked lists for a trained repository.
    std::vector<std::vector<index::ScoredDoc>> ranked_search(
        const Repository& repo,
        const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
        const std::map<ModalityId, index::QueryHistogram>& query_terms,
        std::size_t top_k) const;

    /// Linear-scan fallback for untrained repositories.
    std::vector<std::vector<index::ScoredDoc>> linear_search(
        const Repository& repo,
        const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
        const std::map<ModalityId, index::QueryHistogram>& query_terms,
        std::size_t top_k) const;

    /// Guards the repository map itself; per-repository state is guarded
    /// by Repository::mutex. Lock order: map_mutex_ before any
    /// Repository::mutex.
    mutable std::shared_mutex map_mutex_;
    std::unordered_map<std::string, std::unique_ptr<Repository>>
        repositories_;
};

}  // namespace mie
