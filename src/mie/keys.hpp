// Key material for MIE repositories (paper §III-A).
//
// A repository key rkR is what the creating user shares with trusted users:
// it bundles the Dense-DPE key (rk1) and the Sparse-DPE key (rk2) and is
// O(1)-sized thanks to the PRG-seeded Dense-DPE. Data keys dkp encrypt the
// data-objects themselves and give per-object access control; they are
// derived from a per-user master secret and the object id.
#pragma once

#include <cstdint>

#include "dpe/dense_dpe.hpp"
#include "dpe/sparse_dpe.hpp"
#include "util/bytes.hpp"

namespace mie {

struct RepositoryKey {
    dpe::DenseDpeKey dense;   ///< rk1: for dense modalities (images)
    dpe::SparseDpeKey sparse; ///< rk2: for sparse modalities (text)

    /// KEYGEN for a repository: derives both DPE keys from fresh entropy.
    /// `input_dims`/`output_bits`/`delta` parameterize Dense-DPE; the
    /// paper's prototype uses 64-dim SURF inputs, equal output size, and
    /// delta chosen so the distance threshold t is 0.5.
    static RepositoryKey generate(BytesView entropy, std::size_t input_dims,
                                  std::size_t output_bits, double delta);

    /// Deliberate duplication (both DPE keys are move-only secrets).
    RepositoryKey clone() const {
        return RepositoryKey{dense.clone(), sparse.clone()};
    }

    Bytes serialize() const;
    static RepositoryKey deserialize(BytesView data);
};

/// Derives per-object data keys dkp from a user master secret. Sharing a
/// data key grants access to that object only (fine-grained access control,
/// §III-A); systems not needing it can use one keyring for everything.
class DataKeyring {
public:
    explicit DataKeyring(Bytes master_secret);

    /// 32-byte AES-256 key for object `id`.
    Bytes data_key(std::uint64_t object_id) const;

private:
    crypto::SecretBytes master_;
};

}  // namespace mie
