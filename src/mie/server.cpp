#include "mie/server.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "exec/exec.hpp"
#include "fusion/rank_fusion.hpp"
#include "index/bovw.hpp"
#include "mie/wire.hpp"
#include "net/envelope.hpp"

namespace mie {

namespace {

/// Sparse tokens arrive as raw PRF bytes; wrap them as index terms.
index::Term sparse_term(BytesView token) {
    return index::Term(token.begin(), token.end());
}

void write_status(net::MessageWriter& writer, bool ok) {
    writer.write_u8(ok ? 1 : 0);
}

/// Reads the per-modality sections of an update/search body.
struct ModalityPayload {
    std::map<ModalityId, std::vector<dpe::BitCode>> dense;
    std::map<ModalityId,
             std::vector<std::pair<index::Term, std::uint32_t>>>
        sparse;
};

ModalityPayload read_modalities(net::MessageReader& reader) {
    ModalityPayload payload;
    const auto num_dense = reader.read_u8();
    for (std::uint8_t m = 0; m < num_dense; ++m) {
        const ModalityId id = reader.read_u8();
        const auto count = reader.read_u32();
        auto& codes = payload.dense[id];
        codes.reserve(std::min<std::uint32_t>(count, 4096));
        for (std::uint32_t i = 0; i < count; ++i) {
            codes.push_back(dpe::BitCode::deserialize(reader.read_bytes()));
        }
    }
    const auto num_sparse = reader.read_u8();
    for (std::uint8_t m = 0; m < num_sparse; ++m) {
        const ModalityId id = reader.read_u8();
        const auto count = reader.read_u32();
        auto& terms = payload.sparse[id];
        terms.reserve(std::min<std::uint32_t>(count, 4096));
        for (std::uint32_t i = 0; i < count; ++i) {
            const Bytes token = reader.read_bytes();
            const auto freq = reader.read_u32();
            terms.emplace_back(sparse_term(token), freq);
        }
    }
    return payload;
}

}  // namespace

Bytes MieServer::handle(BytesView request) {
    // Retry-capable clients wrap mutating requests in an idempotency
    // envelope; the bare in-memory server dispatches on the inner bytes
    // (DurableServer / DedupHandler add the replay dedup on top).
    request = net::envelope_inner(request);
    net::MessageReader reader(request);
    const auto op = static_cast<MieOp>(reader.read_u8());
    if (op == MieOp::kCreateRepository) return handle_create(reader);

    // Every other request names its repository next. Holding the map lock
    // shared pins the Repository object while its own lock is taken.
    const std::string repo_id = reader.read_string();
    const std::shared_lock map_lock(map_mutex_);
    Repository& repo = require_repo(repo_id);
    // A repository restored from an mmap snapshot parses its section on
    // the first request that touches it (O(1) restart pays here instead).
    ensure_materialized(repo);
    switch (op) {
        case MieOp::kTrain: {
            const std::unique_lock repo_lock(repo.mutex);
            return handle_train(repo, reader);
        }
        case MieOp::kUpdate: {
            const std::unique_lock repo_lock(repo.mutex);
            return handle_update(repo, reader);
        }
        case MieOp::kRemove: {
            const std::unique_lock repo_lock(repo.mutex);
            return handle_remove(repo, reader);
        }
        case MieOp::kSearch: {
            const std::shared_lock repo_lock(repo.mutex);
            return handle_search(repo, reader);
        }
        case MieOp::kStats: {
            const std::shared_lock repo_lock(repo.mutex);
            return handle_stats(repo, reader);
        }
        case MieOp::kListObjects: {
            const std::shared_lock repo_lock(repo.mutex);
            return handle_list_objects(repo, reader);
        }
        case MieOp::kCreateRepository: break;  // handled above
    }
    throw std::invalid_argument("MieServer: unknown opcode");
}

// mielint: acquires(map_mutex_)
MieServer::Repository& MieServer::require_repo(
    const std::string& repo_id) const {
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("MieServer: unknown repository " +
                                    repo_id);
    }
    return *it->second;
}

Bytes MieServer::handle_create(net::MessageReader& reader) {
    const std::string repo_id = reader.read_string();
    const std::unique_lock map_lock(map_mutex_);
    repositories_[repo_id] =
        std::make_unique<Repository>();  // fresh (re)initialization
    net::MessageWriter writer;
    write_status(writer, true);
    return writer.take();
}

Bytes MieServer::handle_train(Repository& repo, net::MessageReader& reader) {
    TrainParams params;
    params.tree_branch = reader.read_u32();
    params.tree_depth = reader.read_u32();
    params.kmeans_iterations = static_cast<int>(reader.read_u32());
    params.max_training_samples = reader.read_u32();
    params.seed = reader.read_u64();
    params.ranking = static_cast<TrainParams::Ranking>(reader.read_u8());
    train_repository(repo, params);

    net::MessageWriter writer;
    write_status(writer, true);
    std::uint64_t total_leaves = 0;
    for (const auto& [modality, state] : repo.dense) {
        if (!state.tree.empty()) total_leaves += state.tree.num_leaves();
    }
    writer.write_u64(total_leaves);
    return writer.take();
}

void MieServer::train_repository(Repository& repo,
                                 const TrainParams& params) {
    repo.train_params = params;

    // Deterministic object order: training (and thus the resulting trees)
    // must be identical across runs and across snapshot restores, so the
    // unordered storage map is walked in sorted-id order.
    std::vector<std::uint64_t> object_ids;
    object_ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, object] : repo.objects) object_ids.push_back(id);
    std::sort(object_ids.begin(), object_ids.end());

    // Which dense modalities exist in the repository right now?
    repo.dense.clear();
    repo.sparse.clear();
    // mielint: allow(R3): populates ordered maps; visit order irrelevant
    for (const auto& [id, object] : repo.objects) {
        for (const auto& [modality, codes] : object.dense_codes) {
            if (!codes.empty()) repo.dense[modality];  // default-construct
        }
        for (const auto& [modality, terms] : object.sparse_terms) {
            if (!terms.empty()) repo.sparse[modality];
        }
    }

    // Per dense modality: gather encodings (stride subsampling) and build
    // the vocabulary tree — the machine-learning step the clients avoid.
    // Modalities train as concurrent tasks (each task also fans out
    // internally through the parallel k-means); every modality's tree is
    // a pure function of (its codes in sorted-id order, its seed), so the
    // fan-out cannot change results.
    {
        exec::TaskGroup training_tasks;
        for (auto& [modality_key, modality_state] : repo.dense) {
            const ModalityId modality = modality_key;
            MieServer::DenseModalityState* state = &modality_state;
            training_tasks.run([&repo, &object_ids, &params, modality,
                                state] {
                std::size_t total = 0;
                // mielint: allow(R3): commutative count
                for (const auto& [id, object] : repo.objects) {
                    const auto it = object.dense_codes.find(modality);
                    if (it != object.dense_codes.end()) {
                        total += it->second.size();
                    }
                }
                const std::size_t stride = std::max<std::size_t>(
                    1, total / std::max<std::size_t>(
                                   1, params.max_training_samples));
                std::vector<dpe::BitCode> training;
                std::size_t cursor = 0;
                for (const std::uint64_t id : object_ids) {
                    const auto& object = repo.objects.at(id);
                    const auto it = object.dense_codes.find(modality);
                    if (it == object.dense_codes.end()) continue;
                    for (const auto& code : it->second) {
                        if (cursor++ % stride == 0) {
                            training.push_back(code);
                        }
                    }
                }
                if (training.empty()) return;
                index::VocabTree<index::HammingSpace>::Params tree_params;
                tree_params.branch = params.tree_branch;
                tree_params.depth = params.tree_depth;
                tree_params.kmeans_iterations = params.kmeans_iterations;
                state->tree = index::VocabTree<index::HammingSpace>::build(
                    training, tree_params, params.seed + modality);
                // Coarse cells are derived data; rebuild alongside the tree.
                state->ivf =
                    index::IvfQuantizer<index::HammingSpace>::build(
                        state->tree);
            });
        }
        training_tasks.wait();
    }

    // (Re)index everything already stored. Quantization (vocabulary-tree
    // walks per stored code) dominates and is embarrassingly parallel, so
    // word lists are computed into per-object slots first; the postings
    // are then inserted serially in sorted-id order, which keeps the
    // index byte-identical to a single-threaded rebuild.
    repo.trained = true;
    std::vector<std::map<ModalityId, std::vector<std::uint32_t>>> words(
        object_ids.size());
    exec::parallel_for(0, object_ids.size(), 1, [&](std::size_t i) {
        const StoredObject& object = repo.objects.at(object_ids[i]);
        for (const auto& [modality, state] : repo.dense) {
            if (state.tree.empty()) continue;
            const auto it = object.dense_codes.find(modality);
            if (it == object.dense_codes.end() || it->second.empty()) {
                continue;
            }
            auto& list = words[i][modality];
            list.reserve(it->second.size());
            for (const auto& code : it->second) {
                list.push_back(state.tree.quantize(code));
            }
        }
    });
    for (std::size_t i = 0; i < object_ids.size(); ++i) {
        const std::uint64_t id = object_ids[i];
        for (const auto& [modality, list] : words[i]) {
            auto& index = repo.dense.at(modality).index;
            for (const std::uint32_t word : list) {
                index.add(index::visual_word_term(word), id, 1);
            }
        }
        for (const auto& [modality, terms] :
             repo.objects.at(id).sparse_terms) {
            auto& idx = repo.sparse[modality];
            for (const auto& [term, freq] : terms) {
                idx.add(term, id, freq);
            }
        }
    }
}

void MieServer::index_object(Repository& repo, std::uint64_t id,
                             const StoredObject& object) {
    for (const auto& [modality, codes] : object.dense_codes) {
        const auto state = repo.dense.find(modality);
        if (state == repo.dense.end() || state->second.tree.empty()) {
            continue;  // modality appeared after training; indexed next train
        }
        for (const auto& code : codes) {
            state->second.index.add(
                index::visual_word_term(state->second.tree.quantize(code)),
                id, 1);
        }
    }
    for (const auto& [modality, terms] : object.sparse_terms) {
        auto& idx = repo.sparse[modality];
        for (const auto& [term, freq] : terms) {
            idx.add(term, id, freq);
        }
    }
}

void MieServer::deindex_object(Repository& repo, std::uint64_t id) {
    for (auto& [modality, state] : repo.dense) {
        state.index.remove_document(id);
    }
    for (auto& [modality, idx] : repo.sparse) {
        idx.remove_document(id);
    }
}

Bytes MieServer::handle_update(Repository& repo, net::MessageReader& reader) {
    const std::uint64_t id = reader.read_u64();

    StoredObject object;
    object.blob = reader.read_bytes();
    ModalityPayload payload = read_modalities(reader);
    object.dense_codes = std::move(payload.dense);
    object.sparse_terms = std::move(payload.sparse);

    // Updates are remove-then-add (Algorithm 7 line 11).
    if (repo.objects.contains(id)) deindex_object(repo, id);
    auto [slot, inserted] =
        repo.objects.insert_or_assign(id, std::move(object));
    if (repo.trained) index_object(repo, id, slot->second);

    net::MessageWriter writer;
    write_status(writer, true);
    return writer.take();
}

Bytes MieServer::handle_remove(Repository& repo, net::MessageReader& reader) {
    const std::uint64_t id = reader.read_u64();
    const bool existed = repo.objects.contains(id);
    if (existed) {
        deindex_object(repo, id);
        repo.objects.erase(id);
    }
    net::MessageWriter writer;
    write_status(writer, existed);
    return writer.take();
}

std::vector<index::ScoredDoc> MieServer::rank(
    const Repository& repo, const index::InvertedIndex& index,
    const index::QueryHistogram& query, std::size_t top_k,
    index::RankCounters* counters) const {
    if (repo.train_params.ranking == TrainParams::Ranking::kBm25) {
        return index::rank_bm25(index, query, repo.objects.size(), top_k,
                                index::Bm25Params{}, counters);
    }
    return index::rank_tfidf(index, query, repo.objects.size(), top_k,
                             counters);
}

std::vector<std::vector<index::ScoredDoc>> MieServer::ranked_search(
    const Repository& repo,
    const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
    const std::map<ModalityId, index::QueryHistogram>& query_terms,
    std::size_t top_k, std::size_t probes, SearchWork* work) const {
    // Per-modality fan-out: each modality's quantize + TF-IDF pass runs as
    // a task, writing its ranked list into a fixed slot; the logISR fusion
    // downstream then joins lists in the same (dense, sparse) modality
    // order a serial pass produces. Work tallies land in per-slot counters
    // and are summed after the join, so the totals are deterministic at
    // any thread count.
    std::vector<std::vector<index::ScoredDoc>> lists;
    // Tasks may run while later slots are still being appended: reserving
    // the maximum keeps element addresses stable for in-flight writers.
    const std::size_t max_slots = query_codes.size() + query_terms.size();
    lists.reserve(max_slots);
    std::vector<index::RankCounters> counters(max_slots);
    std::vector<index::IvfStats> ivf_stats(max_slots);
    exec::TaskGroup scoring;
    for (const auto& [modality, query] : query_codes) {
        const auto state = repo.dense.find(modality);
        if (state == repo.dense.end() || state->second.tree.empty() ||
            query.empty()) {
            continue;
        }
        const std::size_t slot = lists.size();
        lists.emplace_back();
        const DenseModalityState* dense = &state->second;
        const std::vector<dpe::BitCode>* codes = &query;
        scoring.run([this, &repo, &lists, &counters, &ivf_stats, slot, dense,
                     codes, top_k, probes] {
            const index::QueryHistogram histogram = index::ivf_histogram(
                dense->tree, dense->ivf, *codes, probes, &ivf_stats[slot],
                &dense->index);
            lists[slot] =
                rank(repo, dense->index, histogram, top_k, &counters[slot]);
        });
    }
    for (const auto& [modality, query] : query_terms) {
        const auto idx = repo.sparse.find(modality);
        if (idx == repo.sparse.end() || query.empty()) continue;
        const std::size_t slot = lists.size();
        lists.emplace_back();
        const index::InvertedIndex* index = &idx->second;
        const index::QueryHistogram* terms = &query;
        scoring.run([this, &repo, &lists, &counters, slot, index, terms,
                     top_k] {
            lists[slot] = rank(repo, *index, *terms, top_k, &counters[slot]);
        });
    }
    scoring.wait();
    if (work != nullptr) {
        for (std::size_t slot = 0; slot < lists.size(); ++slot) {
            work->postings_scored += counters[slot].postings_scored;
            work->query_descriptors += ivf_stats[slot].query_descriptors;
            work->descriptors_kept += ivf_stats[slot].descriptors_kept;
        }
    }
    return lists;
}

std::vector<std::vector<index::ScoredDoc>> MieServer::linear_search(
    const Repository& repo,
    const std::map<ModalityId, std::vector<dpe::BitCode>>& query_codes,
    const std::map<ModalityId, index::QueryHistogram>& query_terms,
    std::size_t top_k, std::size_t probes, SearchWork* work) const {
    (void)probes;  // no coarse structure exists before training
    // Same per-modality fan-out as ranked_search; the linear scans over
    // stored objects are independent per modality. Scores land in an
    // id-keyed map, so the result is iteration-order-free.
    std::vector<std::vector<index::ScoredDoc>> lists;
    // Reserve before submitting: element addresses must survive appends.
    const std::size_t max_slots = query_codes.size() + query_terms.size();
    lists.reserve(max_slots);
    std::vector<index::RankCounters> counters(max_slots);
    exec::TaskGroup scoring;
    for (const auto& [modality_key, query] : query_codes) {
        if (query.empty()) continue;
        const std::size_t slot = lists.size();
        lists.emplace_back();
        const ModalityId modality = modality_key;
        const std::vector<dpe::BitCode>* codes = &query;
        scoring.run([&repo, &lists, &counters, slot, modality, codes,
                     top_k] {
            std::map<index::DocId, double> scores;
            // mielint: allow(R3): scores land in an ordered map
            for (const auto& [id, object] : repo.objects) {
                const auto it = object.dense_codes.find(modality);
                if (it == object.dense_codes.end() || it->second.empty()) {
                    continue;
                }
                // Average similarity of each query descriptor to its
                // nearest stored descriptor; distances beyond the DPE
                // threshold carry no information, so similarity floors
                // near 0.5.
                double total = 0.0;
                for (const auto& q : *codes) {
                    double best = 1.0;
                    for (const auto& d : it->second) {
                        best = std::min(best, q.normalized_hamming(d));
                    }
                    total += 1.0 - best;
                }
                scores[id] = total / static_cast<double>(codes->size());
                ++counters[slot].postings_scored;  // one candidate scanned
            }
            lists[slot] = index::top_k_of(std::move(scores), top_k);
        });
    }
    for (const auto& [modality_key, query] : query_terms) {
        if (query.empty()) continue;
        const std::size_t slot = lists.size();
        lists.emplace_back();
        const ModalityId modality = modality_key;
        const index::QueryHistogram* terms = &query;
        scoring.run([&repo, &lists, &counters, slot, modality, terms,
                     top_k] {
            std::map<index::DocId, double> scores;
            // mielint: allow(R3): scores land in an ordered map
            for (const auto& [id, object] : repo.objects) {
                const auto it = object.sparse_terms.find(modality);
                if (it == object.sparse_terms.end()) continue;
                double overlap = 0.0;
                for (const auto& [term, freq] : it->second) {
                    const auto match = terms->find(term);
                    if (match != terms->end()) {
                        overlap += std::min<double>(freq, match->second);
                    }
                }
                if (overlap > 0.0) {
                    scores[id] = overlap;
                    ++counters[slot].postings_scored;
                }
            }
            lists[slot] = index::top_k_of(std::move(scores), top_k);
        });
    }
    scoring.wait();
    if (work != nullptr) {
        for (std::size_t slot = 0; slot < lists.size(); ++slot) {
            work->postings_scored += counters[slot].postings_scored;
        }
        for (const auto& [modality, query] : query_codes) {
            work->query_descriptors += query.size();
            work->descriptors_kept += query.size();  // nothing is pruned
        }
    }
    return lists;
}

Bytes MieServer::handle_search(const Repository& repo,
                               net::MessageReader& reader) {
    const auto top_k = static_cast<std::size_t>(reader.read_u32());

    ModalityPayload payload = read_modalities(reader);
    std::map<ModalityId, index::QueryHistogram> query_terms;
    for (const auto& [modality, terms] : payload.sparse) {
        auto& histogram = query_terms[modality];
        for (const auto& [term, freq] : terms) histogram[term] = freq;
    }
    // Optional trailing field (wire.hpp): IVF probe count. Absent (older
    // clients) or 0 means the exact path; read leniently so a short tail
    // keeps the pre-probes behavior instead of failing the request.
    std::size_t probes = 0;
    if (reader.remaining() >= 4) probes = reader.read_u32();

    // Fetch a deeper pool per modality so fusion has material to merge.
    const std::size_t pool = std::max<std::size_t>(top_k * 4, 32);
    SearchWork work;
    const auto lists =
        repo.trained
            ? ranked_search(repo, payload.dense, query_terms, pool, probes,
                            &work)
            : linear_search(repo, payload.dense, query_terms, pool, probes,
                            &work);

    const auto fused = fusion::log_isr_fusion(lists, top_k);

    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(fused.size()));
    for (const auto& item : fused) {
        writer.write_u64(item.doc);
        writer.write_f64(item.score);
        writer.write_bytes(repo.objects.at(item.doc).blob);
    }
    // Work-accounting tail; readers that stop after the results above
    // (all pre-probes parsers do) are unaffected.
    writer.write_u64(work.postings_scored);
    writer.write_u64(work.query_descriptors);
    writer.write_u64(work.descriptors_kept);
    return writer.take();
}

Bytes MieServer::handle_list_objects(const Repository& repo,
                                     net::MessageReader& reader) {
    (void)reader;  // no further request fields
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
    // Wire output must not depend on hash-map iteration order (lint rule
    // R3): list in sorted-id order so every run and every standard-library
    // implementation produces identical bytes.
    std::vector<std::uint64_t> ids;
    ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, object] : repo.objects) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
        writer.write_u64(id);
        writer.write_bytes(repo.objects.at(id).blob);
    }
    return writer.take();
}

Bytes MieServer::handle_stats(const Repository& repo,
                              net::MessageReader& reader) {
    (void)reader;  // no further request fields
    net::MessageWriter writer;
    writer.write_u64(repo.objects.size());
    writer.write_u8(repo.trained ? 1 : 0);
    std::uint64_t leaves = 0, dense_terms = 0, sparse_terms = 0;
    for (const auto& [modality, state] : repo.dense) {
        if (!state.tree.empty()) leaves += state.tree.num_leaves();
        dense_terms += state.index.num_terms();
    }
    for (const auto& [modality, idx] : repo.sparse) {
        sparse_terms += idx.num_terms();
    }
    writer.write_u64(leaves);
    writer.write_u64(dense_terms);
    writer.write_u64(sparse_terms);
    return writer.take();
}

Bytes MieServer::export_snapshot() const {
    const std::shared_lock map_lock(map_mutex_);
    net::MessageWriter writer;
    writer.write_u32(static_cast<std::uint32_t>(repositories_.size()));
    // Snapshot bytes must be a pure function of server state, not of
    // hash-map iteration order (lint rule R3): repositories and objects
    // are serialized in sorted order.
    std::vector<std::string> repo_ids;
    repo_ids.reserve(repositories_.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [repo_id, repo_ptr] : repositories_) {
        repo_ids.push_back(repo_id);
    }
    std::sort(repo_ids.begin(), repo_ids.end());
    for (const std::string& repo_id : repo_ids) {
        // Each repository is serialized under its shared lock, so each is
        // internally consistent; callers needing a cross-repository
        // consistent cut must quiesce writers themselves (DurableServer
        // checkpoints do, by holding the log mutex).
        Repository& repo = *repositories_.at(repo_id);
        ensure_materialized(repo);
        const std::shared_lock repo_lock(repo.mutex);
        writer.write_string(repo_id);
        writer.write_u8(repo.trained ? 1 : 0);
        writer.write_u32(static_cast<std::uint32_t>(
            repo.train_params.tree_branch));
        writer.write_u32(
            static_cast<std::uint32_t>(repo.train_params.tree_depth));
        writer.write_u32(static_cast<std::uint32_t>(
            repo.train_params.kmeans_iterations));
        writer.write_u32(static_cast<std::uint32_t>(
            repo.train_params.max_training_samples));
        writer.write_u64(repo.train_params.seed);
        writer.write_u8(
            static_cast<std::uint8_t>(repo.train_params.ranking));
        writer.write_u32(static_cast<std::uint32_t>(repo.objects.size()));
        std::vector<std::uint64_t> object_ids;
        object_ids.reserve(repo.objects.size());
        // mielint: allow(R3): ids are sorted on the next line
        for (const auto& [id, object] : repo.objects) {
            object_ids.push_back(id);
        }
        std::sort(object_ids.begin(), object_ids.end());
        for (const std::uint64_t id : object_ids) {
            const StoredObject& object = repo.objects.at(id);
            writer.write_u64(id);
            writer.write_bytes(object.blob);
            writer.write_u8(
                static_cast<std::uint8_t>(object.dense_codes.size()));
            for (const auto& [modality, codes] : object.dense_codes) {
                writer.write_u8(modality);
                writer.write_u32(static_cast<std::uint32_t>(codes.size()));
                for (const auto& code : codes) {
                    writer.write_bytes(code.serialize());
                }
            }
            writer.write_u8(
                static_cast<std::uint8_t>(object.sparse_terms.size()));
            for (const auto& [modality, terms] : object.sparse_terms) {
                writer.write_u8(modality);
                writer.write_u32(static_cast<std::uint32_t>(terms.size()));
                for (const auto& [term, freq] : terms) {
                    writer.write_bytes(to_bytes(term));
                    writer.write_u32(freq);
                }
            }
        }
    }
    return writer.take();
}

void MieServer::restore_snapshot(BytesView snapshot) {
    const std::unique_lock map_lock(map_mutex_);
    repositories_.clear();
    net::MessageReader reader(snapshot);
    const auto num_repos = reader.read_u32();
    for (std::uint32_t r = 0; r < num_repos; ++r) {
        const std::string repo_id = reader.read_string();
        auto repo_ptr = std::make_unique<Repository>();
        Repository& repo = *repo_ptr;
        const bool trained = reader.read_u8() != 0;
        TrainParams params;
        params.tree_branch = reader.read_u32();
        params.tree_depth = reader.read_u32();
        params.kmeans_iterations = static_cast<int>(reader.read_u32());
        params.max_training_samples = reader.read_u32();
        params.seed = reader.read_u64();
        params.ranking =
            static_cast<TrainParams::Ranking>(reader.read_u8());
        repo.train_params = params;
        const auto num_objects = reader.read_u32();
        for (std::uint32_t i = 0; i < num_objects; ++i) {
            const std::uint64_t id = reader.read_u64();
            StoredObject object;
            object.blob = reader.read_bytes();
            ModalityPayload payload = read_modalities(reader);
            object.dense_codes = std::move(payload.dense);
            object.sparse_terms = std::move(payload.sparse);
            repo.objects.emplace(id, std::move(object));
        }
        if (trained) {
            // Deterministic retraining rebuilds trees and indexes exactly.
            train_repository(repo, params);
        }
        repositories_.emplace(repo_id, std::move(repo_ptr));
    }
}

// ---- Mapped (mmap) snapshots ----------------------------------------

void MieServer::ensure_materialized(Repository& repo) const {
    // Double-checked through the atomic flag: the common case (already
    // materialized) is one acquire load, no lock.
    if (repo.materialized.load(std::memory_order_acquire)) return;
    const std::unique_lock repo_lock(repo.mutex);
    if (repo.materialized.load(std::memory_order_relaxed)) return;
    materialize_locked(repo);
}

void MieServer::materialize_locked(Repository& repo) const {
    // section() CRC-checks the body on first access; durable recovery
    // verified eagerly, so this only throws on truly late corruption.
    index::SnapshotCursor cursor(repo.source->section(repo.source_section));
    parse_repository(cursor, repo);
    repo.source.reset();  // last repository standing unmaps the file
    repo.materialized.store(true, std::memory_order_release);
}

// Section body layout (all via SnapshotWriter, see snapshot.hpp):
//   u32 trained | u32 ranking | u64 tree_branch | u64 tree_depth |
//   u32 kmeans_iterations | u64 max_training_samples | u64 seed |
//   u64 num_objects |
//   per object (sorted id):
//     u64 id | bytes blob |
//     u32 #dense { u32 modality | u32 #codes | bytes code... } |
//     u32 #sparse { u32 modality | u32 #terms { str term | u32 freq }... }
//   u32 #dense_states { u32 modality | vocab_tree | inverted_index } |
//   u32 #sparse_indexes { u32 modality | inverted_index }
// The IVF coarse-cell table is derived from the tree and rebuilt on
// parse, never serialized.
void MieServer::serialize_repository(index::SnapshotWriter& writer,
                                     const Repository& repo) {
    writer.write_u32(repo.trained ? 1 : 0);
    writer.write_u32(static_cast<std::uint32_t>(repo.train_params.ranking));
    writer.write_u64(repo.train_params.tree_branch);
    writer.write_u64(repo.train_params.tree_depth);
    writer.write_u32(
        static_cast<std::uint32_t>(repo.train_params.kmeans_iterations));
    writer.write_u64(repo.train_params.max_training_samples);
    writer.write_u64(repo.train_params.seed);

    std::vector<std::uint64_t> object_ids;
    object_ids.reserve(repo.objects.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [id, object] : repo.objects) object_ids.push_back(id);
    std::sort(object_ids.begin(), object_ids.end());
    writer.write_u64(object_ids.size());
    for (const std::uint64_t id : object_ids) {
        const StoredObject& object = repo.objects.at(id);
        writer.write_u64(id);
        writer.write_bytes(object.blob);
        writer.write_u32(
            static_cast<std::uint32_t>(object.dense_codes.size()));
        for (const auto& [modality, codes] : object.dense_codes) {
            writer.write_u32(modality);
            writer.write_u32(static_cast<std::uint32_t>(codes.size()));
            for (const auto& code : codes) {
                writer.write_bytes(code.serialize());
            }
        }
        writer.write_u32(
            static_cast<std::uint32_t>(object.sparse_terms.size()));
        for (const auto& [modality, terms] : object.sparse_terms) {
            writer.write_u32(modality);
            writer.write_u32(static_cast<std::uint32_t>(terms.size()));
            for (const auto& [term, freq] : terms) {
                writer.write_string(term);
                writer.write_u32(freq);
            }
        }
    }

    writer.write_u32(static_cast<std::uint32_t>(repo.dense.size()));
    for (const auto& [modality, state] : repo.dense) {
        writer.write_u32(modality);
        index::write_vocab_tree(writer, state.tree);
        index::write_inverted_index(writer, state.index);
    }
    writer.write_u32(static_cast<std::uint32_t>(repo.sparse.size()));
    for (const auto& [modality, idx] : repo.sparse) {
        writer.write_u32(modality);
        index::write_inverted_index(writer, idx);
    }
}

void MieServer::parse_repository(index::SnapshotCursor& cursor,
                                 Repository& repo) {
    repo.trained = cursor.read_u32() != 0;
    repo.train_params.ranking =
        static_cast<TrainParams::Ranking>(cursor.read_u32());
    repo.train_params.tree_branch = cursor.read_u64();
    repo.train_params.tree_depth = cursor.read_u64();
    repo.train_params.kmeans_iterations =
        static_cast<int>(cursor.read_u32());
    repo.train_params.max_training_samples = cursor.read_u64();
    repo.train_params.seed = cursor.read_u64();

    const std::uint64_t num_objects = cursor.read_u64();
    for (std::uint64_t i = 0; i < num_objects; ++i) {
        const std::uint64_t id = cursor.read_u64();
        StoredObject object;
        object.blob = cursor.read_bytes();
        const std::uint32_t num_dense = cursor.read_u32();
        for (std::uint32_t m = 0; m < num_dense; ++m) {
            const auto modality =
                static_cast<ModalityId>(cursor.read_u32());
            const std::uint32_t count = cursor.read_u32();
            auto& codes = object.dense_codes[modality];
            codes.reserve(std::min<std::uint32_t>(count, 4096));
            for (std::uint32_t c = 0; c < count; ++c) {
                codes.push_back(
                    dpe::BitCode::deserialize(cursor.read_bytes_view()));
            }
        }
        const std::uint32_t num_sparse = cursor.read_u32();
        for (std::uint32_t m = 0; m < num_sparse; ++m) {
            const auto modality =
                static_cast<ModalityId>(cursor.read_u32());
            const std::uint32_t count = cursor.read_u32();
            auto& terms = object.sparse_terms[modality];
            terms.reserve(std::min<std::uint32_t>(count, 4096));
            for (std::uint32_t t = 0; t < count; ++t) {
                index::Term term = cursor.read_string();
                const std::uint32_t freq = cursor.read_u32();
                terms.emplace_back(std::move(term), freq);
            }
        }
        repo.objects.emplace(id, std::move(object));
    }

    const std::uint32_t num_dense_states = cursor.read_u32();
    for (std::uint32_t m = 0; m < num_dense_states; ++m) {
        const auto modality = static_cast<ModalityId>(cursor.read_u32());
        DenseModalityState& state = repo.dense[modality];
        state.tree = index::read_vocab_tree<index::HammingSpace>(cursor);
        state.index = index::read_inverted_index(cursor);
        state.ivf =
            index::IvfQuantizer<index::HammingSpace>::build(state.tree);
    }
    const std::uint32_t num_sparse_states = cursor.read_u32();
    for (std::uint32_t m = 0; m < num_sparse_states; ++m) {
        const auto modality = static_cast<ModalityId>(cursor.read_u32());
        repo.sparse[modality] = index::read_inverted_index(cursor);
    }
}

Bytes MieServer::export_mapped_snapshot() const {
    const std::shared_lock map_lock(map_mutex_);
    std::vector<std::string> repo_ids;
    repo_ids.reserve(repositories_.size());
    // mielint: allow(R3): ids are sorted on the next line
    for (const auto& [repo_id, repo_ptr] : repositories_) {
        repo_ids.push_back(repo_id);
    }
    std::sort(repo_ids.begin(), repo_ids.end());
    index::SnapshotFileBuilder builder;
    for (const std::string& repo_id : repo_ids) {
        Repository& repo = *repositories_.at(repo_id);
        // A still-lazy repository round-trips through parse + reserialize;
        // both are sorted-order pure functions of state, so the bytes are
        // unchanged (the round-trip tests pin this down).
        ensure_materialized(repo);
        const std::shared_lock repo_lock(repo.mutex);
        index::SnapshotWriter writer;
        serialize_repository(writer, repo);
        builder.add_section(repo_id, writer.take());
    }
    return builder.finish();
}

void MieServer::attach_mapped_snapshot(
    std::shared_ptr<index::MappedSnapshot> snapshot) {
    const std::unique_lock map_lock(map_mutex_);
    repositories_.clear();
    for (std::size_t i = 0; i < snapshot->num_sections(); ++i) {
        auto repo = std::make_unique<Repository>();
        repo->materialized.store(false, std::memory_order_release);
        repo->source = snapshot;
        repo->source_section = static_cast<std::uint32_t>(i);
        repositories_[snapshot->section_name(i)] = std::move(repo);
    }
}

MieServer::RepoStats MieServer::stats(const std::string& repo_id) const {
    const std::shared_lock map_lock(map_mutex_);
    const auto it = repositories_.find(repo_id);
    if (it == repositories_.end()) {
        throw std::invalid_argument("MieServer: unknown repository");
    }
    Repository& repo = *it->second;
    ensure_materialized(repo);
    const std::shared_lock repo_lock(repo.mutex);
    RepoStats stats;
    stats.num_objects = repo.objects.size();
    stats.trained = repo.trained;
    for (const auto& [modality, state] : repo.dense) {
        if (!state.tree.empty()) stats.visual_words += state.tree.num_leaves();
        stats.image_index_terms += state.index.num_terms();
    }
    for (const auto& [modality, idx] : repo.sparse) {
        stats.text_index_terms += idx.num_terms();
    }
    stats.dense_modalities = repo.dense.size();
    stats.sparse_modalities = repo.sparse.size();
    return stats;
}

}  // namespace mie
