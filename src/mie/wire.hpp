// MIE client <-> cloud wire protocol opcodes.
//
// One opcode per operation of Definition 2 (plus a stats probe used by
// tests and benchmarks). Request/response bodies are serialized with
// net::MessageWriter/Reader; see server.cpp for the exact layouts.
//
// kSearch layout (the one request with optional tail fields):
//   request:  u8 op | str repo | u32 top_k | modalities
//             [| u32 probes]      IVF probe count; absent or 0 = exact
//                                 path (index/ivf.hpp). Read leniently,
//                                 so pre-probes clients stay compatible.
//   response: u32 count | count x (u64 id | f64 score | bytes blob)
//             [| u64 postings_scored | u64 query_descriptors
//              | u64 descriptors_kept]   work-accounting tail; readers
//                                 that stop after the results ignore it.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/envelope.hpp"
#include "util/bytes.hpp"

namespace mie {

enum class MieOp : std::uint8_t {
    kCreateRepository = 1,
    kTrain = 2,
    kUpdate = 3,
    kRemove = 4,
    kSearch = 5,
    kStats = 6,
    kListObjects = 7,  ///< ids + blobs (key-rotation support)
};

/// True for opcodes that change repository state — exactly the requests
/// the durable server must write-ahead log before acknowledging.
constexpr bool is_mutating(MieOp op) {
    switch (op) {
        case MieOp::kCreateRepository:
        case MieOp::kTrain:
        case MieOp::kUpdate:
        case MieOp::kRemove:
            return true;
        case MieOp::kSearch:
        case MieOp::kStats:
        case MieOp::kListObjects:
            return false;
    }
    return false;
}

/// Cluster control-plane and replication opcode family (served by
/// cluster::Node alongside the MieOps above). The 0xB0 block cannot
/// collide with MieOp (1..7) or the idempotency-envelope magic 0xE7.
///
/// Wire layouts (net::MessageWriter/Reader, see cluster/node.cpp):
///   kReplPull      u8 op | u64 after_lsn | u32 max_records
///     -> u8 kind; kind 0 (records):  u8 end_of_log | u32 count |
///                                    count x (u64 lsn | bytes payload)
///        kind 1 (snapshot): u64 snapshot_lsn | bytes snapshot
///     The snapshot form is the bootstrap/fallback path: the source's
///     checkpointing truncated records the reader still needs.
///   kReplState     u8 op
///     -> u8 role (cluster::Role) | u64 last_lsn | u64 acked_lsn
///   kPromote       u8 op          (follower -> primary takeover)
///     -> u8 status (1)
enum class ClusterOp : std::uint8_t {
    kReplPull = 0xB0,
    kReplState = 0xB1,
    kPromote = 0xB2,
};

/// True when the (non-enveloped) opcode byte belongs to the cluster
/// opcode family.
constexpr bool is_cluster_op(std::uint8_t opcode) {
    return opcode >= 0xB0 && opcode <= 0xB2;
}

/// Classifies a raw wire request (enveloped or not) as mutating, without
/// dispatching it: peeks through the idempotency envelope at the opcode
/// byte. Malformed requests (empty, truncated envelope) classify as
/// non-mutating — the handler will reject them anyway, and routing them
/// through the read path keeps garbage out of the group-commit queue.
/// This is the reactor's routing predicate: true -> group-commit WAL
/// queue, false -> read thread pool.
inline bool is_mutating_request(BytesView request) {
    try {
        const BytesView inner = net::envelope_inner(request);
        if (inner.empty()) return false;
        return is_mutating(static_cast<MieOp>(inner[0]));
    } catch (const std::invalid_argument&) {
        return false;
    }
}

}  // namespace mie
