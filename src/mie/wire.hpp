// MIE client <-> cloud wire protocol opcodes.
//
// One opcode per operation of Definition 2 (plus a stats probe used by
// tests and benchmarks). Request/response bodies are serialized with
// net::MessageWriter/Reader; see server.cpp for the exact layouts.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/envelope.hpp"
#include "util/bytes.hpp"

namespace mie {

enum class MieOp : std::uint8_t {
    kCreateRepository = 1,
    kTrain = 2,
    kUpdate = 3,
    kRemove = 4,
    kSearch = 5,
    kStats = 6,
    kListObjects = 7,  ///< ids + blobs (key-rotation support)
};

/// True for opcodes that change repository state — exactly the requests
/// the durable server must write-ahead log before acknowledging.
constexpr bool is_mutating(MieOp op) {
    switch (op) {
        case MieOp::kCreateRepository:
        case MieOp::kTrain:
        case MieOp::kUpdate:
        case MieOp::kRemove:
            return true;
        case MieOp::kSearch:
        case MieOp::kStats:
        case MieOp::kListObjects:
            return false;
    }
    return false;
}

/// Classifies a raw wire request (enveloped or not) as mutating, without
/// dispatching it: peeks through the idempotency envelope at the opcode
/// byte. Malformed requests (empty, truncated envelope) classify as
/// non-mutating — the handler will reject them anyway, and routing them
/// through the read path keeps garbage out of the group-commit queue.
/// This is the reactor's routing predicate: true -> group-commit WAL
/// queue, false -> read thread pool.
inline bool is_mutating_request(BytesView request) {
    try {
        const BytesView inner = net::envelope_inner(request);
        if (inner.empty()) return false;
        return is_mutating(static_cast<MieOp>(inner[0]));
    } catch (const std::invalid_argument&) {
        return false;
    }
}

}  // namespace mie
