// MIE client <-> cloud wire protocol opcodes.
//
// One opcode per operation of Definition 2 (plus a stats probe used by
// tests and benchmarks). Request/response bodies are serialized with
// net::MessageWriter/Reader; see server.cpp for the exact layouts.
#pragma once

#include <cstdint>

namespace mie {

enum class MieOp : std::uint8_t {
    kCreateRepository = 1,
    kTrain = 2,
    kUpdate = 3,
    kRemove = 4,
    kSearch = 5,
    kStats = 6,
    kListObjects = 7,  ///< ids + blobs (key-rotation support)
};

/// True for opcodes that change repository state — exactly the requests
/// the durable server must write-ahead log before acknowledging.
constexpr bool is_mutating(MieOp op) {
    switch (op) {
        case MieOp::kCreateRepository:
        case MieOp::kTrain:
        case MieOp::kUpdate:
        case MieOp::kRemove:
            return true;
        case MieOp::kSearch:
        case MieOp::kStats:
        case MieOp::kListObjects:
            return false;
    }
    return false;
}

}  // namespace mie
