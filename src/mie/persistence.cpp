#include "mie/persistence.hpp"

#include <fstream>
#include <stdexcept>

namespace mie {

void save_server_snapshot(const MieServer& server,
                          const std::filesystem::path& path) {
    const Bytes snapshot = server.export_snapshot();
    const std::filesystem::path temp = path.string() + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("save_server_snapshot: cannot open " +
                                     temp.string());
        }
        out.write(reinterpret_cast<const char*>(snapshot.data()),
                  static_cast<std::streamsize>(snapshot.size()));
        if (!out) {
            throw std::runtime_error("save_server_snapshot: write failed");
        }
    }
    std::filesystem::rename(temp, path);  // atomic on POSIX
}

void load_server_snapshot(MieServer& server,
                          const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw std::runtime_error("load_server_snapshot: cannot open " +
                                 path.string());
    }
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    Bytes snapshot(size);
    if (!in.read(reinterpret_cast<char*>(snapshot.data()),
                 static_cast<std::streamsize>(size))) {
        throw std::runtime_error("load_server_snapshot: read failed");
    }
    server.restore_snapshot(snapshot);
}

}  // namespace mie
