#include "mie/persistence.hpp"

#include <fstream>
#include <stdexcept>

#include "store/file.hpp"

namespace mie {

void save_server_snapshot(const MieServer& server,
                          const std::filesystem::path& path) {
    const Bytes snapshot = server.export_snapshot();
    try {
        // temp write + fdatasync + rename + directory fsync: without the
        // syncs, "temp+rename" is only atomic against process crash — a
        // power failure can surface a zero-length or partial file.
        store::atomic_write_file(store::PosixVfs::instance(), path,
                                 snapshot);
    } catch (const store::IoError& error) {
        throw std::runtime_error(std::string("save_server_snapshot: ") +
                                 error.what());
    }
}

void load_server_snapshot(MieServer& server,
                          const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw std::runtime_error("load_server_snapshot: cannot open " +
                                 path.string());
    }
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    Bytes snapshot(size);
    if (!in.read(reinterpret_cast<char*>(snapshot.data()),
                 static_cast<std::streamsize>(size))) {
        throw std::runtime_error("load_server_snapshot: read failed");
    }
    server.restore_snapshot(snapshot);
}

}  // namespace mie
