// Modality identifiers.
//
// MIE indexes each modality separately and fuses ranked results (§III).
// A modality is either dense (feature vectors -> Dense-DPE encodings ->
// cloud-side clustering) or sparse (keywords -> Sparse-DPE tokens).
// The framework is open-ended; these are the ids the built-in extraction
// pipeline produces.
#pragma once

#include <cstdint>

namespace mie {

using ModalityId = std::uint8_t;

inline constexpr ModalityId kImageModality = 0;  ///< dense (SURF)
inline constexpr ModalityId kTextModality = 1;   ///< sparse (keywords)
inline constexpr ModalityId kAudioModality = 2;  ///< dense (spectral)
inline constexpr ModalityId kVideoModality = 3;  ///< dense (frame SURF)

}  // namespace mie
