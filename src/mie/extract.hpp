// Client-side multimodal feature extraction shared by all schemes.
//
// Every scheme (MIE, MSSE, Hom-MSSE) starts an update or search the same
// way: extract SURF descriptors from the image modality, a stemmed keyword
// histogram from the text modality, and (MIE only) spectral descriptors
// from the audio modality when present. What happens next — DPE encoding
// vs client-side clustering + index encryption — is where the schemes
// diverge.
#pragma once

#include <map>
#include <vector>

#include "features/audio.hpp"
#include "features/feature.hpp"
#include "features/surf.hpp"
#include "features/text.hpp"
#include "mie/modality.hpp"
#include "sim/dataset.hpp"

namespace mie {

/// Image + text features: the paper's prototype modalities, used by the
/// MSSE / Hom-MSSE baselines.
struct ExtractedFeatures {
    std::vector<features::FeatureVec> descriptors;  ///< dense (image)
    features::TermHistogram terms;                  ///< sparse (text)
};

/// Open-ended per-modality features, used by the MIE framework: any number
/// of dense and sparse modalities, fused at search time.
struct MultimodalFeatures {
    std::map<ModalityId, std::vector<features::FeatureVec>> dense;
    std::map<ModalityId, features::TermHistogram> sparse;
};

struct ExtractionParams {
    features::DensePyramidParams pyramid;
    features::AudioFeatureParams audio;
    /// Video: every `video_frame_stride`-th frame is described with a
    /// coarser dense pyramid (fewer keypoints per frame than stills).
    std::size_t video_frame_stride = 2;
    features::DensePyramidParams video_pyramid{
        .levels = 2, .base_stride = 16, .base_scale = 1.2f,
        .level_factor = 1.6f};
};

/// Image + text pipeline (baseline schemes).
ExtractedFeatures extract_features(const sim::MultimodalObject& object,
                                   const ExtractionParams& params = {});

/// Full pipeline: image + text, plus audio when the object carries a
/// waveform. Modalities with no features are omitted from the maps.
MultimodalFeatures extract_multimodal(const sim::MultimodalObject& object,
                                      const ExtractionParams& params = {});

}  // namespace mie
