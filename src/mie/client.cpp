#include "mie/client.hpp"

#include "crypto/ctr.hpp"
#include "crypto/kdf.hpp"
#include "crypto/drbg.hpp"
#include "mie/object_codec.hpp"
#include "mie/wire.hpp"
#include "net/envelope.hpp"

namespace mie {

MieClient::MieClient(net::Transport& transport, std::string repo_id,
                     const RepositoryKey& repo_key, Bytes user_secret,
                     double device_cpu_scale)
    : transport_(transport),
      repo_id_(std::move(repo_id)),
      repo_key_(repo_key.clone()),
      dense_dpe_(repo_key_.dense),
      sparse_dpe_(repo_key_.sparse),
      keyring_(user_secret),
      meter_(device_cpu_scale) {
    // Deterministic in the user secret, so reruns of a workload produce
    // identical wire bytes (the flaky-run-equals-clean-run tests rely on
    // it); distinct users get distinct id streams.
    crypto::CtrDrbg id_gen(
        crypto::derive_key(user_secret, "transport/op-client-id"));
    op_client_id_ = net::make_client_id(id_gen.next_u64());
}

Bytes MieClient::call(BytesView request, bool synchronous) {
    Bytes enveloped;
    if (!request.empty() && is_mutating(static_cast<MieOp>(request[0]))) {
        enveloped = net::envelope_wrap(op_client_id_, ++op_seq_, request);
        request = enveloped;
    }
    const double wire_before = transport_.network_seconds();
    const double server_before = transport_.server_seconds();
    Bytes response = transport_.call(request);
    meter_.add_modeled_seconds(sim::SubOp::kNetwork,
                               transport_.network_seconds() - wire_before);
    if (synchronous) {
        meter_.add_modeled_seconds(
            sim::SubOp::kNetwork,
            transport_.server_seconds() - server_before);
    }
    return response;
}

void MieClient::create_repository() {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kCreateRepository));
    writer.write_string(repo_id_);
    call(writer.take(), /*synchronous=*/false);
}

void MieClient::train() {
    // The TRAIN invocation is a single small message: all machine-learning
    // work happens on the cloud. Nothing lands in the client Train bucket.
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kTrain));
    writer.write_string(repo_id_);
    writer.write_u32(static_cast<std::uint32_t>(train_params.tree_branch));
    writer.write_u32(static_cast<std::uint32_t>(train_params.tree_depth));
    writer.write_u32(static_cast<std::uint32_t>(train_params.kmeans_iterations));
    writer.write_u32(static_cast<std::uint32_t>(train_params.max_training_samples));
    writer.write_u64(train_params.seed);
    writer.write_u8(static_cast<std::uint8_t>(train_params.ranking));
    call(writer.take(), /*synchronous=*/false);
}

MieClient::EncodedFeatures MieClient::encode_features(
    const MultimodalFeatures& features) const {
    EncodedFeatures encoded;
    for (const auto& [modality, descriptors] : features.dense) {
        // Batched DPE encoding: independent projections run across cores.
        encoded.dense_codes[modality] = dense_dpe_.encode_batch(descriptors);
    }
    for (const auto& [modality, terms] : features.sparse) {
        auto& tokens = encoded.sparse_tokens[modality];
        tokens.reserve(terms.size());
        for (const auto& [term, freq] : terms) {
            tokens.emplace_back(sparse_dpe_.encode(term), freq);
        }
    }
    return encoded;
}

void MieClient::write_modalities(net::MessageWriter& writer,
                                 const EncodedFeatures& encoded) const {
    writer.write_u8(static_cast<std::uint8_t>(encoded.dense_codes.size()));
    for (const auto& [modality, codes] : encoded.dense_codes) {
        writer.write_u8(modality);
        writer.write_u32(static_cast<std::uint32_t>(codes.size()));
        for (const auto& code : codes) writer.write_bytes(code.serialize());
    }
    writer.write_u8(static_cast<std::uint8_t>(encoded.sparse_tokens.size()));
    for (const auto& [modality, tokens] : encoded.sparse_tokens) {
        writer.write_u8(modality);
        writer.write_u32(static_cast<std::uint32_t>(tokens.size()));
        for (const auto& [token, freq] : tokens) {
            writer.write_bytes(token);
            writer.write_u32(freq);
        }
    }
}

void MieClient::update(const sim::MultimodalObject& object) {
    // Index: extract multimodal feature vectors.
    const MultimodalFeatures features = meter_.timed(
        sim::SubOp::kIndex,
        [&] { return extract_multimodal(object, extraction); });

    // Encrypt: DPE-encode features and AES-CTR the object payload.
    EncodedFeatures encoded;
    Bytes blob;
    meter_.timed(sim::SubOp::kEncrypt, [&] {
        encoded = encode_features(features);
        const Bytes dk = keyring_.data_key(object.id);
        const crypto::AesCtr cipher(dk);
        crypto::CtrDrbg nonce_gen(crypto::derive_key(
            dk, "nonce/" + std::to_string(object.id)));
        blob = cipher.seal(nonce_gen.generate(crypto::AesCtr::kNonceSize),
                           encode_object(object));
    });

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kUpdate));
    writer.write_string(repo_id_);
    writer.write_u64(object.id);
    writer.write_bytes(blob);
    write_modalities(writer, encoded);
    call(writer.take(), /*synchronous=*/false);
}

void MieClient::remove(std::uint64_t object_id) {
    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kRemove));
    writer.write_string(repo_id_);
    writer.write_u64(object_id);
    call(writer.take(), /*synchronous=*/false);
}

std::vector<SearchResult> MieClient::search(
    const sim::MultimodalObject& query, std::size_t top_k) {
    const MultimodalFeatures features = meter_.timed(
        sim::SubOp::kIndex,
        [&] { return extract_multimodal(query, extraction); });
    const EncodedFeatures encoded = meter_.timed(
        sim::SubOp::kEncrypt, [&] { return encode_features(features); });

    net::MessageWriter writer;
    writer.write_u8(static_cast<std::uint8_t>(MieOp::kSearch));
    writer.write_string(repo_id_);
    writer.write_u32(static_cast<std::uint32_t>(top_k));
    write_modalities(writer, encoded);
    // Trailing IVF probe count (0 = exact); servers read it leniently.
    writer.write_u32(static_cast<std::uint32_t>(search_probes));

    // Search is synchronous: the user waits for the reply, so server
    // processing time counts toward perceived Network cost (Fig. 5).
    const Bytes response = call(writer.take(), /*synchronous=*/true);

    net::MessageReader reader(response);
    const auto count = reader.read_u32();
    std::vector<SearchResult> results;
    results.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        SearchResult result;
        result.object_id = reader.read_u64();
        result.score = reader.read_f64();
        result.encrypted_object = reader.read_bytes();
        results.push_back(std::move(result));
    }
    // Work-accounting tail (same lenient discipline as the request).
    last_work_ = MieServer::SearchWork{};
    if (reader.remaining() >= 24) {
        last_work_.postings_scored = reader.read_u64();
        last_work_.query_descriptors = reader.read_u64();
        last_work_.descriptors_kept = reader.read_u64();
    }
    return results;
}

sim::MultimodalObject MieClient::decrypt_result(
    const SearchResult& result) const {
    const crypto::AesCtr cipher(keyring_.data_key(result.object_id));
    return decode_object(cipher.open(result.encrypted_object));
}

}  // namespace mie
