#include "mie/object_codec.hpp"

#include <algorithm>

#include "net/message.hpp"

namespace mie {

Bytes encode_object(const sim::MultimodalObject& object) {
    net::MessageWriter writer;
    writer.write_u64(object.id);
    writer.write_string(object.text);
    writer.write_u32(static_cast<std::uint32_t>(object.image.width()));
    writer.write_u32(static_cast<std::uint32_t>(object.image.height()));
    Bytes pixels;
    pixels.reserve(static_cast<std::size_t>(object.image.width()) *
                   object.image.height());
    for (int y = 0; y < object.image.height(); ++y) {
        for (int x = 0; x < object.image.width(); ++x) {
            const float clamped = std::clamp(object.image.at(x, y), 0.0f, 1.0f);
            pixels.push_back(static_cast<std::uint8_t>(clamped * 255.0f));
        }
    }
    writer.write_bytes(pixels);
    // Audio as 16-bit PCM little-endian.
    Bytes pcm;
    pcm.reserve(object.audio.size() * 2);
    for (float sample : object.audio) {
        const float clamped = std::clamp(sample, -1.0f, 1.0f);
        append_le<std::int16_t>(
            pcm, static_cast<std::int16_t>(clamped * 32767.0f));
    }
    writer.write_bytes(pcm);
    // Video frames, each 8-bit grayscale.
    writer.write_u32(static_cast<std::uint32_t>(object.video.size()));
    for (const auto& frame : object.video) {
        writer.write_u32(static_cast<std::uint32_t>(frame.width()));
        writer.write_u32(static_cast<std::uint32_t>(frame.height()));
        Bytes frame_pixels;
        frame_pixels.reserve(
            static_cast<std::size_t>(frame.width()) * frame.height());
        for (int y = 0; y < frame.height(); ++y) {
            for (int x = 0; x < frame.width(); ++x) {
                const float clamped = std::clamp(frame.at(x, y), 0.0f, 1.0f);
                frame_pixels.push_back(
                    static_cast<std::uint8_t>(clamped * 255.0f));
            }
        }
        writer.write_bytes(frame_pixels);
    }
    return writer.take();
}

sim::MultimodalObject decode_object(BytesView data) {
    net::MessageReader reader(data);
    sim::MultimodalObject object;
    object.id = reader.read_u64();
    object.text = reader.read_string();
    const auto width = static_cast<int>(reader.read_u32());
    const auto height = static_cast<int>(reader.read_u32());
    const Bytes pixels = reader.read_bytes();
    if (pixels.size() != static_cast<std::size_t>(width) * height) {
        throw std::out_of_range("decode_object: pixel buffer size mismatch");
    }
    object.image = features::Image(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            object.image.at(x, y) =
                static_cast<float>(
                    pixels[static_cast<std::size_t>(y) * width + x]) /
                255.0f;
        }
    }
    const Bytes pcm = reader.read_bytes();
    object.audio.resize(pcm.size() / 2);
    for (std::size_t i = 0; i < object.audio.size(); ++i) {
        object.audio[i] =
            static_cast<float>(read_le<std::int16_t>(pcm, 2 * i)) / 32767.0f;
    }
    const auto num_frames = reader.read_u32();
    object.video.reserve(std::min<std::uint32_t>(num_frames, 4096));
    for (std::uint32_t f = 0; f < num_frames; ++f) {
        const auto frame_width = static_cast<int>(reader.read_u32());
        const auto frame_height = static_cast<int>(reader.read_u32());
        const Bytes frame_pixels = reader.read_bytes();
        if (frame_pixels.size() !=
            static_cast<std::size_t>(frame_width) * frame_height) {
            throw std::out_of_range("decode_object: frame size mismatch");
        }
        features::Image frame(frame_width, frame_height);
        for (int y = 0; y < frame_height; ++y) {
            for (int x = 0; x < frame_width; ++x) {
                frame.at(x, y) =
                    static_cast<float>(
                        frame_pixels[static_cast<std::size_t>(y) *
                                         frame_width +
                                     x]) /
                    255.0f;
            }
        }
        object.video.push_back(std::move(frame));
    }
    return object;
}

}  // namespace mie
