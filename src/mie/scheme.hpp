// Common interface implemented by MIE and both baselines (MSSE, Hom-MSSE).
//
// Every experiment drives all three schemes through this interface, so the
// benchmark harness and the precision evaluation compare identical code
// paths. Implementations attribute their client-side work to the
// Encrypt / Network / Index / Train sub-operation buckets of a CostMeter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/dataset.hpp"
#include "sim/meter.hpp"
#include "util/bytes.hpp"

namespace mie {

struct SearchResult {
    std::uint64_t object_id = 0;
    double score = 0.0;
    Bytes encrypted_object;  ///< ciphertext; decrypt with the object's dkp
};

class SearchableScheme {
public:
    virtual ~SearchableScheme() = default;

    virtual std::string name() const = 0;

    /// Initializes the repository representation on the server.
    virtual void create_repository() = 0;

    /// Triggers training (machine-learning + bulk indexing). Where it runs
    /// (client vs cloud) is the defining difference between the schemes.
    virtual void train() = 0;

    /// Adds or replaces one multimodal data-object.
    virtual void update(const sim::MultimodalObject& object) = 0;

    /// Fully removes an object and its index entries.
    virtual void remove(std::uint64_t object_id) = 0;

    /// Multimodal query-by-example: returns the top-k ranked matches.
    virtual std::vector<SearchResult> search(
        const sim::MultimodalObject& query, std::size_t top_k) = 0;

    /// Client-side cost accounting for the figures.
    virtual sim::CostMeter& meter() = 0;
};

}  // namespace mie
