#include "mie/keys.hpp"

#include "crypto/kdf.hpp"
#include "net/message.hpp"

namespace mie {

RepositoryKey RepositoryKey::generate(BytesView entropy,
                                      std::size_t input_dims,
                                      std::size_t output_bits, double delta) {
    RepositoryKey key;
    key.dense = dpe::DenseDpe::keygen(crypto::derive_key(entropy, "rk1"),
                                      input_dims, output_bits, delta);
    key.sparse = dpe::SparseDpe::keygen(crypto::derive_key(entropy, "rk2"));
    return key;
}

Bytes RepositoryKey::serialize() const {
    net::MessageWriter writer;
    writer.write_bytes(dense.serialize());
    writer.write_bytes(sparse.serialize());
    return writer.take();
}

RepositoryKey RepositoryKey::deserialize(BytesView data) {
    net::MessageReader reader(data);
    RepositoryKey key;
    key.dense = dpe::DenseDpeKey::deserialize(reader.read_bytes());
    key.sparse = dpe::SparseDpeKey::deserialize(reader.read_bytes());
    return key;
}

DataKeyring::DataKeyring(Bytes master_secret)
    : master_(std::move(master_secret)) {}

Bytes DataKeyring::data_key(std::uint64_t object_id) const {
    return crypto::derive_key(master_,
                              "data-key/" + std::to_string(object_id));
}

}  // namespace mie
