// Plaintext serialization of multimodal objects.
//
// The serialized form is what gets AES-CTR-encrypted under the data key
// dkp and stored in the cloud; pixels are quantized to 8 bits, standing in
// for the JPEG payloads of the paper's datasets.
#pragma once

#include "sim/dataset.hpp"
#include "util/bytes.hpp"

namespace mie {

/// Serializes id + text + image (8-bit pixels).
Bytes encode_object(const sim::MultimodalObject& object);

/// Inverse of encode_object (pixels come back quantized; label is not
/// stored — it is evaluation-only ground truth and never leaves the client).
sim::MultimodalObject decode_object(BytesView data);

}  // namespace mie
