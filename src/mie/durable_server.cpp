#include "mie/durable_server.hpp"

#include <stdexcept>

#include "mie/wire.hpp"

namespace mie {

DurableServer::DurableServer(store::Vfs& vfs,
                             const std::filesystem::path& dir,
                             Options options)
    : engine_(
          vfs, dir, options,
          [this](BytesView snapshot) { inner_.restore_snapshot(snapshot); },
          [this](BytesView payload) {
              // Enveloped records re-enter the replay cache during
              // recovery, so a client retry that straddles a crash is
              // still deduplicated (the inner apply regenerates the
              // original response deterministically).
              const auto env = net::parse_envelope(payload);
              Bytes response = inner_.handle(env ? env->inner : payload);
              if (env) {
                  replay_cache_.insert(env->client_id, env->seq,
                                       std::move(response));
              }
          }) {}

Bytes DurableServer::handle(BytesView request) {
    if (request.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto env = net::parse_envelope(request);
    const BytesView inner = env ? env->inner : request;
    if (inner.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto op = static_cast<MieOp>(inner[0]);
    if (!is_mutating(op)) return inner_.handle(inner);

    const std::scoped_lock lock(log_mutex_);
    if (env) {
        if (const Bytes* cached =
                replay_cache_.lookup(env->client_id, env->seq)) {
            ++replays_suppressed_;
            return *cached;  // replay of an already-applied mutation
        }
    }
    Bytes response = inner_.handle(inner);  // throws on invalid request
    // Log the enveloped bytes so recovery can rebuild the dedup window;
    // durable (per sync policy) before the ack.
    engine_.log(request);
    if (env) replay_cache_.insert(env->client_id, env->seq, response);
    ++records_logged_;
    maybe_checkpoint_locked();
    return response;
}

void DurableServer::maybe_checkpoint_locked() {
    if (!engine_.checkpoint_due()) return;
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::checkpoint_now() {
    const std::scoped_lock lock(log_mutex_);
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::sync() {
    const std::scoped_lock lock(log_mutex_);
    engine_.sync();
}

DurableServer::DurabilityStats DurableServer::durability() const {
    const std::scoped_lock lock(log_mutex_);
    DurabilityStats stats;
    stats.records_logged = records_logged_;
    stats.checkpoints_written = checkpoints_written_;
    stats.recovered_records = engine_.recovery().replayed_records;
    stats.recovered_from_checkpoint = engine_.recovery().had_checkpoint;
    stats.tail_truncated = engine_.recovery().tail_truncated;
    stats.last_lsn = engine_.last_lsn();
    stats.replays_suppressed = replays_suppressed_;
    return stats;
}

}  // namespace mie
