#include "mie/durable_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "mie/wire.hpp"

namespace mie {

DurableServer::DurableServer(store::Vfs& vfs,
                             const std::filesystem::path& dir,
                             Options options)
    : engine_(
          vfs, dir, options,
          [this](BytesView snapshot) { inner_.restore_snapshot(snapshot); },
          [this](BytesView payload) {
              // Enveloped records re-enter the replay cache during
              // recovery, so a client retry that straddles a crash is
              // still deduplicated (the inner apply regenerates the
              // original response deterministically).
              const auto env = net::parse_envelope(payload);
              Bytes response = inner_.handle(env ? env->inner : payload);
              if (env) {
                  replay_cache_.insert(env->client_id, env->seq,
                                       std::move(response));
              }
          }) {}

Bytes DurableServer::handle(BytesView request) {
    if (request.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto env = net::parse_envelope(request);
    const BytesView inner = env ? env->inner : request;
    if (inner.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto op = static_cast<MieOp>(inner[0]);
    if (!is_mutating(op)) return inner_.handle(inner);

    const std::scoped_lock lock(log_mutex_);
    if (env) {
        if (const Bytes* cached =
                replay_cache_.lookup(env->client_id, env->seq)) {
            ++replays_suppressed_;
            return *cached;  // replay of an already-applied mutation
        }
    }
    Bytes response = inner_.handle(inner);  // throws on invalid request
    // Log the enveloped bytes so recovery can rebuild the dedup window;
    // durable (per sync policy) before the ack.
    engine_.log(request);
    if (env) replay_cache_.insert(env->client_id, env->seq, response);
    ++records_logged_;
    maybe_checkpoint_locked();
    return response;
}

std::vector<net::BatchRequestHandler::Result> DurableServer::handle_batch(
    const std::vector<Bytes>& requests) {
    std::vector<net::BatchRequestHandler::Result> results(requests.size());
    if (requests.empty()) return results;

    const std::scoped_lock lock(log_mutex_);
    // Applied-but-not-yet-logged requests of this batch. Replay-cache
    // inserts are staged and performed only after the batch is durable,
    // mirroring the serial path's log-then-insert order, so a log
    // failure cannot leave a cached response for a lost mutation.
    struct Staged {
        enum class Kind : std::uint8_t {
            kPlain,      ///< mutating, not enveloped
            kEnveloped,  ///< mutating, cache (client_id, seq) after commit
            kDuplicate,  ///< within-batch replay of an earlier kEnveloped
        };
        std::size_t index;
        Kind kind = Kind::kPlain;
        std::uint64_t client_id = 0;
        std::uint64_t seq = 0;
    };
    std::vector<Staged> staged;
    std::vector<BytesView> to_log;

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const BytesView request = requests[i];
        try {
            if (request.empty()) {
                throw std::invalid_argument("DurableServer: empty request");
            }
            const auto env = net::parse_envelope(request);
            const BytesView inner = env ? env->inner : request;
            if (inner.empty()) {
                throw std::invalid_argument("DurableServer: empty request");
            }
            const auto op = static_cast<MieOp>(inner[0]);
            if (!is_mutating(op)) {
                // Read-only requests need no logging; answer in place so
                // a mixed batch keeps per-request ordering.
                results[i].response = inner_.handle(inner);
                continue;
            }
            if (env) {
                if (const Bytes* cached =
                        replay_cache_.lookup(env->client_id, env->seq)) {
                    ++replays_suppressed_;
                    results[i].response = *cached;
                    continue;
                }
                // A duplicate WITHIN this batch: the earlier occurrence
                // was applied and staged; answer with its response after
                // commit. Clients are synchronous, so this only happens
                // when a retransmit lands in the same batch as its
                // original — both then share the original's fate.
                bool duplicate = false;
                for (const Staged& s : staged) {
                    if (s.kind == Staged::Kind::kEnveloped &&
                        s.client_id == env->client_id && s.seq == env->seq) {
                        ++replays_suppressed_;
                        staged.push_back(Staged{i,
                                                Staged::Kind::kDuplicate,
                                                env->client_id, env->seq});
                        duplicate = true;
                        break;
                    }
                }
                if (duplicate) continue;
            }
            results[i].response = inner_.handle(inner);
            to_log.push_back(request);
            staged.push_back(
                env ? Staged{i, Staged::Kind::kEnveloped, env->client_id,
                             env->seq}
                    : Staged{i});
        } catch (...) {
            results[i].error = std::current_exception();
        }
    }

    if (to_log.empty()) return results;
    try {
        // One append_batch = one fsync for every record staged above;
        // nothing below is an acknowledgement until this returns.
        engine_.log_batch(to_log);
    } catch (...) {
        // The batch is not durable: none of the applied requests may be
        // acknowledged (same contract as handle() throwing). Recovery
        // discards the torn suffix; clients retry through the envelope.
        const std::exception_ptr error = std::current_exception();
        for (const Staged& s : staged) {
            results[s.index].response.clear();
            results[s.index].error = error;
        }
        return results;
    }
    for (const Staged& s : staged) {
        if (s.kind == Staged::Kind::kEnveloped) {
            replay_cache_.insert(s.client_id, s.seq,
                                 results[s.index].response);
        } else if (s.kind == Staged::Kind::kDuplicate) {
            // The original committed just above; copy its response.
            if (const Bytes* cached =
                    replay_cache_.lookup(s.client_id, s.seq)) {
                results[s.index].response = *cached;
            }
        }
    }
    records_logged_ += to_log.size();
    ++batches_committed_;
    max_batch_records_ = std::max(max_batch_records_, to_log.size());
    maybe_checkpoint_locked();
    return results;
}

store::Wal::TailRead DurableServer::read_log_from(
    store::Lsn after, std::size_t max_records,
    const std::function<void(store::Lsn, BytesView)>& fn) const {
    const std::scoped_lock lock(log_mutex_);
    return engine_.read_from(after, max_records, fn);
}

store::Lsn DurableServer::oldest_log_lsn() const {
    const std::scoped_lock lock(log_mutex_);
    return engine_.oldest_lsn();
}

DurableServer::ReplicationSnapshot DurableServer::replication_snapshot()
    const {
    // Lock order: log_mutex_ before the inner server's locks (same as the
    // checkpoint path), so the snapshot is a consistent cut at last_lsn.
    const std::scoped_lock lock(log_mutex_);
    ReplicationSnapshot snap;
    snap.snapshot = inner_.export_snapshot();
    snap.lsn = engine_.last_lsn();
    return snap;
}

void DurableServer::maybe_checkpoint_locked() {
    if (!engine_.checkpoint_due()) return;
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::checkpoint_now() {
    const std::scoped_lock lock(log_mutex_);
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::sync() {
    const std::scoped_lock lock(log_mutex_);
    engine_.sync();
}

DurableServer::DurabilityStats DurableServer::durability() const {
    const std::scoped_lock lock(log_mutex_);
    DurabilityStats stats;
    stats.records_logged = records_logged_;
    stats.checkpoints_written = checkpoints_written_;
    stats.recovered_records = engine_.recovery().replayed_records;
    stats.recovered_from_checkpoint = engine_.recovery().had_checkpoint;
    stats.tail_truncated = engine_.recovery().tail_truncated;
    stats.last_lsn = engine_.last_lsn();
    stats.replays_suppressed = replays_suppressed_;
    stats.batches_committed = batches_committed_;
    stats.max_batch_records = max_batch_records_;
    return stats;
}

}  // namespace mie
