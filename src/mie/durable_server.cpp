#include "mie/durable_server.hpp"

#include <stdexcept>

#include "mie/wire.hpp"

namespace mie {

DurableServer::DurableServer(store::Vfs& vfs,
                             const std::filesystem::path& dir,
                             Options options)
    : engine_(
          vfs, dir, options,
          [this](BytesView snapshot) { inner_.restore_snapshot(snapshot); },
          [this](BytesView payload) { inner_.handle(payload); }) {}

Bytes DurableServer::handle(BytesView request) {
    if (request.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto op = static_cast<MieOp>(request[0]);
    if (!is_mutating(op)) return inner_.handle(request);

    const std::scoped_lock lock(log_mutex_);
    Bytes response = inner_.handle(request);  // throws on invalid request
    engine_.log(request);  // durable (per sync policy) before the ack
    ++records_logged_;
    maybe_checkpoint_locked();
    return response;
}

void DurableServer::maybe_checkpoint_locked() {
    if (!engine_.checkpoint_due()) return;
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::checkpoint_now() {
    const std::scoped_lock lock(log_mutex_);
    engine_.checkpoint(inner_.export_snapshot());
    ++checkpoints_written_;
}

void DurableServer::sync() {
    const std::scoped_lock lock(log_mutex_);
    engine_.sync();
}

DurableServer::DurabilityStats DurableServer::durability() const {
    const std::scoped_lock lock(log_mutex_);
    DurabilityStats stats;
    stats.records_logged = records_logged_;
    stats.checkpoints_written = checkpoints_written_;
    stats.recovered_records = engine_.recovery().replayed_records;
    stats.recovered_from_checkpoint = engine_.recovery().had_checkpoint;
    stats.tail_truncated = engine_.recovery().tail_truncated;
    stats.last_lsn = engine_.last_lsn();
    return stats;
}

}  // namespace mie
