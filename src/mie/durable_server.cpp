#include "mie/durable_server.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "index/snapshot.hpp"
#include "mie/wire.hpp"

namespace mie {

namespace {

/// Checkpoint records either hold a full inline snapshot (legacy
/// export_snapshot bytes, which start with a u32 repository count) or a
/// stub referencing an mmap-able snapshot file under dir/snapshots/:
/// 8-byte magic "MIESREF\n" followed by the raw file name. The magic
/// cannot collide with a count prefix — it would decode as ~1.4 billion
/// repositories.
constexpr char kSnapshotStubMagic[8] = {'M', 'I', 'E', 'S',
                                        'R', 'E', 'F', '\n'};

bool is_snapshot_stub(BytesView payload) {
    return payload.size() > sizeof(kSnapshotStubMagic) &&
           std::memcmp(payload.data(), kSnapshotStubMagic,
                       sizeof(kSnapshotStubMagic)) == 0;
}

std::string stub_file_name(BytesView payload) {
    return std::string(payload.begin() + sizeof(kSnapshotStubMagic),
                       payload.end());
}

std::string snapshot_file_name(store::Lsn lsn) {
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot-%020llu.misnap",
                  static_cast<unsigned long long>(lsn));
    return name;
}

}  // namespace

DurableServer::DurableServer(store::Vfs& vfs,
                             const std::filesystem::path& dir)
    : DurableServer(vfs, dir, Options{}) {}

DurableServer::DurableServer(store::Vfs& vfs,
                             const std::filesystem::path& dir,
                             Options options)
    : vfs_(vfs),
      dir_(dir),
      mmap_checkpoints_(options.mmap_checkpoints),
      engine_(
          vfs, dir, options,
          [this](BytesView snapshot) {
              if (!is_snapshot_stub(snapshot)) {
                  inner_.restore_snapshot(snapshot);
                  return;
              }
              // O(1) restart: map the referenced snapshot file and attach
              // it; repositories materialize lazily on first touch. The
              // eager CRC pass makes ANY corruption throw here — before
              // state is mutated — so the engine can still fall back to
              // full WAL replay.
              auto mapped = index::MappedSnapshot::open(
                  dir_ / "snapshots" / stub_file_name(snapshot));
              mapped->verify_all_sections();
              inner_.attach_mapped_snapshot(std::move(mapped));
          },
          [this](BytesView payload) {
              // Enveloped records re-enter the replay cache during
              // recovery, so a client retry that straddles a crash is
              // still deduplicated (the inner apply regenerates the
              // original response deterministically).
              const auto env = net::parse_envelope(payload);
              Bytes response = inner_.handle(env ? env->inner : payload);
              if (env) {
                  replay_cache_.insert(env->client_id, env->seq,
                                       std::move(response));
              }
          }) {}

Bytes DurableServer::handle(BytesView request) {
    if (request.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto env = net::parse_envelope(request);
    const BytesView inner = env ? env->inner : request;
    if (inner.empty()) {
        throw std::invalid_argument("DurableServer: empty request");
    }
    const auto op = static_cast<MieOp>(inner[0]);
    if (!is_mutating(op)) return inner_.handle(inner);

    const std::scoped_lock lock(log_mutex_);
    if (env) {
        if (const Bytes* cached =
                replay_cache_.lookup(env->client_id, env->seq)) {
            ++replays_suppressed_;
            return *cached;  // replay of an already-applied mutation
        }
    }
    Bytes response = inner_.handle(inner);  // throws on invalid request
    // Log the enveloped bytes so recovery can rebuild the dedup window;
    // durable (per sync policy) before the ack.
    engine_.log(request);
    if (env) replay_cache_.insert(env->client_id, env->seq, response);
    ++records_logged_;
    maybe_checkpoint_locked();
    return response;
}

std::vector<net::BatchRequestHandler::Result> DurableServer::handle_batch(
    const std::vector<Bytes>& requests) {
    std::vector<net::BatchRequestHandler::Result> results(requests.size());
    if (requests.empty()) return results;

    const std::scoped_lock lock(log_mutex_);
    // Applied-but-not-yet-logged requests of this batch. Replay-cache
    // inserts are staged and performed only after the batch is durable,
    // mirroring the serial path's log-then-insert order, so a log
    // failure cannot leave a cached response for a lost mutation.
    struct Staged {
        enum class Kind : std::uint8_t {
            kPlain,      ///< mutating, not enveloped
            kEnveloped,  ///< mutating, cache (client_id, seq) after commit
            kDuplicate,  ///< within-batch replay of an earlier kEnveloped
        };
        std::size_t index;
        Kind kind = Kind::kPlain;
        std::uint64_t client_id = 0;
        std::uint64_t seq = 0;
    };
    std::vector<Staged> staged;
    std::vector<BytesView> to_log;

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const BytesView request = requests[i];
        try {
            if (request.empty()) {
                throw std::invalid_argument("DurableServer: empty request");
            }
            const auto env = net::parse_envelope(request);
            const BytesView inner = env ? env->inner : request;
            if (inner.empty()) {
                throw std::invalid_argument("DurableServer: empty request");
            }
            const auto op = static_cast<MieOp>(inner[0]);
            if (!is_mutating(op)) {
                // Read-only requests need no logging; answer in place so
                // a mixed batch keeps per-request ordering.
                results[i].response = inner_.handle(inner);
                continue;
            }
            if (env) {
                if (const Bytes* cached =
                        replay_cache_.lookup(env->client_id, env->seq)) {
                    ++replays_suppressed_;
                    results[i].response = *cached;
                    continue;
                }
                // A duplicate WITHIN this batch: the earlier occurrence
                // was applied and staged; answer with its response after
                // commit. Clients are synchronous, so this only happens
                // when a retransmit lands in the same batch as its
                // original — both then share the original's fate.
                bool duplicate = false;
                for (const Staged& s : staged) {
                    if (s.kind == Staged::Kind::kEnveloped &&
                        s.client_id == env->client_id && s.seq == env->seq) {
                        ++replays_suppressed_;
                        staged.push_back(Staged{i,
                                                Staged::Kind::kDuplicate,
                                                env->client_id, env->seq});
                        duplicate = true;
                        break;
                    }
                }
                if (duplicate) continue;
            }
            results[i].response = inner_.handle(inner);
            to_log.push_back(request);
            staged.push_back(
                env ? Staged{i, Staged::Kind::kEnveloped, env->client_id,
                             env->seq}
                    : Staged{i});
        } catch (...) {
            results[i].error = std::current_exception();
        }
    }

    if (to_log.empty()) return results;
    try {
        // One append_batch = one fsync for every record staged above;
        // nothing below is an acknowledgement until this returns.
        engine_.log_batch(to_log);
    } catch (...) {
        // The batch is not durable: none of the applied requests may be
        // acknowledged (same contract as handle() throwing). Recovery
        // discards the torn suffix; clients retry through the envelope.
        const std::exception_ptr error = std::current_exception();
        for (const Staged& s : staged) {
            results[s.index].response.clear();
            results[s.index].error = error;
        }
        return results;
    }
    for (const Staged& s : staged) {
        if (s.kind == Staged::Kind::kEnveloped) {
            replay_cache_.insert(s.client_id, s.seq,
                                 results[s.index].response);
        } else if (s.kind == Staged::Kind::kDuplicate) {
            // The original committed just above; copy its response.
            if (const Bytes* cached =
                    replay_cache_.lookup(s.client_id, s.seq)) {
                results[s.index].response = *cached;
            }
        }
    }
    records_logged_ += to_log.size();
    ++batches_committed_;
    max_batch_records_ = std::max(max_batch_records_, to_log.size());
    maybe_checkpoint_locked();
    return results;
}

store::Wal::TailRead DurableServer::read_log_from(
    store::Lsn after, std::size_t max_records,
    const std::function<void(store::Lsn, BytesView)>& fn) const {
    const std::scoped_lock lock(log_mutex_);
    return engine_.read_from(after, max_records, fn);
}

store::Lsn DurableServer::oldest_log_lsn() const {
    const std::scoped_lock lock(log_mutex_);
    return engine_.oldest_lsn();
}

DurableServer::ReplicationSnapshot DurableServer::replication_snapshot()
    const {
    // Lock order: log_mutex_ before the inner server's locks (same as the
    // checkpoint path), so the snapshot is a consistent cut at last_lsn.
    const std::scoped_lock lock(log_mutex_);
    ReplicationSnapshot snap;
    snap.snapshot = inner_.export_snapshot();
    snap.lsn = engine_.last_lsn();
    return snap;
}

// mielint: acquires(log_mutex_)
void DurableServer::maybe_checkpoint_locked() {
    if (!engine_.checkpoint_due()) return;
    write_checkpoint_locked();
}

// mielint: acquires(log_mutex_)
void DurableServer::write_checkpoint_locked() {
    if (!mmap_checkpoints_) {
        engine_.checkpoint(inner_.export_snapshot());
        ++checkpoints_written_;
        return;
    }
    // Ordering for crash safety: the snapshot file is published first
    // (atomically), then the checkpoint record that references it. A
    // crash in between leaves an unreferenced file that the next
    // successful checkpoint's sweep removes. The LSN is stable across
    // both steps because the log mutex is held.
    const store::Lsn lsn = engine_.last_lsn();
    const std::string name = snapshot_file_name(lsn);
    const std::filesystem::path snap_dir = dir_ / "snapshots";
    vfs_.create_directories(snap_dir);
    store::atomic_write_file(vfs_, snap_dir / name,
                             inner_.export_mapped_snapshot());
    Bytes stub(kSnapshotStubMagic,
               kSnapshotStubMagic + sizeof(kSnapshotStubMagic));
    stub.insert(stub.end(), name.begin(), name.end());
    engine_.checkpoint(stub);
    ++checkpoints_written_;
    // Sweep superseded snapshot files. Deleting a file that a still-lazy
    // repository has mapped is safe: the mapping pins the inode.
    for (const auto& entry : vfs_.list_dir(snap_dir)) {
        if (entry.filename() != name) vfs_.remove_file(entry);
    }
}

void DurableServer::checkpoint_now() {
    const std::scoped_lock lock(log_mutex_);
    write_checkpoint_locked();
}

void DurableServer::sync() {
    const std::scoped_lock lock(log_mutex_);
    engine_.sync();
}

DurableServer::DurabilityStats DurableServer::durability() const {
    const std::scoped_lock lock(log_mutex_);
    DurabilityStats stats;
    stats.records_logged = records_logged_;
    stats.checkpoints_written = checkpoints_written_;
    stats.recovered_records = engine_.recovery().replayed_records;
    stats.recovered_from_checkpoint = engine_.recovery().had_checkpoint;
    stats.tail_truncated = engine_.recovery().tail_truncated;
    stats.last_lsn = engine_.last_lsn();
    stats.replays_suppressed = replays_suppressed_;
    stats.batches_committed = batches_committed_;
    stats.max_batch_records = max_batch_records_;
    return stats;
}

}  // namespace mie
