// Durable MIE cloud server: MieServer + write-ahead logging + recovery.
//
// Wraps the in-memory MieServer behind the same net::RequestHandler
// interface. Every mutating opcode (CREATE/UPDATE/REMOVE/TRAIN) is
// appended to a CRC-protected segmented WAL *before* the response is
// returned, so an acknowledged operation survives a crash; read opcodes
// (SEARCH/STATS/LIST_OBJECTS) pass straight through and still enjoy the
// inner server's shared per-repository locking.
//
// Construction runs recovery: the newest durable checkpoint (the
// export_snapshot format) is restored, then later WAL records are
// replayed in order. Replay is deterministic because log records are the
// verbatim RPC request bytes and the inner server applies them exactly
// as it did originally (training is deterministic in (data, seed)).
//
// A threshold policy turns the log into checkpoints: once
// `checkpoint_every_bytes` of log accumulate, the next mutating request
// also snapshots the server, durably writes the checkpoint, and
// truncates covered WAL segments.
//
// Mutations serialize on one log mutex — the WAL is a single append
// point, and holding the mutex across apply+append keeps memory order
// and log order identical (replay must converge to the acknowledged
// state even when concurrent writers race on the same object id).
// Searches never take the log mutex.
// Idempotent replay: requests may arrive wrapped in the idempotency
// envelope of net/envelope.hpp. Mutating envelopes are deduplicated
// through a bounded replay cache — a client retry whose original was
// applied (but whose response was lost in transit) gets the original
// response back without re-applying. Enveloped requests are logged
// verbatim, so recovery replay rebuilds the cache and dedup survives a
// server crash: at-least-once delivery, exactly-once application.
// Group commit: handle_batch() applies a whole batch of mutating
// requests under one log-mutex acquisition and appends all of their WAL
// records with a single fsync (store::Wal::append_batch), amortizing the
// kEveryRecord flush across the batch. The ack protocol is unchanged —
// no request of the batch is acknowledged before every record of the
// batch is durable — so the log-before-ack invariant and the
// exactly-once dedup contract hold exactly as on the serial path.
#pragma once

#include <filesystem>
#include <mutex>
#include <vector>

#include "mie/server.hpp"
#include "net/batch.hpp"
#include "net/envelope.hpp"
#include "store/engine.hpp"

namespace mie {

class DurableServer final : public net::RequestHandler,
                            public net::BatchRequestHandler {
public:
    struct Options : store::StorageEngine::Options {
        /// Checkpoint as an mmap-able snapshot file (index/snapshot.hpp,
        /// written under dir/snapshots/) referenced from the engine's
        /// checkpoint record by a tiny stub, so reopening maps the file
        /// in O(1) and repositories materialize lazily on first touch.
        /// false restores the legacy inline export_snapshot checkpoints.
        /// Either kind is readable regardless of the setting — recovery
        /// dispatches on the stub magic, so flipping the flag between
        /// runs is safe.
        bool mmap_checkpoints = true;
    };

    /// Opens (and recovers) the durable server in `dir`. `vfs` must
    /// outlive the server; pass store::PosixVfs::instance() outside
    /// tests. (Two overloads rather than a default argument: a nested
    /// class's member initializers are incomplete at this point.)
    DurableServer(store::Vfs& vfs, const std::filesystem::path& dir,
                  Options options);
    DurableServer(store::Vfs& vfs, const std::filesystem::path& dir);

    /// Applies the request; mutating requests are logged before the
    /// response is returned. Throws store::IoError if logging fails —
    /// the caller must treat the operation as not acknowledged.
    Bytes handle(BytesView request) override;

    /// Group-committed variant: applies every request of the batch in
    /// order, appends all of their log records, then makes them durable
    /// with ONE sync-policy application before returning — so the
    /// committer can ack the whole batch after a single fsync. Failures
    /// are per-request (an invalid request yields its exception in that
    /// slot); a log-write failure fails every applied-but-unlogged slot,
    /// matching handle()'s not-acknowledged semantics. Replayed
    /// envelopes — across batches or within one — are answered from the
    /// dedup cache without re-applying.
    std::vector<net::BatchRequestHandler::Result> handle_batch(
        const std::vector<Bytes>& requests) override;

    /// Durability bookkeeping for tests, benchmarks, and ops probes.
    struct DurabilityStats {
        std::size_t records_logged = 0;      ///< since open
        std::size_t checkpoints_written = 0;  ///< since open
        std::size_t recovered_records = 0;    ///< replayed at open
        bool recovered_from_checkpoint = false;
        bool tail_truncated = false;  ///< open discarded a torn tail
        store::Lsn last_lsn = 0;
        /// Replayed envelopes answered from the replay cache (the
        /// mutation was NOT re-applied).
        std::size_t replays_suppressed = 0;
        /// Group commit: handle_batch calls that logged >= 1 record, and
        /// the largest number of records one batch committed.
        std::size_t batches_committed = 0;
        std::size_t max_batch_records = 0;
    };
    DurabilityStats durability() const;

    /// Forces a checkpoint now (clean shutdown, tests).
    void checkpoint_now();

    /// Flushes the WAL to stable storage.
    void sync();

    // -- Replication feed (cluster::ReplicationSource) -------------------
    //
    // A follower replays this server's WAL records through its own
    // handle() path; because records are the verbatim (enveloped) RPC
    // bytes, the follower's state machine, replay cache, and local WAL
    // all rebuild exactly as the primary's did.

    /// Tail-reads logged records with lsn > `after`, up to `max_records`,
    /// under the log mutex (serialized with appends and checkpoints).
    /// Returns the Wal tail-read outcome.
    store::Wal::TailRead read_log_from(
        store::Lsn after, std::size_t max_records,
        const std::function<void(store::Lsn, BytesView)>& fn) const;

    /// First LSN still present in the log. A replication reader whose
    /// offset predates this needs replication_snapshot() instead.
    store::Lsn oldest_log_lsn() const;

    /// A consistent (snapshot, covering-lsn) pair taken under the log
    /// mutex: replaying records with lsn > lsn on top of `snapshot`
    /// reproduces this server's acknowledged state.
    struct ReplicationSnapshot {
        Bytes snapshot;
        store::Lsn lsn = 0;
    };
    ReplicationSnapshot replication_snapshot() const;

    /// The wrapped in-memory server (stats() etc. bypass the wire).
    MieServer& server() { return inner_; }
    const MieServer& server() const { return inner_; }

private:
    void maybe_checkpoint_locked();
    void write_checkpoint_locked();

    MieServer inner_;
    /// (client, seq) -> response for enveloped mutations, rebuilt from
    /// the WAL during recovery. Declared before engine_: the engine's
    /// recovery replay inserts into it.
    // mielint: guarded_by(log_mutex_)
    net::ReplayCache replay_cache_;
    /// Snapshot-file plumbing; declared before engine_ because the
    /// engine's recovery restore callback reads them.
    store::Vfs& vfs_;
    std::filesystem::path dir_;
    bool mmap_checkpoints_;
    store::StorageEngine engine_;
    /// Serializes mutating ops end-to-end (apply + log + checkpoint) so
    /// WAL order matches application order. Lock order: log_mutex_
    /// before the inner server's locks.
    mutable std::mutex log_mutex_;
    // mielint: guarded_by(log_mutex_)
    std::size_t records_logged_ = 0;
    // mielint: guarded_by(log_mutex_)
    std::size_t checkpoints_written_ = 0;
    // mielint: guarded_by(log_mutex_)
    std::size_t replays_suppressed_ = 0;
    // mielint: guarded_by(log_mutex_)
    std::size_t batches_committed_ = 0;
    // mielint: guarded_by(log_mutex_)
    std::size_t max_batch_records_ = 0;
};

}  // namespace mie
