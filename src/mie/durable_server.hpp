// Durable MIE cloud server: MieServer + write-ahead logging + recovery.
//
// Wraps the in-memory MieServer behind the same net::RequestHandler
// interface. Every mutating opcode (CREATE/UPDATE/REMOVE/TRAIN) is
// appended to a CRC-protected segmented WAL *before* the response is
// returned, so an acknowledged operation survives a crash; read opcodes
// (SEARCH/STATS/LIST_OBJECTS) pass straight through and still enjoy the
// inner server's shared per-repository locking.
//
// Construction runs recovery: the newest durable checkpoint (the
// export_snapshot format) is restored, then later WAL records are
// replayed in order. Replay is deterministic because log records are the
// verbatim RPC request bytes and the inner server applies them exactly
// as it did originally (training is deterministic in (data, seed)).
//
// A threshold policy turns the log into checkpoints: once
// `checkpoint_every_bytes` of log accumulate, the next mutating request
// also snapshots the server, durably writes the checkpoint, and
// truncates covered WAL segments.
//
// Mutations serialize on one log mutex — the WAL is a single append
// point, and holding the mutex across apply+append keeps memory order
// and log order identical (replay must converge to the acknowledged
// state even when concurrent writers race on the same object id).
// Searches never take the log mutex.
// Idempotent replay: requests may arrive wrapped in the idempotency
// envelope of net/envelope.hpp. Mutating envelopes are deduplicated
// through a bounded replay cache — a client retry whose original was
// applied (but whose response was lost in transit) gets the original
// response back without re-applying. Enveloped requests are logged
// verbatim, so recovery replay rebuilds the cache and dedup survives a
// server crash: at-least-once delivery, exactly-once application.
#pragma once

#include <filesystem>
#include <mutex>

#include "mie/server.hpp"
#include "net/envelope.hpp"
#include "store/engine.hpp"

namespace mie {

class DurableServer final : public net::RequestHandler {
public:
    using Options = store::StorageEngine::Options;

    /// Opens (and recovers) the durable server in `dir`. `vfs` must
    /// outlive the server; pass store::PosixVfs::instance() outside
    /// tests.
    DurableServer(store::Vfs& vfs, const std::filesystem::path& dir,
                  Options options = {});

    /// Applies the request; mutating requests are logged before the
    /// response is returned. Throws store::IoError if logging fails —
    /// the caller must treat the operation as not acknowledged.
    Bytes handle(BytesView request) override;

    /// Durability bookkeeping for tests, benchmarks, and ops probes.
    struct DurabilityStats {
        std::size_t records_logged = 0;      ///< since open
        std::size_t checkpoints_written = 0;  ///< since open
        std::size_t recovered_records = 0;    ///< replayed at open
        bool recovered_from_checkpoint = false;
        bool tail_truncated = false;  ///< open discarded a torn tail
        store::Lsn last_lsn = 0;
        /// Replayed envelopes answered from the replay cache (the
        /// mutation was NOT re-applied).
        std::size_t replays_suppressed = 0;
    };
    DurabilityStats durability() const;

    /// Forces a checkpoint now (clean shutdown, tests).
    void checkpoint_now();

    /// Flushes the WAL to stable storage.
    void sync();

    /// The wrapped in-memory server (stats() etc. bypass the wire).
    MieServer& server() { return inner_; }
    const MieServer& server() const { return inner_; }

private:
    void maybe_checkpoint_locked();

    MieServer inner_;
    /// (client, seq) -> response for enveloped mutations; guarded by
    /// log_mutex_ and rebuilt from the WAL during recovery. Declared
    /// before engine_: the engine's recovery replay inserts into it.
    net::ReplayCache replay_cache_;
    store::StorageEngine engine_;
    /// Serializes mutating ops end-to-end (apply + log + checkpoint) so
    /// WAL order matches application order. Lock order: log_mutex_
    /// before the inner server's locks.
    mutable std::mutex log_mutex_;
    std::size_t records_logged_ = 0;
    std::size_t checkpoints_written_ = 0;
    std::size_t replays_suppressed_ = 0;
};

}  // namespace mie
