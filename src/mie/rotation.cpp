#include "mie/rotation.hpp"

#include "crypto/ctr.hpp"
#include "mie/object_codec.hpp"
#include "mie/wire.hpp"
#include "net/message.hpp"

namespace mie {

RotationReport rotate_repository_key(
    net::Transport& transport, const std::string& repo_id,
    const RepositoryKey& new_key, const DataKeyring& keyring,
    const Bytes& user_secret, const TrainParams& train_params,
    const ExtractionParams& extraction) {
    // 1. Download the ciphertext blobs.
    net::MessageWriter request;
    request.write_u8(static_cast<std::uint8_t>(MieOp::kListObjects));
    request.write_string(repo_id);
    const Bytes response = transport.call(request.take());
    net::MessageReader reader(response);
    const auto count = reader.read_u32();

    // 2. Decrypt what this owner's keyring can open.
    RotationReport report;
    std::vector<sim::MultimodalObject> objects;
    objects.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t id = reader.read_u64();
        const Bytes blob = reader.read_bytes();
        try {
            const crypto::AesCtr cipher(keyring.data_key(id));
            sim::MultimodalObject object = decode_object(cipher.open(blob));
            if (object.id != id) {
                // Wrong-key decryptions produce garbage ids with
                // overwhelming probability: treat as not ours.
                ++report.objects_skipped;
                continue;
            }
            objects.push_back(std::move(object));
        } catch (const std::exception&) {
            ++report.objects_skipped;  // not decryptable by this keyring
        }
    }

    // 3. Recreate the repository under the new key and re-upload.
    MieClient client(transport, repo_id, new_key, user_secret);
    client.train_params = train_params;
    client.extraction = extraction;
    client.create_repository();  // wipes all old-key state server-side
    // mielint: allow(R3): objects is a std::vector, not the server's map
    for (const auto& object : objects) {
        client.update(object);
    }
    if (!objects.empty()) client.train();
    report.objects_rotated = objects.size();
    return report;
}

}  // namespace mie
