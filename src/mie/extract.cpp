#include "mie/extract.hpp"

#include <algorithm>
#include <iterator>

#include "exec/exec.hpp"

namespace mie {

ExtractedFeatures extract_features(const sim::MultimodalObject& object,
                                   const ExtractionParams& params) {
    ExtractedFeatures out;
    const features::SurfExtractor surf;
    out.descriptors = surf.extract(object.image, params.pyramid);
    out.terms = features::extract_term_histogram(object.text);
    return out;
}

MultimodalFeatures extract_multimodal(const sim::MultimodalObject& object,
                                      const ExtractionParams& params) {
    MultimodalFeatures out;
    const features::SurfExtractor surf;
    auto image_descriptors = surf.extract(object.image, params.pyramid);
    if (!image_descriptors.empty()) {
        out.dense[kImageModality] = std::move(image_descriptors);
    }
    auto terms = features::extract_term_histogram(object.text);
    if (!terms.empty()) {
        out.sparse[kTextModality] = std::move(terms);
    }
    if (!object.audio.empty()) {
        auto audio_descriptors =
            features::extract_audio_descriptors(object.audio, params.audio);
        if (!audio_descriptors.empty()) {
            out.dense[kAudioModality] = std::move(audio_descriptors);
        }
    }
    if (!object.video.empty()) {
        const std::size_t stride = std::max<std::size_t>(
            1, params.video_frame_stride);
        std::vector<std::size_t> frames;
        for (std::size_t f = 0; f < object.video.size(); f += stride) {
            frames.push_back(f);
        }
        // Frames are described concurrently into per-frame slots, then
        // concatenated in frame order — identical to the serial pipeline.
        std::vector<std::vector<features::FeatureVec>> per_frame(
            frames.size());
        exec::parallel_for(0, frames.size(), 1, [&](std::size_t i) {
            per_frame[i] =
                surf.extract(object.video[frames[i]], params.video_pyramid);
        });
        std::vector<features::FeatureVec> video_descriptors;
        for (auto& frame_descriptors : per_frame) {
            video_descriptors.insert(
                video_descriptors.end(),
                std::make_move_iterator(frame_descriptors.begin()),
                std::make_move_iterator(frame_descriptors.end()));
        }
        if (!video_descriptors.empty()) {
            out.dense[kVideoModality] = std::move(video_descriptors);
        }
    }
    return out;
}

}  // namespace mie
