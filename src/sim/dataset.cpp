#include "sim/dataset.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace mie::sim {

namespace {

/// Zipf-ish rank sampler: P(rank k) ~ 1/(k+1); cheap inverse-CDF-free
/// rejection method good enough for tag skew.
std::size_t sample_zipf(SplitMix64& rng, std::size_t n) {
    // Draw from harmonic-like distribution by repeated halving.
    std::size_t k = 0;
    while (k + 1 < n && rng.next_double() < 0.55) ++k;
    // Mix with a uniform tail so deep vocabulary still appears.
    if (rng.next_double() < 0.15) k = rng.next_below(n);
    return k;
}

}  // namespace

FlickrLikeGenerator::FlickrLikeGenerator(FlickrLikeParams params)
    : params_(std::move(params)) {
    // Materialize per-class prototypes: a field of Gaussian blobs whose
    // layout is the class identity.
    class_blobs_.resize(params_.num_classes);
    for (std::size_t c = 0; c < params_.num_classes; ++c) {
        SplitMix64 rng(params_.seed * 1000003 + c);
        constexpr int kBlobsPerClass = 24;
        auto& blobs = class_blobs_[c];
        blobs.reserve(kBlobsPerClass);
        const auto size = static_cast<float>(params_.image_size);
        for (int b = 0; b < kBlobsPerClass; ++b) {
            blobs.push_back(Blob{
                .cx = static_cast<float>(rng.next_double()) * size,
                .cy = static_cast<float>(rng.next_double()) * size,
                .sigma = 2.0f + static_cast<float>(rng.next_double()) *
                                    size * 0.12f,
                .amplitude =
                    (rng.next_double() < 0.5 ? -1.0f : 1.0f) *
                    (0.3f + 0.7f * static_cast<float>(rng.next_double())),
            });
        }
    }
}

features::Image FlickrLikeGenerator::render(std::uint32_t label,
                                            std::uint64_t instance_seed,
                                            double jitter_scale) const {
    SplitMix64 rng(instance_seed);
    const auto& blobs = class_blobs_[label % params_.num_classes];

    // Instance-level geometric jitter: global translation plus small
    // per-blob amplitude wobble.
    const float max_shift =
        static_cast<float>(jitter_scale) * params_.image_size * 0.06f;
    const float dx =
        (static_cast<float>(rng.next_double()) * 2.0f - 1.0f) * max_shift;
    const float dy =
        (static_cast<float>(rng.next_double()) * 2.0f - 1.0f) * max_shift;

    features::Image img(params_.image_size, params_.image_size);
    std::vector<float> amplitude_jitter(blobs.size());
    for (auto& a : amplitude_jitter) {
        a = 1.0f + static_cast<float>(jitter_scale) * 0.3f *
                       (static_cast<float>(rng.next_double()) * 2.0f - 1.0f);
    }

    for (int y = 0; y < params_.image_size; ++y) {
        for (int x = 0; x < params_.image_size; ++x) {
            float value = 0.5f;
            for (std::size_t b = 0; b < blobs.size(); ++b) {
                const Blob& blob = blobs[b];
                const float ox = static_cast<float>(x) - (blob.cx + dx);
                const float oy = static_cast<float>(y) - (blob.cy + dy);
                const float r2 = ox * ox + oy * oy;
                const float s2 = 2.0f * blob.sigma * blob.sigma;
                if (r2 < 9.0f * blob.sigma * blob.sigma) {
                    value += 0.35f * blob.amplitude * amplitude_jitter[b] *
                             std::exp(-r2 / s2);
                }
            }
            value += static_cast<float>(params_.noise) *
                     (static_cast<float>(rng.next_double()) * 2.0f - 1.0f);
            img.at(x, y) = value;
        }
    }
    return img;
}

std::string FlickrLikeGenerator::make_tags(std::uint32_t label,
                                           std::uint64_t instance_seed) const {
    SplitMix64 rng(instance_seed ^ 0x9e3779b97f4a7c15ULL);
    const std::size_t class_base =
        (static_cast<std::size_t>(label) * params_.class_vocab) %
        params_.vocab_size;
    std::string text;
    for (std::size_t t = 0; t < params_.tags_per_object; ++t) {
        std::size_t word;
        if (rng.next_double() < 0.8) {
            // Class-preferred vocabulary slice (wrapping).
            word = (class_base + sample_zipf(rng, params_.class_vocab)) %
                   params_.vocab_size;
        } else {
            word = sample_zipf(rng, params_.vocab_size);
        }
        if (!text.empty()) text.push_back(' ');
        text += "tag" + std::to_string(word);
    }
    return text;
}

std::vector<float> FlickrLikeGenerator::render_audio(
    std::uint32_t label, std::uint64_t instance_seed) const {
    // Per-class "chord": three sinusoids whose fundamentals identify the
    // class; instances detune slightly and add noise, so same-class clips
    // are spectrally close and cross-class clips are not.
    SplitMix64 class_rng(params_.seed * 7919 + label);
    double fundamentals[3];
    for (double& f : fundamentals) {
        f = 120.0 + class_rng.next_double() * 1400.0;
    }
    SplitMix64 rng(instance_seed ^ 0xa5a5a5a5a5a5a5a5ULL);
    const double detune = 1.0 + (rng.next_double() - 0.5) * 0.02;
    double phases[3];
    for (double& p : phases) p = rng.next_double() * 6.283185307;

    constexpr double kSampleRate = 8000.0;
    std::vector<float> wave(params_.audio_samples);
    for (std::size_t n = 0; n < wave.size(); ++n) {
        const double t = static_cast<double>(n) / kSampleRate;
        double sample = 0.0;
        for (int h = 0; h < 3; ++h) {
            sample += (0.5 - 0.1 * h) *
                      std::sin(6.283185307 * fundamentals[h] * detune * t +
                               phases[h]);
        }
        sample += (rng.next_double() - 0.5) * 0.05;
        wave[n] = static_cast<float>(sample * 0.4);
    }
    return wave;
}

std::vector<features::Image> FlickrLikeGenerator::render_video(
    std::uint32_t label, std::uint64_t instance_seed) const {
    // A short clip: the class scene with per-frame jitter (camera shake /
    // subject motion), so frames are near-duplicates of the class
    // prototype rather than of each other pixel-for-pixel.
    std::vector<features::Image> frames;
    frames.reserve(params_.video_frames);
    for (std::size_t f = 0; f < params_.video_frames; ++f) {
        frames.push_back(
            render(label, instance_seed ^ (0x517cc1b727220a95ULL * (f + 1)),
                   0.8));
    }
    return frames;
}

MultimodalObject FlickrLikeGenerator::make(std::uint64_t id) const {
    MultimodalObject object;
    object.id = id;
    object.label =
        static_cast<std::uint32_t>(id % params_.num_classes);
    const std::uint64_t instance_seed = params_.seed ^ (id * 0x2545f4914f6cdd1dULL + 1);
    object.image = render(object.label, instance_seed, 1.0);
    object.text = make_tags(object.label, instance_seed);
    if (params_.with_audio) {
        object.audio = render_audio(object.label, instance_seed);
    }
    if (params_.with_video) {
        object.video = render_video(object.label, instance_seed);
    }
    return object;
}

std::vector<MultimodalObject> FlickrLikeGenerator::make_batch(
    std::uint64_t first_id, std::size_t count) const {
    std::vector<MultimodalObject> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(make(first_id + i));
    }
    return batch;
}

HolidaysLikeGenerator::HolidaysLikeGenerator(HolidaysLikeParams params)
    : params_(std::move(params)),
      base_(FlickrLikeParams{
          .num_classes = params_.num_groups,
          .image_size = params_.image_size,
          .vocab_size = std::max<std::size_t>(params_.num_groups * 4, 64),
          .class_vocab = 8,
          .tags_per_object = 6,
          .noise = 0.03,
          .seed = params_.seed,
      }) {}

HolidaysLikeGenerator::Dataset HolidaysLikeGenerator::generate() const {
    Dataset dataset;
    dataset.objects.reserve(params_.num_groups * params_.group_size);
    std::uint64_t next_id = 0;
    for (std::size_t g = 0; g < params_.num_groups; ++g) {
        for (std::size_t member = 0; member < params_.group_size; ++member) {
            MultimodalObject object;
            object.id = next_id++;
            object.label = static_cast<std::uint32_t>(g);
            const std::uint64_t instance_seed =
                params_.seed ^ (object.id * 0x9e3779b97f4a7c15ULL + 17);
            object.image =
                base_.render(object.label, instance_seed,
                             params_.intra_group_jitter);
            object.text = base_.make_tags(object.label, instance_seed);
            if (member == 0) {
                dataset.query_indices.push_back(dataset.objects.size());
            }
            dataset.objects.push_back(std::move(object));
        }
    }
    return dataset;
}

}  // namespace mie::sim
