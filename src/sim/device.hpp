// Device profiles for the simulated experimental test-bench.
//
// The paper's evaluation (§VII) runs clients on a 2013 Nexus 7 tablet
// (Snapdragon S4 Pro, Android 5.1, 3448 mAh measured battery) and a
// MacBook Pro (2.3 GHz quad-core i7), against an Amazon EC2 m3.large
// (52.160 ms average RTT). We reproduce that test-bench by measuring the
// real CPU work of the real algorithms on the build machine and scaling it
// by a per-device factor; network time and energy come from the link and
// power models. The paper observes roughly one order of magnitude between
// desktop and mobile on CPU-bound sub-operations, which fixes the relative
// scale factors.
#pragma once

#include <string>

#include "net/transport.hpp"

namespace mie::sim {

/// Android-power-profile-style current draws (milliamperes).
struct PowerProfile {
    double cpu_active_ma = 0.0;   ///< CPU fully busy
    double wifi_active_ma = 0.0;  ///< radio transmitting/receiving
    double idle_ma = 0.0;         ///< screen-off baseline
};

struct DeviceProfile {
    std::string name;
    double cpu_scale = 1.0;  ///< multiplier on measured CPU seconds
    net::LinkProfile link;
    PowerProfile power;
    double battery_mah = 0.0;  ///< 0 = mains-powered

    /// 2013 Nexus 7: ~10x slower than the desktop on this workload; WiFi
    /// 802.11g; power-profile currents typical of the Snapdragon S4 Pro
    /// generation; measured battery capacity from the paper.
    static DeviceProfile mobile() {
        return DeviceProfile{
            .name = "mobile(Nexus7-2013)",
            .cpu_scale = 10.0,
            .link = net::LinkProfile::mobile(),
            .power = PowerProfile{.cpu_active_ma = 1400.0,
                                  .wifi_active_ma = 350.0,
                                  .idle_ma = 18.0},
            .battery_mah = 3448.0,
        };
    }

    /// MacBook Pro class desktop: reference CPU speed, 100 Mb/s ethernet,
    /// mains powered (battery/power fields unused by the figures).
    static DeviceProfile desktop() {
        return DeviceProfile{
            .name = "desktop(MacBookPro)",
            .cpu_scale = 1.0,
            .link = net::LinkProfile::desktop(),
            .power = PowerProfile{},
            .battery_mah = 0.0,
        };
    }
};

}  // namespace mie::sim
