#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mie::sim {

ZipfDistribution::ZipfDistribution(std::size_t num_ranks, double exponent) {
    if (num_ranks == 0) {
        throw std::invalid_argument("ZipfDistribution: need at least 1 rank");
    }
    if (!(exponent >= 0.0)) {
        throw std::invalid_argument(
            "ZipfDistribution: exponent must be non-negative");
    }
    cdf_.resize(num_ranks);
    double total = 0.0;
    for (std::size_t rank = 0; rank < num_ranks; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
        cdf_[rank] = total;
    }
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against accumulated rounding
}

double ZipfDistribution::probability(std::size_t rank) const {
    if (rank >= cdf_.size()) {
        throw std::out_of_range("ZipfDistribution: rank out of range");
    }
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::size_t ZipfDistribution::sample(SplitMix64& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it == cdf_.end()
                                        ? cdf_.size() - 1
                                        : it - cdf_.begin());
}

const char* fleet_op_name(FleetOpKind kind) {
    switch (kind) {
        case FleetOpKind::kAdd: return "add";
        case FleetOpKind::kSearch: return "search";
        case FleetOpKind::kUpdate: return "update";
        case FleetOpKind::kRemove: return "remove";
    }
    return "?";
}

std::uint64_t fleet_object_id(std::uint32_t repo, std::uint64_t counter) {
    return (static_cast<std::uint64_t>(repo) + 1) << 48 |
           (counter & 0xffffffffffffULL);
}

DeviceProfile fleet_device(const FleetEvent& event) {
    return event.mobile ? DeviceProfile::mobile() : DeviceProfile::desktop();
}

namespace {

struct Session {
    std::uint64_t user_id = 0;
    bool mobile = true;
};

Session fresh_session(SplitMix64& rng, const FleetParams& params) {
    Session session;
    session.user_id = rng.next_below(params.num_users);
    session.mobile = rng.next_double() < params.mobile_fraction;
    return session;
}

}  // namespace

FleetScript FleetScript::generate(const FleetParams& params) {
    if (params.num_repositories == 0) {
        throw std::invalid_argument("FleetScript: need >= 1 repository");
    }
    if (params.active_sessions == 0) {
        throw std::invalid_argument("FleetScript: need >= 1 session");
    }
    if (params.num_users == 0) {
        throw std::invalid_argument("FleetScript: need >= 1 user");
    }
    const double weight_total = params.add_weight + params.search_weight +
                                params.update_weight + params.remove_weight;
    if (!(weight_total > 0.0)) {
        throw std::invalid_argument("FleetScript: op weights sum to zero");
    }

    FleetScript script;
    script.params = params;
    SplitMix64 rng(params.seed);
    const ZipfDistribution zipf(params.num_repositories,
                                params.zipf_exponent);

    std::vector<Session> sessions;
    sessions.reserve(params.active_sessions);
    for (std::size_t i = 0; i < params.active_sessions; ++i) {
        sessions.push_back(fresh_session(rng, params));
    }
    script.sessions_started = params.active_sessions;

    script.setup.resize(params.num_repositories);
    script.live.resize(params.num_repositories);
    std::vector<std::uint64_t> next_counter(params.num_repositories, 0);
    for (std::uint32_t repo = 0; repo < params.num_repositories; ++repo) {
        for (std::size_t i = 0; i < params.setup_objects_per_repo; ++i) {
            const std::uint64_t id =
                fleet_object_id(repo, next_counter[repo]++);
            script.setup[repo].push_back(id);
            script.live[repo].push_back(id);
        }
    }

    // Cumulative op-mix thresholds in [0, 1).
    const double add_cut = params.add_weight / weight_total;
    const double search_cut = add_cut + params.search_weight / weight_total;
    const double update_cut =
        search_cut + params.update_weight / weight_total;

    script.events.reserve(params.num_events);
    for (std::size_t i = 0; i < params.num_events; ++i) {
        const std::size_t slot = static_cast<std::size_t>(
            rng.next_below(params.active_sessions));
        const auto repo =
            static_cast<std::uint32_t>(zipf.sample(rng));
        std::vector<std::uint64_t>& live = script.live[repo];

        const double pick = rng.next_double();
        FleetOpKind kind = FleetOpKind::kRemove;
        if (pick < add_cut) {
            kind = FleetOpKind::kAdd;
        } else if (pick < search_cut) {
            kind = FleetOpKind::kSearch;
        } else if (pick < update_cut) {
            kind = FleetOpKind::kUpdate;
        }
        // Mutations against an empty repository fall back to adds so the
        // script never references an object that cannot exist. (Searches
        // keep running: an almost-empty index answering is part of the
        // workload.) Setup objects make this rare for hot repositories.
        if (live.empty() && (kind == FleetOpKind::kUpdate ||
                             kind == FleetOpKind::kRemove)) {
            kind = FleetOpKind::kAdd;
        }

        FleetEvent event;
        event.kind = kind;
        event.user_id = sessions[slot].user_id;
        event.mobile = sessions[slot].mobile;
        event.repo = repo;
        switch (kind) {
            case FleetOpKind::kAdd:
                event.object_id = fleet_object_id(repo, next_counter[repo]++);
                live.push_back(event.object_id);
                break;
            case FleetOpKind::kSearch:
                // Query a live object when one exists (a hit-shaped
                // query), otherwise probe with a never-added id.
                event.object_id =
                    live.empty()
                        ? fleet_object_id(repo, next_counter[repo])
                        : live[rng.next_below(live.size())];
                break;
            case FleetOpKind::kUpdate:
                event.object_id = live[rng.next_below(live.size())];
                break;
            case FleetOpKind::kRemove: {
                const std::size_t victim = static_cast<std::size_t>(
                    rng.next_below(live.size()));
                event.object_id = live[victim];
                live[victim] = live.back();
                live.pop_back();
                break;
            }
        }
        script.events.push_back(event);
        ++script.count_by_kind[static_cast<std::size_t>(kind)];

        if (rng.next_double() < params.session_churn) {
            sessions[slot] = fresh_session(rng, params);
            ++script.sessions_started;
        }
    }
    return script;
}

}  // namespace mie::sim
