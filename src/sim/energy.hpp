// Battery-drain model (Fig. 6).
//
// Mirrors the Android Power Profiles accounting the paper used: energy is
// the integral of per-component current over active time,
//   mAh = Σ_component current_mA * active_hours.
// CPU-bound sub-operations charge the CPU rail; network time charges the
// WiFi rail (CPU assumed idle-waiting during synchronous transfers).
#pragma once

#include "sim/device.hpp"
#include "sim/meter.hpp"

namespace mie::sim {

struct EnergyReport {
    double cpu_mah = 0.0;
    double network_mah = 0.0;
    double idle_mah = 0.0;

    double total_mah() const { return cpu_mah + network_mah + idle_mah; }

    /// True if this drain exceeds the device's battery capacity (the
    /// Fig. 6 condition under which the Nexus 7 shut down mid-experiment).
    bool exceeds_battery(const DeviceProfile& device) const {
        return device.battery_mah > 0.0 && total_mah() > device.battery_mah;
    }
};

/// Converts a metered operation cost into battery drain on `device`.
inline EnergyReport energy_of(const CostMeter& meter,
                              const DeviceProfile& device) {
    constexpr double kSecondsPerHour = 3600.0;
    EnergyReport report;
    report.cpu_mah = meter.cpu_seconds() * device.power.cpu_active_ma /
                     kSecondsPerHour;
    report.network_mah = meter.seconds(SubOp::kNetwork) *
                         device.power.wifi_active_ma / kSecondsPerHour;
    report.idle_mah =
        meter.total_seconds() * device.power.idle_ma / kSecondsPerHour;
    return report;
}

}  // namespace mie::sim
