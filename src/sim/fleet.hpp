// Deterministic fleet workload generator for the soak harness.
//
// Models a large population of mobile/desktop users hammering a small
// set of hosted repositories: repository popularity is Zipf-distributed
// (a few hot photo collections absorb most traffic, the long tail is
// cold), users come and go through a bounded pool of active sessions
// (session churn), and each operation is drawn from a configurable
// add/search/update/remove mix. Everything derives from one SplitMix64
// seed, so a script — and any failure the soak harness finds while
// replaying it against the cluster — reproduces exactly.
//
// The generator runs ahead of time, not online: FleetScript::generate
// materializes the whole event list, tracking per-repository live object
// sets so updates and removes always target objects that exist at that
// point of the schedule. The soak harness then replays events in order
// and knows the expected end state without consulting the server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/device.hpp"
#include "util/rng.hpp"

namespace mie::sim {

/// Zipf(s) distribution over ranks 0..n-1: P(rank k) ∝ 1/(k+1)^s.
/// Sampled by inverse CDF over a precomputed table — O(log n) per draw,
/// deterministic given the RNG stream.
class ZipfDistribution {
public:
    ZipfDistribution(std::size_t num_ranks, double exponent);

    std::size_t num_ranks() const { return cdf_.size(); }

    /// Probability mass of `rank` (0-based; rank 0 is the hottest).
    double probability(std::size_t rank) const;

    /// Draws one rank from `rng`.
    std::size_t sample(SplitMix64& rng) const;

private:
    std::vector<double> cdf_;
};

enum class FleetOpKind : std::uint8_t {
    kAdd = 0,
    kSearch = 1,
    kUpdate = 2,
    kRemove = 3,
};
constexpr std::size_t kNumFleetOpKinds = 4;

const char* fleet_op_name(FleetOpKind kind);

struct FleetParams {
    std::uint64_t seed = 2017;
    /// Modeled user population (ids are drawn from this range; only
    /// `active_sessions` of them are concurrently active).
    std::uint64_t num_users = 1'000'000;
    std::size_t num_repositories = 8;
    /// Concurrent session pool; each event is issued by one session.
    std::size_t active_sessions = 64;
    /// Events in the script (excluding per-repo setup objects).
    std::size_t num_events = 512;
    /// Zipf exponent for repository popularity (1.0–1.2 is web-like).
    double zipf_exponent = 1.1;
    /// Probability a session ends (and a fresh user takes the slot)
    /// after each event it issues.
    double session_churn = 0.05;
    /// Fraction of sessions on the mobile device profile; the rest are
    /// desktop.
    double mobile_fraction = 0.8;
    /// Operation mix (normalized internally; updates/removes fall back
    /// to adds while a repository is empty).
    double add_weight = 0.45;
    double search_weight = 0.35;
    double update_weight = 0.12;
    double remove_weight = 0.08;
    /// Objects seeded into every repository before the event stream so
    /// indexes can train and searches have something to find.
    std::size_t setup_objects_per_repo = 4;
};

struct FleetEvent {
    FleetOpKind kind = FleetOpKind::kAdd;
    std::uint64_t user_id = 0;
    std::uint32_t repo = 0;
    /// Object targeted by add/update/remove; for searches, the dataset
    /// id whose object serves as the query.
    std::uint64_t object_id = 0;
    /// Device class of the issuing session.
    bool mobile = true;
};

struct FleetScript {
    FleetParams params;
    /// Per-repository objects to add (and train over) before `events`.
    std::vector<std::vector<std::uint64_t>> setup;
    std::vector<FleetEvent> events;
    /// Live object ids per repository after the whole script ran.
    std::vector<std::vector<std::uint64_t>> live;
    /// Event counts by kind (post-fallback, so kAdd includes fallbacks).
    std::vector<std::size_t> count_by_kind =
        std::vector<std::size_t>(kNumFleetOpKinds, 0);
    /// Sessions created over the script's lifetime (>= active_sessions).
    std::size_t sessions_started = 0;

    static FleetScript generate(const FleetParams& params);
};

/// Object ids are repo-tagged so they stay globally unique across the
/// union of repositories: high 16 bits = repo + 1, low 48 = counter.
std::uint64_t fleet_object_id(std::uint32_t repo, std::uint64_t counter);

/// Device profile an event's cost should be metered on.
DeviceProfile fleet_device(const FleetEvent& event);

}  // namespace mie::sim
