// Synthetic multimodal dataset generators.
//
// Substitutes for the paper's datasets (DESIGN.md §1):
//  * FlickrLikeGenerator stands in for MIR-Flickr (one million photos with
//    user tags): objects are textured synthetic images drawn from class
//    prototypes plus class-correlated Zipf-distributed tag lists, giving
//    realistic dense-descriptor statistics and posting-list skew.
//  * HolidaysLikeGenerator stands in for INRIA Holidays (1491 photos, 500
//    groups of near-duplicates, mAP evaluation): groups of jittered
//    variants of one scene; the first member of each group is the query
//    and the remaining members are its relevant results.
//
// All output is deterministic in the generator seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/image.hpp"

namespace mie::sim {

/// One multimodal data-object: image + text modalities, optionally audio.
struct MultimodalObject {
    std::uint64_t id = 0;
    features::Image image;
    std::string text;
    std::vector<float> audio;  ///< waveform samples; empty = no audio
    std::vector<features::Image> video;  ///< frames; empty = no video
    std::uint32_t label = 0;  ///< ground-truth class / group (never uploaded)
};

struct FlickrLikeParams {
    std::size_t num_classes = 20;
    int image_size = 96;
    std::size_t vocab_size = 400;      ///< global tag vocabulary
    std::size_t class_vocab = 30;      ///< preferred tags per class
    std::size_t tags_per_object = 8;
    double noise = 0.04;               ///< per-pixel additive noise
    bool with_audio = false;           ///< attach a per-class audio clip
    std::size_t audio_samples = 4096;  ///< clip length (8 kHz samples)
    bool with_video = false;           ///< attach a short per-class clip
    std::size_t video_frames = 6;
    std::uint64_t seed = 1;
};

class FlickrLikeGenerator {
public:
    explicit FlickrLikeGenerator(FlickrLikeParams params);

    /// Generates object `id` (deterministic); class = id mod num_classes.
    MultimodalObject make(std::uint64_t id) const;

    /// Generates objects [first_id, first_id + count).
    std::vector<MultimodalObject> make_batch(std::uint64_t first_id,
                                             std::size_t count) const;

    const FlickrLikeParams& params() const { return params_; }

private:
    struct Blob {
        float cx, cy, sigma, amplitude;
    };

    features::Image render(std::uint32_t label, std::uint64_t instance_seed,
                           double jitter_scale) const;
    std::string make_tags(std::uint32_t label,
                          std::uint64_t instance_seed) const;
    std::vector<float> render_audio(std::uint32_t label,
                                    std::uint64_t instance_seed) const;
    std::vector<features::Image> render_video(
        std::uint32_t label, std::uint64_t instance_seed) const;

    FlickrLikeParams params_;
    std::vector<std::vector<Blob>> class_blobs_;  // per-class prototype

    friend class HolidaysLikeGenerator;
};

struct HolidaysLikeParams {
    std::size_t num_groups = 100;
    std::size_t group_size = 3;  ///< images per group (1 query + relevant)
    int image_size = 96;
    double intra_group_jitter = 0.5;  ///< 0 = identical, 1 = class-level
    std::uint64_t seed = 7;
};

class HolidaysLikeGenerator {
public:
    struct Dataset {
        std::vector<MultimodalObject> objects;
        /// Indices into `objects` of the query images (one per group).
        std::vector<std::size_t> query_indices;
    };

    explicit HolidaysLikeGenerator(HolidaysLikeParams params);

    Dataset generate() const;

    const HolidaysLikeParams& params() const { return params_; }

private:
    HolidaysLikeParams params_;
    FlickrLikeGenerator base_;
};

}  // namespace mie::sim
