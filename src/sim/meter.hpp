// Per-sub-operation cost accounting.
//
// Figures 2, 3 and 5 of the paper break client cost into Encrypt, Network,
// Index and Train sub-operations. Scheme clients attribute their work to
// these buckets through a CostMeter: CPU work is measured with a wall-clock
// stopwatch and scaled by the device profile's cpu_scale; network time is
// credited from the metered transport (already modeled, never scaled).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <utility>

#include "util/stopwatch.hpp"

namespace mie::sim {

enum class SubOp : std::size_t {
    kEncrypt = 0,  ///< data / feature-vector / index encryption
    kNetwork,      ///< communication + server processing (synchronous ops)
    kIndex,        ///< feature extraction + client-side indexing
    kTrain,        ///< client-side machine-learning (baselines only)
};
constexpr std::size_t kNumSubOps = 4;

constexpr std::string_view sub_op_name(SubOp op) {
    switch (op) {
        case SubOp::kEncrypt: return "Encrypt";
        case SubOp::kNetwork: return "Network";
        case SubOp::kIndex: return "Index";
        case SubOp::kTrain: return "Train";
    }
    return "?";
}

class CostMeter {
public:
    explicit CostMeter(double cpu_scale = 1.0) : cpu_scale_(cpu_scale) {}

    /// Runs `fn`, charging its wall time (device-scaled) to `op`.
    template <typename F>
    auto timed(SubOp op, F&& fn) {
        const Stopwatch watch;
        if constexpr (std::is_void_v<decltype(fn())>) {
            std::forward<F>(fn)();
            add_cpu_seconds(op, watch.elapsed_seconds());
        } else {
            auto result = std::forward<F>(fn)();
            add_cpu_seconds(op, watch.elapsed_seconds());
            return result;
        }
    }

    /// Charges raw (already measured) CPU seconds, applying the device scale.
    void add_cpu_seconds(SubOp op, double raw_seconds) {
        seconds_[static_cast<std::size_t>(op)] += raw_seconds * cpu_scale_;
    }

    /// Charges modeled seconds verbatim (network time is not CPU-scaled).
    void add_modeled_seconds(SubOp op, double seconds) {
        seconds_[static_cast<std::size_t>(op)] += seconds;
    }

    double seconds(SubOp op) const {
        return seconds_[static_cast<std::size_t>(op)];
    }

    double total_seconds() const {
        double total = 0.0;
        for (double s : seconds_) total += s;
        return total;
    }

    double cpu_seconds() const {
        return seconds(SubOp::kEncrypt) + seconds(SubOp::kIndex) +
               seconds(SubOp::kTrain);
    }

    double cpu_scale() const { return cpu_scale_; }

    void reset() { seconds_.fill(0.0); }

private:
    double cpu_scale_;
    std::array<double, kNumSubOps> seconds_{};
};

}  // namespace mie::sim
