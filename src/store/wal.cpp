#include "store/wal.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <utility>

#include "util/crc32c.hpp"

namespace mie::store {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kPrefix = "wal-";
constexpr std::string_view kSuffix = ".log";
constexpr std::size_t kLsnDigits = 20;
/// Upper bound on one record's payload; a larger length field can only be
/// garbage and must not drive a huge allocation.
constexpr std::uint32_t kMaxPayloadBytes = 256u << 20;

std::uint32_t record_crc(Lsn lsn, BytesView payload) {
    Bytes lsn_le;
    append_le(lsn_le, lsn);
    // CRC-32C: hardware-evaluated on x86-64, and this runs per record on
    // the append hot path (see util/crc32c.hpp).
    std::uint32_t state = crc32c_init();
    state = crc32c_update(state, lsn_le);
    state = crc32c_update(state, payload);
    return crc32c_final(state);
}

/// Parses `wal-<20-digit lsn>.log`; returns 0 on mismatch (0 is not a
/// valid first_lsn — LSNs start at 1).
Lsn parse_segment_name(const fs::path& path) {
    const std::string name = path.filename().string();
    if (name.size() != kPrefix.size() + kLsnDigits + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
        return 0;
    }
    Lsn lsn = 0;
    const char* first = name.data() + kPrefix.size();
    const auto [ptr, ec] = std::from_chars(first, first + kLsnDigits, lsn);
    if (ec != std::errc{} || ptr != first + kLsnDigits) return 0;
    return lsn;
}

}  // namespace

Wal::Wal(Vfs& vfs, fs::path dir, Options options)
    : vfs_(vfs), dir_(std::move(dir)), options_(options) {
    vfs_.create_directories(dir_);
    open_existing();
}

fs::path Wal::segment_path(Lsn first_lsn) const {
    std::string digits = std::to_string(first_lsn);
    digits.insert(0, kLsnDigits - digits.size(), '0');
    return dir_ / (std::string(kPrefix) + digits + std::string(kSuffix));
}

void Wal::open_existing() {
    std::vector<Segment> found;
    for (const fs::path& path : vfs_.list_dir(dir_)) {
        const Lsn first_lsn = parse_segment_name(path);
        if (first_lsn != 0) found.push_back(Segment{path, first_lsn});
    }
    std::sort(found.begin(), found.end(),
              [](const Segment& a, const Segment& b) {
                  return a.first_lsn < b.first_lsn;
              });

    next_lsn_ = 1;
    bool stop = false;
    for (std::size_t i = 0; i < found.size(); ++i) {
        Segment& segment = found[i];
        if (stop) {
            // Records past a corruption point have lost their ordering
            // guarantee; they can only belong to unacknowledged suffix
            // state, so drop them.
            vfs_.remove_file(segment.path);
            tail_truncated_ = true;
            continue;
        }
        if (i > 0 && segment.first_lsn != next_lsn_) {
            // LSN gap: the preceding segment lost records. Stop here.
            vfs_.remove_file(segment.path);
            tail_truncated_ = true;
            stop = true;
            continue;
        }
        const ScanResult scan = scan_segment(segment, nullptr);
        if (scan.valid_bytes < kHeaderBytes) {
            // Torn during creation — it never held a durable record.
            vfs_.remove_file(segment.path);
            tail_truncated_ = true;
            stop = true;
            continue;
        }
        if (!scan.clean_end) {
            vfs_.truncate_file(segment.path, scan.valid_bytes);
            tail_truncated_ = true;
            stop = true;
        }
        if (i == 0) next_lsn_ = segment.first_lsn;
        if (scan.last_lsn != 0) next_lsn_ = scan.last_lsn + 1;
        segments_.push_back(segment);
    }

    if (segments_.empty()) {
        start_segment(next_lsn_);
    } else {
        active_ = vfs_.open_append(segments_.back().path);
    }
}

void Wal::start_segment(Lsn first_lsn) {
    Segment segment{segment_path(first_lsn), first_lsn};
    active_ = vfs_.create_truncate(segment.path);
    Bytes header(kMagic, kMagic + sizeof(kMagic));
    append_le(header, first_lsn);
    active_->append(header);
    if (options_.sync_policy == SyncPolicy::kEveryRecord) {
        // Only the power-loss-durable policy pays to make the new
        // segment's name and header durable immediately; the other
        // policies tolerate a torn/missing youngest segment at recovery.
        active_->sync();
        vfs_.sync_dir(dir_);
    }
    active_dirty_ = false;
    segments_.push_back(std::move(segment));
}

Lsn Wal::append(BytesView payload) {
    const Lsn lsn = append_record(payload);
    if (options_.sync_policy == SyncPolicy::kEveryRecord) {
        active_->sync();
        active_dirty_ = false;
    }
    return lsn;
}

Lsn Wal::append_batch(const std::vector<BytesView>& payloads) {
    Lsn last = 0;
    for (const BytesView payload : payloads) {
        last = append_record(payload);
    }
    // Group commit: one flush covers every record of the batch. A
    // mid-batch rotation already sealed (and under kEveryRecord synced)
    // the full segment, so this only pays for the active tail.
    if (last != 0 && options_.sync_policy == SyncPolicy::kEveryRecord) {
        sync();
    }
    return last;
}

Lsn Wal::append_record(BytesView payload) {
    if (active_->size() >= options_.segment_bytes) {
        // Seal the active segment and rotate. Under kOnRotate sealing
        // *initiates* writeback of the full segment without blocking on
        // it, keeping the power-loss window bounded (roughly the active
        // segment plus in-flight writeback) at no per-append fsync cost.
        if (options_.sync_policy == SyncPolicy::kEveryRecord) {
            sync();
        } else if (options_.sync_policy == SyncPolicy::kOnRotate) {
            active_->flush_async();
        }
        start_segment(next_lsn_);
    }

    const Lsn lsn = next_lsn_;
    Bytes header;
    header.reserve(kRecordHeaderBytes);
    append_le(header, static_cast<std::uint32_t>(payload.size()));
    append_le(header, record_crc(lsn, payload));
    append_le(header, lsn);
    active_->append_parts(header, payload);
    active_dirty_ = true;
    bytes_appended_ += kRecordHeaderBytes + payload.size();
    next_lsn_ = lsn + 1;
    return lsn;
}

void Wal::sync() {
    if (active_dirty_) {
        active_->sync();
        active_dirty_ = false;
    }
}

Wal::ScanResult Wal::scan_segment(
    const Segment& segment,
    const std::function<void(Lsn, BytesView)>* fn,
    std::uint64_t limit) const {
    ScanResult result;
    Bytes data = vfs_.read_file(segment.path);
    if (data.size() > limit) data.resize(limit);

    if (data.size() < kHeaderBytes ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0 ||
        read_le<std::uint64_t>(data, sizeof(kMagic)) != segment.first_lsn) {
        result.valid_bytes = 0;
        result.clean_end = false;
        return result;
    }

    Lsn expected = segment.first_lsn;
    std::size_t offset = kHeaderBytes;
    while (offset < data.size()) {
        if (offset + kRecordHeaderBytes > data.size()) break;  // torn header
        const auto len = read_le<std::uint32_t>(data, offset);
        const auto crc = read_le<std::uint32_t>(data, offset + 4);
        const auto lsn = read_le<std::uint64_t>(data, offset + 8);
        if (len > kMaxPayloadBytes || lsn != expected ||
            offset + kRecordHeaderBytes + len > data.size()) {
            break;  // garbage length/lsn or torn payload
        }
        const BytesView payload(data.data() + offset + kRecordHeaderBytes,
                                len);
        if (record_crc(lsn, payload) != crc) break;  // corrupt record
        if (fn) (*fn)(lsn, payload);
        offset += kRecordHeaderBytes + len;
        result.last_lsn = lsn;
        expected = lsn + 1;
    }
    result.valid_bytes = offset;
    result.clean_end = offset == data.size();
    return result;
}

void Wal::replay(Lsn after,
                 const std::function<void(Lsn, BytesView)>& fn) const {
    const std::function<void(Lsn, BytesView)> filtered =
        [&](Lsn lsn, BytesView payload) {
            if (lsn > after) fn(lsn, payload);
        };
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        // Skip segments the next segment's start proves are <= after.
        if (i + 1 < segments_.size() &&
            segments_[i + 1].first_lsn <= after + 1) {
            continue;
        }
        // The open active segment may be preallocated past its logical
        // size on disk; only the logical bytes are log contents.
        const std::uint64_t limit = i + 1 == segments_.size() && active_
                                        ? active_->size()
                                        : UINT64_MAX;
        const ScanResult scan = scan_segment(segments_[i], &filtered, limit);
        if (!scan.clean_end) {
            // The open-time scan validated this data; a mismatch now means
            // the file changed underneath us.
            throw CorruptLogError("Wal::replay: corruption in " +
                                  segments_[i].path.string());
        }
    }
}

Wal::TailRead Wal::read_from(
    Lsn after, std::size_t max_records,
    const std::function<void(Lsn, BytesView)>& fn) const {
    TailRead out;
    if (max_records == 0) {
        out.end_of_log = last_lsn() <= after;
        return out;
    }
    const std::function<void(Lsn, BytesView)> sink =
        [&](Lsn lsn, BytesView payload) {
            if (lsn <= after || out.records >= max_records) return;
            fn(lsn, payload);
            out.last_lsn = lsn;
            ++out.records;
        };
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        // Skip segments the next segment's start proves are <= after.
        if (i + 1 < segments_.size() &&
            segments_[i + 1].first_lsn <= after + 1) {
            continue;
        }
        if (out.records >= max_records) break;
        // The open active segment may be preallocated past its logical
        // size on disk; only the logical bytes are log contents.
        const std::uint64_t limit = i + 1 == segments_.size() && active_
                                        ? active_->size()
                                        : UINT64_MAX;
        const ScanResult scan = scan_segment(segments_[i], &sink, limit);
        if (!scan.clean_end) {
            throw CorruptLogError("Wal::read_from: corruption in " +
                                  segments_[i].path.string());
        }
    }
    out.end_of_log = std::max(out.last_lsn, after) >= last_lsn();
    return out;
}

void Wal::truncate_through(Lsn through) {
    // A segment is removable when every record it holds is <= `through`,
    // i.e. the NEXT segment starts at or below `through`+1. The active
    // (last) segment always stays: appends continue into it.
    std::size_t keep_from = 0;
    while (keep_from + 1 < segments_.size() &&
           segments_[keep_from + 1].first_lsn <= through + 1) {
        ++keep_from;
    }
    if (keep_from == 0) return;
    for (std::size_t i = 0; i < keep_from; ++i) {
        vfs_.remove_file(segments_[i].path);
    }
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<std::ptrdiff_t>(keep_from));
    if (options_.sync_policy != SyncPolicy::kNever) vfs_.sync_dir(dir_);
}

}  // namespace mie::store
