// Storage engine: WAL + checkpoints + recovery, over opaque payloads.
//
// The engine knows nothing about MIE; it logs byte strings and stores
// byte-string snapshots. The owner (mie::DurableServer) decides what a
// payload means (a mutating RPC request) and produces snapshots (the
// export_snapshot wire format).
//
// Layout under `dir`:
//   wal/         segment files (see wal.hpp)
//   checkpoints/ checkpoint files (see checkpoint.hpp)
//
// Recovery invariant: state(latest durable checkpoint) + ordered replay
// of every durable log record with lsn > checkpoint.lsn == the state at
// crash time, restricted to acknowledged operations (an operation is
// acknowledged only after its record is appended under the sync policy).
//
// Checkpoint policy: once `checkpoint_every_bytes` of log have
// accumulated past the last checkpoint, checkpoint_due() turns true; the
// owner then calls checkpoint(snapshot), which durably writes the
// checkpoint at last_lsn() and deletes fully-covered log segments. A
// crash between those two steps is safe: recovery replays from the new
// checkpoint and simply skips the not-yet-truncated older segments.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>

#include "store/checkpoint.hpp"
#include "store/file.hpp"
#include "store/wal.hpp"

namespace mie::store {

class StorageEngine {
public:
    struct Options {
        Wal::Options wal;
        /// Log bytes between checkpoints (0 disables automatic due-ness).
        /// Checkpoints serialize the full repository state, so the
        /// threshold is deliberately large: frequent checkpoints cost far
        /// more than the replay they save.
        std::uint64_t checkpoint_every_bytes = 64u << 20;
    };

    struct RecoveryResult {
        bool had_checkpoint = false;
        Lsn checkpoint_lsn = 0;
        std::size_t replayed_records = 0;
        bool tail_truncated = false;  ///< a torn/corrupt tail was discarded
        Lsn last_lsn = 0;             ///< log position after recovery
    };

    /// Opens the engine and runs recovery: if a valid checkpoint exists,
    /// `restore(snapshot)` is called first; then `apply(payload)` runs
    /// for each later durable log record in order. Appends are accepted
    /// after this returns.
    StorageEngine(Vfs& vfs, std::filesystem::path dir, Options options,
                  const std::function<void(BytesView)>& restore,
                  const std::function<void(BytesView)>& apply);

    const RecoveryResult& recovery() const { return recovery_; }

    /// Appends one operation payload to the log. The operation may be
    /// acknowledged once this returns.
    Lsn log(BytesView payload) { return wal_.append(payload); }

    /// Appends a batch of operation payloads with ONE sync-policy
    /// application at the end (group commit: a single fsync covers every
    /// record under kEveryRecord). All operations of the batch may be
    /// acknowledged once this returns; on IoError none may be.
    Lsn log_batch(const std::vector<BytesView>& payloads) {
        return wal_.append_batch(payloads);
    }

    /// Forces the log to stable storage (used on clean shutdown and by
    /// callers that batch syncs themselves).
    void sync() { wal_.sync(); }

    /// True when enough log has accumulated that the owner should take a
    /// snapshot and call checkpoint().
    bool checkpoint_due() const;

    /// Durably checkpoints `snapshot` as covering everything logged so
    /// far, then truncates fully-covered log segments.
    void checkpoint(BytesView snapshot);

    Lsn last_lsn() const { return wal_.last_lsn(); }
    Lsn last_checkpoint_lsn() const { return checkpoint_lsn_; }
    std::size_t num_wal_segments() const { return wal_.num_segments(); }

    /// Tail-reads logged payloads with lsn > `after` (replication feed).
    /// The caller must serialize against concurrent log()/checkpoint()
    /// calls, exactly like those calls serialize against each other.
    Wal::TailRead read_from(
        Lsn after, std::size_t max_records,
        const std::function<void(Lsn, BytesView)>& fn) const {
        return wal_.read_from(after, max_records, fn);
    }

    /// First LSN still present (records below it were truncated by a
    /// checkpoint and can only be served as a snapshot).
    Lsn oldest_lsn() const { return wal_.oldest_lsn(); }

private:
    CheckpointStore checkpoints_;
    Wal wal_;
    Options options_;
    RecoveryResult recovery_;
    Lsn checkpoint_lsn_ = 0;
    std::uint64_t logged_since_checkpoint_base_ = 0;
};

}  // namespace mie::store
