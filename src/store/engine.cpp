#include "store/engine.hpp"

namespace mie::store {

StorageEngine::StorageEngine(Vfs& vfs, std::filesystem::path dir,
                             Options options,
                             const std::function<void(BytesView)>& restore,
                             const std::function<void(BytesView)>& apply)
    : checkpoints_(vfs, dir / "checkpoints"),
      wal_(vfs, dir / "wal", options.wal),
      options_(options) {
    if (const auto loaded = checkpoints_.load_latest()) {
        try {
            restore(loaded->snapshot);
            recovery_.had_checkpoint = true;
            recovery_.checkpoint_lsn = loaded->lsn;
            checkpoint_lsn_ = loaded->lsn;
        } catch (...) {
            // The checkpoint is unusable — e.g. the snapshot file a
            // checkpoint stub references is corrupt or missing. Recovery
            // can still converge by replaying the full log, but only if
            // no records were truncated by an earlier checkpoint: the
            // active segment is never deleted, so oldest_lsn() <= 1 means
            // complete history is present. (The restore callback must
            // validate before mutating, so state is untouched here.)
            if (wal_.oldest_lsn() > 1) throw;
            checkpoint_lsn_ = 0;
        }
    }
    wal_.replay(checkpoint_lsn_, [&](Lsn, BytesView payload) {
        apply(payload);
        ++recovery_.replayed_records;
    });
    recovery_.tail_truncated = wal_.tail_truncated_on_open();
    recovery_.last_lsn = wal_.last_lsn();
    logged_since_checkpoint_base_ = wal_.bytes_appended();
}

bool StorageEngine::checkpoint_due() const {
    if (options_.checkpoint_every_bytes == 0) return false;
    return wal_.bytes_appended() - logged_since_checkpoint_base_ >=
           options_.checkpoint_every_bytes;
}

void StorageEngine::checkpoint(BytesView snapshot) {
    // Make every record the snapshot covers durable before the checkpoint
    // claims to cover them.
    wal_.sync();
    const Lsn lsn = wal_.last_lsn();
    checkpoints_.write(lsn, snapshot);
    checkpoint_lsn_ = lsn;
    logged_since_checkpoint_base_ = wal_.bytes_appended();
    // A crash before (or during) this truncation is safe: recovery skips
    // records <= lsn.
    wal_.truncate_through(lsn);
}

}  // namespace mie::store
