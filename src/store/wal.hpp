// Segmented, CRC-protected write-ahead log.
//
// The log is a directory of segment files `wal-<first_lsn>.log`. Each
// segment starts with a fixed header and holds a run of records:
//
//   segment header:  magic "MIEWAL1\n" (8) | u64 first_lsn (LE)
//   record:          u32 payload_len | u32 crc | u64 lsn | payload
//
// `crc` is CRC-32 over (lsn_le || payload), so a record whose length
// field, lsn, or payload was torn or bit-flipped fails verification.
// LSNs are assigned 1, 2, 3, ... with no gaps; `Lsn 0` means "nothing".
//
// Crash behaviour on open: the tail segment may end in a torn record
// (partial header or payload, or CRC mismatch). Such a tail is truncated
// away — it can only belong to an operation that was never acknowledged.
// A CRC mismatch *before* the end of the durable prefix is corruption;
// replay stops there and reports it rather than applying garbage.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "store/file.hpp"

namespace mie::store {

using Lsn = std::uint64_t;

/// Thrown when log contents fail validation in a way recovery cannot
/// safely skip (corruption strictly inside the durable prefix).
class CorruptLogError : public IoError {
public:
    using IoError::IoError;
};

/// When to flush the active segment to stable storage. Every policy is
/// durable against *process* crash (append issues write(2) before
/// returning); they differ in the power-loss window.
enum class SyncPolicy : std::uint8_t {
    kEveryRecord,  ///< fsync before every append returns (power-loss durable)
    kOnRotate,     ///< async writeback when sealing a segment; power loss
                   ///< may cost roughly the last segment or two
    kNever,        ///< no flushing at all beyond OS writeback; tests only
};

class Wal {
public:
    struct Options {
        /// Rotate threshold. Rotation seals + flushes a full segment, so
        /// small segments turn that cost into a per-append tax; 16 MiB
        /// keeps it amortized to noise while bounding both the kOnRotate
        /// power-loss window and the recovery replay per segment.
        std::uint64_t segment_bytes = 16u << 20;
        SyncPolicy sync_policy = SyncPolicy::kOnRotate;
    };

    /// Opens (creating if needed) the log in `dir`, scanning existing
    /// segments and truncating a torn tail. `vfs` must outlive the Wal.
    Wal(Vfs& vfs, std::filesystem::path dir, Options options);

    Wal(const Wal&) = delete;
    Wal& operator=(const Wal&) = delete;

    /// Appends one record; returns its LSN. Durability on return follows
    /// the sync policy. Throws IoError on failure (the record must then
    /// be treated as not written).
    Lsn append(BytesView payload);

    /// Appends every payload as consecutive records, then applies the
    /// sync policy ONCE for the whole batch: under kEveryRecord a single
    /// fsync makes all of them power-loss durable together (group
    /// commit), amortizing the per-record flush across the batch. Returns
    /// the last LSN (0 for an empty batch). On IoError a prefix of the
    /// batch may be written; none of it may be acknowledged, and torn-tail
    /// truncation discards any unsynced suffix at recovery.
    Lsn append_batch(const std::vector<BytesView>& payloads);

    /// Forces the active segment to stable storage.
    void sync();

    /// Highest LSN present in the log (0 if empty).
    Lsn last_lsn() const { return next_lsn_ - 1; }

    /// Invokes `fn(lsn, payload)` for every record with lsn > `after`, in
    /// LSN order. Detected mid-log corruption throws CorruptLogError
    /// after delivering every record before the corruption point.
    void replay(Lsn after,
                const std::function<void(Lsn, BytesView)>& fn) const;

    /// Outcome of one read_from() tail read.
    struct TailRead {
        Lsn last_lsn = 0;  ///< highest LSN delivered (0 if none)
        /// True when no records beyond the delivered ones exist, i.e. the
        /// reader has caught up with the log tail.
        bool end_of_log = false;
        std::size_t records = 0;  ///< records delivered this call
    };

    /// Tail-reader: delivers up to `max_records` records with lsn >
    /// `after`, in LSN order, spanning sealed segments and the active one.
    /// This is the replication read API — a ReplicationSource calls it
    /// repeatedly with its acknowledged offset instead of reaching into
    /// segment files. The caller must serialize read_from against
    /// concurrent appends (DurableServer holds its log mutex). Records at
    /// or below `after` that were truncated away by a checkpoint are not
    /// an error — callers detect that case via oldest_lsn() and fall back
    /// to a snapshot. Throws CorruptLogError on mid-log corruption, like
    /// replay().
    TailRead read_from(Lsn after, std::size_t max_records,
                       const std::function<void(Lsn, BytesView)>& fn) const;

    /// First LSN still present in the log (the head of the oldest
    /// segment). A reader whose `after` satisfies after + 1 < oldest_lsn()
    /// has missed truncated records and needs a snapshot instead.
    Lsn oldest_lsn() const { return segments_.front().first_lsn; }

    /// Deletes segments whose records are ALL <= `through` (they are
    /// covered by a checkpoint). The active segment is never deleted.
    void truncate_through(Lsn through);

    /// True if opening found and discarded a torn tail.
    bool tail_truncated_on_open() const { return tail_truncated_; }

    std::size_t num_segments() const { return segments_.size(); }

    /// Bytes appended since this Wal was opened (sizing checkpoints).
    std::uint64_t bytes_appended() const { return bytes_appended_; }

    static constexpr char kMagic[8] = {'M', 'I', 'E', 'W', 'A', 'L',
                                       '1', '\n'};
    static constexpr std::size_t kHeaderBytes = 16;
    static constexpr std::size_t kRecordHeaderBytes = 16;

private:
    struct Segment {
        std::filesystem::path path;
        Lsn first_lsn = 0;  ///< LSN the segment starts at
    };

    void open_existing();
    void start_segment(Lsn first_lsn);
    /// Appends one record without applying the per-record sync policy
    /// (rotation still seals full segments); append/append_batch layer
    /// the policy on top.
    Lsn append_record(BytesView payload);
    std::filesystem::path segment_path(Lsn first_lsn) const;

    /// Scans one segment file; returns the byte offset just past the last
    /// valid record and appends (lsn, payload) pairs via `fn` when given.
    /// `limit` caps how many file bytes are considered (the active
    /// segment's on-disk size can exceed its logical size while open,
    /// because appends preallocate ahead).
    struct ScanResult {
        Lsn last_lsn = 0;      ///< 0 if the segment has no valid records
        std::uint64_t valid_bytes = kHeaderBytes;
        bool clean_end = true;  ///< false: trailing partial/corrupt data
    };
    ScanResult scan_segment(
        const Segment& segment,
        const std::function<void(Lsn, BytesView)>* fn,
        std::uint64_t limit = UINT64_MAX) const;

    Vfs& vfs_;
    std::filesystem::path dir_;
    Options options_;
    std::vector<Segment> segments_;  ///< sorted by first_lsn; back = active
    std::unique_ptr<File> active_;
    Lsn next_lsn_ = 1;
    bool tail_truncated_ = false;
    bool active_dirty_ = false;  ///< unsynced bytes in the active segment
    std::uint64_t bytes_appended_ = 0;
};

}  // namespace mie::store
