#include "store/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace mie::store {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_errno(const std::string& what, const fs::path& path) {
    throw IoError(what + " " + path.string() + ": " +
                  std::strerror(errno));
}

#if defined(__linux__)

/// Append-only file over a shared memory mapping. Appends are memcpys
/// into the page cache — same process-crash durability as write(2) at a
/// fraction of the cost (no syscall per record). The file is grown in
/// kGrowBytes chunks ahead of the logical size and truncated back on
/// clean close; after a process crash the zero-filled preallocated tail
/// remains, which the WAL scanner already treats as end-of-log.
class MmapFile final : public File {
public:
    MmapFile(int fd, fs::path path) : fd_(fd), path_(std::move(path)) {
        struct ::stat st{};
        if (::fstat(fd_, &st) == 0) {
            size_ = static_cast<std::uint64_t>(st.st_size);
        }
        disk_size_ = size_;
    }

    ~MmapFile() override {
        if (map_ != nullptr) ::munmap(map_, mapped_);
        if (fd_ >= 0) {
            if (disk_size_ != size_) {
                // Drop the preallocated tail (or the zeros a concurrent
                // fault-injection truncate re-exposed) so a cleanly
                // closed file holds exactly its logical contents.
                ::ftruncate(fd_, static_cast<::off_t>(size_));
            }
            ::close(fd_);
        }
    }

    void append(BytesView data) override {
        if (data.empty()) return;
        ensure_capacity(size_ + data.size());
        std::memcpy(map_ + size_, data.data(), data.size());
        size_ += data.size();
    }

    void append_parts(BytesView header, BytesView payload) override {
        ensure_capacity(size_ + header.size() + payload.size());
        std::memcpy(map_ + size_, header.data(), header.size());
        std::memcpy(map_ + size_ + header.size(), payload.data(),
                    payload.size());
        size_ += header.size() + payload.size();
    }

    void sync() override {
        // fdatasync writes back every dirty page of the inode, including
        // pages dirtied through the mapping.
        if (::fdatasync(fd_) != 0) throw_errno("File::sync", path_);
    }

    void flush_async() override {
        // Initiate writeback without waiting; EINVAL (unsupported
        // filesystem) degrades to the blocking default.
        if (::sync_file_range(fd_, 0, 0, SYNC_FILE_RANGE_WRITE) == 0) return;
        sync();
    }

    std::uint64_t size() const override { return size_; }

private:
    static constexpr std::uint64_t kGrowBytes = 4u << 20;
    /// Initial virtual reservation. Mapping past EOF is legal (only
    /// *touching* past EOF faults), and virtual address space is free on
    /// 64-bit, so a generous reservation means the common case never
    /// pays an mremap page-table move.
    static constexpr std::uint64_t kMinMapBytes = 64u << 20;

    void ensure_capacity(std::uint64_t need) {
        if (need <= disk_size_ && need <= mapped_) return;
        const std::uint64_t new_len =
            (need + kGrowBytes - 1) / kGrowBytes * kGrowBytes;
        if (map_ == nullptr || new_len > mapped_) {
            const std::uint64_t map_len =
                std::max({new_len, kMinMapBytes, mapped_ * 2});
            void* m = map_ == nullptr
                          ? ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                                   MAP_SHARED, fd_, 0)
                          : ::mremap(map_, mapped_, map_len, MREMAP_MAYMOVE);
            if (m == MAP_FAILED) throw_errno("File::append (mmap)", path_);
            map_ = static_cast<std::uint8_t*>(m);
            mapped_ = map_len;
        }
        if (new_len > disk_size_) {
            if (::ftruncate(fd_, static_cast<::off_t>(new_len)) != 0) {
                throw_errno("File::append (grow)", path_);
            }
            // Prefault the new bytes in one batched kernel pass;
            // otherwise every first-touch memcpy page pays a separate
            // write fault, which dwarfs the copy itself. Best-effort:
            // older kernels (< 5.14) lack MADV_POPULATE_WRITE and we
            // just fault lazily.
#ifdef MADV_POPULATE_WRITE
            ::madvise(map_ + disk_size_, new_len - disk_size_,
                      MADV_POPULATE_WRITE);
#endif
            disk_size_ = new_len;
        }
    }

    int fd_;
    fs::path path_;
    std::uint64_t size_ = 0;       ///< logical bytes appended
    std::uint64_t disk_size_ = 0;  ///< st_size (chunk-rounded once grown)
    std::uint64_t mapped_ = 0;
    std::uint8_t* map_ = nullptr;
};

using DefaultPosixFile = MmapFile;

#else  // !__linux__

/// POSIX fd wrapper; append-only.
class WritePosixFile final : public File {
public:
    WritePosixFile(int fd, fs::path path) : fd_(fd), path_(std::move(path)) {
        struct ::stat st{};
        if (::fstat(fd_, &st) == 0) {
            size_ = static_cast<std::uint64_t>(st.st_size);
        }
    }

    ~WritePosixFile() override {
        if (fd_ >= 0) ::close(fd_);
    }

    void append(BytesView data) override {
        std::size_t done = 0;
        while (done < data.size()) {
            const ::ssize_t n =
                ::write(fd_, data.data() + done, data.size() - done);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_errno("File::append", path_);
            }
            done += static_cast<std::size_t>(n);
            size_ += static_cast<std::uint64_t>(n);
        }
    }

    void append_parts(BytesView header, BytesView payload) override {
        ::iovec iov[2] = {
            {const_cast<std::uint8_t*>(header.data()), header.size()},
            {const_cast<std::uint8_t*>(payload.data()), payload.size()}};
        std::size_t idx = 0;
        while (idx < 2) {
            const ::ssize_t n = ::writev(fd_, iov + idx,
                                         static_cast<int>(2 - idx));
            if (n < 0) {
                if (errno == EINTR) continue;
                throw_errno("File::append_parts", path_);
            }
            size_ += static_cast<std::uint64_t>(n);
            std::size_t left = static_cast<std::size_t>(n);
            while (idx < 2 && left >= iov[idx].iov_len) {
                left -= iov[idx].iov_len;
                ++idx;
            }
            if (idx < 2 && left > 0) {
                iov[idx].iov_base =
                    static_cast<std::uint8_t*>(iov[idx].iov_base) + left;
                iov[idx].iov_len -= left;
            }
        }
    }

    void sync() override {
        if (::fdatasync(fd_) != 0) throw_errno("File::sync", path_);
    }

    std::uint64_t size() const override { return size_; }

private:
    int fd_;
    fs::path path_;
    std::uint64_t size_ = 0;
};

using DefaultPosixFile = WritePosixFile;

#endif  // __linux__

std::unique_ptr<File> open_posix(const fs::path& path, int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) throw_errno("Vfs::open", path);
    return std::make_unique<DefaultPosixFile>(fd, path);
}

}  // namespace

void File::append_parts(BytesView header, BytesView payload) {
    Bytes joined;
    joined.reserve(header.size() + payload.size());
    joined.insert(joined.end(), header.begin(), header.end());
    joined.insert(joined.end(), payload.begin(), payload.end());
    append(joined);
}

#if defined(__linux__)
// The mapping needs read access too.
constexpr int kAppendFlags = O_RDWR | O_CREAT;
#else
constexpr int kAppendFlags = O_WRONLY | O_CREAT | O_APPEND;
#endif

std::unique_ptr<File> PosixVfs::open_append(const fs::path& path) {
    return open_posix(path, kAppendFlags);
}

std::unique_ptr<File> PosixVfs::create_truncate(const fs::path& path) {
    return open_posix(path, kAppendFlags | O_TRUNC);
}

Bytes PosixVfs::read_file(const fs::path& path) const {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw_errno("Vfs::read_file", path);
    Bytes out;
    std::uint8_t buffer[1 << 16];
    for (;;) {
        const ::ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            throw_errno("Vfs::read_file", path);
        }
        if (n == 0) break;
        out.insert(out.end(), buffer, buffer + n);
    }
    ::close(fd);
    return out;
}

bool PosixVfs::exists(const fs::path& path) const {
    std::error_code ec;
    return fs::exists(path, ec);
}

std::uint64_t PosixVfs::file_size(const fs::path& path) const {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) throw IoError("Vfs::file_size " + path.string());
    return size;
}

std::vector<fs::path> PosixVfs::list_dir(const fs::path& dir) const {
    std::vector<fs::path> entries;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file()) entries.push_back(entry.path());
    }
    if (ec) throw IoError("Vfs::list_dir " + dir.string());
    return entries;
}

void PosixVfs::remove_file(const fs::path& path) {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        throw_errno("Vfs::remove_file", path);
    }
}

void PosixVfs::truncate_file(const fs::path& path, std::uint64_t new_size) {
    if (::truncate(path.c_str(), static_cast<::off_t>(new_size)) != 0) {
        throw_errno("Vfs::truncate_file", path);
    }
}

void PosixVfs::rename(const fs::path& from, const fs::path& to) {
    if (::rename(from.c_str(), to.c_str()) != 0) {
        throw_errno("Vfs::rename", from);
    }
}

void PosixVfs::create_directories(const fs::path& dir) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) throw IoError("Vfs::create_directories " + dir.string());
}

void PosixVfs::sync_dir(const fs::path& dir) {
    const fs::path target = dir.empty() ? fs::path(".") : dir;
    const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno("Vfs::sync_dir", target);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw_errno("Vfs::sync_dir", target);
}

PosixVfs& PosixVfs::instance() {
    static PosixVfs vfs;
    return vfs;
}

void atomic_write_file(Vfs& vfs, const fs::path& path, BytesView data) {
    const fs::path temp = path.string() + ".tmp";
    {
        auto file = vfs.create_truncate(temp);
        file->append(data);
        file->sync();  // contents durable before the rename publishes them
    }
    vfs.rename(temp, path);
    vfs.sync_dir(path.parent_path());  // make the rename itself durable
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Wraps a base file, metering appends through the owning vfs's trigger.
class FaultFile final : public File {
public:
    FaultFile(FaultInjectingVfs& owner, std::unique_ptr<File> base,
              fs::path path)
        : owner_(owner), base_(std::move(base)), path_(std::move(path)) {}

    void append(BytesView data) override;
    // append_parts: base-class default joins and calls append(), so the
    // fault trigger meters the whole record.
    void sync() override;
    // flush_async only *initiates* writeback; it must not advance the
    // synced size, so an injected power loss still drops those bytes.
    void flush_async() override { owner_.check_alive(); }
    std::uint64_t size() const override { return base_->size(); }

private:
    FaultInjectingVfs& owner_;
    std::unique_ptr<File> base_;
    fs::path path_;
};

void FaultInjectingVfs::fail_after_bytes(std::uint64_t bytes,
                                         std::size_t torn_bytes) {
    armed_ = true;
    fail_at_bytes_ = bytes_appended_ + bytes;
    torn_bytes_ = torn_bytes;
}

void FaultInjectingVfs::die() { crashed_ = true; }

void FaultInjectingVfs::power_loss() {
    crashed_ = true;
    // Roll every file back to its last synced size: unsynced appends lived
    // only in the page cache and do not survive power loss.
    // mielint: allow(R3): per-file truncation; visit order irrelevant
    for (const auto& [path, written] : written_size_) {
        const auto it = synced_size_.find(path);
        const std::uint64_t durable = it == synced_size_.end() ? 0 : it->second;
        if (durable < written && base_.exists(path)) {
            base_.truncate_file(path, durable);
        }
    }
}

void FaultInjectingVfs::reset() {
    crashed_ = false;
    armed_ = false;
}

void FaultInjectingVfs::check_alive() const {
    if (crashed_) throw IoError("FaultInjectingVfs: crashed");
}

std::size_t FaultInjectingVfs::admit_append(std::size_t want) {
    check_alive();
    if (armed_ && bytes_appended_ + want > fail_at_bytes_) {
        // This append crosses the trigger: write the torn prefix, then die.
        const std::uint64_t room = fail_at_bytes_ - bytes_appended_;
        const std::size_t torn =
            std::min(want, static_cast<std::size_t>(room) + torn_bytes_);
        bytes_appended_ += torn;
        return torn;  // caller writes `torn` bytes, then we throw via crash
    }
    bytes_appended_ += want;
    return want;
}

void FaultInjectingVfs::note_synced(const fs::path& path,
                                    std::uint64_t size) {
    synced_size_[path.string()] = size;
}

void FaultInjectingVfs::note_written(const fs::path& path,
                                     std::uint64_t size) {
    written_size_[path.string()] = size;
}

void FaultFile::append(BytesView data) {
    const std::size_t admitted = owner_.admit_append(data.size());
    if (admitted < data.size()) {
        // Torn write: a prefix reaches the file, then the "process" dies.
        // The torn bytes stay on disk (page cache survives a process
        // crash); a test modelling power loss calls power_loss() after.
        base_->append(data.subspan(0, admitted));
        owner_.note_written(path_, base_->size());
        owner_.die();
        throw IoError("FaultFile::append: injected failure at " +
                      path_.string());
    }
    base_->append(data);
    owner_.note_written(path_, base_->size());
}

void FaultFile::sync() {
    owner_.check_alive();
    base_->sync();
    owner_.note_synced(path_, base_->size());
}

std::unique_ptr<File> FaultInjectingVfs::open_append(const fs::path& path) {
    check_alive();
    auto base = base_.open_append(path);
    // Opening an existing file treats its current contents as durable
    // (recovery reopens segments that were fully synced before).
    note_synced(path, base->size());
    note_written(path, base->size());
    return std::make_unique<FaultFile>(*this, std::move(base), path);
}

std::unique_ptr<File> FaultInjectingVfs::create_truncate(
    const fs::path& path) {
    check_alive();
    auto base = base_.create_truncate(path);
    note_synced(path, 0);
    note_written(path, 0);
    return std::make_unique<FaultFile>(*this, std::move(base), path);
}

Bytes FaultInjectingVfs::read_file(const fs::path& path) const {
    check_alive();
    return base_.read_file(path);
}

bool FaultInjectingVfs::exists(const fs::path& path) const {
    check_alive();
    return base_.exists(path);
}

std::uint64_t FaultInjectingVfs::file_size(const fs::path& path) const {
    check_alive();
    return base_.file_size(path);
}

std::vector<fs::path> FaultInjectingVfs::list_dir(const fs::path& dir) const {
    check_alive();
    return base_.list_dir(dir);
}

void FaultInjectingVfs::remove_file(const fs::path& path) {
    check_alive();
    base_.remove_file(path);
    synced_size_.erase(path.string());
    written_size_.erase(path.string());
}

void FaultInjectingVfs::truncate_file(const fs::path& path,
                                      std::uint64_t new_size) {
    check_alive();
    base_.truncate_file(path, new_size);
    note_written(path, new_size);
    note_synced(path, new_size);
}

void FaultInjectingVfs::rename(const fs::path& from, const fs::path& to) {
    check_alive();
    base_.rename(from, to);
    const auto move = [&](auto& map) {
        const auto it = map.find(from.string());
        if (it != map.end()) {
            map[to.string()] = it->second;
            map.erase(it);
        }
    };
    move(synced_size_);
    move(written_size_);
}

void FaultInjectingVfs::create_directories(const fs::path& dir) {
    check_alive();
    base_.create_directories(dir);
}

void FaultInjectingVfs::sync_dir(const fs::path& dir) {
    check_alive();
    base_.sync_dir(dir);
}

}  // namespace mie::store
