// Checkpoint files for the durable storage engine.
//
// A checkpoint is the full server snapshot (the existing export_snapshot
// wire format) stamped with the WAL position it covers:
//
//   magic "MIECKPT\n" (8) | u64 lsn | u32 crc32(snapshot) | u32 len | snapshot
//
// Checkpoints are written crash-atomically (temp + fsync + rename +
// directory fsync), named `checkpoint-<lsn>.ckpt`. Older checkpoints are
// only deleted after the new one is durable, so there is always at least
// one loadable checkpoint once the first write completes; load_latest
// skips unreadable/corrupt candidates and falls back to older ones.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "store/file.hpp"
#include "store/wal.hpp"

namespace mie::store {

class CheckpointStore {
public:
    /// `vfs` must outlive the store; `dir` is created if missing.
    CheckpointStore(Vfs& vfs, std::filesystem::path dir);

    /// Durably writes a checkpoint covering all records <= `lsn`, then
    /// removes older checkpoint files. Throws IoError on failure (the
    /// previous checkpoint, if any, remains intact).
    void write(Lsn lsn, BytesView snapshot);

    struct Loaded {
        Lsn lsn = 0;
        Bytes snapshot;
    };

    /// Loads the newest checkpoint that validates; nullopt if none does.
    std::optional<Loaded> load_latest() const;

    static constexpr char kMagic[8] = {'M', 'I', 'E', 'C', 'K', 'P',
                                       'T', '\n'};

private:
    std::filesystem::path checkpoint_path(Lsn lsn) const;

    Vfs& vfs_;
    std::filesystem::path dir_;
};

}  // namespace mie::store
