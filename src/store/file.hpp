// File-system abstraction for the durable storage engine.
//
// The WAL and checkpoint code talk to a `Vfs` instead of the OS so that
// crash-consistency tests can inject faults a real disk produces: a write
// that fails partway (torn record), a process that dies before fsync
// (lost page cache), a segment truncated mid-record. `PosixVfs` is the
// real implementation; `FaultInjectingVfs` wraps any Vfs and simulates
// those failures deterministically.
//
// Durability contract of the real implementation:
//   - File::append issues write(2); bytes survive a *process* crash once
//     append returns (they sit in the OS page cache or on disk).
//   - File::sync issues fdatasync(2); bytes survive a *power* failure once
//     sync returns.
//   - Vfs::rename + Vfs::sync_dir make a temp-file rename crash-atomic
//     (the directory entry itself must be fsynced, or the rename can be
//     lost on power failure even though both files were synced).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"

namespace mie::store {

/// Thrown by every storage operation that hits an I/O failure (real or
/// injected). Carries the path for diagnostics.
class IoError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// An append-only file handle. Closing happens in the destructor; call
/// sync() first if durability is required.
class File {
public:
    virtual ~File() = default;

    /// Appends `data` at the end of the file. Throws IoError on failure;
    /// a failure may leave a prefix of `data` written (torn write).
    virtual void append(BytesView data) = 0;

    /// Appends `header` immediately followed by `payload` (one logical
    /// record). The default joins them into one buffer; implementations
    /// may use vectored I/O to skip the copy. Same failure semantics as
    /// append().
    virtual void append_parts(BytesView header, BytesView payload);

    /// Flushes file contents to stable storage (fdatasync semantics).
    virtual void sync() = 0;

    /// Starts flushing written bytes to stable storage without waiting
    /// for completion (used to seal full WAL segments off the hot path).
    /// Unlike sync(), offers no durability guarantee at return — only
    /// that writeback has been initiated. Defaults to a blocking sync().
    virtual void flush_async() { sync(); }

    /// Current size in bytes (including unsynced appends).
    virtual std::uint64_t size() const = 0;
};

/// Minimal file-system surface the storage engine needs.
class Vfs {
public:
    virtual ~Vfs() = default;

    /// Opens for appending, creating the file if missing.
    virtual std::unique_ptr<File> open_append(
        const std::filesystem::path& path) = 0;

    /// Creates/truncates and opens for appending.
    virtual std::unique_ptr<File> create_truncate(
        const std::filesystem::path& path) = 0;

    /// Reads a whole file. Throws IoError if it cannot be opened.
    virtual Bytes read_file(const std::filesystem::path& path) const = 0;

    virtual bool exists(const std::filesystem::path& path) const = 0;
    virtual std::uint64_t file_size(
        const std::filesystem::path& path) const = 0;

    /// Regular files directly inside `dir` (no recursion), unsorted.
    virtual std::vector<std::filesystem::path> list_dir(
        const std::filesystem::path& dir) const = 0;

    virtual void remove_file(const std::filesystem::path& path) = 0;
    virtual void truncate_file(const std::filesystem::path& path,
                               std::uint64_t new_size) = 0;

    /// Atomic on POSIX; pair with sync_dir for power-loss atomicity.
    virtual void rename(const std::filesystem::path& from,
                        const std::filesystem::path& to) = 0;

    virtual void create_directories(const std::filesystem::path& dir) = 0;

    /// fsyncs the directory inode so renames/creates/unlinks inside it
    /// are durable.
    virtual void sync_dir(const std::filesystem::path& dir) = 0;
};

/// Production implementation over POSIX fds (write/fdatasync/fsync).
class PosixVfs final : public Vfs {
public:
    std::unique_ptr<File> open_append(
        const std::filesystem::path& path) override;
    std::unique_ptr<File> create_truncate(
        const std::filesystem::path& path) override;
    Bytes read_file(const std::filesystem::path& path) const override;
    bool exists(const std::filesystem::path& path) const override;
    std::uint64_t file_size(const std::filesystem::path& path) const override;
    std::vector<std::filesystem::path> list_dir(
        const std::filesystem::path& dir) const override;
    void remove_file(const std::filesystem::path& path) override;
    void truncate_file(const std::filesystem::path& path,
                       std::uint64_t new_size) override;
    void rename(const std::filesystem::path& from,
                const std::filesystem::path& to) override;
    void create_directories(const std::filesystem::path& dir) override;
    void sync_dir(const std::filesystem::path& dir) override;

    /// Shared instance for callers that need no faults.
    static PosixVfs& instance();
};

/// Writes `data` to `path` crash-atomically: temp file, write, fdatasync,
/// rename over `path`, fsync the directory. Readers see either the old
/// file or the complete new one — never a partial write — even across
/// power failure.
void atomic_write_file(Vfs& vfs, const std::filesystem::path& path,
                       BytesView data);

/// Deterministic fault injection around a base Vfs.
///
/// Faults modeled:
///   - fail-at-byte-N (+ torn write): after N more bytes have been
///     appended across all files, the failing append writes `torn_bytes`
///     of its payload and throws IoError; every later operation throws
///     too (the process is considered crashed).
///   - power loss: power_loss() rolls every file back to its last synced
///     size, discarding bytes that only ever reached the (simulated) page
///     cache. A crash on a no-fsync workload therefore loses the
///     unsynced suffix, exactly like real power loss.
///
/// After die()/power_loss(), call reset() and reopen the directory through
/// a fresh Vfs (or this one) to exercise recovery.
class FaultInjectingVfs final : public Vfs {
public:
    explicit FaultInjectingVfs(Vfs& base) : base_(base) {}

    /// Arms the byte-count trigger: the append that crosses `bytes` more
    /// appended bytes writes `torn_bytes` of its payload, then throws.
    void fail_after_bytes(std::uint64_t bytes, std::size_t torn_bytes = 0);

    /// Marks the Vfs crashed (process death): every later operation
    /// throws, but bytes already written stay in the files.
    void die();

    /// Simulates power loss: process death plus discarding the unsynced
    /// suffix of every file ever written through this Vfs.
    void power_loss();

    bool crashed() const { return crashed_; }

    /// Clears the crashed flag and any armed trigger so the directory can
    /// be re-read for recovery.
    void reset();

    /// Total bytes appended through this Vfs (for positioning triggers).
    std::uint64_t bytes_appended() const { return bytes_appended_; }

    std::unique_ptr<File> open_append(
        const std::filesystem::path& path) override;
    std::unique_ptr<File> create_truncate(
        const std::filesystem::path& path) override;
    Bytes read_file(const std::filesystem::path& path) const override;
    bool exists(const std::filesystem::path& path) const override;
    std::uint64_t file_size(const std::filesystem::path& path) const override;
    std::vector<std::filesystem::path> list_dir(
        const std::filesystem::path& dir) const override;
    void remove_file(const std::filesystem::path& path) override;
    void truncate_file(const std::filesystem::path& path,
                       std::uint64_t new_size) override;
    void rename(const std::filesystem::path& from,
                const std::filesystem::path& to) override;
    void create_directories(const std::filesystem::path& dir) override;
    void sync_dir(const std::filesystem::path& dir) override;

private:
    friend class FaultFile;

    void check_alive() const;
    /// Returns how many bytes of an `want`-byte append may proceed; throws
    /// (after recording the torn prefix) if the trigger fires.
    std::size_t admit_append(std::size_t want);
    void note_synced(const std::filesystem::path& path, std::uint64_t size);
    void note_written(const std::filesystem::path& path, std::uint64_t size);

    Vfs& base_;
    bool crashed_ = false;
    bool armed_ = false;
    std::uint64_t fail_at_bytes_ = 0;
    std::size_t torn_bytes_ = 0;
    std::uint64_t bytes_appended_ = 0;
    /// path -> last size known durable (synced); used by crash().
    std::unordered_map<std::string, std::uint64_t> synced_size_;
    /// path -> last size written at all (synced or not).
    std::unordered_map<std::string, std::uint64_t> written_size_;
};

}  // namespace mie::store
