#include "store/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <utility>
#include <vector>

#include "util/crc32.hpp"

namespace mie::store {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kPrefix = "checkpoint-";
constexpr std::string_view kSuffix = ".ckpt";
constexpr std::size_t kLsnDigits = 20;
constexpr std::size_t kHeaderBytes = 24;

Lsn parse_checkpoint_name(const fs::path& path) {
    const std::string name = path.filename().string();
    if (name.size() != kPrefix.size() + kLsnDigits + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
        return Lsn(0) - 1;  // sentinel: not a checkpoint file
    }
    Lsn lsn = 0;
    const char* first = name.data() + kPrefix.size();
    const auto [ptr, ec] = std::from_chars(first, first + kLsnDigits, lsn);
    if (ec != std::errc{} || ptr != first + kLsnDigits) return Lsn(0) - 1;
    return lsn;
}

constexpr Lsn kNotACheckpoint = Lsn(0) - 1;

}  // namespace

CheckpointStore::CheckpointStore(Vfs& vfs, fs::path dir)
    : vfs_(vfs), dir_(std::move(dir)) {
    vfs_.create_directories(dir_);
}

fs::path CheckpointStore::checkpoint_path(Lsn lsn) const {
    std::string digits = std::to_string(lsn);
    digits.insert(0, kLsnDigits - digits.size(), '0');
    return dir_ / (std::string(kPrefix) + digits + std::string(kSuffix));
}

void CheckpointStore::write(Lsn lsn, BytesView snapshot) {
    Bytes data;
    data.reserve(kHeaderBytes + snapshot.size());
    data.insert(data.end(), kMagic, kMagic + sizeof(kMagic));
    append_le(data, lsn);
    append_le(data, crc32(snapshot));
    append_le(data, static_cast<std::uint32_t>(snapshot.size()));
    data.insert(data.end(), snapshot.begin(), snapshot.end());
    atomic_write_file(vfs_, checkpoint_path(lsn), data);

    // The new checkpoint is durable; older ones are now redundant.
    for (const fs::path& path : vfs_.list_dir(dir_)) {
        const Lsn found = parse_checkpoint_name(path);
        if (found != kNotACheckpoint && found < lsn) vfs_.remove_file(path);
    }
}

std::optional<CheckpointStore::Loaded> CheckpointStore::load_latest() const {
    std::vector<std::pair<Lsn, fs::path>> candidates;
    for (const fs::path& path : vfs_.list_dir(dir_)) {
        const Lsn lsn = parse_checkpoint_name(path);
        if (lsn != kNotACheckpoint) candidates.emplace_back(lsn, path);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    for (const auto& [lsn, path] : candidates) {
        Bytes data;
        try {
            data = vfs_.read_file(path);
        } catch (const IoError&) {
            continue;
        }
        if (data.size() < kHeaderBytes ||
            std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
            continue;
        }
        const auto stored_lsn = read_le<std::uint64_t>(data, 8);
        const auto crc = read_le<std::uint32_t>(data, 16);
        const auto len = read_le<std::uint32_t>(data, 20);
        if (stored_lsn != lsn || data.size() != kHeaderBytes + len) continue;
        const BytesView snapshot(data.data() + kHeaderBytes, len);
        if (crc32(snapshot) != crc) continue;  // corrupt — try an older one
        return Loaded{lsn, Bytes(snapshot.begin(), snapshot.end())};
    }
    return std::nullopt;
}

}  // namespace mie::store
