// Packed bit-vector encodings and Hamming distance.
//
// Dense-DPE encodings are M-bit strings (one bit per output dimension of the
// universal scalar quantizer). Normalized Hamming distance between encodings
// is the de(.,.) of Definition 1 for the dense implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mie::dpe {

class BitCode {
public:
    BitCode() = default;

    /// Creates an all-zero code of `bits` bits.
    explicit BitCode(std::size_t bits);

    std::size_t size() const { return bits_; }
    bool empty() const { return bits_ == 0; }

    bool get(std::size_t i) const {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }
    void set(std::size_t i, bool value) {
        const std::uint64_t mask = 1ULL << (i & 63);
        if (value) {
            words_[i >> 6] |= mask;
        } else {
            words_[i >> 6] &= ~mask;
        }
    }

    /// Hamming distance in bits; both codes must have equal size.
    std::size_t hamming_distance(const BitCode& other) const;

    /// Hamming distance divided by code length, in [0, 1].
    double normalized_hamming(const BitCode& other) const;

    bool operator==(const BitCode& other) const = default;

    /// Serializes as bit-count (LE u64) followed by packed words.
    Bytes serialize() const;
    static BitCode deserialize(BytesView data);

    const std::vector<std::uint64_t>& words() const { return words_; }

private:
    std::vector<std::uint64_t> words_;
    std::size_t bits_ = 0;
};

}  // namespace mie::dpe
