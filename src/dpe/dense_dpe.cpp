#include "dpe/dense_dpe.hpp"

#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

#include "crypto/drbg.hpp"
#include "crypto/kdf.hpp"
#include "exec/exec.hpp"
#include "kernels/kernels.hpp"

namespace mie::dpe {

Bytes DenseDpeKey::serialize() const {
    Bytes out;
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(seed.size()));
    out.insert(out.end(), seed.data(), seed.data() + seed.size());
    append_le<std::uint64_t>(out, input_dims);
    append_le<std::uint64_t>(out, output_bits);
    std::uint64_t delta_bits;
    static_assert(sizeof(delta_bits) == sizeof(delta));
    std::memcpy(&delta_bits, &delta, sizeof(delta_bits));
    append_le<std::uint64_t>(out, delta_bits);
    return out;
}

DenseDpeKey DenseDpeKey::deserialize(BytesView data) {
    DenseDpeKey key;
    const auto seed_len = read_le<std::uint32_t>(data, 0);
    if (data.size() < 4 + seed_len + 24) {
        throw std::out_of_range("DenseDpeKey: truncated buffer");
    }
    key.seed = crypto::SecretBytes(data.subspan(4, seed_len));
    key.input_dims =
        static_cast<std::size_t>(read_le<std::uint64_t>(data, 4 + seed_len));
    key.output_bits = static_cast<std::size_t>(
        read_le<std::uint64_t>(data, 12 + seed_len));
    const auto delta_bits = read_le<std::uint64_t>(data, 20 + seed_len);
    std::memcpy(&key.delta, &delta_bits, sizeof(key.delta));
    return key;
}

DenseDpeKey DenseDpe::keygen(BytesView entropy, std::size_t input_dims,
                             std::size_t output_bits, double delta) {
    if (input_dims == 0 || output_bits == 0 || delta <= 0.0) {
        throw std::invalid_argument("DenseDpe: invalid parameters");
    }
    DenseDpeKey key;
    key.seed = crypto::derive_key(entropy, "dense-dpe-seed");
    key.input_dims = input_dims;
    key.output_bits = output_bits;
    key.delta = delta;
    return key;
}

double DenseDpe::threshold(const DenseDpeKey& key) {
    // t = Func(Δ): the normalized-Hamming response is linear with slope
    // sqrt(2/π)/Δ and saturates near 1/2, so plaintext distances are
    // preserved up to d = 0.5 * Δ * sqrt(π/2).
    return 0.5 * key.delta * std::sqrt(std::numbers::pi / 2.0);
}

DenseDpe::DenseDpe(const DenseDpeKey& key) : key_(key.clone()) {
    if (key_.seed.empty()) {
        throw std::invalid_argument("DenseDpe: empty seed");
    }
    // Expand A (M x N iid standard Gaussians) and w (uniform [0, Δ]^M) from
    // the PRG. The expansion is deterministic in the seed, so every key
    // holder derives the same encoder.
    crypto::CtrDrbg prg(key_.seed);
    matrix_.resize(key_.output_bits * key_.input_dims);
    for (float& a : matrix_) {
        a = static_cast<float>(prg.next_gaussian());
    }
    dither_.resize(key_.output_bits);
    for (float& w : dither_) {
        w = static_cast<float>(prg.next_double(key_.delta));
    }
}

BitCode DenseDpe::encode(const features::FeatureVec& plaintext) const {
    if (plaintext.size() != key_.input_dims) {
        throw std::invalid_argument("DenseDpe: dimension mismatch");
    }
    BitCode code(key_.output_bits);
    const double inv_delta = 1.0 / key_.delta;
    const auto& dot_kernel = kernels::table().dot;
    for (std::size_t m = 0; m < key_.output_bits; ++m) {
        // Projection row dot product through the dispatched SIMD kernel
        // (canonical blocked order: same bits at every kernel level).
        const float* row = matrix_.data() + m * key_.input_dims;
        const double dot =
            dot_kernel(row, plaintext.data(), key_.input_dims);
        // Q(.): values in [2v, 2v+1) -> 1, [2v+1, 2v+2) -> 0, i.e. bit is
        // the complemented parity of floor((A x + w) / Δ).
        const double q = (dot + dither_[m]) * inv_delta;
        const long long cell = static_cast<long long>(std::floor(q));
        code.set(m, (cell & 1LL) == 0);
    }
    return code;
}

std::vector<BitCode> DenseDpe::encode_batch(
    std::span<const features::FeatureVec> plaintexts) const {
    std::vector<BitCode> codes(plaintexts.size());
    exec::parallel_for(0, plaintexts.size(), 8, [&](std::size_t i) {
        codes[i] = encode(plaintexts[i]);
    });
    return codes;
}

double DenseDpe::distance(const BitCode& e1, const BitCode& e2) {
    return e1.normalized_hamming(e2);
}

}  // namespace mie::dpe
